#include "ecnprobe/scenario/world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ecnprobe/chaos/policies.hpp"
#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::scenario {

using netsim::LinkParams;
using util::SimDuration;

namespace {

// Paper Table 1 distribution at full scale.
struct RegionCount {
  geo::Region region;
  int count;
};
constexpr RegionCount kPaperRegionCounts[] = {
    {geo::Region::Africa, 22},        {geo::Region::Asia, 190},
    {geo::Region::Australia, 68},     {geo::Region::Europe, 1664},
    {geo::Region::NorthAmerica, 522}, {geo::Region::SouthAmerica, 32},
    {geo::Region::Unknown, 2},
};

std::vector<RegionCount> scaled_region_counts(int server_count) {
  std::vector<RegionCount> out;
  int total = 0;
  for (const auto& rc : kPaperRegionCounts) {
    const int scaled = static_cast<int>(
        std::lround(static_cast<double>(rc.count) * server_count / 2500.0));
    out.push_back({rc.region, scaled});
    total += scaled;
  }
  // Absorb rounding error into Europe (the largest bucket).
  for (auto& rc : out) {
    if (rc.region == geo::Region::Europe) {
      rc.count += server_count - total;
      if (rc.count < 0) rc.count = 0;
    }
  }
  return out;
}

std::string region_zone_label(geo::Region region) {
  switch (region) {
    case geo::Region::Africa: return "africa";
    case geo::Region::Asia: return "asia";
    case geo::Region::Australia: return "oceania";
    case geo::Region::Europe: return "europe";
    case geo::Region::NorthAmerica: return "north-america";
    case geo::Region::SouthAmerica: return "south-america";
    case geo::Region::Unknown: return "";
  }
  return "";
}

struct VantageSpec {
  const char* name;
  geo::Region region;
  double loss;
  double tos_drop;  ///< ToS-sensitive drop probability on the access uplink
  double delay_ms;
  double jitter_ms;
};

// The paper's 13 collection points. McQuistin's home shows congestion plus
// strong preferential dropping of non-zero-ToS packets (Section 4.1's
// conjecture); the campus wireless is a milder version.
constexpr VantageSpec kVantageSpecs[] = {
    {"Perkins home", geo::Region::Europe, 0.004, 0.00, 14.0, 2.0},
    {"McQuistin home", geo::Region::Europe, 0.030, 0.55, 22.0, 6.0},
    {"UGla wired", geo::Region::Europe, 0.002, 0.00, 5.0, 0.5},
    {"UGla wless", geo::Region::Europe, 0.015, 0.39, 8.0, 4.0},
    {"EC2 Cal", geo::Region::NorthAmerica, 0.001, 0.00, 3.0, 0.3},
    {"EC2 Fra", geo::Region::Europe, 0.001, 0.00, 3.0, 0.3},
    {"EC2 Ire", geo::Region::Europe, 0.001, 0.00, 3.0, 0.3},
    {"EC2 Ore", geo::Region::NorthAmerica, 0.001, 0.00, 3.0, 0.3},
    {"EC2 Sao", geo::Region::SouthAmerica, 0.002, 0.00, 4.0, 0.5},
    {"EC2 Sin", geo::Region::Asia, 0.001, 0.00, 3.0, 0.3},
    {"EC2 Syd", geo::Region::Australia, 0.001, 0.00, 3.0, 0.3},
    {"EC2 Tok", geo::Region::Asia, 0.001, 0.00, 3.0, 0.3},
    {"EC2 Vir", geo::Region::NorthAmerica, 0.001, 0.00, 3.0, 0.3},
};

}  // namespace

WorldParams WorldParams::paper() { return WorldParams{}; }

WorldParams WorldParams::small(std::uint64_t seed) {
  WorldParams p;
  p.seed = seed;
  p.server_count = 60;
  p.ect_udp_firewalled_servers = 3;
  p.ect_required_servers = 1;
  p.ec2_sensitive_servers = 1;
  p.bleach_inter_as_links = 4;
  p.bleach_intra_as_links = 2;
  p.topology.tier1_count = 3;
  p.topology.tier2_per_region = 2;
  p.topology.stub_count = 24;
  p.topology.routers_per_tier1 = 3;
  p.topology.routers_per_tier2 = 2;
  p.topology.routers_per_stub = 2;
  return p;
}

WorldParams WorldParams::scaled(double factor) const {
  WorldParams p = *this;
  factor = std::clamp(factor, 0.005, 1.0);
  auto scale = [factor](int v, int lo) {
    return std::max(lo, static_cast<int>(std::lround(v * factor)));
  };
  p.server_count = scale(server_count, 13);
  p.ect_udp_firewalled_servers = scale(ect_udp_firewalled_servers, 1);
  p.ec2_sensitive_servers = scale(ec2_sensitive_servers, 1);
  p.bleach_inter_as_links = scale(bleach_inter_as_links, 2);
  p.bleach_intra_as_links = scale(bleach_intra_as_links, 1);
  p.topology.stub_count = scale(topology.stub_count, 12);
  p.topology.tier2_per_region = scale(topology.tier2_per_region, 2);
  return p;
}

World::World(WorldParams params)
    : params_(std::move(params)),
      rng_(params_.seed),
      clock_(1'428'883'200, &clock_epoch_origin_ns_) {
  internet_ = topology::Internet::build(sim_, params_.topology, rng_.fork("topology"));
  // Rebind the network's attribution from the process-wide default to this
  // world's private Observability before any host or policy exists, so
  // every packet this world ever moves is accounted here and nowhere else.
  net().set_observability(&obs_);
  if (params_.flight_recorder_capacity > 0) {
    obs_.recorder.arm(params_.flight_recorder_capacity);
  }
  sim_.set_metrics(
      obs_.registry.counter("sim_events_total", {}, "simulator events fired"),
      obs_.registry.histogram("sim_event_lag_ms",
                              {0.1, 1.0, 5.0, 25.0, 100.0, 500.0, 2500.0}, {},
                              "sim-time lag between scheduling and firing, ms"));
  build_pool();
  build_vantages();
  build_dns();
  place_middleboxes();
  install_faults();
  if (params_.telemetry.sketched()) {
    // Resolve the sketch seed against the world seed so the estimators are
    // pure functions of (config, seed, trace) -- every worker clone and
    // the campaign-level aggregate derive the identical hash functions.
    obs_.telemetry.arm(params_.telemetry.resolved(params_.seed));
    obs_.telemetry.set_as_labeler([this](const std::string& node) {
      const auto address = wire::Ipv4Address::parse(node);
      if (!address) return std::string();  // vantage/router names: no AS key
      const auto asn = internet_->ip2as().lookup(*address);
      return asn ? util::strf("AS%u", static_cast<unsigned>(*asn))
                 : std::string("AS-unknown");
    });
  }
  if (params_.timeseries.enabled) {
    // The recorder reads sim time through this callback and subtracts the
    // origin captured at begin_trace(), so window indices are epoch-
    // relative: a pure function of the trace, never of how much sim time
    // earlier traces consumed on this particular world instance.
    obs_.timeseries.set_clock([this] { return sim_.now().count_nanos(); });
    obs_.timeseries.arm(params_.timeseries);
  }
}

World::~World() = default;

void World::build_pool() {
  util::Rng pool_rng = rng_.fork("pool");

  // Assign a country to every stub AS so geography is consistent per AS.
  for (const auto asn : internet_->stub_ases()) {
    const auto region = internet_->as_info(asn).region;
    const auto countries = geo::countries_in(region);
    if (countries.empty()) continue;
    std::vector<double> weights;
    weights.reserve(countries.size());
    for (const auto* c : countries) weights.push_back(c->weight);
    as_country_[asn] = countries[pool_rng.weighted_index(weights)];
  }

  const auto region_counts = scaled_region_counts(params_.server_count);
  int server_index = 0;
  for (const auto& [region, count] : region_counts) {
    // "Unknown" servers exist physically (we place them in Europe) but have
    // no geolocation record, like addresses missing from GeoLite2.
    const geo::Region placement_region =
        region == geo::Region::Unknown ? geo::Region::Europe : region;
    auto stubs = internet_->stub_ases(placement_region);
    if (stubs.empty()) stubs = internet_->stub_ases();
    for (int i = 0; i < count; ++i, ++server_index) {
      const auto asn = stubs[pool_rng.next_below(stubs.size())];

      LinkParams access;
      access.delay = SimDuration::from_seconds(pool_rng.uniform(1.0, 8.0) / 1e3);
      access.jitter = SimDuration::from_seconds(pool_rng.uniform(0.1, 1.0) / 1e3);
      access.loss_rate = pool_rng.uniform(0.001, 0.004);

      auto host = std::make_unique<netsim::Host>(
          util::strf("ntp%d", server_index), netsim::Host::Params{},
          pool_rng.fork(util::strf("host%d", server_index)));
      netsim::Host* raw = host.get();
      PoolServer server;
      server.attachment = internet_->attach_host(asn, std::move(host), access);
      server.host = raw;
      server.address = raw->address();

      // Every server sits behind a (usually transparent) stateful firewall;
      // per-window draws occasionally make it greylist or wedge (Fig. 2b).
      if (params_.greylist_flaky_prob > 0.0 || params_.greylist_dead_prob > 0.0) {
        netsim::GreylistUdpPolicy::Params greylist;
        greylist.flaky_prob = params_.greylist_flaky_prob;
        greylist.dead_prob = params_.greylist_dead_prob;
        net().add_egress_policy(server.attachment.router, server.attachment.router_if,
                                std::make_shared<netsim::GreylistUdpPolicy>(greylist));
      }

      server.rate_limited = pool_rng.bernoulli(params_.rate_limited_fraction);
      ntp::NtpServerService::Params ntp_params;
      ntp_params.stratum = static_cast<std::uint8_t>(pool_rng.uniform_int(1, 3));
      ntp_params.response_prob =
          server.rate_limited ? params_.rate_limited_response_prob : 1.0;
      server.ntp_service =
          std::make_unique<ntp::NtpServerService>(*raw, clock_, ntp_params);

      server.runs_web = pool_rng.bernoulli(params_.web_server_fraction);
      server.web_ecn = server.runs_web && pool_rng.bernoulli(params_.web_ecn_fraction);
      tcp::TcpConfig tcp_config;
      tcp_config.ecn_enabled = server.web_ecn;
      server.tcp_stack = std::make_unique<tcp::TcpStack>(*raw, tcp_config);
      if (server.runs_web) {
        server.web =
            std::make_unique<http::HttpServerService>(*server.tcp_stack,
                                                      http::HttpServerService::Config{});
        // Simulated HTTP traffic lands in this world's registry as http_*
        // counters -- deterministic like everything else in the registry,
        // so the families survive the sequential-vs-parallel equality gate.
        server.web->set_metrics(&obs_.registry);
      }

      if (region != geo::Region::Unknown) {
        const auto* country = as_country_.contains(asn) ? as_country_.at(asn) : nullptr;
        server.country = country;
        geo::GeoRecord record;
        record.region = region;
        if (country != nullptr) {
          record.country = country->code;
          auto rng_geo = pool_rng.fork(util::strf("geo%d", server_index));
          const auto [lat, lon] = geo::sample_location(*country, rng_geo);
          record.latitude = lat;
          record.longitude = lon;
        }
        geodb_.add(server.address, 32, std::move(record));
      }
      servers_.push_back(std::move(server));
    }
  }
}

void World::build_vantages() {
  util::Rng vantage_rng = rng_.fork("vantages");
  for (const auto& spec : kVantageSpecs) {
    auto stubs = internet_->stub_ases(spec.region);
    if (stubs.empty()) stubs = internet_->stub_ases();
    const auto asn = stubs[vantage_rng.next_below(stubs.size())];

    LinkParams access;
    access.delay = SimDuration::from_seconds(spec.delay_ms / 1e3);
    access.jitter = SimDuration::from_seconds(spec.jitter_ms / 1e3);
    access.loss_rate = spec.loss;

    auto host = std::make_unique<netsim::Host>(std::string("vp-") + spec.name,
                                               netsim::Host::Params{},
                                               vantage_rng.fork(spec.name));
    netsim::Host* raw = host.get();
    const auto attachment = internet_->attach_host(asn, std::move(host), access);

    if (spec.tos_drop > 0.0) {
      // The vantage's own access equipment preferentially drops packets
      // with a non-zero ToS octet (which includes any ECT mark).
      net().add_egress_policy(attachment.host, attachment.host_if,
                              std::make_shared<netsim::TosSensitiveDropPolicy>(
                                  spec.tos_drop));
    }

    VantageEntry entry;
    entry.name = spec.name;
    entry.host = raw;
    entry.vantage = std::make_unique<measure::Vantage>(spec.name, *raw, clock_);
    vantage_names_.push_back(spec.name);
    vantages_.push_back(std::move(entry));
  }
}

void World::build_dns() {
  util::Rng dns_rng = rng_.fork("dns");
  zones_ = std::make_shared<dns::PoolZones>();
  for (const auto& server : servers_) {
    zones_->add_member("pool.ntp.org", server.address);
    const auto record = geodb_.lookup(server.address);
    if (!record) continue;  // Unknown servers: global zone only
    const auto region_label = region_zone_label(record->region);
    if (!region_label.empty()) {
      zones_->add_member(region_label + ".pool.ntp.org", server.address);
    }
    if (!record->country.empty()) {
      zones_->add_member(record->country + ".pool.ntp.org", server.address);
    }
  }

  const auto stubs = internet_->stub_ases(geo::Region::Europe);
  const auto asn = stubs.empty() ? internet_->stub_ases().front()
                                 : stubs[dns_rng.next_below(stubs.size())];
  LinkParams access;
  access.delay = SimDuration::millis(2);
  access.loss_rate = 0.0005;
  auto host = std::make_unique<netsim::Host>("dns-resolver", netsim::Host::Params{},
                                             dns_rng.fork("resolver"));
  resolver_host_ = host.get();
  internet_->attach_host(asn, std::move(host), access);
  resolver_address_ = resolver_host_->address();
  resolver_service_ = std::make_unique<dns::DnsServerService>(*resolver_host_, zones_);
}

std::vector<std::string> World::pool_zone_names() const { return zones_->zone_names(); }

void World::place_middleboxes() {
  util::Rng mb_rng = rng_.fork("middleboxes");

  // (a) ECN bleachers first. Mostly on inter-AS links (the paper attributes
  // 59.1% of strip locations to AS boundaries), preferring stub uplinks so
  // strips sit away from the sender; never on links of ASes hosting a
  // vantage. The ASes they touch are recorded so the pathological servers
  // below are not placed behind a bleached path (a bleacher upstream of an
  // ECT-dropping firewall would neutralise it -- the paper's persistent
  // spikes are visible from *every* vantage point).
  std::set<topology::Asn> vantage_asns;
  for (const auto& entry : vantages_) {
    if (const auto* att = internet_->attachment_of(entry.host->address())) {
      vantage_asns.insert(att->asn);
    }
  }
  std::set<topology::Asn> bleached_asns;

  std::vector<const topology::InterAsLink*> candidates;
  for (const auto& link : internet_->inter_as_links()) {
    if (vantage_asns.contains(link.asn_a) || vantage_asns.contains(link.asn_b)) continue;
    const bool touches_stub = internet_->as_info(link.asn_a).tier == 3 ||
                              internet_->as_info(link.asn_b).tier == 3;
    if (touches_stub) candidates.push_back(&link);
  }
  mb_rng.shuffle(candidates);
  const auto n_inter = std::min<std::size_t>(
      candidates.size(), static_cast<std::size_t>(params_.bleach_inter_as_links));
  for (std::size_t i = 0; i < n_inter; ++i) {
    const auto* link = candidates[i];
    const double prob = mb_rng.bernoulli(params_.bleach_sometimes_fraction)
                            ? params_.bleach_sometimes_prob
                            : 1.0;
    net().add_egress_policy(link->a.node, link->a.if_index,
                            std::make_shared<netsim::EcnBleachPolicy>(prob));
    net().add_egress_policy(link->b.node, link->b.if_index,
                            std::make_shared<netsim::EcnBleachPolicy>(prob));
    bleached_asns.insert(link->asn_a);
    bleached_asns.insert(link->asn_b);
  }

  // Intra-AS bleachers live inside stub (edge) networks: bleaching on a
  // heavily-shared core link would redden far more hops than the paper's
  // "few, widely scattered" strip regions.
  std::vector<topology::InterfaceRef> intra;
  for (const auto& iface : internet_->intra_as_interfaces()) {
    const auto asn = internet_->asn_of_router(iface.node);
    if (asn && internet_->as_info(*asn).tier == 3 && !vantage_asns.contains(*asn)) {
      intra.push_back(iface);
    }
  }
  mb_rng.shuffle(intra);
  const auto n_intra = std::min<std::size_t>(
      intra.size(), static_cast<std::size_t>(params_.bleach_intra_as_links));
  for (std::size_t i = 0; i < n_intra; ++i) {
    const double prob = mb_rng.bernoulli(params_.bleach_sometimes_fraction)
                            ? params_.bleach_sometimes_prob
                            : 1.0;
    net().add_egress_policy(intra[i].node, intra[i].if_index,
                            std::make_shared<netsim::EcnBleachPolicy>(prob));
    if (const auto asn = internet_->asn_of_router(intra[i].node)) {
      bleached_asns.insert(*asn);
    }
  }

  // Candidate servers for pathological behaviours: shuffled indices,
  // skipping servers inside bleached ASes.
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!bleached_asns.contains(servers_[i].attachment.asn)) indices.push_back(i);
  }
  mb_rng.shuffle(indices);
  std::size_t cursor = 0;
  auto take = [&](int n) {
    std::vector<std::size_t> out;
    for (int i = 0; i < n && cursor < indices.size(); ++i) out.push_back(indices[cursor++]);
    return out;
  };

  // (b) Firewalls near the destination dropping ECT-marked UDP.
  for (const auto i : take(params_.ect_udp_firewalled_servers)) {
    PoolServer& s = servers_[i];
    s.firewalled_ect_udp = true;
    net().add_egress_policy(s.attachment.router, s.attachment.router_if,
                            std::make_shared<netsim::EctUdpDropPolicy>());
  }

  // (c) The Figure 3b oddity: a server reachable *only* with ECT-marked UDP.
  for (const auto i : take(params_.ect_required_servers)) {
    PoolServer& s = servers_[i];
    s.ect_required = true;
    netsim::MatchDropPolicy::Match match;
    match.protocol = wire::IpProto::Udp;
    match.ect = false;
    net().add_egress_policy(s.attachment.router, s.attachment.router_if,
                            std::make_shared<netsim::MatchDropPolicy>(
                                match, "not-ect-udp-drop"));
  }

  // (d) The "Phoenix Public Library" pair: drop not-ECT UDP from EC2
  // source addresses only.
  for (const auto i : take(params_.ec2_sensitive_servers)) {
    PoolServer& s = servers_[i];
    s.ec2_sensitive = true;
    for (const auto& entry : vantages_) {
      if (entry.name.rfind("EC2", 0) != 0) continue;
      netsim::MatchDropPolicy::Match match;
      match.protocol = wire::IpProto::Udp;
      match.ect = false;
      match.src_prefix = {entry.host->address(), 32};
      net().add_egress_policy(s.attachment.router, s.attachment.router_if,
                              std::make_shared<netsim::MatchDropPolicy>(
                                  match, "ec2-not-ect-drop"));
    }
  }
}

void World::install_faults() {
  const chaos::FaultPlan& faults = params_.faults;
  if (!faults.enabled()) return;
  // Everything below draws from forks of one "chaos" stream, and the
  // policies keep private epoch-seeded RNGs -- the fault-free datapath
  // draws are untouched, so a clean world with the same seed is unchanged.
  util::Rng chaos_rng = rng_.fork("chaos");

  // Link-level faults live on inter-AS links: they carry most paths, so a
  // handful of chaotic links degrades many traces without severing any.
  std::vector<const topology::InterAsLink*> all_links;
  for (const auto& link : internet_->inter_as_links()) all_links.push_back(&link);
  auto pick_links = [&](int count, const char* label) {
    std::vector<const topology::InterAsLink*> picked = all_links;
    auto rng = chaos_rng.fork(label);
    rng.shuffle(picked);
    const auto n = std::min(picked.size(),
                            static_cast<std::size_t>(std::max(0, count)));
    picked.resize(n);
    return picked;
  };
  auto on_both_ends = [&](const topology::InterAsLink* link, auto make_policy) {
    net().add_egress_policy(link->a.node, link->a.if_index, make_policy());
    net().add_egress_policy(link->b.node, link->b.if_index, make_policy());
  };

  for (const auto* link : pick_links(faults.chaos_links, "chaos-links")) {
    if (faults.corrupt_prob > 0.0) {
      on_both_ends(link, [&] {
        return std::make_shared<chaos::CorruptionPolicy>(faults.corrupt_prob);
      });
    }
    if (faults.duplicate_prob > 0.0) {
      on_both_ends(link, [&] {
        return std::make_shared<chaos::DuplicatePolicy>(faults.duplicate_prob);
      });
    }
    if (faults.reorder_prob > 0.0 && faults.reorder_window_ms > 0.0) {
      on_both_ends(link, [&] {
        return std::make_shared<chaos::ReorderPolicy>(faults.reorder_prob,
                                                      faults.reorder_window_ms);
      });
    }
  }

  if (faults.icmp_blackhole_routers > 0 && faults.icmp_blackhole_prob > 0.0) {
    // Border routers that eat ICMP error traffic on every interface --
    // traceroutes through them lose hops, probes lose their unreachables.
    std::set<netsim::NodeId> border;
    for (const auto& link : internet_->inter_as_links()) {
      border.insert(link.a.node);
      border.insert(link.b.node);
    }
    std::vector<netsim::NodeId> routers(border.begin(), border.end());
    auto rng = chaos_rng.fork("icmp-blackhole");
    rng.shuffle(routers);
    const auto n = std::min(
        routers.size(),
        static_cast<std::size_t>(std::max(0, faults.icmp_blackhole_routers)));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t ifx = 0; ifx < net().interface_count(routers[i]); ++ifx) {
        net().add_egress_policy(
            routers[i], static_cast<int>(ifx),
            std::make_shared<chaos::IcmpBlackholePolicy>(faults.icmp_blackhole_prob));
      }
    }
  }

  if (faults.quote_truncate_prob > 0.0) {
    for (const auto* link : pick_links(faults.quote_truncate_links, "quote-truncate")) {
      on_both_ends(link, [&] {
        return std::make_shared<chaos::QuoteTruncatePolicy>(faults.quote_truncate_prob);
      });
    }
  }

  if (faults.route_flap_down_ms > 0.0 && faults.route_flap_period_ms > 0.0) {
    for (const auto* link : pick_links(faults.route_flap_links, "route-flap")) {
      on_both_ends(link, [&] {
        return std::make_shared<chaos::RouteFlapPolicy>(faults.route_flap_down_ms,
                                                        faults.route_flap_period_ms);
      });
    }
  }

  if (faults.flaky_server_fraction > 0.0 &&
      (faults.short_reply_prob > 0.0 || faults.malformed_reply_prob > 0.0)) {
    auto rng = chaos_rng.fork("flaky-servers");
    for (auto& server : servers_) {
      if (rng.bernoulli(faults.flaky_server_fraction)) {
        server.ntp_service->set_flaky(faults.short_reply_prob,
                                      faults.malformed_reply_prob);
      }
    }
  }
}

std::vector<wire::Ipv4Address> World::server_addresses() const {
  std::vector<wire::Ipv4Address> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) out.push_back(server.address);
  return out;
}

measure::Vantage& World::vantage(const std::string& name) {
  for (auto& entry : vantages_) {
    if (entry.name == name) return *entry.vantage;
  }
  throw std::out_of_range("World::vantage: unknown vantage " + name);
}

std::map<std::string, measure::Vantage*> World::vantage_map() {
  std::map<std::string, measure::Vantage*> out;
  for (auto& entry : vantages_) out[entry.name] = entry.vantage.get();
  return out;
}

wire::Ipv4Address World::vantage_address(const std::string& name) {
  for (auto& entry : vantages_) {
    if (entry.name == name) return entry.host->address();
  }
  throw std::out_of_range("World::vantage_address: unknown vantage " + name);
}

void World::before_trace(const std::string& /*vantage*/, int batch, int index) {
  // Pool churn between the April/May and July/August collections. Derived
  // from a fixed stream and *recomputed* (not accumulated) so the departed
  // set for batch 2 is identical no matter which trace applies it first --
  // a campaign shard may well run a batch-2 trace before any batch-1 one.
  util::Rng churn_rng = rng_.fork("batch2-churn");
  for (auto& server : servers_) {
    server.departed = batch >= 2 && churn_rng.bernoulli(params_.batch2_departed_fraction);
  }
  util::Rng trace_rng = rng_.fork(util::strf("trace%d", index));
  for (auto& server : servers_) {
    server.online = !server.departed && !trace_rng.bernoulli(params_.offline_prob);
    server.ntp_service->set_online(server.online);
    if (server.web) server.web->set_enabled(server.online);
  }
  // Chaos: blackholed servers are dead for the whole campaign. Membership
  // re-derives from a fixed fork (identical on every call and every shard);
  // a plan without the fault makes zero draws here.
  if (params_.faults.blackhole_server_fraction > 0.0) {
    util::Rng blackhole_rng = rng_.fork("chaos-blackhole");
    for (auto& server : servers_) {
      if (blackhole_rng.bernoulli(params_.faults.blackhole_server_fraction)) {
        server.online = false;
        server.ntp_service->set_online(false);
        if (server.web) server.web->set_enabled(false);
      }
    }
  }
}

void World::begin_trace_epoch(const std::string& vantage, int batch, int index) {
  // Telemetry epoch before the baseline: begin_trace decides head-based
  // sampling and (in sketched mode) releases the previous trace's ledger
  // rows, so the marks below start from the trimmed state.
  obs_.telemetry.begin_trace(index);
  obs_.timeseries.begin_trace(index);
  obs_.ledger.begin_trace(index);
  // Observability epoch next: everything from here on -- including the
  // trace-start counter just below -- lands in this trace's delta.
  mark_obs_baseline();
  obs_.recorder.set_trace(index, sim_.now());
  obs_.recorder.set_trace_sampled(obs_.telemetry.trace_sampled_exact());
  clock_epoch_origin_ns_ = sim_.now().count_nanos();
  obs_.registry.counter("campaign_traces_total", {{"vantage", vantage}},
                        "campaign traces started, per vantage")->inc();
  if (params_.faults.poisons(index)) {
    // Deterministic poison: the same trace dies on every executor and every
    // resume, which is what the quarantine determinism tests rely on. Thrown
    // after the trace-start counter so the aborted attempt is visible in
    // this trace's delta.
    throw std::runtime_error(util::strf("chaos: trace %d poisoned by fault plan '%s'",
                                        index, params_.faults.name.c_str()));
  }
  const std::uint64_t epoch_seed = util::derive_seed(
      util::derive_seed(params_.seed, "trace-epoch"), static_cast<std::uint64_t>(index));
  net().begin_epoch(epoch_seed);
  for (auto& server : servers_) server.tcp_stack->reset_transients();
  for (auto& entry : vantages_) entry.vantage->tcp().reset_transients();
  before_trace(vantage, batch, index);
}

void World::mark_obs_baseline() {
  obs_baseline_ = obs_.registry.snapshot();
  obs_drop_mark_ = obs_.ledger.drops().size();
  obs_rewrite_mark_ = obs_.ledger.rewrites().size();
  obs_flight_mark_ = obs_.recorder.cursor();
}

std::vector<obs::FlightEvent> World::collect_flight_slice() const {
  return obs_.recorder.collect_since(obs_flight_mark_);
}

obs::ObsSnapshot World::collect_obs_delta() const {
  obs::ObsSnapshot delta;
  delta.metrics = obs_.registry.snapshot().delta_since(obs_baseline_);
  delta.ledger = obs_.ledger.aggregate(obs_drop_mark_, obs_rewrite_mark_);
  delta.telemetry = obs_.telemetry.collect_delta();
  delta.timeseries = obs_.timeseries.collect_delta();
  return delta;
}

void World::fold_campaign_delta(const obs::ObsSnapshot& delta) {
  campaign_obs_.metrics.merge(delta.metrics);
  campaign_obs_.ledger.merge(delta.ledger);
  campaign_obs_.timeseries.merge(delta.timeseries);
  campaign_telemetry_.fold(delta.telemetry);
}

std::vector<measure::Trace> World::run_campaign(
    const measure::CampaignPlan& plan, const measure::ProbeOptions& options,
    measure::Campaign::AfterTraceHook after_trace, measure::CampaignJournal* journal,
    int halt_after, std::vector<measure::TraceFailure>* failures,
    measure::Campaign::HaltCheck halt_check) {
  measure::ProbeOptions probe = options;
  if (!probe.sched.is_paper_default()) {
    // Scenario-layer defaults for a supervised campaign: jitter streams key
    // off the world seed, breaker groups off this world's ip2as map. Both
    // are pure functions of WorldParams, so the sharded executor (which
    // applies the same defaults against its worker clones) stays
    // byte-identical.
    if (probe.sched.seed == 0) probe.sched.seed = params_.seed;
    if (probe.sched.breaker.enabled && !probe.breaker_group) {
      probe.breaker_group = breaker_group_resolver();
    }
  }
  measure::Campaign campaign(vantage_map(), server_addresses(), probe);
  if (after_trace) campaign.set_after_trace(std::move(after_trace));
  campaign_obs_ = {};
  campaign_flights_.clear();
  campaign_telemetry_ = obs_.telemetry.armed()
                            ? obs::TelemetryAggregate(obs_.telemetry.config())
                            : obs::TelemetryAggregate{};
  // Merge accounting: every trace's obs delta must enter campaign_obs_
  // exactly once -- as a live commit, a journal replay, or a quarantine.
  // The counters make a double merge (e.g. a replayed trace also firing
  // the commit hook) a hard error instead of silently doubled metrics.
  std::size_t live_merges = 0;
  std::size_t replayed_merges = 0;
  std::size_t quarantined_merges = 0;
  campaign.set_before_trace([this](const std::string& vantage, int batch, int index) {
    begin_trace_epoch(vantage, batch, index);
  });
  // The commit hook fires at the quiescence barrier after each trace (the
  // final one included): stragglers (TIME_WAIT timers, late responses) have
  // fired and are attributed to the trace that caused them -- exactly what
  // the parallel shards see when they collect after sim().run() goes idle.
  // Journalling here makes the checkpoint write-ahead: the trace is durable
  // before the next one starts.
  campaign.set_commit([this, journal, &live_merges](const measure::Trace& trace) {
    const auto delta = collect_obs_delta();
    if (journal != nullptr) journal->append(trace, delta);
    fold_campaign_delta(delta);
    auto slice = collect_flight_slice();
    campaign_flights_.insert(campaign_flights_.end(),
                             std::make_move_iterator(slice.begin()),
                             std::make_move_iterator(slice.end()));
    ++live_merges;
  });
  if (journal != nullptr) {
    campaign.set_replay(
        [this, journal, &replayed_merges](int index) -> std::optional<measure::Trace> {
          const auto it = journal->entries().find(index);
          if (it == journal->entries().end()) return std::nullopt;
          // Replays happen in plan order, interleaved with live commits at
          // the same position, so the merged campaign snapshot is
          // byte-identical to an uninterrupted run's.
          fold_campaign_delta(it->second.delta);
          ++replayed_merges;
          return it->second.trace;
        });
  }
  campaign.set_quarantine([this, &quarantined_merges](const std::string& vantage,
                                                      int /*batch*/, int /*index*/,
                                                      const std::string& /*reason*/) {
    // The failed trace's partial delta -- including the quarantine
    // attribution recorded just now -- still lands in the campaign
    // snapshot: a thrown-away trace is reported, never silently absorbed.
    quarantine_trace(vantage);
    fold_campaign_delta(collect_obs_delta());
    auto slice = collect_flight_slice();
    campaign_flights_.insert(campaign_flights_.end(),
                             std::make_move_iterator(slice.begin()),
                             std::make_move_iterator(slice.end()));
    ++quarantined_merges;
  });
  const int crash_after = halt_after > 0 ? halt_after : params_.faults.crash_after_traces;
  if (crash_after > 0) campaign.set_halt_after(crash_after);
  if (halt_check) campaign.set_halt_check(std::move(halt_check));
  std::vector<measure::Trace> results;
  bool done = false;
  campaign.run(plan, [&](std::vector<measure::Trace> traces) {
    results = std::move(traces);
    done = true;
  });
  sim_.run();
  if (!done) throw std::runtime_error("World::run_campaign: simulation stalled");
  if (live_merges + replayed_merges != results.size() ||
      quarantined_merges != campaign.failures().size()) {
    throw std::logic_error(util::strf(
        "World::run_campaign: obs merge accounting broken: %zu live + %zu replayed "
        "merges for %zu results, %zu quarantine merges for %zu failures",
        live_merges, replayed_merges, results.size(), quarantined_merges,
        campaign.failures().size()));
  }
  if (failures != nullptr) {
    failures->insert(failures->end(), campaign.failures().begin(),
                     campaign.failures().end());
  }
  return results;
}

void World::quarantine_trace(const std::string& vantage) {
  obs_.ledger.record_drop(obs::Layer::Measure, obs::DropCause::TraceQuarantined, vantage);
}

std::vector<measure::TracerouteObservation> World::run_traceroutes(
    int repetitions, traceroute::TracerouteOptions options) {
  // Hermetic like a campaign trace: re-derive the datapath streams from a
  // fixed label so the traceroute figures do not depend on whether (or how)
  // a campaign ran on this world first -- the sequential and --workers=N
  // study pipelines print identical Figure 4 sections.
  net().begin_epoch(util::derive_seed(params_.seed, "traceroute-epoch"));
  std::vector<measure::TracerouteObservation> all;
  for (const auto& name : vantage_names_) {
    measure::TracerouteRunner runner(vantage(name), server_addresses(), options,
                                     repetitions);
    bool done = false;
    runner.run([&](std::vector<measure::TracerouteObservation> observations) {
      for (auto& obs : observations) all.push_back(std::move(obs));
      done = true;
    });
    sim_.run();
    if (!done) throw std::runtime_error("World::run_traceroutes: simulation stalled");
  }
  return all;
}

std::vector<wire::Ipv4Address> World::run_discovery(const std::string& vantage_name,
                                                    int rounds) {
  dns::DiscoveryCrawler::Params params;
  params.rounds = rounds;
  dns::DiscoveryCrawler crawler(vantage(vantage_name).host(), resolver_address_,
                                pool_zone_names(), params);
  std::set<std::uint32_t> found;
  bool done = false;
  crawler.start([&](const std::set<std::uint32_t>& addrs) {
    found = addrs;
    done = true;
  });
  sim_.run();
  if (!done) throw std::runtime_error("World::run_discovery: simulation stalled");
  std::vector<wire::Ipv4Address> out;
  out.reserve(found.size());
  for (const auto v : found) out.emplace_back(v);
  return out;
}

sched::GroupResolver World::breaker_group_resolver() {
  return [this](wire::Ipv4Address addr) -> std::string {
    const auto asn = internet_->ip2as().lookup(addr);
    return asn ? util::strf("AS%u", static_cast<unsigned>(*asn)) : "AS-unknown";
  };
}

std::vector<wire::Ipv4Address> World::ground_truth_firewalled() const {
  std::vector<wire::Ipv4Address> out;
  for (const auto& server : servers_) {
    if (server.firewalled_ect_udp) out.push_back(server.address);
  }
  return out;
}

measure::ParallelCampaign::ShardFactory world_shard_factory(WorldParams params) {
  return [params](int /*worker_index*/) -> std::unique_ptr<measure::CampaignShard> {
    // Runs on the worker thread: the shard's Simulator binds to it there.
    return std::make_unique<WorldShard>(params);
  };
}

std::vector<measure::Trace> run_parallel_campaign(
    const WorldParams& params, const measure::CampaignPlan& plan,
    const measure::ProbeOptions& options, int workers,
    std::vector<measure::ParallelCampaign::TraceFailure>* failures,
    obs::ObsSnapshot* metrics_out, measure::CampaignJournal* journal, int halt_after,
    std::vector<obs::FlightEvent>* events_out, obs::TelemetryAggregate* telemetry_out) {
  measure::ParallelCampaign::Options exec_options;
  exec_options.workers = workers;
  exec_options.probe = options;
  if (!exec_options.probe.sched.is_paper_default() &&
      exec_options.probe.sched.seed == 0) {
    // Mirror of the sequential executor's seed defaulting; the breaker
    // group resolver is bound per worker shard (each clone owns a private
    // ip2as map) inside ParallelCampaign.
    exec_options.probe.sched.seed = params.seed;
  }
  // Same seed resolution the worker worlds apply in their constructors:
  // the campaign-level aggregate must hash with the identical sketch seed
  // or folding the workers' deltas would scatter across different cells.
  exec_options.telemetry = params.telemetry.resolved(params.seed);
  exec_options.halt_after_traces =
      halt_after > 0 ? halt_after : params.faults.crash_after_traces;
  measure::ParallelCampaign campaign(world_shard_factory(params), exec_options);
  if (journal != nullptr) campaign.set_journal(journal);
  auto traces = campaign.run(plan);
  if (failures != nullptr) {
    failures->insert(failures->end(), campaign.failures().begin(),
                     campaign.failures().end());
  }
  if (metrics_out != nullptr) *metrics_out = campaign.metrics();
  if (telemetry_out != nullptr) *telemetry_out = campaign.telemetry();
  if (events_out != nullptr) {
    events_out->insert(events_out->end(), campaign.flight_events().begin(),
                       campaign.flight_events().end());
  }
  return traces;
}

void World::enable_congestion_at_server(std::size_t i, double mark_prob,
                                        double drop_prob) {
  const PoolServer& server = servers_.at(i);
  // Server -> vantage direction: egress of the host's access interface.
  net().add_egress_policy(server.attachment.host, server.attachment.host_if,
                          std::make_shared<netsim::CongestionPolicy>(mark_prob, drop_prob));
}

}  // namespace ecnprobe::scenario
