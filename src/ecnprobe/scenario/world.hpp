// The calibrated study world: the synthetic Internet, the NTP pool with its
// co-located web servers, the DNS discovery infrastructure, the 13 vantage
// points, and every middlebox behaviour the paper observed or inferred:
//
//   * ~12 servers behind firewalls that drop ECT-marked UDP (Figure 3a's
//     persistent spikes; placed on the servers' access links, i.e. "near the
//     destination" as Section 4.1 infers);
//   * one server reachable only with ECT(0)-marked UDP and two "Phoenix
//     Public Library" servers that drop not-ECT UDP from EC2 source
//     prefixes only (Figure 3b);
//   * ECN bleaching on a small set of links, mostly at AS boundaries
//     (Section 4.2's 59.1%), a tenth of them probabilistic ("sometimes
//     strips");
//   * per-vantage access pathologies: a congested, ToS-sensitive home
//     access for McQuistin, a noisy wireless campus network;
//   * pool churn: servers leave between the April/May and July/August
//     batches, and a few percent are offline for any given trace; a small
//     minority rate-limit NTP responses (transient false unreachability).
//
// All randomness derives from WorldParams::seed: the same seed reproduces
// the same world, campaign, and numbers.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ecnprobe/chaos/fault_plan.hpp"
#include "ecnprobe/dns/pool_dns.hpp"
#include "ecnprobe/geo/geo.hpp"
#include "ecnprobe/http/http_service.hpp"
#include "ecnprobe/measure/campaign.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"
#include "ecnprobe/measure/vantage.hpp"
#include "ecnprobe/ntp/ntp.hpp"
#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/tcp/tcp.hpp"
#include "ecnprobe/topology/internet.hpp"

namespace ecnprobe::scenario {

struct WorldParams {
  std::uint64_t seed = 42;

  // -- pool composition ----------------------------------------------------
  int server_count = 2500;
  /// Fraction of pool hosts running the encouraged web server (calibrated
  /// so ~1334 of 2500 respond to HTTP given availability).
  double web_server_fraction = 0.565;
  /// Fraction of web servers willing to negotiate ECN (paper: 82.0%).
  double web_ecn_fraction = 0.82;
  /// Servers rate-limiting NTP responses (transient unreachability).
  double rate_limited_fraction = 0.03;
  double rate_limited_response_prob = 0.70;
  /// Conntrack-style greylisting firewalls in front of every server: the
  /// per-window probability of demanding a warm-up burst (causing the
  /// Figure 2b "reachable with ECT(0) but not not-ECT" transients) or of
  /// being wedged for the whole probe sequence.
  double greylist_flaky_prob = 0.006;
  double greylist_dead_prob = 0.001;

  // -- observed middlebox pathologies --------------------------------------
  int ect_udp_firewalled_servers = 12;  ///< drop ECT UDP near destination
  int ect_required_servers = 1;         ///< drop not-ECT UDP (Figure 3b oddity)
  int ec2_sensitive_servers = 2;        ///< drop not-ECT UDP from EC2 prefixes
  int bleach_inter_as_links = 12;       ///< ECN bleachers on AS-boundary links
  int bleach_intra_as_links = 60;       ///< ...and inside ASes
  double bleach_sometimes_fraction = 0.30;  ///< of bleachers, probabilistic
  double bleach_sometimes_prob = 0.5;

  // -- availability / churn -------------------------------------------------
  double offline_prob = 0.055;             ///< per server per trace
  double batch2_departed_fraction = 0.05;  ///< leave the pool between batches

  // -- topology -------------------------------------------------------------
  topology::TopologyParams topology;

  // -- fault injection ------------------------------------------------------
  /// Chaos profile compiled into packet policies and host hooks at world
  /// construction. Defaults to the inert "none" plan. Fault placement and
  /// every fault decision derive from (seed, faults), through RNG streams
  /// private to the chaos layer -- installing faults never perturbs the
  /// fault-free datapath draws, and the same (seed, plan) reproduces the
  /// same failures at any worker count.
  chaos::FaultPlan faults;

  // -- flight recorder ------------------------------------------------------
  /// Ring capacity (events) for the per-world flight recorder; 0 leaves it
  /// disarmed (the default -- recording then costs one bool test per
  /// packet). Recording is observation-only: arming it cannot change any
  /// simulation outcome, only what gets written about it.
  std::size_t flight_recorder_capacity = 0;

  // -- telemetry fidelity ----------------------------------------------------
  /// Exact (default) keeps the per-packet ledger/recorder pipeline
  /// byte-identical to always. Sketched folds most traces into
  /// count-min/log-histogram sketches with declared error bounds, keeping
  /// exact records only for every sample_every-th trace -- memory becomes
  /// O(servers), not O(servers x traces). A zero telemetry seed inherits
  /// `seed` at world construction, so estimators stay pure functions of
  /// (config, seed, trace).
  obs::TelemetryConfig telemetry;

  // -- deterministic time series ---------------------------------------------
  /// Sim-time series config. When enabled, per-trace counters and RTT
  /// buckets are snapshotted into fixed-width sim-time windows, epoch-
  /// relative per trace, and folded in plan order -- the series is part of
  /// the campaign obs snapshot and therefore byte-identical sequential vs
  /// any worker count. Disabled by default (one bool test per event).
  obs::TimeSeriesConfig timeseries;

  /// Paper-scale world (2500 servers, 400 stub ASes). The default.
  static WorldParams paper();
  /// Small world for unit/integration tests (fast to build and probe).
  static WorldParams small(std::uint64_t seed = 42);
  /// Linearly scales server and AS counts by `factor` in (0, 1].
  WorldParams scaled(double factor) const;
};

/// One pool member with everything attached to it.
struct PoolServer {
  wire::Ipv4Address address;
  topology::Internet::Attachment attachment;
  netsim::Host* host = nullptr;
  const geo::CountryInfo* country = nullptr;  ///< null for "Unknown" servers
  std::unique_ptr<ntp::NtpServerService> ntp_service;
  std::unique_ptr<tcp::TcpStack> tcp_stack;
  std::unique_ptr<http::HttpServerService> web;

  bool runs_web = false;
  bool web_ecn = false;
  bool rate_limited = false;
  bool firewalled_ect_udp = false;
  bool ect_required = false;
  bool ec2_sensitive = false;
  bool departed = false;  ///< left the pool before batch 2
  bool online = true;     ///< current trace's availability
};

class World {
public:
  explicit World(WorldParams params);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  netsim::Simulator& sim() { return sim_; }
  topology::Internet& internet() { return *internet_; }
  netsim::Network& net() { return internet_->net(); }
  /// This world's private observability: metrics registry + drop ledger.
  /// Wired into the network at construction, so nothing this world does
  /// pollutes (or races with) another world's counters.
  obs::Observability& obs() { return obs_; }
  const geo::GeoDatabase& geodb() const { return geodb_; }
  const WorldParams& params() const { return params_; }
  ntp::SimClock clock() const { return clock_; }

  // -- pool ---------------------------------------------------------------
  std::vector<wire::Ipv4Address> server_addresses() const;
  const std::vector<PoolServer>& servers() const { return servers_; }
  PoolServer& server(std::size_t i) { return servers_[i]; }

  // -- vantage points -------------------------------------------------------
  measure::Vantage& vantage(const std::string& name);
  std::map<std::string, measure::Vantage*> vantage_map();
  const std::vector<std::string>& vantage_names() const { return vantage_names_; }
  /// Address of a vantage host (for reverse-path experiments).
  wire::Ipv4Address vantage_address(const std::string& name);

  // -- DNS ------------------------------------------------------------------
  wire::Ipv4Address resolver_address() const { return resolver_address_; }
  std::shared_ptr<dns::PoolZones> zones() { return zones_; }
  std::vector<std::string> pool_zone_names() const;

  // -- campaign support -----------------------------------------------------
  /// Campaign availability hook. A pure function of (batch, index) given
  /// the world seed: batch-2 pool departures are re-derived from a fixed
  /// churn stream (not accumulated), per-trace offline draws from a
  /// per-index stream. Idempotent and order-independent, so any worker can
  /// reproduce the availability state of any trace on its own world clone.
  void before_trace(const std::string& vantage, int batch, int index);

  /// Full determinism contract for one campaign trace: availability via
  /// before_trace *plus* the per-trace epoch reset -- network datapath and
  /// per-node RNG streams re-derived from (seed, index), middlebox
  /// conntrack/queue state cleared, TCP transients dropped. After this
  /// call, the trace's outcome is a pure function of (WorldParams, batch,
  /// index), independent of whatever ran on this world before. Both the
  /// sequential run_campaign() and the parallel shards call it, which is
  /// why their merged results are byte-identical. Must be called from a
  /// quiescent simulator (no pending events).
  void begin_trace_epoch(const std::string& vantage, int batch, int index);

  /// Convenience: wires up a Campaign with the world's epoch hook, runs the
  /// simulator to completion, returns the traces. `after_trace` (optional)
  /// fires on the simulator thread each time a trace delivers its result --
  /// the CLI uses it for live progress output. With `journal`, traces
  /// already on disk are replayed and each live trace is journalled at its
  /// quiescence barrier. `halt_after` > 0 simulates a crash after that many
  /// live traces (0 falls back to faults.crash_after_traces). Quarantined
  /// traces land in `failures` when given.
  /// `halt_check` (optional) is consulted before each live trace; returning
  /// true abandons the rest of the schedule like halt_after does (the
  /// CLI's signal-drain path and the daemon's cancel ride this).
  std::vector<measure::Trace> run_campaign(
      const measure::CampaignPlan& plan, const measure::ProbeOptions& options = {},
      measure::Campaign::AfterTraceHook after_trace = nullptr,
      measure::CampaignJournal* journal = nullptr, int halt_after = 0,
      std::vector<measure::TraceFailure>* failures = nullptr,
      measure::Campaign::HaltCheck halt_check = nullptr);

  /// Drop-ledger attribution for a trace this world had to throw away:
  /// records Measure/TraceQuarantined against the vantage. Used by both
  /// executors so sequential and sharded reports agree byte for byte.
  void quarantine_trace(const std::string& vantage);

  // -- observability ---------------------------------------------------------
  /// Marks the current registry/ledger position as the delta baseline.
  /// begin_trace_epoch calls this automatically; collect_obs_delta reads
  /// everything recorded since the last mark.
  void mark_obs_baseline();
  /// Everything the registry and ledger accumulated since the last
  /// mark_obs_baseline() -- one trace's worth when bracketed by epochs.
  obs::ObsSnapshot collect_obs_delta() const;
  /// Campaign-scoped observability accumulated by the last run_campaign():
  /// per-trace deltas summed in plan order, excluding world construction.
  /// Byte-identical to ParallelCampaign::metrics() for the same plan.
  const obs::ObsSnapshot& campaign_obs() const { return campaign_obs_; }

  /// Flight-recorder events since the last mark_obs_baseline() -- one
  /// trace's worth when bracketed by epochs. Empty unless
  /// params.flight_recorder_capacity armed the recorder.
  std::vector<obs::FlightEvent> collect_flight_slice() const;
  /// Flight-recorder events accumulated by the last run_campaign(),
  /// per-trace slices concatenated in plan order. Byte-identical to
  /// ParallelCampaign::flight_events() for the same plan at any worker
  /// count. Replayed (journalled) traces contribute no events.
  const std::vector<obs::FlightEvent>& campaign_flights() const {
    return campaign_flights_;
  }

  /// The sketched-telemetry campaign aggregate built by the last
  /// run_campaign(); inactive in exact mode. Byte-identical to
  /// ParallelCampaign::telemetry() for the same plan at any worker count.
  const obs::TelemetryAggregate& campaign_telemetry() const {
    return campaign_telemetry_;
  }

  /// Merges one trace's obs delta into the campaign accumulators: metrics
  /// and ledger into campaign_obs(), the telemetry delta folded into the
  /// sketch aggregate (NOT accumulated sparsely -- that would rebuild the
  /// O(keys) map the sketches exist to avoid). Both executors and the
  /// journal-replay path use this, in plan order.
  void fold_campaign_delta(const obs::ObsSnapshot& delta);

  /// Runs `repetitions` ECN traceroutes from each vantage to every server.
  /// Begins its own epoch ("traceroute-epoch"), so the observations are a
  /// pure function of the world seed, independent of any campaign that ran
  /// on this world before.
  std::vector<measure::TracerouteObservation> run_traceroutes(
      int repetitions = 2, traceroute::TracerouteOptions options = {});

  /// Runs the DNS discovery crawl from the given vantage; returns the
  /// discovered addresses.
  std::vector<wire::Ipv4Address> run_discovery(const std::string& vantage,
                                               int rounds = 160);

  // -- ground truth (for tests and EXPERIMENTS.md validation) ----------------
  std::vector<wire::Ipv4Address> ground_truth_firewalled() const;
  const topology::IpToAsMap& ip2as() const { return internet_->ip2as(); }

  /// Circuit-breaker group resolver over THIS world's ip2as map: "AS<n>",
  /// or "AS-unknown" for unmapped addresses. The returned closure captures
  /// `this`; it must not outlive the world (the campaign executors bind it
  /// per run, the parallel shards per worker clone).
  sched::GroupResolver breaker_group_resolver();

  /// Enables an RFC 3168 AQM (CE-marking) on the access link of server `i`
  /// in the server->vantage direction -- used by the ECN-usability
  /// extension experiment.
  void enable_congestion_at_server(std::size_t i, double mark_prob, double drop_prob);

private:
  void build_pool();
  void build_vantages();
  void build_dns();
  void place_middleboxes();
  void install_faults();
  void apply_availability(int batch);

  WorldParams params_;
  util::Rng rng_;
  obs::Observability obs_;
  netsim::Simulator sim_;
  std::unique_ptr<topology::Internet> internet_;
  geo::GeoDatabase geodb_;
  /// Sim-time origin of the current trace epoch; SimClock points at this so
  /// NTP wall timestamps in wire bytes restart per trace (hermeticity).
  std::int64_t clock_epoch_origin_ns_ = 0;
  ntp::SimClock clock_;

  std::vector<PoolServer> servers_;
  std::map<topology::Asn, const geo::CountryInfo*> as_country_;

  struct VantageEntry {
    std::string name;
    netsim::Host* host = nullptr;
    std::unique_ptr<measure::Vantage> vantage;
  };
  std::vector<VantageEntry> vantages_;
  std::vector<std::string> vantage_names_;

  std::shared_ptr<dns::PoolZones> zones_;
  netsim::Host* resolver_host_ = nullptr;
  std::unique_ptr<dns::DnsServerService> resolver_service_;
  wire::Ipv4Address resolver_address_;

  obs::MetricsSnapshot obs_baseline_;
  std::size_t obs_drop_mark_ = 0;
  std::size_t obs_rewrite_mark_ = 0;
  std::size_t obs_flight_mark_ = 0;
  obs::ObsSnapshot campaign_obs_;
  std::vector<obs::FlightEvent> campaign_flights_;
  obs::TelemetryAggregate campaign_telemetry_;
};

/// measure::CampaignShard over a worker-private World built from `params`.
/// Constructed by the shard factory on the worker thread, so the world's
/// Simulator is owned by that thread.
class WorldShard final : public measure::CampaignShard {
public:
  explicit WorldShard(const WorldParams& params) : world_(params) {}

  netsim::Simulator& sim() override { return world_.sim(); }
  std::map<std::string, measure::Vantage*> vantages() override {
    return world_.vantage_map();
  }
  std::vector<wire::Ipv4Address> servers() override { return world_.server_addresses(); }
  void begin_trace(const std::string& vantage, int batch, int index) override {
    world_.begin_trace_epoch(vantage, batch, index);
  }
  obs::ObsSnapshot collect_trace_metrics() override {
    return world_.collect_obs_delta();
  }
  std::vector<obs::FlightEvent> collect_trace_events() override {
    return world_.collect_flight_slice();
  }
  void quarantine_trace(const std::string& vantage, int batch, int index) override {
    (void)batch;
    (void)index;
    world_.quarantine_trace(vantage);
  }
  sched::GroupResolver breaker_group() override {
    return world_.breaker_group_resolver();
  }

  World& world() { return world_; }

private:
  World world_;
};

/// Shard factory for ParallelCampaign: every worker gets its own World
/// rebuilt from the same params (world construction is a pure function of
/// the seed, so the clones are identical).
measure::ParallelCampaign::ShardFactory world_shard_factory(WorldParams params);

/// Convenience mirror of World::run_campaign for the sharded executor:
/// builds one isolated world per worker, runs the plan across `workers`
/// threads, returns traces merged in plan order -- byte-identical to the
/// sequential path. Per-trace failures (if any) are appended to
/// `failures` when given; the campaign observability snapshot (metrics +
/// drop ledger, merged in plan order) is written to `metrics_out` when
/// given.
/// `journal`/`halt_after` mirror World::run_campaign: journaled traces are
/// replayed instead of re-run, live traces are checkpointed write-ahead,
/// and `halt_after` > 0 simulates a crash after that many live traces
/// (0 falls back to params.faults.crash_after_traces).
/// With `events_out`, flight-recorder events (per-trace slices merged in
/// plan order) are appended -- byte-identical to a sequential
/// World::run_campaign with the same params.
std::vector<measure::Trace> run_parallel_campaign(
    const WorldParams& params, const measure::CampaignPlan& plan,
    const measure::ProbeOptions& options = {}, int workers = 1,
    std::vector<measure::ParallelCampaign::TraceFailure>* failures = nullptr,
    obs::ObsSnapshot* metrics_out = nullptr,
    measure::CampaignJournal* journal = nullptr, int halt_after = 0,
    std::vector<obs::FlightEvent>* events_out = nullptr,
    obs::TelemetryAggregate* telemetry_out = nullptr);

}  // namespace ecnprobe::scenario
