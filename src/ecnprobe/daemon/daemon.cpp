#include "ecnprobe/daemon/daemon.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ecnprobe/chaos/fault_plan.hpp"
#include "ecnprobe/daemon/json.hpp"
#include "ecnprobe/measure/journal.hpp"
#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/obs/event_stream.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"
#include "ecnprobe/sched/policy.hpp"

namespace ecnprobe::daemon {

namespace {

constexpr const char* kQueued = "queued";
constexpr const char* kRunning = "running";
constexpr const char* kDone = "done";
constexpr const char* kCancelled = "cancelled";
constexpr const char* kFailed = "failed";

http::ObsHttpServer::Response json_response(int status, const char* reason,
                                            std::string body) {
  http::ObsHttpServer::Response response;
  response.status = status;
  response.reason = reason;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

http::ObsHttpServer::Response error_response(int status, const char* reason,
                                             const std::string& message) {
  return json_response(status, reason,
                       "{\"error\":" + json_quote(message) + "}\n");
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

/// Write-then-rename: the file either exists complete or not at all, so a
/// crash mid-admission cannot leave a half-written spec that a restart
/// would refuse (or worse, misparse).
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) return false;
    os << content;
    os.flush();
    if (!os.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void emit_event(const char* kind, const std::string& text) {
  auto& stream = obs::EventStream::process();
  if (stream.enabled()) stream.emit(kind, text);
}

}  // namespace

struct CampaignDaemon::Campaign {
  std::string id;
  std::uint64_t seq = 0;
  CampaignSpec spec;
  std::string state = kQueued;
  std::string detail;
  int total_traces = 0;
  /// True once cancel (watchdog or API) was requested; distinguishes a
  /// halt that means "cancelled" from a halt that means "draining".
  bool cancel_requested = false;
  /// Set while a runner executes this campaign; the watchdog and the
  /// cancel/drain paths call request_halt() through it.
  std::shared_ptr<measure::ParallelCampaign> exec;
  std::chrono::steady_clock::time_point started_at{};
};

CampaignDaemon::CampaignDaemon(Options options) : options_(std::move(options)) {
  if (options_.queue_depth < 1) options_.queue_depth = 1;
  if (options_.concurrency < 1) options_.concurrency = 1;
  if (options_.tenant_max_active < 1) options_.tenant_max_active = 1;
  if (options_.max_workers < 1) options_.max_workers = 1;
}

CampaignDaemon::~CampaignDaemon() { drain(); }

std::string CampaignDaemon::spec_path(const std::string& id) const {
  return options_.state_dir + "/" + id + ".spec.json";
}

std::string CampaignDaemon::marker_path(const std::string& id,
                                        const char* kind) const {
  return options_.state_dir + "/" + id + "." + kind;
}

bool CampaignDaemon::rescan_state_dir(std::string* error) {
  DIR* dir = ::opendir(options_.state_dir.c_str());
  if (dir == nullptr) {
    *error = "cannot open state dir " + options_.state_dir + ": " +
             std::strerror(errno);
    return false;
  }
  std::vector<std::string> ids;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const std::string suffix = ".spec.json";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    ids.push_back(name.substr(0, name.size() - suffix.size()));
  }
  ::closedir(dir);
  std::vector<std::shared_ptr<Campaign>> recovered;
  for (const auto& id : ids) {
    std::string text;
    if (!read_file(spec_path(id), &text)) continue;
    auto campaign = std::make_shared<Campaign>();
    campaign->id = id;
    if (id.size() > 1 && id[0] == 'c') {
      campaign->seq = std::strtoull(id.c_str() + 1, nullptr, 10);
    }
    const auto spec = CampaignSpec::from_json(text);
    if (!spec) {
      // A spec this daemon wrote cannot be invalid unless the file was
      // damaged; quarantine it rather than crash-loop on every restart.
      campaign->state = kFailed;
      campaign->detail = "persisted spec unreadable: " + spec.error().message;
      write_file_atomic(marker_path(id, kFailed), campaign->detail + "\n");
      campaigns_.emplace(id, std::move(campaign));
      continue;
    }
    campaign->spec = *spec;
    campaign->total_traces =
        measure::CampaignPlan::for_scale(spec->scale, spec->traces).total_traces();
    std::string marker;
    if (read_file(marker_path(id, kDone), &marker)) {
      campaign->state = kDone;
    } else if (read_file(marker_path(id, kCancelled), &marker)) {
      campaign->state = kCancelled;
      campaign->detail = marker;
      while (!campaign->detail.empty() && campaign->detail.back() == '\n') {
        campaign->detail.pop_back();
      }
    } else if (read_file(marker_path(id, kFailed), &marker)) {
      campaign->state = kFailed;
      campaign->detail = marker;
      while (!campaign->detail.empty() && campaign->detail.back() == '\n') {
        campaign->detail.pop_back();
      }
    } else {
      campaign->state = kQueued;
    }
    next_seq_ = std::max(next_seq_, campaign->seq + 1);
    recovered.push_back(campaign);
    campaigns_.emplace(id, std::move(campaign));
  }
  // Unfinished campaigns resume in admission order; their journals replay
  // whatever completed before the crash, so the final artifacts are
  // byte-identical to a never-interrupted run.
  std::sort(recovered.begin(), recovered.end(),
            [](const auto& a, const auto& b) { return a->seq < b->seq; });
  for (auto& campaign : recovered) {
    if (campaign->state == kQueued) queue_.push_back(campaign);
  }
  return true;
}

bool CampaignDaemon::start(std::string* error) {
  if (started_) return true;
  if (options_.state_dir.empty()) {
    if (error != nullptr) *error = "state_dir is required";
    return false;
  }
  if (::mkdir(options_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (error != nullptr) {
      *error = "cannot create state dir " + options_.state_dir + ": " +
               std::strerror(errno);
    }
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = false;
    std::string scan_error;
    if (!rescan_state_dir(&scan_error)) {
      if (error != nullptr) *error = scan_error;
      return false;
    }
  }
  http::ObsHttpServer::Options server_options;
  server_options.bind_address = options_.bind_address;
  server_options.port = options_.port;
  server_options.read_deadline = options_.read_deadline;
  server_options.max_body_bytes = options_.max_body_bytes;
  http::ObsHttpServer::Providers providers;
  providers.metrics = [this] { return daemon_metrics_text(); };
  providers.progress = [this] { return daemon_progress_json(); };
  server_ = std::make_unique<http::ObsHttpServer>(server_options,
                                                  std::move(providers));
  server_->set_handler(
      [this](const wire::HttpRequest& request) { return handle(request); });
  if (!server_->start(error)) {
    server_.reset();
    return false;
  }
  for (int i = 0; i < options_.concurrency; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  started_ = true;
  return true;
}

void CampaignDaemon::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && runners_.empty()) return;
    draining_ = true;
    // Running campaigns stop at their next trace boundary; every trace
    // that finished is already in its journal (write-ahead), so nothing
    // admitted is lost -- it is checkpointed or done.
    for (const auto& [id, campaign] : campaigns_) {
      if (campaign->exec) campaign->exec->request_halt();
    }
    cv_.notify_all();
  }
  for (auto& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
  runners_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  if (server_) server_->stop();
  started_ = false;
}

void CampaignDaemon::runner_loop() {
  for (;;) {
    std::shared_ptr<Campaign> campaign;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (draining_) return;  // queued specs stay on disk for the next start
      campaign = queue_.front();
      queue_.pop_front();
      campaign->state = kRunning;
      campaign->started_at = std::chrono::steady_clock::now();
    }
    run_campaign(campaign);
  }
}

void CampaignDaemon::watchdog_loop() {
  if (options_.watchdog.count() <= 0) return;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, std::chrono::milliseconds(100),
                       [this] { return draining_; })) {
        return;
      }
      const auto now = std::chrono::steady_clock::now();
      for (const auto& [id, campaign] : campaigns_) {
        if (!campaign->exec || campaign->cancel_requested) continue;
        if (now - campaign->started_at < options_.watchdog) continue;
        // Runaway tenant: cancel cooperatively. The halt lands at the
        // next trace-claim boundary, so the journal stays consistent.
        campaign->cancel_requested = true;
        campaign->detail = "campaign-cancelled: watchdog deadline (" +
                           std::to_string(options_.watchdog.count()) +
                           " ms) exceeded";
        campaign->exec->request_halt();
        emit_event("campaign-cancelled",
                   "id=" + id + " tenant=" + campaign->spec.tenant +
                       " reason=watchdog-deadline");
      }
    }
  }
}

void CampaignDaemon::run_campaign(const std::shared_ptr<Campaign>& campaign) {
  const CampaignSpec& spec = campaign->spec;
  // Same world/plan construction as `ecnprobe campaign` with the flags
  // this spec mirrors -- the byte-identity of daemon and CLI artifacts
  // rests on going through the identical factories.
  auto params = scenario::WorldParams::paper().scaled(spec.scale);
  params.seed = spec.seed;
  const auto plan = measure::CampaignPlan::for_scale(spec.scale, spec.traces);

  auto fail = [&](const std::string& why) {
    std::lock_guard<std::mutex> lock(mutex_);
    campaign->state = kFailed;
    campaign->detail = why;
    campaign->exec.reset();
    write_file_atomic(marker_path(campaign->id, kFailed), why + "\n");
    failed_.fetch_add(1, std::memory_order_relaxed);
    emit_event("campaign-failed", "id=" + campaign->id + " error=" + why);
  };

  // Sub-specs were validated at admission; a parse failure here means the
  // persisted spec was damaged after admission.
  const auto faults = chaos::FaultPlan::parse(spec.faults);
  const auto telemetry = obs::TelemetryConfig::parse(spec.telemetry);
  const auto timeseries = obs::TimeSeriesConfig::parse(spec.timeseries);
  const auto sched_config = sched::SupervisorConfig::parse(spec.sched);
  if (!faults || !telemetry || !timeseries || !sched_config) {
    fail("persisted spec no longer parses");
    return;
  }
  params.faults = *faults;
  params.telemetry = *telemetry;
  params.timeseries = *timeseries;

  measure::CampaignJournal journal;
  measure::JournalMeta meta;
  meta.plan = measure::plan_fingerprint(plan);
  meta.faults = params.faults.fingerprint();
  meta.seed = params.seed;
  meta.total_traces = plan.total_traces();
  meta.server_count = params.server_count;
  std::string journal_error;
  const std::string journal_path =
      options_.state_dir + "/" + campaign->id + ".journal";
  if (!journal.open(journal_path, meta, &journal_error)) {
    fail("journal: " + journal_error);
    return;
  }

  measure::ParallelCampaign::Options exec_options;
  exec_options.workers = std::min(spec.workers, options_.max_workers);
  exec_options.probe.sched = *sched_config;
  if (!exec_options.probe.sched.is_paper_default() &&
      exec_options.probe.sched.seed == 0) {
    exec_options.probe.sched.seed = params.seed;
  }
  exec_options.telemetry = params.telemetry.resolved(params.seed);
  auto exec = std::make_shared<measure::ParallelCampaign>(
      scenario::world_shard_factory(params), exec_options);
  exec->set_journal(&journal);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    campaign->exec = exec;
    // A drain or cancel that raced campaign startup must still land.
    if (draining_ || campaign->cancel_requested) exec->request_halt();
  }
  emit_event("campaign-started",
             "id=" + campaign->id + " tenant=" + spec.tenant +
                 " traces=" + std::to_string(plan.total_traces()));

  std::vector<measure::Trace> traces;
  std::string run_error;
  try {
    traces = exec->run(plan);
  } catch (const std::exception& e) {
    run_error = e.what();
  }

  if (!run_error.empty()) {
    fail(run_error);
    return;
  }

  bool was_cancelled = false;
  bool was_drained = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    was_cancelled = campaign->cancel_requested;
    was_drained = !was_cancelled && exec->halt_requested();
  }
  if (was_cancelled) {
    std::lock_guard<std::mutex> lock(mutex_);
    campaign->state = kCancelled;
    if (campaign->detail.empty()) campaign->detail = "campaign-cancelled";
    campaign->exec.reset();
    write_file_atomic(marker_path(campaign->id, kCancelled),
                      campaign->detail + "\n");
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (was_drained) {
    // Shutdown drain: everything that ran is journaled; the campaign goes
    // back to queued on disk and the next start() resumes it.
    std::lock_guard<std::mutex> lock(mutex_);
    campaign->state = kQueued;
    campaign->exec.reset();
    emit_event("campaign-drained",
               "id=" + campaign->id +
                   " checkpointed=" + std::to_string(journal.entries().size()));
    return;
  }

  // Completion artifacts, bit-for-bit what the batch CLI writes for the
  // same spec: traces CSV, metrics JSON (runtime=null -- the runtime
  // section is wall-clock noise and would break the equality contract)
  // plus its Prometheus sibling. The .done marker lands last, so a crash
  // between artifact writes re-runs the campaign from its journal and
  // deterministically rewrites the same bytes.
  const std::string base = options_.state_dir + "/" + campaign->id;
  {
    std::ofstream csv(base + ".csv", std::ios::binary | std::ios::trunc);
    if (!csv.is_open()) {
      fail("cannot write " + base + ".csv");
      return;
    }
    measure::write_traces_csv(csv, traces);
    csv.flush();
    if (!csv.good()) {
      fail("cannot write " + base + ".csv");
      return;
    }
  }
  const auto& telemetry_agg = exec->telemetry();
  if (!obs::write_metrics_files(base + ".metrics.json", exec->metrics(), nullptr,
                                telemetry_agg.active() ? &telemetry_agg
                                                       : nullptr)) {
    fail("cannot write " + base + ".metrics.json");
    return;
  }
  if (!write_file_atomic(marker_path(campaign->id, kDone), "done\n")) {
    fail("cannot write completion marker");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    campaign->state = kDone;
    campaign->exec.reset();
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  emit_event("campaign-done",
             "id=" + campaign->id + " traces=" + std::to_string(traces.size()));
}

http::ObsHttpServer::Response CampaignDaemon::admit(const std::string& body) {
  const auto spec = CampaignSpec::from_json(body);
  if (!spec) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return error_response(400, "Bad Request", spec.error().message);
  }
  const auto plan = measure::CampaignPlan::for_scale(spec->scale, spec->traces);
  if (options_.max_traces > 0 && plan.total_traces() > options_.max_traces) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return error_response(
        400, "Bad Request",
        "plan has " + std::to_string(plan.total_traces()) +
            " traces, over this daemon's per-campaign budget of " +
            std::to_string(options_.max_traces));
  }
  std::shared_ptr<Campaign> campaign;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      return error_response(503, "Service Unavailable",
                            "daemon is draining; not admitting campaigns");
    }
    if (static_cast<int>(queue_.size()) >= options_.queue_depth) {
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      auto response = error_response(
          429, "Too Many Requests",
          "admission queue full (" + std::to_string(options_.queue_depth) +
              " campaigns waiting); retry later");
      response.headers.push_back(
          {"Retry-After", std::to_string(options_.retry_after_seconds)});
      return response;
    }
    int tenant_active = 0;
    for (const auto& [id, existing] : campaigns_) {
      if (existing->spec.tenant == spec->tenant &&
          (existing->state == kQueued || existing->state == kRunning)) {
        ++tenant_active;
      }
    }
    if (tenant_active >= options_.tenant_max_active) {
      shed_tenant_budget_.fetch_add(1, std::memory_order_relaxed);
      auto response = error_response(
          429, "Too Many Requests",
          "tenant \"" + spec->tenant + "\" already has " +
              std::to_string(tenant_active) +
              " active campaigns (budget: " +
              std::to_string(options_.tenant_max_active) + "); retry later");
      response.headers.push_back(
          {"Retry-After", std::to_string(options_.retry_after_seconds)});
      return response;
    }
    campaign = std::make_shared<Campaign>();
    campaign->seq = next_seq_++;
    campaign->id = "c" + std::to_string(campaign->seq);
    campaign->spec = *spec;
    campaign->total_traces = plan.total_traces();
    // Persist before acknowledging: once the 201 is on the wire, the
    // campaign survives any crash of this process.
    if (!write_file_atomic(spec_path(campaign->id), spec->to_json() + "\n")) {
      --next_seq_;
      return error_response(500, "Internal Server Error",
                            "cannot persist campaign spec");
    }
    campaigns_.emplace(campaign->id, campaign);
    queue_.push_back(campaign);
    cv_.notify_one();
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  emit_event("admission", "id=" + campaign->id + " tenant=" + spec->tenant +
                              " traces=" +
                              std::to_string(campaign->total_traces));
  return json_response(
      201, "Created",
      "{\"id\":" + json_quote(campaign->id) + ",\"state\":\"queued\"" +
          ",\"total_traces\":" + std::to_string(campaign->total_traces) +
          "}\n");
}

http::ObsHttpServer::Response CampaignDaemon::campaign_status(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    return error_response(404, "Not Found", "no campaign " + id);
  }
  const auto& campaign = it->second;
  const int completed = campaign->exec ? campaign->exec->traces_completed()
                        : campaign->state == kDone ? campaign->total_traces
                                                   : 0;
  return json_response(
      200, "OK",
      "{\"id\":" + json_quote(campaign->id) +
          ",\"tenant\":" + json_quote(campaign->spec.tenant) +
          ",\"state\":" + json_quote(campaign->state) +
          ",\"detail\":" + json_quote(campaign->detail) +
          ",\"total_traces\":" + std::to_string(campaign->total_traces) +
          ",\"completed_traces\":" + std::to_string(completed) + "}\n");
}

http::ObsHttpServer::Response CampaignDaemon::campaign_metrics(
    const std::string& id) {
  std::shared_ptr<measure::ParallelCampaign> exec;
  std::string state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = campaigns_.find(id);
    if (it == campaigns_.end()) {
      return error_response(404, "Not Found", "no campaign " + id);
    }
    exec = it->second->exec;
    state = it->second->state;
  }
  http::ObsHttpServer::Response response;
  response.content_type = "text/plain; version=0.0.4";
  if (exec) {
    // Live: the executor's prefix-merged snapshot; every counter is <=
    // its final value and reconciles with the exported .prom below.
    const auto snap = exec->metrics_snapshot();
    response.body =
        obs::to_prometheus(snap.metrics) + obs::to_prometheus(snap.timeseries);
    return response;
  }
  if (state == kDone) {
    if (!read_file(options_.state_dir + "/" + id + ".metrics.prom",
                   &response.body)) {
      return error_response(500, "Internal Server Error",
                            "metrics artifact missing for " + id);
    }
    return response;
  }
  response.body = "# campaign " + id + " is " + state + "; no samples\n";
  return response;
}

http::ObsHttpServer::Response CampaignDaemon::campaign_result(
    const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = campaigns_.find(id);
    if (it == campaigns_.end()) {
      return error_response(404, "Not Found", "no campaign " + id);
    }
    if (it->second->state != kDone) {
      return error_response(409, "Conflict",
                            "campaign " + id + " is " + it->second->state);
    }
  }
  http::ObsHttpServer::Response response;
  response.content_type = "text/csv";
  if (!read_file(options_.state_dir + "/" + id + ".csv", &response.body)) {
    return error_response(500, "Internal Server Error",
                          "result artifact missing for " + id);
  }
  return response;
}

http::ObsHttpServer::Response CampaignDaemon::campaign_cancel(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    return error_response(404, "Not Found", "no campaign " + id);
  }
  auto& campaign = it->second;
  if (campaign->state == kDone || campaign->state == kCancelled ||
      campaign->state == kFailed) {
    return error_response(409, "Conflict",
                          "campaign " + id + " is already " + campaign->state);
  }
  campaign->cancel_requested = true;
  if (campaign->detail.empty()) {
    campaign->detail = "campaign-cancelled: by request";
  }
  if (campaign->exec) {
    campaign->exec->request_halt();
  } else {
    // Still queued: take it out of the queue and mark it immediately.
    queue_.erase(std::remove(queue_.begin(), queue_.end(), campaign),
                 queue_.end());
    campaign->state = kCancelled;
    write_file_atomic(marker_path(id, kCancelled), campaign->detail + "\n");
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  emit_event("campaign-cancelled",
             "id=" + id + " tenant=" + campaign->spec.tenant + " reason=api");
  return json_response(202, "Accepted",
                       "{\"id\":" + json_quote(id) +
                           ",\"state\":\"cancelling\"}\n");
}

http::ObsHttpServer::Response CampaignDaemon::handle(
    const wire::HttpRequest& request) {
  const std::string& target = request.target;
  if (target == "/campaigns") {
    if (request.method == "POST") return admit(request.body);
    if (request.method == "GET") {
      std::string body = "{\"campaigns\":[";
      bool first = true;
      for (const auto& status : statuses()) {
        if (!first) body.push_back(',');
        first = false;
        body += "{\"id\":" + json_quote(status.id) +
                ",\"tenant\":" + json_quote(status.tenant) +
                ",\"state\":" + json_quote(status.state) +
                ",\"total_traces\":" + std::to_string(status.total_traces) +
                ",\"completed_traces\":" +
                std::to_string(status.completed_traces) + "}";
      }
      body += "]}\n";
      return json_response(200, "OK", std::move(body));
    }
    return error_response(405, "Method Not Allowed",
                          "use GET or POST on /campaigns");
  }
  const std::string prefix = "/campaigns/";
  if (target.compare(0, prefix.size(), prefix) == 0) {
    std::string rest = target.substr(prefix.size());
    std::string action;
    const std::size_t slash = rest.find('/');
    if (slash != std::string::npos) {
      action = rest.substr(slash + 1);
      rest = rest.substr(0, slash);
    }
    if (rest.empty()) {
      return error_response(404, "Not Found", "missing campaign id");
    }
    if (action.empty()) {
      if (request.method != "GET") {
        return error_response(405, "Method Not Allowed", "use GET");
      }
      return campaign_status(rest);
    }
    if (action == "metrics" && request.method == "GET") {
      return campaign_metrics(rest);
    }
    if (action == "result" && request.method == "GET") {
      return campaign_result(rest);
    }
    if (action == "cancel" && request.method == "POST") {
      return campaign_cancel(rest);
    }
    return error_response(404, "Not Found",
                          "unknown campaign endpoint /" + action);
  }
  return error_response(404, "Not Found", "unknown endpoint");
}

std::vector<CampaignDaemon::Status> CampaignDaemon::statuses() const {
  std::vector<std::shared_ptr<Campaign>> ordered;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, campaign] : campaigns_) ordered.push_back(campaign);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a->seq < b->seq; });
  std::vector<Status> out;
  out.reserve(ordered.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& campaign : ordered) {
    Status status;
    status.id = campaign->id;
    status.tenant = campaign->spec.tenant;
    status.state = campaign->state;
    status.detail = campaign->detail;
    status.total_traces = campaign->total_traces;
    status.completed_traces = campaign->exec ? campaign->exec->traces_completed()
                              : campaign->state == kDone ? campaign->total_traces
                                                         : 0;
    out.push_back(std::move(status));
  }
  return out;
}

CampaignDaemon::Stats CampaignDaemon::stats() const {
  Stats stats;
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  stats.shed_tenant_budget =
      shed_tenant_budget_.load(std::memory_order_relaxed);
  stats.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  return stats;
}

std::string CampaignDaemon::daemon_metrics_text() const {
  std::size_t queued = 0;
  std::size_t running = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queued = queue_.size();
    for (const auto& [id, campaign] : campaigns_) {
      if (campaign->state == kRunning) ++running;
    }
  }
  const Stats s = stats();
  std::string out;
  auto counter = [&out](const char* name, const char* help,
                        std::uint64_t value, const char* labels = "") {
    out += "# HELP " + std::string(name) + " " + help + "\n";
    out += "# TYPE " + std::string(name) + " counter\n";
    out += std::string(name) + labels + " " + std::to_string(value) + "\n";
  };
  counter("ecnprobed_admitted_total", "campaigns admitted", s.admitted);
  out += "# HELP ecnprobed_shed_total admissions shed with 429\n";
  out += "# TYPE ecnprobed_shed_total counter\n";
  out += "ecnprobed_shed_total{reason=\"queue-full\"} " +
         std::to_string(s.shed_queue_full) + "\n";
  out += "ecnprobed_shed_total{reason=\"tenant-budget\"} " +
         std::to_string(s.shed_tenant_budget) + "\n";
  counter("ecnprobed_rejected_invalid_total",
          "specs rejected as invalid or over budget", s.rejected_invalid);
  counter("ecnprobed_campaigns_completed_total", "campaigns finished",
          s.completed);
  counter("ecnprobed_campaigns_cancelled_total",
          "campaigns cancelled (watchdog or API)", s.cancelled);
  counter("ecnprobed_campaigns_failed_total", "campaigns failed", s.failed);
  out += "# HELP ecnprobed_queue_depth campaigns admitted and waiting\n";
  out += "# TYPE ecnprobed_queue_depth gauge\n";
  out += "ecnprobed_queue_depth " + std::to_string(queued) + "\n";
  out += "# HELP ecnprobed_running campaigns currently executing\n";
  out += "# TYPE ecnprobed_running gauge\n";
  out += "ecnprobed_running " + std::to_string(running) + "\n";
  return out;
}

std::string CampaignDaemon::daemon_progress_json() const {
  bool draining = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining = draining_;
  }
  std::string body = "{\"draining\":" + std::string(draining ? "true" : "false") +
                     ",\"campaigns\":[";
  bool first = true;
  for (const auto& status : statuses()) {
    if (!first) body.push_back(',');
    first = false;
    body += "{\"id\":" + json_quote(status.id) +
            ",\"state\":" + json_quote(status.state) +
            ",\"completed_traces\":" + std::to_string(status.completed_traces) +
            ",\"total_traces\":" + std::to_string(status.total_traces) + "}";
  }
  body += "]}";
  return body;
}

}  // namespace ecnprobe::daemon
