// Campaign spec: the JSON document a tenant POSTs to ecnprobed. Exactly
// the knobs the batch CLI's `campaign` command takes -- and validated
// with the same strictness and the same underlying parsers (FaultPlan,
// TelemetryConfig, TimeSeriesConfig, SupervisorConfig) -- so a spec that
// admits here runs byte-identically to the CLI invocation it mirrors.
// Unknown keys are rejected, not ignored: a misspelled "falts" must not
// silently run a clean campaign.
#pragma once

#include <cstdint>
#include <string>

#include "ecnprobe/util/expected.hpp"

namespace ecnprobe::daemon {

struct CampaignSpec {
  /// Admission-control identity; campaigns from one tenant share that
  /// tenant's active-campaign budget. Non-empty, [A-Za-z0-9._-], <= 64.
  std::string tenant = "default";
  double scale = 0.1;          ///< world scale, > 0
  std::uint64_t seed = 42;     ///< world seed
  int traces = 0;              ///< uniform plan override; 0 = scaled layout
  int workers = 1;             ///< requested shard workers (daemon may cap)
  std::string faults = "none"; ///< chaos::FaultPlan::parse spec
  std::string telemetry = "exact";  ///< obs::TelemetryConfig::parse spec
  std::string timeseries = "off";   ///< obs::TimeSeriesConfig::parse spec
  /// Probe supervision rig, sched::SupervisorConfig::parse format
  /// ("paper" | "backoff,...,pace-rate=50,breaker-failures=3"). This is
  /// where a tenant's pacing/breaker budget rides.
  std::string sched = "paper";

  /// Parses and fully validates a spec document: JSON syntax, unknown
  /// keys, field types/ranges, and every sub-spec through its own
  /// strict parser. Returns the first error with a precise message.
  static util::Expected<CampaignSpec> from_json(const std::string& text);

  /// Canonical JSON rendering (fixed field order); from_json(to_json())
  /// round-trips to an equal spec. Used to persist admitted specs.
  std::string to_json() const;

  bool operator==(const CampaignSpec&) const = default;
};

}  // namespace ecnprobe::daemon
