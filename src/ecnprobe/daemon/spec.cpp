#include "ecnprobe/daemon/spec.hpp"

#include <cmath>
#include <cstdio>

#include "ecnprobe/chaos/fault_plan.hpp"
#include "ecnprobe/daemon/json.hpp"
#include "ecnprobe/obs/telemetry.hpp"
#include "ecnprobe/obs/timeseries.hpp"
#include "ecnprobe/sched/policy.hpp"

namespace ecnprobe::daemon {

namespace {

util::Error spec_error(const std::string& message) {
  return util::make_error("spec", "invalid campaign spec: " + message);
}

bool valid_tenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Extracts an integer field that must have been written without a
/// fractional part ("3", not 3.0 or "3e0").
bool exact_int(const JsonValue& v, long long* out) {
  if (!v.is(JsonValue::Kind::Number)) return false;
  if (v.raw_number.find_first_of(".eE") != std::string::npos) return false;
  *out = static_cast<long long>(v.number);
  return true;
}

}  // namespace

util::Expected<CampaignSpec> CampaignSpec::from_json(const std::string& text) {
  const auto doc = parse_json(text);
  if (!doc) return doc.error();
  if (!doc->is(JsonValue::Kind::Object)) {
    return spec_error("top-level value must be an object");
  }
  CampaignSpec spec;
  for (const auto& [key, value] : doc->object) {
    if (key == "tenant") {
      if (!value.is(JsonValue::Kind::String) || !valid_tenant(value.string)) {
        return spec_error("\"tenant\" must be a short [A-Za-z0-9._-] string");
      }
      spec.tenant = value.string;
    } else if (key == "scale") {
      if (!value.is(JsonValue::Kind::Number) || !(value.number > 0.0) ||
          !std::isfinite(value.number)) {
        return spec_error("\"scale\" must be a positive number");
      }
      spec.scale = value.number;
    } else if (key == "seed") {
      long long n = 0;
      if (!exact_int(value, &n) || n < 0) {
        return spec_error("\"seed\" must be a non-negative integer");
      }
      spec.seed = static_cast<std::uint64_t>(n);
    } else if (key == "traces") {
      long long n = 0;
      if (!exact_int(value, &n) || n < 0 || n > (1 << 20)) {
        return spec_error("\"traces\" must be an integer in [0, 1048576]");
      }
      spec.traces = static_cast<int>(n);
    } else if (key == "workers") {
      long long n = 0;
      if (!exact_int(value, &n) || n < 1 || n > 256) {
        return spec_error("\"workers\" must be an integer in [1, 256]");
      }
      spec.workers = static_cast<int>(n);
    } else if (key == "faults") {
      if (!value.is(JsonValue::Kind::String)) {
        return spec_error("\"faults\" must be a string");
      }
      spec.faults = value.string;
    } else if (key == "telemetry") {
      if (!value.is(JsonValue::Kind::String)) {
        return spec_error("\"telemetry\" must be a string");
      }
      spec.telemetry = value.string;
    } else if (key == "timeseries") {
      if (!value.is(JsonValue::Kind::String)) {
        return spec_error("\"timeseries\" must be a string");
      }
      spec.timeseries = value.string;
    } else if (key == "sched") {
      if (!value.is(JsonValue::Kind::String)) {
        return spec_error("\"sched\" must be a string");
      }
      spec.sched = value.string;
    } else {
      return spec_error("unknown key \"" + key + "\"");
    }
  }
  // Sub-specs go through the exact parsers the CLI flags use, so the
  // daemon accepts precisely the language the CLI accepts -- same error
  // messages, same rejected corner cases.
  if (const auto faults = chaos::FaultPlan::parse(spec.faults); !faults) {
    return spec_error(faults.error().message);
  }
  if (const auto telemetry = obs::TelemetryConfig::parse(spec.telemetry); !telemetry) {
    return spec_error(telemetry.error().message);
  }
  if (const auto series = obs::TimeSeriesConfig::parse(spec.timeseries); !series) {
    return spec_error(series.error().message);
  }
  if (const auto sched = sched::SupervisorConfig::parse(spec.sched); !sched) {
    return spec_error(sched.error().message);
  }
  return spec;
}

std::string CampaignSpec::to_json() const {
  char scale_buf[64];
  // %.17g round-trips any double exactly, so persisted specs re-admit to
  // an equal spec (and thus an identical plan fingerprint).
  std::snprintf(scale_buf, sizeof(scale_buf), "%.17g", scale);
  std::string out = "{";
  out += "\"tenant\":" + json_quote(tenant);
  out += ",\"scale\":" + std::string(scale_buf);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"traces\":" + std::to_string(traces);
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"faults\":" + json_quote(faults);
  out += ",\"telemetry\":" + json_quote(telemetry);
  out += ",\"timeseries\":" + json_quote(timeseries);
  out += ",\"sched\":" + json_quote(sched);
  out += "}";
  return out;
}

}  // namespace ecnprobe::daemon
