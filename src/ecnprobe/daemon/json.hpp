// Minimal strict JSON parser for the daemon's campaign-spec documents.
// Same philosophy as the CLI's option parsing and the wire decoders:
// malformed input is rejected as a value (Expected), never coerced --
// trailing garbage, duplicate keys, unterminated strings, and bad number
// syntax all fail with a positioned message instead of yielding a
// half-parsed spec.
//
// Deliberately small: objects, arrays, strings (with the common escapes;
// \uXXXX is rejected rather than mis-decoded), numbers (kept as both
// double and raw text so integer fields round-trip exactly), booleans,
// null. This is an input validator for a trusted-ish local API, not a
// general JSON library.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"

namespace ecnprobe::daemon {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  ///< verbatim token, for exact integer extraction
  std::string string;
  /// Insertion order is irrelevant to spec validation; a map keeps lookup
  /// simple and makes duplicate keys a parse-time error.
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  bool is(Kind k) const { return kind == k; }
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parses one complete JSON document. The whole input must be consumed
/// (trailing non-whitespace fails), and object keys must be unique.
util::Expected<JsonValue> parse_json(const std::string& text);

/// Escapes a string for embedding in a JSON document (quotes included).
std::string json_quote(const std::string& s);

}  // namespace ecnprobe::daemon
