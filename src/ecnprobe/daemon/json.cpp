#include "ecnprobe/daemon/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ecnprobe::daemon {

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return fail("bad literal");
    pos += len;
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u':
          // Spec fields are ASCII identifiers and option strings; decoding
          // surrogate pairs here would be untested complexity, so refuse.
          return fail("\\u escapes are not supported");
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return fail("bad number");
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad number");
      }
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad number");
      }
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    out->raw_number = text.substr(start, pos - start);
    errno = 0;
    char* end = nullptr;
    out->number = std::strtod(out->raw_number.c_str(), &end);
    if (errno != 0 || end != out->raw_number.c_str() + out->raw_number.size()) {
      return fail("number out of range");
    }
    out->kind = JsonValue::Kind::Number;
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > 32) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->kind = JsonValue::Kind::Object;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        if (out->object.count(key) != 0) return fail("duplicate key \"" + key + "\"");
        skip_ws();
        if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
        ++pos;
        JsonValue value;
        if (!parse_value(&value, depth + 1)) return false;
        out->object.emplace(std::move(key), std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->kind = JsonValue::Kind::Array;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue value;
        if (!parse_value(&value, depth + 1)) return false;
        out->array.push_back(std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::String;
      return parse_string(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::Bool;
      out->boolean = true;
      return literal("true", 4);
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::Bool;
      out->boolean = false;
      return literal("false", 5);
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::Null;
      return literal("null", 4);
    }
    return parse_number(out);
  }
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

util::Expected<JsonValue> parse_json(const std::string& text) {
  Parser parser{text, 0, {}};
  JsonValue value;
  if (!parser.parse_value(&value, 0)) {
    return util::make_error("json", "invalid JSON: " + parser.error);
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    return util::make_error(
        "json", "invalid JSON: trailing characters at offset " +
                    std::to_string(parser.pos));
  }
  return value;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace ecnprobe::daemon
