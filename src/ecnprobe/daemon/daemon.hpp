// ecnprobed: the multi-tenant campaign daemon. Clients POST a
// CampaignSpec to /campaigns; the daemon admits it (or sheds it), runs it
// through the unchanged ParallelCampaign with its own write-ahead
// journal, and publishes the same artifacts the batch CLI would write --
// so a daemon campaign is byte-identical to the CLI invocation with the
// same spec, including across a daemon crash and restart.
//
// Robustness posture:
//   * Bounded admission: at most `queue_depth` campaigns wait; beyond
//     that, POSTs are shed with 429 + Retry-After, never queued
//     unboundedly. Per-tenant budgets cap how much of the daemon one
//     tenant can hold (queued + running).
//   * Crash-safe admission: the spec is persisted to
//     <state_dir>/<id>.spec.json before the 201 goes out. On restart the
//     daemon rescans the state dir and re-enqueues every campaign without
//     a completion marker; their journals replay, so an admitted campaign
//     survives any number of SIGKILLs and still finishes byte-identically.
//   * Watchdog: a campaign running longer than `watchdog` wall-clock is
//     cancelled cooperatively (workers stop claiming traces) and marked
//     "campaign-cancelled" -- a runaway tenant cannot pin a runner slot.
//   * Graceful drain: drain() refuses new admissions (503), halts running
//     campaigns at their next trace boundary (each halted trace is
//     already journaled write-ahead), and returns once runners exit.
//     Queued specs stay on disk; a restarted daemon picks them up.
//
// HTTP surface (mounted on http::ObsHttpServer's handler hook, riding
// its hardening, /metrics, /progress and /events SSE plane):
//   POST /campaigns                 spec JSON -> 201 {"id":...} | 400/429/503
//   GET  /campaigns                 all campaigns, JSON
//   GET  /campaigns/<id>            one campaign's status, JSON
//   GET  /campaigns/<id>/metrics    per-campaign Prometheus text
//                                   (live snapshot while running, the
//                                   exported .prom once done)
//   GET  /campaigns/<id>/result     traces CSV once done
//   POST /campaigns/<id>/cancel     cooperative cancel -> 202
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ecnprobe/daemon/spec.hpp"
#include "ecnprobe/http/obs_server.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"

namespace ecnprobe::daemon {

class CampaignDaemon {
 public:
  struct Options {
    /// Directory for specs, journals, and result artifacts. Required;
    /// created if missing.
    std::string state_dir;
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start()
    /// Campaigns admitted but not yet running. Admissions beyond this
    /// shed with 429.
    int queue_depth = 8;
    /// Campaigns running concurrently (runner threads).
    int concurrency = 2;
    /// Per-tenant budget: queued + running campaigns one tenant may hold.
    int tenant_max_active = 2;
    /// Per-campaign trace budget; a spec whose plan exceeds it is
    /// rejected at admission (400). 0 = unlimited.
    int max_traces = 0;
    /// Cap on a spec's requested workers (a tenant cannot grab every
    /// core by asking for workers=256).
    int max_workers = 8;
    /// Retry-After value sent with 429 sheds.
    int retry_after_seconds = 2;
    /// Wall-clock runtime ceiling per campaign; exceeding it cancels the
    /// campaign ("campaign-cancelled"). Zero = no watchdog.
    std::chrono::milliseconds watchdog{0};
    /// Hardening knobs forwarded to the HTTP listener.
    std::chrono::milliseconds read_deadline{5000};
    std::size_t max_body_bytes = 256 * 1024;
  };

  /// One campaign's externally visible state.
  struct Status {
    std::string id;
    std::string tenant;
    std::string state;  ///< "queued" | "running" | "done" | "cancelled" | "failed"
    std::string detail; ///< failure/cancellation reason, empty otherwise
    int total_traces = 0;
    int completed_traces = 0;  ///< includes journal-replayed traces
  };

  explicit CampaignDaemon(Options options);
  ~CampaignDaemon();
  CampaignDaemon(const CampaignDaemon&) = delete;
  CampaignDaemon& operator=(const CampaignDaemon&) = delete;

  /// Creates the state dir if needed, rescans it for unfinished
  /// campaigns (re-enqueued in admission order), binds the HTTP listener
  /// and starts the runner/watchdog threads. False + *error on failure.
  bool start(std::string* error);

  /// Graceful shutdown: refuse new admissions, halt running campaigns at
  /// their next trace boundary (journals already hold every finished
  /// trace), join all threads, stop the listener. Queued and halted
  /// campaigns remain on disk for the next start(). Idempotent.
  void drain();

  std::uint16_t port() const { return server_ ? server_->port() : 0; }
  bool running() const { return started_; }

  /// Point-in-time view of every known campaign, id-ordered.
  std::vector<Status> statuses() const;

  /// Admission outcome counters (monotonic since start).
  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_tenant_budget = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
  };
  Stats stats() const;

 private:
  struct Campaign;

  http::ObsHttpServer::Response handle(const wire::HttpRequest& request);
  http::ObsHttpServer::Response admit(const std::string& body);
  http::ObsHttpServer::Response campaign_status(const std::string& id);
  http::ObsHttpServer::Response campaign_metrics(const std::string& id);
  http::ObsHttpServer::Response campaign_result(const std::string& id);
  http::ObsHttpServer::Response campaign_cancel(const std::string& id);

  void runner_loop();
  void watchdog_loop();
  void run_campaign(const std::shared_ptr<Campaign>& campaign);
  bool rescan_state_dir(std::string* error);

  std::string spec_path(const std::string& id) const;
  std::string marker_path(const std::string& id, const char* kind) const;
  std::string daemon_metrics_text() const;
  std::string daemon_progress_json() const;

  Options options_;
  std::unique_ptr<http::ObsHttpServer> server_;
  bool started_ = false;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool draining_ = false;
  std::uint64_t next_seq_ = 1;
  std::map<std::string, std::shared_ptr<Campaign>> campaigns_;
  std::deque<std::shared_ptr<Campaign>> queue_;
  std::vector<std::thread> runners_;
  std::thread watchdog_;

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_tenant_budget_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace ecnprobe::daemon
