#include "ecnprobe/traceroute/traceroute.hpp"

#include <algorithm>
#include <stdexcept>

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::traceroute {

void TracerouteOptions::validate() const {
  if (max_ttl < 1 || max_ttl > 255) {
    throw std::invalid_argument("TracerouteOptions: max_ttl must be in [1, 255]");
  }
  if (probes_per_hop <= 0) {
    throw std::invalid_argument("TracerouteOptions: probes_per_hop must be >= 1");
  }
  if (timeout.count_nanos() <= 0) {
    throw std::invalid_argument("TracerouteOptions: timeout must be positive");
  }
  if (stop_after_silent <= 0) {
    throw std::invalid_argument("TracerouteOptions: stop_after_silent must be >= 1");
  }
}

int PathRecord::responding_hops() const {
  return static_cast<int>(
      std::count_if(hops.begin(), hops.end(), [](const HopRecord& h) { return h.responded; }));
}

struct Tracerouter::Trace {
  wire::Ipv4Address destination;
  TracerouteOptions options;
  Handler handler;
  PathRecord record;

  int ttl = 1;
  int attempt = 0;
  int silent_streak = 0;
  std::uint16_t probe_src_port = 0;  ///< port of the in-flight probe
  std::uint32_t flight = 0;          ///< flight id of the in-flight probe
  netsim::EventHandle timer;
  bool done = false;
};

Tracerouter::Tracerouter(netsim::Host& host) : host_(host) {
  host_.set_protocol_handler(wire::IpProto::Icmp,
                             [this](const wire::Datagram& d) { on_icmp(d); });
}

Tracerouter::~Tracerouter() { host_.clear_protocol_handler(wire::IpProto::Icmp); }

void Tracerouter::trace(wire::Ipv4Address destination, const TracerouteOptions& options,
                        Handler handler) {
  options.validate();
  auto trace = std::make_shared<Trace>();
  trace->destination = destination;
  trace->options = options;
  trace->handler = std::move(handler);
  trace->record.destination = destination;
  send_probe(trace);
}

void Tracerouter::send_probe(const std::shared_ptr<Trace>& trace) {
  ++trace->attempt;
  const std::uint16_t src_port = next_src_port_;
  next_src_port_ = next_src_port_ >= 65500 ? 44000
                                           : static_cast<std::uint16_t>(next_src_port_ + 1);
  trace->probe_src_port = src_port;
  pending_[src_port] = trace;

  // Classic traceroute: UDP to an unlikely high port, dst port varies with
  // TTL so replies are attributable even under reordering.
  const auto dst_port =
      static_cast<std::uint16_t>(trace->options.base_dst_port + trace->ttl);
  const std::uint8_t payload[8] = {'e', 'c', 'n', 'p', 'r', 'o', 'b', 'e'};
  // Traceroute spans: probe = the TTL being probed, seq = the attempt.
  auto& recorder = host_.network().obs().recorder;
  if (recorder.armed()) {
    recorder.set_probe(trace->ttl);
    recorder.set_seq(trace->attempt - 1);
    trace->flight = recorder.begin_flight(/*retransmit=*/trace->attempt > 1);
  }
  host_.send_datagram(wire::make_udp_datagram(host_.address(), trace->destination,
                                              src_port, dst_port, payload,
                                              trace->options.ecn,
                                              static_cast<std::uint8_t>(trace->ttl)));

  pending_[src_port] = trace;
  trace->timer = host_.network().sim().schedule(trace->options.timeout, [this, trace]() {
    pending_.erase(trace->probe_src_port);
    if (trace->done) return;
    if (trace->attempt < trace->options.probes_per_hop) {
      send_probe(trace);
      return;
    }
    auto& rec = host_.network().obs().recorder;
    if (rec.armed()) {
      rec.record(trace->flight, obs::SpanEvent::Timeout, host_.network().sim().now(),
                 obs::Layer::App, host_.name(), host_.address().value(),
                 util::strf("ttl=%d silent after %d probes", trace->ttl, trace->attempt));
    }
    HopRecord hop;
    hop.ttl = trace->ttl;
    hop.responded = false;
    hop.sent_ecn = trace->options.ecn;
    hop_done(trace, hop);
  });
}

void Tracerouter::on_icmp(const wire::Datagram& dgram) {
  const auto decoded = wire::decode_icmp_message(dgram.payload);
  if (!decoded || !decoded->checksum_ok || !decoded->message.is_error()) return;
  const auto quotation = wire::parse_quotation(decoded->message.body);
  if (!quotation) return;
  std::shared_ptr<Trace> trace;
  if (quotation->header_complete) {
    if (quotation->inner_header.src != host_.address()) return;
    if (quotation->transport_prefix.size() < 4) return;
    // The first 8 quoted transport bytes are the UDP header; ports identify
    // the probe.
    const auto src_port = static_cast<std::uint16_t>(
        (quotation->transport_prefix[0] << 8) | quotation->transport_prefix[1]);
    const auto it = pending_.find(src_port);
    if (it == pending_.end()) return;
    trace = it->second;
    if (quotation->inner_header.dst != trace->destination) return;
    pending_.erase(it);
  } else {
    // Quote cut short of the full inner header: no transport bytes to match
    // a probe by port. Attribute it only when unambiguous -- exactly one
    // probe in flight -- and only if the fields that did survive don't
    // contradict it being ours. Ambiguous truncated quotes are dropped (the
    // hop then reads as silent), never mis-attributed.
    if (pending_.size() != 1) return;
    if (quotation->inner_header.src.value() != 0 &&
        quotation->inner_header.src != host_.address()) {
      return;
    }
    trace = pending_.begin()->second;
    pending_.erase(pending_.begin());
  }
  trace->timer.cancel();
  if (trace->done) return;

  HopRecord hop;
  hop.ttl = trace->ttl;
  hop.responded = true;
  hop.responder = dgram.ip.src;
  hop.sent_ecn = trace->options.ecn;
  hop.quote_truncated = !quotation->header_complete;
  // A partial inner header cannot be validated (the quote carries no
  // checksum of its own, and the probe match above was heuristic), so a
  // ToS octet inside one is not evidence: the ECN verdict requires the
  // complete quoted header.
  hop.ecn_known = quotation->header_complete && quotation->ecn_known;
  if (hop.ecn_known) hop.quoted_ecn = quotation->inner_header.ecn;

  if (decoded->message.type == wire::IcmpType::DestUnreachable &&
      dgram.ip.src == trace->destination) {
    trace->record.reached_destination = true;
    trace->record.hops.push_back(hop);
    finish(trace);
    return;
  }
  hop_done(trace, hop);
}

void Tracerouter::hop_done(const std::shared_ptr<Trace>& trace, HopRecord hop) {
  trace->record.hops.push_back(hop);
  trace->silent_streak = hop.responded ? 0 : trace->silent_streak + 1;
  if (trace->ttl >= trace->options.max_ttl ||
      trace->silent_streak >= trace->options.stop_after_silent) {
    finish(trace);
    return;
  }
  ++trace->ttl;
  trace->attempt = 0;
  send_probe(trace);
}

void Tracerouter::finish(const std::shared_ptr<Trace>& trace) {
  if (trace->done) return;
  trace->done = true;
  trace->timer.cancel();
  if (trace->handler) trace->handler(trace->record);
}

}  // namespace ecnprobe::traceroute
