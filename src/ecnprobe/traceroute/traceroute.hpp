// ECN-revealing traceroute (Section 4.2). Sends TTL-limited, ECT(0)-marked
// UDP probes toward each server and compares the IP header quoted in the
// returning ICMP Time-Exceeded message against the header sent. A hop whose
// quotation still carries ECT(0) passed the mark; a hop quoting not-ECT saw
// the mark stripped somewhere upstream. The same technique as Bauer et al.,
// tracebox, and Malone & Luckie's ICMP-quotation analysis.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ecnprobe/netsim/host.hpp"

namespace ecnprobe::traceroute {

struct TracerouteOptions {
  wire::Ecn ecn = wire::Ecn::Ect0;
  int max_ttl = 30;
  int probes_per_hop = 2;  ///< attempts before declaring a hop silent
  util::SimDuration timeout = util::SimDuration::seconds(1);
  int stop_after_silent = 6;  ///< consecutive silent hops before giving up
  std::uint16_t base_dst_port = 33434;  ///< classic traceroute port range

  /// Throws std::invalid_argument on out-of-range fields; Tracerouter::trace
  /// validates every options instance it is handed.
  void validate() const;
};

struct HopRecord {
  int ttl = 0;
  bool responded = false;
  wire::Ipv4Address responder;        ///< ICMP source (the router)
  wire::Ecn sent_ecn = wire::Ecn::NotEct;
  wire::Ecn quoted_ecn = wire::Ecn::NotEct;  ///< ECN field in the quotation
  /// False when the quote was cut before the ToS/ECN octet: the hop
  /// responded but its ECN field is unobserved -- it must not be
  /// classified as bleached (or intact) on this evidence.
  bool ecn_known = true;
  bool quote_truncated = false;  ///< quote shorter than the full inner header
  /// True when the quoted ECN field was observed and equals what we sent.
  bool ecn_intact() const { return responded && ecn_known && quoted_ecn == sent_ecn; }
};

struct PathRecord {
  wire::Ipv4Address destination;
  std::vector<HopRecord> hops;
  bool reached_destination = false;  ///< ICMP Port-Unreachable from the target

  int responding_hops() const;
};

/// Runs traceroutes from one Host. Owns the host's ICMP protocol handler;
/// create at most one per host. Multiple traces may run concurrently --
/// probes are matched back by the UDP source port quoted in the ICMP error.
class Tracerouter {
public:
  using Handler = std::function<void(const PathRecord&)>;

  explicit Tracerouter(netsim::Host& host);
  ~Tracerouter();
  Tracerouter(const Tracerouter&) = delete;
  Tracerouter& operator=(const Tracerouter&) = delete;

  void trace(wire::Ipv4Address destination, const TracerouteOptions& options,
             Handler handler);

private:
  struct Trace;
  void on_icmp(const wire::Datagram& dgram);
  void send_probe(const std::shared_ptr<Trace>& trace);
  void hop_done(const std::shared_ptr<Trace>& trace, HopRecord hop);
  void finish(const std::shared_ptr<Trace>& trace);

  netsim::Host& host_;
  std::uint16_t next_src_port_ = 44000;
  // Outstanding probes keyed by UDP source port.
  std::map<std::uint16_t, std::shared_ptr<Trace>> pending_;
};

}  // namespace ecnprobe::traceroute
