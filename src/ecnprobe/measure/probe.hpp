// The measurement application core (Section 3): for each server, probe
// reachability four ways in sequence -- NTP over not-ECT UDP, NTP over
// ECT(0) UDP, HTTP over TCP with a normal SYN, HTTP over TCP with an
// ECN-setup SYN -- and record the outcomes. TraceRunner iterates a full
// server list to produce one Trace.
#pragma once

#include <functional>
#include <memory>

#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/measure/vantage.hpp"
#include "ecnprobe/sched/supervisor.hpp"

namespace ecnprobe::measure {

struct ProbeOptions {
  int udp_attempts = 5;  ///< paper: up to five requests...
  util::SimDuration udp_timeout = util::SimDuration::seconds(1);  ///< ...1 s apart
  util::SimDuration http_deadline = util::SimDuration::seconds(15);
  util::SimDuration inter_test_gap = util::SimDuration::millis(50);
  /// Probe-lifecycle supervision (retry/backoff, breakers, pacing,
  /// watchdog). The default is the paper's fixed discipline, for which the
  /// probe layer bypasses the supervisor entirely -- bit-identical to the
  /// pre-supervisor code path.
  sched::SupervisorConfig sched;
  /// Maps a server to its circuit-breaker group (the scenario layer binds
  /// ip2as: "AS<n>"). Unset = per-server breakers only.
  sched::GroupResolver breaker_group;

  /// Throws std::invalid_argument on out-of-range fields (non-positive
  /// attempt counts or timeouts, invalid supervisor policy).
  void validate() const;
};

/// Probes one server all four ways; the handler fires once with the
/// complete result. `span_base` seeds the flight-recorder probe index for
/// this server's four steps (campaign convention: server index * 4 + step).
void probe_server(Vantage& vantage, wire::Ipv4Address server, const ProbeOptions& options,
                  std::function<void(const ServerResult&)> handler, int span_base = 0);

/// Runs one complete trace: every server in turn, four probes each.
class TraceRunner {
public:
  using Handler = std::function<void(Trace)>;

  TraceRunner(Vantage& vantage, std::vector<wire::Ipv4Address> servers,
              ProbeOptions options);

  /// Starts the trace; `handler` fires when the last server completes.
  /// `batch`/`index` are stamped into the resulting Trace.
  void run(int batch, int index, Handler handler);

private:
  void next_server();

  Vantage& vantage_;
  std::vector<wire::Ipv4Address> servers_;
  ProbeOptions options_;
  /// Fresh per run(): trace-scoped supervisor state (breakers, pacer) never
  /// spans traces, which is what keeps sharded executors byte-identical.
  /// Null under the paper-default config.
  std::shared_ptr<sched::TraceSupervisor> supervisor_;
  Trace trace_;
  std::size_t cursor_ = 0;
  Handler handler_;
};

/// Repeated ECN traceroutes to a server list (Section 4.2's dataset).
class TracerouteRunner {
public:
  using Handler = std::function<void(std::vector<TracerouteObservation>)>;

  TracerouteRunner(Vantage& vantage, std::vector<wire::Ipv4Address> servers,
                   traceroute::TracerouteOptions options, int repetitions);

  void run(Handler handler);

private:
  void next();

  Vantage& vantage_;
  std::vector<wire::Ipv4Address> servers_;
  traceroute::TracerouteOptions options_;
  int repetitions_;
  std::size_t cursor_ = 0;
  int repetition_ = 0;
  std::vector<TracerouteObservation> observations_;
  Handler handler_;
};

}  // namespace ecnprobe::measure
