#include "ecnprobe/measure/probe.hpp"

#include <memory>

#include "ecnprobe/obs/ledger.hpp"

namespace ecnprobe::measure {

namespace {

// Sequential four-step probe of one server. Self-owning via shared_ptr.
struct ServerProbe : std::enable_shared_from_this<ServerProbe> {
  Vantage& vantage;
  wire::Ipv4Address server;
  ProbeOptions options;
  std::function<void(const ServerResult&)> handler;
  ServerResult result;
  int span_base = 0;  ///< flight-recorder probe index of step 0

  ServerProbe(Vantage& v, wire::Ipv4Address s, ProbeOptions o,
              std::function<void(const ServerResult&)> cb, int base)
      : vantage(v), server(s), options(o), handler(std::move(cb)), span_base(base) {
    result.server = s;
  }

  /// Stamps the flight-recorder span context for probe step `step`
  /// (0 udp-plain, 1 udp-ect0, 2 tcp-plain, 3 tcp-ecn). Clients bump seq
  /// per attempt; the reset here keys the step's first packet at seq 0.
  void set_span(int step) {
    auto& recorder = vantage.host().network().obs().recorder;
    if (!recorder.armed()) return;
    recorder.set_probe(span_base + step);
    recorder.set_seq(0);
  }

  ntp::NtpQueryOptions udp_options(wire::Ecn ecn) const {
    ntp::NtpQueryOptions q;
    q.ecn = ecn;
    q.max_attempts = options.udp_attempts;
    q.timeout = options.udp_timeout;
    return q;
  }

  static UdpProbeOutcome to_outcome(const ntp::NtpQueryResult& r) {
    UdpProbeOutcome o;
    o.reachable = r.success;
    o.attempts = r.attempts;
    o.rtt_ms = r.rtt.to_millis();
    return o;
  }

  static TcpProbeOutcome to_outcome(const http::HttpGetResult& r) {
    TcpProbeOutcome o;
    o.connected = r.connected;
    o.ecn_negotiated = r.ecn_negotiated;
    o.got_response = r.got_response;
    o.http_status = r.status;
    return o;
  }

  void after_gap(std::function<void()> fn) {
    vantage.host().network().sim().schedule(options.inter_test_gap, std::move(fn));
  }

  // Probe-outcome accounting. Failed probes are also entered in the drop
  // ledger (cause probe-timeout, node = target server), which is what lets
  // the loss autopsy reconcile exactly with Figure 2's unreachable cells:
  // every failed probe has an attributed cause.
  void record_udp(const char* test, const ntp::NtpQueryResult& r) {
    auto& o = vantage.host().network().obs();
    o.registry.counter("probe_udp_total",
                       {{"test", test}, {"outcome", r.success ? "ok" : "timeout"}},
                       "UDP NTP probe outcomes")->inc();
    o.registry.counter("probe_udp_attempts_total", {{"test", test}},
                       "UDP NTP request transmissions, retries included")
        ->inc(static_cast<std::uint64_t>(r.attempts));
    if (!r.success) {
      o.ledger.record_drop(obs::Layer::Measure, obs::DropCause::ProbeTimeout,
                           server.to_string());
    }
  }

  void record_tcp(const char* test, const http::HttpGetResult& r) {
    auto& o = vantage.host().network().obs();
    o.registry.counter("probe_tcp_total",
                       {{"test", test}, {"outcome", r.connected ? "ok" : "failed"}},
                       "TCP HTTP probe outcomes")->inc();
    if (!r.connected) {
      o.ledger.record_drop(obs::Layer::Measure, obs::DropCause::ProbeTimeout,
                           server.to_string());
      if (o.recorder.armed()) {
        // The TCP stack records each SYN flight; the probe-level give-up is
        // keyed by context (no packet to hang it on).
        o.recorder.record_here(obs::SpanEvent::Timeout,
                               vantage.host().network().sim().now(), obs::Layer::Measure,
                               vantage.name(), 0, std::string("test=") + test);
      }
    }
  }

  void start() {
    auto self = shared_from_this();
    // Step 1: NTP request in a not-ECT marked UDP packet.
    set_span(0);
    vantage.ntp().query(server, udp_options(wire::Ecn::NotEct),
                        [self](const ntp::NtpQueryResult& r) {
                          self->record_udp("udp-plain", r);
                          self->result.udp_plain = to_outcome(r);
                          self->after_gap([self]() { self->step_udp_ect(); });
                        });
  }

  void step_udp_ect() {
    auto self = shared_from_this();
    // Step 2: the same request in an ECT(0) marked packet.
    set_span(1);
    vantage.ntp().query(server, udp_options(wire::Ecn::Ect0),
                        [self](const ntp::NtpQueryResult& r) {
                          self->record_udp("udp-ect0", r);
                          self->result.udp_ect0 = to_outcome(r);
                          self->after_gap([self]() { self->step_tcp_plain(); });
                        });
  }

  void step_tcp_plain() {
    auto self = shared_from_this();
    // Step 3: HTTP GET without attempting to negotiate ECN.
    set_span(2);
    vantage.http().get(server, /*want_ecn=*/false,
                       [self](const http::HttpGetResult& r) {
                         self->record_tcp("tcp-plain", r);
                         self->result.tcp_plain = to_outcome(r);
                         self->after_gap([self]() { self->step_tcp_ecn(); });
                       },
                       wire::kHttpPort, options.http_deadline);
  }

  void step_tcp_ecn() {
    auto self = shared_from_this();
    // Step 4: HTTP GET with an ECN-setup SYN.
    set_span(3);
    vantage.http().get(server, /*want_ecn=*/true,
                       [self](const http::HttpGetResult& r) {
                         self->record_tcp("tcp-ecn", r);
                         self->result.tcp_ecn = to_outcome(r);
                         self->vantage.host().network().obs().registry.counter(
                             "probe_servers_total", {{"vantage", self->vantage.name()}},
                             "servers fully probed, per vantage")->inc();
                         if (self->handler) self->handler(self->result);
                       },
                       wire::kHttpPort, options.http_deadline);
  }
};

}  // namespace

void probe_server(Vantage& vantage, wire::Ipv4Address server, const ProbeOptions& options,
                  std::function<void(const ServerResult&)> handler, int span_base) {
  std::make_shared<ServerProbe>(vantage, server, options, std::move(handler), span_base)
      ->start();
}

TraceRunner::TraceRunner(Vantage& vantage, std::vector<wire::Ipv4Address> servers,
                         ProbeOptions options)
    : vantage_(vantage), servers_(std::move(servers)), options_(options) {}

void TraceRunner::run(int batch, int index, Handler handler) {
  trace_ = Trace{};
  trace_.vantage = vantage_.name();
  trace_.batch = batch;
  trace_.index = index;
  trace_.servers.reserve(servers_.size());
  cursor_ = 0;
  handler_ = std::move(handler);
  next_server();
}

void TraceRunner::next_server() {
  if (cursor_ >= servers_.size()) {
    if (handler_) handler_(std::move(trace_));
    return;
  }
  const int span_base = static_cast<int>(cursor_) * 4;
  const auto server = servers_[cursor_++];
  probe_server(
      vantage_, server, options_,
      [this](const ServerResult& result) {
        trace_.servers.push_back(result);
        next_server();
      },
      span_base);
}

TracerouteRunner::TracerouteRunner(Vantage& vantage,
                                   std::vector<wire::Ipv4Address> servers,
                                   traceroute::TracerouteOptions options, int repetitions)
    : vantage_(vantage),
      servers_(std::move(servers)),
      options_(options),
      repetitions_(repetitions) {}

void TracerouteRunner::run(Handler handler) {
  handler_ = std::move(handler);
  cursor_ = 0;
  repetition_ = 0;
  observations_.clear();
  next();
}

void TracerouteRunner::next() {
  if (cursor_ >= servers_.size()) {
    if (handler_) handler_(std::move(observations_));
    return;
  }
  const auto server = servers_[cursor_];
  vantage_.tracer().trace(server, options_, [this](const traceroute::PathRecord& path) {
    TracerouteObservation obs;
    obs.vantage = vantage_.name();
    obs.repetition = repetition_;
    obs.path = path;
    observations_.push_back(std::move(obs));
    if (++repetition_ >= repetitions_) {
      repetition_ = 0;
      ++cursor_;
    }
    next();
  });
}

}  // namespace ecnprobe::measure
