#include "ecnprobe/measure/probe.hpp"

#include <memory>
#include <stdexcept>

#include "ecnprobe/obs/ledger.hpp"

namespace ecnprobe::measure {

void ProbeOptions::validate() const {
  if (udp_attempts <= 0) {
    throw std::invalid_argument("ProbeOptions: udp_attempts must be >= 1");
  }
  if (udp_timeout.count_nanos() <= 0) {
    throw std::invalid_argument("ProbeOptions: udp_timeout must be positive");
  }
  if (http_deadline.count_nanos() <= 0) {
    throw std::invalid_argument("ProbeOptions: http_deadline must be positive");
  }
  if (inter_test_gap.count_nanos() < 0) {
    throw std::invalid_argument("ProbeOptions: inter_test_gap must not be negative");
  }
  sched.validate();
}

namespace {

// Sequential four-step probe of one server. Self-owning via shared_ptr.
//
// With a supervisor attached, each step passes through three gates before
// launch: the server's group breaker (once, before step 0), the per-server
// breaker, and the pacer. A null supervisor -- the paper-default config --
// takes exactly the legacy code path.
struct ServerProbe : std::enable_shared_from_this<ServerProbe> {
  Vantage& vantage;
  wire::Ipv4Address server;
  ProbeOptions options;
  std::function<void(const ServerResult&)> handler;
  ServerResult result;
  int span_base = 0;  ///< flight-recorder probe index of step 0
  sched::TraceSupervisor* supervisor = nullptr;  ///< null = paper default
  std::shared_ptr<sched::TraceSupervisor> owned_supervisor;  ///< standalone probes
  netsim::EventHandle watchdog;
  bool finished = false;  ///< set once: completion, skip, or watchdog cancel

  ServerProbe(Vantage& v, wire::Ipv4Address s, ProbeOptions o,
              std::function<void(const ServerResult&)> cb, int base)
      : vantage(v), server(s), options(std::move(o)), handler(std::move(cb)),
        span_base(base) {
    result.server = s;
  }

  /// Stamps the flight-recorder span context for probe step `step`
  /// (0 udp-plain, 1 udp-ect0, 2 tcp-plain, 3 tcp-ecn). Clients bump seq
  /// per attempt; the reset here keys the step's first packet at seq 0.
  void set_span(int step) {
    auto& recorder = vantage.host().network().obs().recorder;
    if (!recorder.armed()) return;
    recorder.set_probe(span_base + step);
    recorder.set_seq(0);
  }

  ntp::NtpQueryOptions udp_options(wire::Ecn ecn, int step) const {
    ntp::NtpQueryOptions q;
    q.ecn = ecn;
    q.max_attempts = options.udp_attempts;
    q.timeout = options.udp_timeout;
    if (supervisor != nullptr && supervisor->adaptive_retry()) {
      q.timeout_schedule = supervisor->retry_schedule(server, step);
      q.max_attempts = static_cast<int>(q.timeout_schedule.size());
      q.hedge_delay = supervisor->config().retry.hedge_delay;
    }
    return q;
  }

  static UdpProbeOutcome to_outcome(const ntp::NtpQueryResult& r) {
    UdpProbeOutcome o;
    o.reachable = r.success;
    o.attempts = r.attempts;
    o.rtt_ms = r.rtt.to_millis();
    return o;
  }

  static TcpProbeOutcome to_outcome(const http::HttpGetResult& r) {
    TcpProbeOutcome o;
    o.connected = r.connected;
    o.ecn_negotiated = r.ecn_negotiated;
    o.got_response = r.got_response;
    o.http_status = r.status;
    return o;
  }

  void after_gap(std::function<void()> fn) {
    vantage.host().network().sim().schedule(options.inter_test_gap, std::move(fn));
  }

  // Probe-outcome accounting. Failed probes are also entered in the drop
  // ledger (cause probe-timeout, node = target server), which is what lets
  // the loss autopsy reconcile exactly with Figure 2's unreachable cells:
  // every failed probe has an attributed cause.
  void record_udp(const char* test, const ntp::NtpQueryResult& r) {
    auto& o = vantage.host().network().obs();
    o.registry.counter("probe_udp_total",
                       {{"test", test}, {"outcome", r.success ? "ok" : "timeout"}},
                       "UDP NTP probe outcomes")->inc();
    o.registry.counter("probe_udp_attempts_total", {{"test", test}},
                       "UDP NTP request transmissions, retries included")
        ->inc(static_cast<std::uint64_t>(r.attempts));
    if (!r.success) {
      o.ledger.record_drop(obs::Layer::Measure, obs::DropCause::ProbeTimeout,
                           server.to_string());
    } else if (o.telemetry.armed()) {
      // Sketched mode folds every successful probe RTT into the log-bucketed
      // histogram; exact mode keeps the registry untouched (byte-compat).
      o.telemetry.observe_rtt(r.rtt);
    }
    if (o.timeseries.armed()) {
      o.timeseries.on_probe(test, r.success ? "ok" : "timeout");
      if (r.success) o.timeseries.observe_rtt(r.rtt);
    }
    if (supervisor != nullptr) {
      supervisor->on_step_result(server, r.success);
      if (supervisor->adaptive_retry()) supervisor->count_attempts(test, r.attempts);
    }
  }

  void record_tcp(const char* test, const http::HttpGetResult& r) {
    auto& o = vantage.host().network().obs();
    o.registry.counter("probe_tcp_total",
                       {{"test", test}, {"outcome", r.connected ? "ok" : "failed"}},
                       "TCP HTTP probe outcomes")->inc();
    if (!r.connected) {
      o.ledger.record_drop(obs::Layer::Measure, obs::DropCause::ProbeTimeout,
                           server.to_string());
      if (o.recorder.armed()) {
        // The TCP stack records each SYN flight; the probe-level give-up is
        // keyed by context (no packet to hang it on).
        o.recorder.record_here(obs::SpanEvent::Timeout,
                               vantage.host().network().sim().now(), obs::Layer::Measure,
                               vantage.name(), 0, std::string("test=") + test);
      }
    }
    if (o.timeseries.armed()) {
      o.timeseries.on_probe(test, r.connected ? "ok" : "failed");
    }
    if (supervisor != nullptr) supervisor->on_step_result(server, r.connected);
  }

  bool any_step_succeeded() const {
    return result.udp_plain.reachable || result.udp_ect0.reachable ||
           result.tcp_plain.connected || result.tcp_ecn.connected;
  }

  void start() {
    if (supervisor != nullptr) {
      arm_watchdog();
      if (!supervisor->allow_server(server)) {
        // The server's AS group tripped its breaker: skip the whole
        // four-step sequence. Every skipped probe step gets a circuit-open
        // attribution so the loss autopsy still accounts for it; the
        // server does NOT count towards probe_servers_total (it was never
        // probed) and does not feed the breaker (only real outcomes do).
        for (int step = 0; step < 4; ++step) supervisor->record_skip(server, "group");
        finished = true;
        watchdog.cancel();
        if (handler) handler(result);
        return;
      }
    }
    run_step(0);
  }

  /// Gate + launch for step `step`; steps >= 4 mean the sequence is done.
  void run_step(int step) {
    if (finished) return;
    if (step >= 4) {
      complete();
      return;
    }
    if (supervisor != nullptr) {
      if (!supervisor->allow_step(server)) {
        // Per-server breaker open: the step is recorded as failed without
        // sending anything, attributed circuit-open. No breaker feedback
        // (a skip is not evidence) and no probe_*_total counters (nothing
        // was probed). The next step follows immediately.
        supervisor->record_skip(server, "server");
        run_step(step + 1);
        return;
      }
      const auto now = vantage.host().network().sim().now();
      const auto launch = supervisor->pace(now, server);
      if (launch > now) {
        auto self = shared_from_this();
        vantage.host().network().sim().schedule(
            launch - now, [self, step]() { self->launch_step(step); });
        return;
      }
    }
    launch_step(step);
  }

  void launch_step(int step) {
    if (finished) return;
    auto self = shared_from_this();
    set_span(step);
    switch (step) {
      case 0:
        // Step 1: NTP request in a not-ECT marked UDP packet.
        vantage.ntp().query(server, udp_options(wire::Ecn::NotEct, 0),
                            [self](const ntp::NtpQueryResult& r) {
                              if (self->finished) return;
                              self->record_udp("udp-plain", r);
                              self->result.udp_plain = to_outcome(r);
                              self->after_gap([self]() { self->run_step(1); });
                            });
        break;
      case 1:
        // Step 2: the same request in an ECT(0) marked packet.
        vantage.ntp().query(server, udp_options(wire::Ecn::Ect0, 1),
                            [self](const ntp::NtpQueryResult& r) {
                              if (self->finished) return;
                              self->record_udp("udp-ect0", r);
                              self->result.udp_ect0 = to_outcome(r);
                              self->after_gap([self]() { self->run_step(2); });
                            });
        break;
      case 2:
        // Step 3: HTTP GET without attempting to negotiate ECN.
        vantage.http().get(server, /*want_ecn=*/false,
                           [self](const http::HttpGetResult& r) {
                             if (self->finished) return;
                             self->record_tcp("tcp-plain", r);
                             self->result.tcp_plain = to_outcome(r);
                             self->after_gap([self]() { self->run_step(3); });
                           },
                           wire::kHttpPort, options.http_deadline);
        break;
      default:
        // Step 4: HTTP GET with an ECN-setup SYN.
        vantage.http().get(server, /*want_ecn=*/true,
                           [self](const http::HttpGetResult& r) {
                             if (self->finished) return;
                             self->record_tcp("tcp-ecn", r);
                             self->result.tcp_ecn = to_outcome(r);
                             self->run_step(4);
                           },
                           wire::kHttpPort, options.http_deadline);
        break;
    }
  }

  void complete() {
    finished = true;
    watchdog.cancel();
    if (supervisor != nullptr) supervisor->on_server_result(server, any_step_succeeded());
    vantage.host().network().obs().registry.counter(
        "probe_servers_total", {{"vantage", vantage.name()}},
        "servers fully probed, per vantage")->inc();
    if (handler) handler(result);
  }

  void arm_watchdog() {
    const auto deadline = supervisor->config().watchdog.deadline;
    if (deadline.count_nanos() <= 0) return;
    auto self = shared_from_this();
    watchdog = vantage.host().network().sim().schedule(
        deadline, [self]() { self->on_watchdog(); });
  }

  void on_watchdog() {
    if (finished) return;
    // The hard deadline fired mid-sequence: cancel the server. Steps still
    // pending stay at their default (failed) outcome; callbacks from any
    // in-flight query find `finished` set and bail, so the stragglers
    // settle silently at the quiescence barrier. The cancellation is
    // attributed in the ledger and named in the flight log so trace-autopsy
    // can show what stalled.
    finished = true;
    auto& o = vantage.host().network().obs();
    o.ledger.record_drop(obs::Layer::Measure, obs::DropCause::WatchdogCancelled,
                         server.to_string());
    if (o.recorder.armed()) {
      o.recorder.record_here(obs::SpanEvent::Timeout,
                             vantage.host().network().sim().now(), obs::Layer::Measure,
                             vantage.name(), 0,
                             "watchdog cancelled server " + server.to_string());
    }
    supervisor->count_watchdog_cancel(vantage.name());
    supervisor->on_server_result(server, any_step_succeeded());
    if (handler) handler(result);
  }
};

}  // namespace

void probe_server(Vantage& vantage, wire::Ipv4Address server, const ProbeOptions& options,
                  std::function<void(const ServerResult&)> handler, int span_base) {
  options.validate();
  auto probe =
      std::make_shared<ServerProbe>(vantage, server, options, std::move(handler), span_base);
  if (!options.sched.is_paper_default()) {
    // Standalone probes get a private single-trace supervisor (salt 0).
    probe->owned_supervisor = std::make_shared<sched::TraceSupervisor>(
        options.sched, vantage.host().network().obs(), options.breaker_group,
        /*trace_salt=*/0);
    probe->supervisor = probe->owned_supervisor.get();
  }
  probe->start();
}

TraceRunner::TraceRunner(Vantage& vantage, std::vector<wire::Ipv4Address> servers,
                         ProbeOptions options)
    : vantage_(vantage), servers_(std::move(servers)), options_(std::move(options)) {
  options_.validate();
}

void TraceRunner::run(int batch, int index, Handler handler) {
  trace_ = Trace{};
  trace_.vantage = vantage_.name();
  trace_.batch = batch;
  trace_.index = index;
  trace_.servers.reserve(servers_.size());
  cursor_ = 0;
  handler_ = std::move(handler);
  supervisor_.reset();
  if (!options_.sched.is_paper_default()) {
    // Trace-scoped: breaker and pacer state restarts cold each trace, so a
    // sharded executor that picks this trace up reproduces it exactly.
    supervisor_ = std::make_shared<sched::TraceSupervisor>(
        options_.sched, vantage_.host().network().obs(), options_.breaker_group,
        static_cast<std::uint64_t>(index));
  }
  next_server();
}

void TraceRunner::next_server() {
  if (cursor_ >= servers_.size()) {
    if (handler_) handler_(std::move(trace_));
    return;
  }
  const int span_base = static_cast<int>(cursor_) * 4;
  const auto server = servers_[cursor_++];
  auto probe = std::make_shared<ServerProbe>(
      vantage_, server, options_,
      [this](const ServerResult& result) {
        trace_.servers.push_back(result);
        next_server();
      },
      span_base);
  probe->supervisor = supervisor_.get();
  probe->start();
}

TracerouteRunner::TracerouteRunner(Vantage& vantage,
                                   std::vector<wire::Ipv4Address> servers,
                                   traceroute::TracerouteOptions options, int repetitions)
    : vantage_(vantage),
      servers_(std::move(servers)),
      options_(options),
      repetitions_(repetitions) {}

void TracerouteRunner::run(Handler handler) {
  handler_ = std::move(handler);
  cursor_ = 0;
  repetition_ = 0;
  observations_.clear();
  next();
}

void TracerouteRunner::next() {
  if (cursor_ >= servers_.size()) {
    if (handler_) handler_(std::move(observations_));
    return;
  }
  const auto server = servers_[cursor_];
  vantage_.tracer().trace(server, options_, [this](const traceroute::PathRecord& path) {
    TracerouteObservation obs;
    obs.vantage = vantage_.name();
    obs.repetition = repetition_;
    obs.path = path;
    observations_.push_back(std::move(obs));
    if (++repetition_ >= repetitions_) {
      repetition_ = 0;
      ++cursor_;
    }
    next();
  });
}

}  // namespace ecnprobe::measure
