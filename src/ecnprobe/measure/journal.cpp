#include "ecnprobe/measure/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "ecnprobe/obs/codec.hpp"
#include "ecnprobe/util/hash.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::measure {
namespace {

// Separates the trace record from its obs delta inside one payload.
constexpr char kUnitSeparator = '\x1e';

std::string hex64(std::uint64_t v) {
  return util::strf("%016llx", static_cast<unsigned long long>(v));
}

bool parse_u64_tok(const std::string& tok, std::uint64_t* out, int base = 10) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, base);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_int_tok(const std::string& tok, int* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || v < -(1l << 30) || v > (1l << 30)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

// RTTs round-trip as raw IEEE-754 bits: the replayed Trace is not merely
// close to the live one, it is the same object bit for bit.
std::string rtt_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return hex64(bits);
}

bool parse_rtt_bits(const std::string& tok, double* out) {
  std::uint64_t bits = 0;
  if (!parse_u64_tok(tok, &bits, 16)) return false;
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

void encode_udp(std::string& out, const UdpProbeOutcome& udp) {
  out += util::strf(" %d %d ", udp.reachable ? 1 : 0, udp.attempts);
  out += rtt_bits(udp.rtt_ms);
}

void encode_tcp(std::string& out, const TcpProbeOutcome& tcp) {
  out += util::strf(" %d %d %d %d", tcp.connected ? 1 : 0, tcp.ecn_negotiated ? 1 : 0,
                    tcp.got_response ? 1 : 0, tcp.http_status);
}

std::string encode_trace(const Trace& trace) {
  std::string out = obs::escape_token(trace.vantage);
  out += util::strf(" %d %d %zu", trace.batch, trace.index, trace.servers.size());
  for (const auto& server : trace.servers) {
    out += util::strf(" %u", server.server.value());
    encode_udp(out, server.udp_plain);
    encode_udp(out, server.udp_ect0);
    encode_tcp(out, server.tcp_plain);
    encode_tcp(out, server.tcp_ecn);
  }
  return out;
}

struct TokenCursor {
  std::vector<std::string> toks;
  std::size_t next = 0;

  bool take(std::string* out) {
    if (next >= toks.size()) return false;
    *out = toks[next++];
    return true;
  }
  bool take_int(int* out) {
    std::string tok;
    return take(&tok) && parse_int_tok(tok, out);
  }
  bool take_bool(bool* out) {
    int v = 0;
    if (!take_int(&v) || (v != 0 && v != 1)) return false;
    *out = v == 1;
    return true;
  }
};

bool decode_udp(TokenCursor& cur, UdpProbeOutcome* udp) {
  std::string tok;
  return cur.take_bool(&udp->reachable) && cur.take_int(&udp->attempts) &&
         cur.take(&tok) && parse_rtt_bits(tok, &udp->rtt_ms);
}

bool decode_tcp(TokenCursor& cur, TcpProbeOutcome* tcp) {
  return cur.take_bool(&tcp->connected) && cur.take_bool(&tcp->ecn_negotiated) &&
         cur.take_bool(&tcp->got_response) && cur.take_int(&tcp->http_status);
}

bool decode_trace(const std::string& text, Trace* out) {
  TokenCursor cur;
  cur.toks = util::split(text, ' ');
  std::string vantage_tok;
  int nservers = 0;
  if (!cur.take(&vantage_tok)) return false;
  const auto vantage = obs::unescape_token(vantage_tok);
  if (!vantage) return false;
  out->vantage = *vantage;
  if (!cur.take_int(&out->batch) || !cur.take_int(&out->index) ||
      !cur.take_int(&nservers) || nservers < 0) {
    return false;
  }
  out->servers.clear();
  out->servers.reserve(static_cast<std::size_t>(nservers));
  for (int i = 0; i < nservers; ++i) {
    ServerResult server;
    std::string addr_tok;
    std::uint64_t addr = 0;
    if (!cur.take(&addr_tok) || !parse_u64_tok(addr_tok, &addr) || addr > 0xffffffffull) {
      return false;
    }
    server.server = wire::Ipv4Address(static_cast<std::uint32_t>(addr));
    if (!decode_udp(cur, &server.udp_plain) || !decode_udp(cur, &server.udp_ect0) ||
        !decode_tcp(cur, &server.tcp_plain) || !decode_tcp(cur, &server.tcp_ecn)) {
      return false;
    }
    out->servers.push_back(std::move(server));
  }
  return cur.next == cur.toks.size();
}

std::string header_line(const JournalMeta& meta) {
  return util::strf("ecnprobe-journal v1 plan=%s faults=%s seed=%llu traces=%d servers=%d",
                    obs::escape_token(meta.plan).c_str(),
                    obs::escape_token(meta.faults).c_str(),
                    static_cast<unsigned long long>(meta.seed), meta.total_traces,
                    meta.server_count);
}

std::string record_line(int index, const Trace& trace, const obs::ObsSnapshot& delta) {
  std::string payload = encode_trace(trace);
  payload.push_back(kUnitSeparator);
  payload += obs::encode_obs(delta);
  const std::string token = obs::escape_token(payload);
  return util::strf("T %d %s %s", index, hex64(util::fnv1a64(token)).c_str(),
                    token.c_str());
}

}  // namespace

std::string plan_fingerprint(const CampaignPlan& plan) {
  std::string canon;
  for (const auto& entry : plan.entries) {
    canon += entry.vantage;
    canon += util::strf("|%d|%d;", entry.batch, entry.count);
  }
  return hex64(util::fnv1a64(canon));
}

bool CampaignJournal::open(const std::string& path, const JournalMeta& meta,
                           std::string* error) {
  meta_ = meta;
  path_ = path;
  entries_.clear();
  const std::string expected_header = header_line(meta);

  // Sweep any temp file a crash mid-rotate() left behind. The rename in
  // rotate() is the commit point: until it happens the real journal is
  // complete and authoritative, so the temp is garbage by definition.
  std::remove((path + ".tmp").c_str());

  std::ifstream in(path);
  if (in.is_open()) {
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      if (line_no == 1) {
        if (line != expected_header) {
          if (error != nullptr) {
            *error = "journal " + path + " belongs to a different campaign\n  have: " +
                     line + "\n  want: " + expected_header;
          }
          return false;
        }
        continue;
      }
      const auto fail = [&](const std::string& what) {
        if (error != nullptr) {
          *error = "journal " + path + " line " + std::to_string(line_no) + ": " + what;
        }
        return false;
      };
      TokenCursor cur;
      cur.toks = util::split(line, ' ');
      std::string tag, checksum_tok, payload_tok;
      int index = 0;
      if (!cur.take(&tag) || tag != "T") return fail("unknown record tag");
      if (!cur.take_int(&index) || index < 0 || index >= meta.total_traces) {
        return fail("bad trace index");
      }
      if (!cur.take(&checksum_tok) || !cur.take(&payload_tok) || cur.next != cur.toks.size()) {
        return fail("malformed record");
      }
      // Compare against the canonical rendering, not the parsed value: a
      // case-flipped or re-padded hex token parses to the same number but
      // is not a byte the writer ever produced, so it still means the
      // line was altered after it was written.
      if (checksum_tok != hex64(util::fnv1a64(payload_tok))) {
        return fail("checksum mismatch (corrupt entry for trace " + std::to_string(index) +
                    "; refusing to replay it)");
      }
      const auto payload = obs::unescape_token(payload_tok);
      if (!payload) return fail("bad payload escape");
      const auto sep = payload->find(kUnitSeparator);
      if (sep == std::string::npos) return fail("payload missing delta separator");
      Entry entry;
      if (!decode_trace(payload->substr(0, sep), &entry.trace)) {
        return fail("undecodable trace record");
      }
      auto delta = obs::decode_obs(payload->substr(sep + 1));
      if (!delta) return fail("undecodable metrics delta: " + delta.error().message);
      if (entry.trace.index != index) return fail("trace index disagrees with record");
      entry.delta = std::move(*delta);
      entries_[index] = std::move(entry);
    }
    if (line_no == 0) {
      // Zero-length file (e.g. created by a crash before the header flush):
      // treat as fresh.
      in.close();
      out_.open(path, std::ios::trunc);
      if (!out_.is_open()) {
        if (error != nullptr) *error = "cannot write journal " + path;
        return false;
      }
      out_ << expected_header << '\n' << std::flush;
      return true;
    }
    in.close();
    out_.open(path, std::ios::app);
    if (!out_.is_open()) {
      if (error != nullptr) *error = "cannot append to journal " + path;
      return false;
    }
    return true;
  }

  out_.open(path, std::ios::trunc);
  if (!out_.is_open()) {
    if (error != nullptr) *error = "cannot create journal " + path;
    return false;
  }
  out_ << expected_header << '\n' << std::flush;
  return true;
}

bool CampaignJournal::append(const Trace& trace, const obs::ObsSnapshot& delta) {
  if (!out_.is_open()) return false;
  if (entries_.count(trace.index) != 0) return true;  // replayed: already durable
  out_ << record_line(trace.index, trace, delta) << '\n' << std::flush;
  entries_[trace.index] = Entry{trace, delta};
  return out_.good();
}

bool CampaignJournal::rotate(std::string* error) {
  if (!out_.is_open()) {
    if (error != nullptr) *error = "journal not open";
    return false;
  }
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream tmp_out(tmp, std::ios::trunc);
    if (!tmp_out.is_open()) {
      if (error != nullptr) *error = "cannot create rotation temp " + tmp;
      return false;
    }
    tmp_out << header_line(meta_) << '\n';
    for (const auto& [index, entry] : entries_) {
      tmp_out << record_line(index, entry.trace, entry.delta) << '\n';
    }
    tmp_out.flush();
    if (!tmp_out.good()) {
      if (error != nullptr) *error = "short write rotating journal to " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  // The commit point. rename(2) is atomic within a filesystem: a reader
  // (or a crash) sees either the old journal or the new one, whole.
  out_.close();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " over " + path_ + ": " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    out_.open(path_, std::ios::app);  // keep the original journal appendable
    return false;
  }
  out_.open(path_, std::ios::app);
  if (!out_.is_open()) {
    if (error != nullptr) *error = "cannot reopen rotated journal " + path_;
    return false;
  }
  return true;
}

}  // namespace ecnprobe::measure
