#include "ecnprobe/measure/results.hpp"

#include <istream>
#include <ostream>

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/util/table.hpp"

namespace ecnprobe::measure {

int Trace::reachable_udp_plain() const {
  int n = 0;
  for (const auto& s : servers) n += s.udp_plain.reachable ? 1 : 0;
  return n;
}

int Trace::reachable_udp_ect0() const {
  int n = 0;
  for (const auto& s : servers) n += s.udp_ect0.reachable ? 1 : 0;
  return n;
}

int Trace::reachable_tcp() const {
  int n = 0;
  for (const auto& s : servers) n += s.tcp_plain.got_response ? 1 : 0;
  return n;
}

int Trace::negotiated_ecn_tcp() const {
  int n = 0;
  for (const auto& s : servers) {
    n += (s.tcp_ecn.connected && s.tcp_ecn.ecn_negotiated) ? 1 : 0;
  }
  return n;
}

double Trace::pct_ect_given_plain() const {
  int plain = 0;
  int both = 0;
  for (const auto& s : servers) {
    if (!s.udp_plain.reachable) continue;
    ++plain;
    if (s.udp_ect0.reachable) ++both;
  }
  return plain == 0 ? 0.0 : 100.0 * both / plain;
}

double Trace::pct_plain_given_ect() const {
  int ect = 0;
  int both = 0;
  for (const auto& s : servers) {
    if (!s.udp_ect0.reachable) continue;
    ++ect;
    if (s.udp_plain.reachable) ++both;
  }
  return ect == 0 ? 0.0 : 100.0 * both / ect;
}

int Trace::unreachable_udp_with_ect() const {
  int n = 0;
  for (const auto& s : servers) {
    n += (s.udp_plain.reachable && !s.udp_ect0.reachable) ? 1 : 0;
  }
  return n;
}

void write_traces_csv(std::ostream& os, const std::vector<Trace>& traces) {
  util::CsvWriter csv(os);
  csv.write_row({"vantage", "batch", "trace", "server", "udp_plain", "udp_plain_tries",
                 "udp_ect0", "udp_ect0_tries", "tcp_conn", "tcp_resp", "tcp_status",
                 "tcpecn_conn", "tcpecn_negotiated", "tcpecn_resp", "tcpecn_status"});
  for (const auto& trace : traces) {
    for (const auto& s : trace.servers) {
      csv.write_row({trace.vantage, std::to_string(trace.batch),
                     std::to_string(trace.index), s.server.to_string(),
                     std::to_string(s.udp_plain.reachable ? 1 : 0),
                     std::to_string(s.udp_plain.attempts),
                     std::to_string(s.udp_ect0.reachable ? 1 : 0),
                     std::to_string(s.udp_ect0.attempts),
                     std::to_string(s.tcp_plain.connected ? 1 : 0),
                     std::to_string(s.tcp_plain.got_response ? 1 : 0),
                     std::to_string(s.tcp_plain.http_status),
                     std::to_string(s.tcp_ecn.connected ? 1 : 0),
                     std::to_string(s.tcp_ecn.ecn_negotiated ? 1 : 0),
                     std::to_string(s.tcp_ecn.got_response ? 1 : 0),
                     std::to_string(s.tcp_ecn.http_status)});
    }
  }
}

util::Expected<std::vector<Trace>> read_traces_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return util::make_error("csv", "empty input");
  std::vector<Trace> traces;
  Trace* current = nullptr;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (util::trim(line).empty()) continue;
    const auto cells = util::split(util::trim(line), ',');
    if (cells.size() != 15) {
      return util::make_error("csv", util::strf("line %zu: expected 15 fields, got %zu",
                                                line_no, cells.size()));
    }
    const std::string& vantage = cells[0];
    const int batch = std::atoi(cells[1].c_str());
    const int index = std::atoi(cells[2].c_str());
    if (current == nullptr || current->vantage != vantage || current->index != index ||
        current->batch != batch) {
      traces.push_back(Trace{vantage, batch, index, {}});
      current = &traces.back();
    }
    auto addr = wire::Ipv4Address::parse(cells[3]);
    if (!addr) return util::make_error("csv", util::strf("line %zu: bad address", line_no));
    ServerResult s;
    s.server = *addr;
    s.udp_plain.reachable = cells[4] == "1";
    s.udp_plain.attempts = std::atoi(cells[5].c_str());
    s.udp_ect0.reachable = cells[6] == "1";
    s.udp_ect0.attempts = std::atoi(cells[7].c_str());
    s.tcp_plain.connected = cells[8] == "1";
    s.tcp_plain.got_response = cells[9] == "1";
    s.tcp_plain.http_status = std::atoi(cells[10].c_str());
    s.tcp_ecn.connected = cells[11] == "1";
    s.tcp_ecn.ecn_negotiated = cells[12] == "1";
    s.tcp_ecn.got_response = cells[13] == "1";
    s.tcp_ecn.http_status = std::atoi(cells[14].c_str());
    current->servers.push_back(s);
  }
  return traces;
}

}  // namespace ecnprobe::measure
