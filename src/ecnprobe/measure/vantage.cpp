#include "ecnprobe/measure/vantage.hpp"

namespace ecnprobe::measure {

Vantage::Vantage(std::string name, netsim::Host& host, ntp::SimClock clock,
                 tcp::TcpConfig tcp_config)
    : name_(std::move(name)),
      host_(host),
      ntp_client_(host, clock),
      tcp_stack_(host, tcp_config),
      http_client_(tcp_stack_) {
  host_.add_capture(&capture_);
}

Vantage::~Vantage() { host_.remove_capture(&capture_); }

traceroute::Tracerouter& Vantage::tracer() {
  if (!tracer_) tracer_ = std::make_unique<traceroute::Tracerouter>(host_);
  return *tracer_;
}

}  // namespace ecnprobe::measure
