#include "ecnprobe/measure/parallel_campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "ecnprobe/util/thread_pool.hpp"

namespace ecnprobe::measure {

struct ParallelCampaign::Worker {
  std::unique_ptr<CampaignShard> shard;
  std::map<std::string, Vantage*> vantages;
  std::vector<wire::Ipv4Address> servers;
};

ParallelCampaign::ParallelCampaign(ShardFactory factory, Options options)
    : factory_(std::move(factory)), options_(options) {
  if (!factory_) throw std::invalid_argument("ParallelCampaign: null shard factory");
  if (options_.workers < 1) options_.workers = 1;
}

void ParallelCampaign::run_one(Worker& worker, const std::vector<PlannedTrace>& schedule,
                               int index, std::vector<std::unique_ptr<Trace>>& slots) {
  const auto& planned = schedule[static_cast<std::size_t>(index)];
  try {
    worker.shard->begin_trace(planned.vantage, planned.batch, index);
    if (observer_) {
      std::lock_guard<std::mutex> lock(observer_mutex_);
      observer_(planned.vantage, planned.batch, index);
    }
    const auto it = worker.vantages.find(planned.vantage);
    if (it == worker.vantages.end()) {
      throw std::invalid_argument("ParallelCampaign: unknown vantage " + planned.vantage);
    }
    Vantage* vantage = it->second;
    vantage->capture().clear();
    TraceRunner runner(*vantage, worker.servers, options_.probe);
    std::unique_ptr<Trace> result;
    runner.run(planned.batch, index,
               [&result](Trace trace) { result = std::make_unique<Trace>(std::move(trace)); });
    worker.shard->sim().run();
    if (!result) throw std::runtime_error("ParallelCampaign: trace stalled");
    // Distinct slot per trace index: no lock needed for the write.
    slots[static_cast<std::size_t>(index)] = std::move(result);
    completed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    // Abandoned events may reference objects the unwinding destroyed (the
    // TraceRunner above); they must never fire. The epoch reset at the next
    // begin_trace() restores the world's behavioural state.
    worker.shard->sim().clear_pending();
    std::lock_guard<std::mutex> lock(failures_mutex_);
    failures_.push_back({index, planned.vantage, planned.batch, e.what()});
  }
}

std::vector<Trace> ParallelCampaign::run(const CampaignPlan& plan) {
  const auto schedule = expand_schedule(plan);
  failures_.clear();
  completed_.store(0, std::memory_order_relaxed);

  std::vector<std::unique_ptr<Trace>> slots(schedule.size());
  std::atomic<std::size_t> next{0};
  {
    util::ThreadPool pool(options_.workers);
    for (int w = 0; w < options_.workers; ++w) {
      pool.submit([&, w] {
        Worker worker;
        try {
          worker.shard = factory_(w);
          worker.vantages = worker.shard->vantages();
          worker.servers = worker.shard->servers();
        } catch (const std::exception& e) {
          // A worker that cannot build its world contributes nothing; the
          // shared queue lets the surviving workers absorb its share.
          std::lock_guard<std::mutex> lock(failures_mutex_);
          failures_.push_back({-1, "<worker " + std::to_string(w) + ">", 0, e.what()});
          return;
        }
        for (;;) {
          const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
          if (index >= schedule.size()) break;
          run_one(worker, schedule, static_cast<int>(index), slots);
        }
      });
    }
    pool.wait_idle();
  }

  std::sort(failures_.begin(), failures_.end(),
            [](const TraceFailure& a, const TraceFailure& b) { return a.index < b.index; });

  // Merge back into plan order; failed traces leave no hole and no
  // duplicate -- their slot is simply empty.
  std::vector<Trace> merged;
  merged.reserve(slots.size());
  for (auto& slot : slots) {
    if (slot) merged.push_back(std::move(*slot));
  }
  return merged;
}

}  // namespace ecnprobe::measure
