#include "ecnprobe/measure/parallel_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "ecnprobe/obs/event_stream.hpp"
#include "ecnprobe/obs/profiler.hpp"
#include "ecnprobe/util/arena.hpp"
#include "ecnprobe/util/thread_pool.hpp"

namespace ecnprobe::measure {

struct ParallelCampaign::Worker {
  std::unique_ptr<CampaignShard> shard;
  std::map<std::string, Vantage*> vantages;
  std::vector<wire::Ipv4Address> servers;
  obs::Counter* busy_micros = nullptr;
  obs::Counter* traces = nullptr;
};

ParallelCampaign::ParallelCampaign(ShardFactory factory, Options options)
    : factory_(std::move(factory)), options_(options) {
  if (!factory_) throw std::invalid_argument("ParallelCampaign: null shard factory");
  if (options_.workers < 1) options_.workers = 1;
}

void ParallelCampaign::commit_delta(int index, PendingDelta delta) {
  std::lock_guard<std::mutex> lock(merge_mutex_);
  pending_.emplace(index, std::move(delta));
  // Fold the contiguous ready prefix and release it. Claims are strictly
  // increasing, so at most ~workers deltas wait here at any moment; the
  // campaign totals themselves live in fixed-size structures (metric sums,
  // sketches), never in per-trace retained snapshots.
  for (auto it = pending_.find(next_merge_); it != pending_.end();
       it = pending_.find(next_merge_)) {
    auto& ready = it->second;
    merged_metrics_.metrics.merge(ready.obs.metrics);
    merged_metrics_.ledger.merge(ready.obs.ledger);
    merged_metrics_.timeseries.merge(ready.obs.timeseries);
    telemetry_.fold(ready.obs.telemetry);
    flight_events_.insert(flight_events_.end(),
                          std::make_move_iterator(ready.events.begin()),
                          std::make_move_iterator(ready.events.end()));
    pending_.erase(it);
    ++next_merge_;
  }
}

void ParallelCampaign::flush_pending() {
  // Holes in the index space (halt_after_traces abandons claimed indices,
  // journal prefill can start above zero) stall the prefix walk; once the
  // pool is idle no more commits arrive, so fold the stragglers in index
  // order -- std::map iteration is already ascending.
  std::lock_guard<std::mutex> lock(merge_mutex_);
  for (auto& [index, ready] : pending_) {
    merged_metrics_.metrics.merge(ready.obs.metrics);
    merged_metrics_.ledger.merge(ready.obs.ledger);
    merged_metrics_.timeseries.merge(ready.obs.timeseries);
    telemetry_.fold(ready.obs.telemetry);
    flight_events_.insert(flight_events_.end(),
                          std::make_move_iterator(ready.events.begin()),
                          std::make_move_iterator(ready.events.end()));
  }
  pending_.clear();
}

void ParallelCampaign::run_one(Worker& worker, const std::vector<PlannedTrace>& schedule,
                               int index, std::vector<std::unique_ptr<Trace>>& slots) {
  if (slots[static_cast<std::size_t>(index)]) {
    // A filled slot means this trace was already replayed from the journal;
    // running it again would merge its metrics delta twice.
    throw std::logic_error(
        "ParallelCampaign::run_one: trace " + std::to_string(index) +
        " already has a result (journal replay raced a live claim?)");
  }
  const auto& planned = schedule[static_cast<std::size_t>(index)];
  auto* in_flight =
      runtime_.gauge("campaign_in_flight", {{"vantage", planned.vantage}},
                     "traces currently executing, per vantage");
  in_flight->add(1);
  try {
    {
      obs::Profiler::Scope plan_scope("plan");
      worker.shard->begin_trace(planned.vantage, planned.batch, index);
    }
    if (observer_) {
      std::lock_guard<std::mutex> lock(observer_mutex_);
      observer_(planned.vantage, planned.batch, index);
    }
    const auto it = worker.vantages.find(planned.vantage);
    if (it == worker.vantages.end()) {
      throw std::invalid_argument("ParallelCampaign: unknown vantage " + planned.vantage);
    }
    Vantage* vantage = it->second;
    vantage->capture().clear();
    ProbeOptions probe = options_.probe;
    if (probe.sched.breaker.enabled) {
      // Group resolution must consult this worker's own world clone; a
      // resolver captured from the coordinating world would race it.
      if (auto groups = worker.shard->breaker_group()) probe.breaker_group = std::move(groups);
    }
    TraceRunner runner(*vantage, worker.servers, probe);
    std::unique_ptr<Trace> result;
    {
      obs::Profiler::Scope probe_scope("probe");
      runner.run(planned.batch, index,
                 [&result](Trace trace) { result = std::make_unique<Trace>(std::move(trace)); });
      worker.shard->sim().run();
    }
    auto& profiler = obs::Profiler::process();
    if (profiler.enabled()) {
      profiler.gauge_max("sim_queue_depth_high_water",
                         static_cast<std::int64_t>(
                             worker.shard->sim().events_high_water()));
      const auto& pool = util::BufferPool::this_thread();
      profiler.gauge_max("buffer_pool_outstanding_high_water",
                         static_cast<std::int64_t>(pool.outstanding_high_water()));
      profiler.gauge_max("buffer_pool_free_high_water",
                         static_cast<std::int64_t>(pool.free_count()));
    }
    if (!result) throw std::runtime_error("ParallelCampaign: trace stalled");
    // The delta is collected after full quiescence, so straggler events
    // (TIME_WAIT timers, late responses) land in this trace's delta -- the
    // same attribution the sequential campaign's epoch boundaries produce.
    PendingDelta delta;
    delta.obs = worker.shard->collect_trace_metrics();
    delta.events = worker.shard->collect_trace_events();
    if (journal_ != nullptr) {
      // Write-ahead: the trace is durable before it counts as complete.
      obs::Profiler::Scope journal_scope("journal");
      std::lock_guard<std::mutex> lock(journal_mutex_);
      journal_->append(*result, delta.obs);
      auto& stream = obs::EventStream::process();
      if (stream.enabled()) {
        stream.emit("checkpoint", "trace=" + std::to_string(index) +
                                      " vantage=" + planned.vantage);
      }
    }
    slots[static_cast<std::size_t>(index)] = std::move(result);
    {
      obs::Profiler::Scope merge_scope("merge");
      commit_delta(index, std::move(delta));
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    runtime_.counter("campaign_completed_total", {{"vantage", planned.vantage}},
                     "traces finished, per vantage")->inc();
  } catch (const std::exception& e) {
    // Abandoned events may reference objects the unwinding destroyed (the
    // TraceRunner above); they must never fire. The epoch reset at the next
    // begin_trace() restores the world's behavioural state.
    worker.shard->sim().clear_pending();
    // Quarantine: the shard attributes the loss in its drop ledger, and the
    // partial delta (including that attribution) still merges in plan order
    // -- so the failed trace shows up in the report, not as a silent hole.
    worker.shard->quarantine_trace(planned.vantage, planned.batch, index);
    auto& stream = obs::EventStream::process();
    if (stream.enabled()) {
      stream.emit("quarantine", "trace=" + std::to_string(index) +
                                    " vantage=" + planned.vantage +
                                    " error=" + e.what());
    }
    PendingDelta delta;
    delta.obs = worker.shard->collect_trace_metrics();
    delta.events = worker.shard->collect_trace_events();
    commit_delta(index, std::move(delta));
    runtime_.counter("campaign_failed_total", {{"vantage", planned.vantage}},
                     "traces that threw, per vantage")->inc();
    std::lock_guard<std::mutex> lock(failures_mutex_);
    failures_.push_back({index, planned.vantage, planned.batch, e.what()});
  }
  in_flight->add(-1);
}

ParallelCampaign::Progress ParallelCampaign::progress() const {
  Progress p;
  p.total = total_.load(std::memory_order_relaxed);
  p.completed = completed_.load(std::memory_order_relaxed);
  const auto snap = runtime_.snapshot();
  if (const auto fit = snap.families.find("campaign_failed_total");
      fit != snap.families.end()) {
    for (const auto& [labels, value] : fit->second.samples) {
      p.failed += static_cast<int>(value.counter);
    }
  }
  if (const auto git = snap.families.find("campaign_in_flight");
      git != snap.families.end()) {
    for (const auto& [labels, value] : git->second.samples) {
      p.in_flight += static_cast<int>(value.gauge);
    }
  }
  if (const auto cit = snap.families.find("campaign_completed_total");
      cit != snap.families.end()) {
    for (const auto& [labels, value] : cit->second.samples) {
      const auto vit = labels.find("vantage");
      if (vit != labels.end()) {
        p.completed_by_vantage[vit->second] += static_cast<int>(value.counter);
      }
    }
  }
  return p;
}

std::vector<Trace> ParallelCampaign::run(const CampaignPlan& plan) {
  const auto schedule = expand_schedule(plan);
  failures_.clear();
  completed_.store(0, std::memory_order_relaxed);
  total_.store(static_cast<int>(schedule.size()), std::memory_order_relaxed);
  merged_metrics_ = {};
  flight_events_.clear();
  telemetry_ = options_.telemetry.sketched()
                   ? obs::TelemetryAggregate(options_.telemetry.resolved(options_.telemetry.seed))
                   : obs::TelemetryAggregate{};
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    pending_.clear();
    next_merge_ = 0;
  }

  std::vector<std::unique_ptr<Trace>> slots(schedule.size());
  if (journal_ != nullptr) {
    // Checkpoint replay: journaled traces prefill their slots and count as
    // completed; the claim loop below skips them. Their deltas enter the
    // same streaming merger as live traces, so fold order stays plan order.
    int prefilled = 0;
    for (const auto& [index, entry] : journal_->entries()) {
      if (index < 0 || static_cast<std::size_t>(index) >= schedule.size()) continue;
      slots[static_cast<std::size_t>(index)] = std::make_unique<Trace>(entry.trace);
      commit_delta(index, PendingDelta{entry.delta, {}});
      ++prefilled;
    }
    completed_.store(prefilled, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> next{0};
  std::atomic<int> live_claimed{0};
  {
    util::ThreadPool pool(options_.workers);
    for (int w = 0; w < options_.workers; ++w) {
      pool.submit([&, w] {
        Worker worker;
        worker.busy_micros =
            runtime_.counter("worker_busy_micros_total", {{"worker", std::to_string(w)}},
                             "microseconds spent executing traces, per worker");
        worker.traces =
            runtime_.counter("worker_traces_total", {{"worker", std::to_string(w)}},
                             "traces claimed, per worker");
        try {
          worker.shard = factory_(w);
          worker.vantages = worker.shard->vantages();
          worker.servers = worker.shard->servers();
        } catch (const std::exception& e) {
          // A worker that cannot build its world contributes nothing; the
          // shared queue lets the surviving workers absorb its share.
          std::lock_guard<std::mutex> lock(failures_mutex_);
          failures_.push_back({-1, "<worker " + std::to_string(w) + ">", 0, e.what()});
          return;
        }
        for (;;) {
          if (halt_requested_.load(std::memory_order_relaxed)) {
            // External cancel (watchdog / drain): same contract as the
            // simulated crash below -- stop claiming, keep what was
            // journaled, let a resume run finish the plan.
            break;
          }
          const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
          if (index >= schedule.size()) break;
          if (slots[index]) continue;  // replayed from the journal
          if (options_.halt_after_traces > 0 &&
              live_claimed.fetch_add(1, std::memory_order_relaxed) >=
                  options_.halt_after_traces) {
            // Simulated crash: this worker stops claiming. Which indices got
            // journaled depends on scheduling, but a --resume run completes
            // the rest, and the final merged output is index-keyed -- so it
            // is byte-identical to an uninterrupted run regardless.
            break;
          }
          const auto started = std::chrono::steady_clock::now();
          run_one(worker, schedule, static_cast<int>(index), slots);
          const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started);
          worker.busy_micros->inc(static_cast<std::uint64_t>(elapsed.count()));
          worker.traces->inc();
        }
      });
    }
    pool.wait_idle();
  }

  std::sort(failures_.begin(), failures_.end(),
            [](const TraceFailure& a, const TraceFailure& b) { return a.index < b.index; });

  // Deltas were folded in plan order by the streaming merger as traces
  // finished (commutative integer sums + order-pinned sketch folds), so
  // the totals are byte-identical to the sequential campaign's at any
  // worker count; only halt-induced holes remain parked.
  flush_pending();

  // Merge results back into plan order; failed traces leave no hole and no
  // duplicate -- their slot is simply empty.
  std::vector<Trace> merged;
  merged.reserve(slots.size());
  for (auto& slot : slots) {
    if (slot) merged.push_back(std::move(*slot));
  }
  return merged;
}

}  // namespace ecnprobe::measure
