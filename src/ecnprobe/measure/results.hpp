// Result records for the measurement campaign: one ServerResult per target
// per trace (four probes: UDP, UDP+ECT(0), TCP, TCP+ECN), one Trace per
// vantage-point pass over the full server list, and traceroute observations.
// CSV import/export mirrors the paper's published dataset so analyses can be
// re-run offline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ecnprobe/traceroute/traceroute.hpp"
#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/util/time.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::measure {

struct UdpProbeOutcome {
  bool reachable = false;
  int attempts = 0;   ///< requests sent (<=5)
  double rtt_ms = 0;  ///< of the successful attempt
};

struct TcpProbeOutcome {
  bool connected = false;       ///< handshake completed
  bool ecn_negotiated = false;  ///< ECN-setup SYN-ACK received
  bool got_response = false;    ///< HTTP response parsed
  int http_status = 0;
};

struct ServerResult {
  wire::Ipv4Address server;
  UdpProbeOutcome udp_plain;  ///< not-ECT marked NTP request
  UdpProbeOutcome udp_ect0;   ///< ECT(0) marked NTP request
  TcpProbeOutcome tcp_plain;  ///< HTTP GET, normal SYN
  TcpProbeOutcome tcp_ecn;    ///< HTTP GET, ECN-setup SYN
};

struct Trace {
  std::string vantage;
  int batch = 1;  ///< 1 = Apr/May 2015, 2 = Jul/Aug 2015
  int index = 0;  ///< trace sequence number within the campaign
  std::vector<ServerResult> servers;

  // -- per-trace summaries used throughout Section 4 ----------------------
  int reachable_udp_plain() const;
  int reachable_udp_ect0() const;
  int reachable_tcp() const;
  int negotiated_ecn_tcp() const;
  /// Figure 2a: % of not-ECT-reachable servers also ECT(0)-reachable.
  double pct_ect_given_plain() const;
  /// Figure 2b: % of ECT(0)-reachable servers also not-ECT-reachable.
  double pct_plain_given_ect() const;
  /// Table 2 row input: servers reachable plain-UDP but not ECT(0)-UDP.
  int unreachable_udp_with_ect() const;
};

/// One repetition of a traceroute from a vantage point to a server.
struct TracerouteObservation {
  std::string vantage;
  int repetition = 0;
  traceroute::PathRecord path;
};

// -- CSV round-trip ---------------------------------------------------------

/// Header: vantage,batch,trace,server,udp_plain,udp_plain_tries,udp_ect0,
/// udp_ect0_tries,tcp_conn,tcp_resp,tcp_status,tcpecn_conn,tcpecn_negotiated,
/// tcpecn_resp,tcpecn_status
void write_traces_csv(std::ostream& os, const std::vector<Trace>& traces);
util::Expected<std::vector<Trace>> read_traces_csv(std::istream& is);

}  // namespace ecnprobe::measure
