#include "ecnprobe/measure/campaign.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecnprobe::measure {

int CampaignPlan::total_traces() const {
  int total = 0;
  for (const auto& entry : entries) total += entry.count;
  return total;
}

const std::vector<std::string>& paper_vantage_names() {
  static const std::vector<std::string> kNames = {
      "Perkins home", "McQuistin home", "UGla wired", "UGla wless",
      "EC2 Cal",      "EC2 Fra",        "EC2 Ire",    "EC2 Ore",
      "EC2 Sao",      "EC2 Sin",        "EC2 Syd",    "EC2 Tok",
      "EC2 Vir",
  };
  return kNames;
}

CampaignPlan CampaignPlan::paper_layout(int home_batch1, int home_batch2, int ec2_traces) {
  // 4 home/campus vantages x (9 + 12) + 9 EC2 regions x 14 = 84 + 126 = 210.
  CampaignPlan plan;
  const auto& names = paper_vantage_names();
  for (int i = 0; i < 4; ++i) {
    plan.entries.push_back({names[static_cast<std::size_t>(i)], 1, home_batch1});
  }
  for (int i = 0; i < 4; ++i) {
    plan.entries.push_back({names[static_cast<std::size_t>(i)], 2, home_batch2});
  }
  for (std::size_t i = 4; i < names.size(); ++i) {
    plan.entries.push_back({names[i], 2, ec2_traces});
  }
  return plan;
}

CampaignPlan CampaignPlan::for_scale(double scale, int traces_override) {
  if (traces_override > 0) {
    // Uniform override: N traces spread over the 13 vantage points, the
    // first four (home/campus) in batch 1, the EC2 regions in batch 2.
    CampaignPlan plan;
    const auto& names = paper_vantage_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      const int share =
          traces_override / static_cast<int>(names.size()) +
          (static_cast<int>(i) < traces_override % static_cast<int>(names.size())
               ? 1
               : 0);
      if (share > 0) plan.entries.push_back({names[i], i < 4 ? 1 : 2, share});
    }
    return plan;
  }
  return paper_layout(std::max(1, static_cast<int>(9 * scale)),
                      std::max(1, static_cast<int>(12 * scale)),
                      std::max(1, static_cast<int>(14 * scale)));
}

std::vector<PlannedTrace> expand_schedule(const CampaignPlan& plan) {
  std::vector<PlannedTrace> schedule;
  for (int batch = 1; batch <= 2; ++batch) {
    bool added = true;
    int round = 0;
    while (added) {
      added = false;
      for (const auto& entry : plan.entries) {
        if (entry.batch != batch || round >= entry.count) continue;
        schedule.push_back({entry.vantage, batch});
        added = true;
      }
      ++round;
    }
  }
  return schedule;
}

Campaign::Campaign(std::map<std::string, Vantage*> vantages,
                   std::vector<wire::Ipv4Address> servers, ProbeOptions options)
    : vantages_(std::move(vantages)), servers_(std::move(servers)), options_(options) {}

void Campaign::run(const CampaignPlan& plan, DoneHandler done) {
  done_ = std::move(done);
  schedule_ = expand_schedule(plan);
  results_.clear();
  failures_.clear();
  cursor_ = 0;
  live_started_ = 0;
  pending_commit_ = -1;
  for (const auto& planned : schedule_) {
    if (!vantages_.contains(planned.vantage)) {
      throw std::invalid_argument("Campaign: unknown vantage " + planned.vantage);
    }
  }
  next_trace();
}

void Campaign::next_trace() {
  if (vantages_.empty()) {
    throw std::logic_error("Campaign: no vantages");
  }
  // Quiescence barrier: the next trace begins only after every event of the
  // previous one (late responses, retransmission timers, TIME_WAIT) has
  // fired, so each trace starts from a settled world. The done handler is
  // also deferred to this barrier: the final trace commits (and journals)
  // from a quiescent simulator, same as every other trace.
  auto& sim = vantages_.begin()->second->host().network().sim();
  sim.schedule_when_idle([this] { start_trace(); });
}

void Campaign::commit_pending() {
  if (pending_commit_ < 0) return;
  const int committed = pending_commit_;
  pending_commit_ = -1;
  if (commit_) commit_(results_[static_cast<std::size_t>(committed)]);
}

void Campaign::start_trace() {
  // The previous trace's stragglers have settled: its delta is complete.
  commit_pending();
  if (cursor_ >= schedule_.size()) {
    if (done_) {
      auto done = std::move(done_);
      done_ = nullptr;
      done(std::move(results_));
    }
    return;
  }
  const auto& planned = schedule_[cursor_];
  const int index = static_cast<int>(cursor_);
  ++cursor_;
  if (replay_) {
    if (auto replayed = replay_(index)) {
      // Checkpoint replay: the journal already holds this trace's result
      // and delta; take it as-is without touching the simulator.
      results_.push_back(std::move(*replayed));
      if (after_trace_) after_trace_(planned.vantage, planned.batch, index);
      next_trace();
      return;
    }
  }
  if ((halt_after_ > 0 && live_started_ >= halt_after_) ||
      (halt_check_ && halt_check_())) {
    // Simulated crash or external cancel: abandon the rest of the schedule
    // and finish with what completed. A later --resume run replays those
    // and runs the rest.
    cursor_ = schedule_.size();
    next_trace();
    return;
  }
  ++live_started_;
  try {
    if (before_trace_) before_trace_(planned.vantage, planned.batch, index);
    Vantage* vantage = vantages_.at(planned.vantage);
    vantage->capture().clear();
    runner_ = std::make_unique<TraceRunner>(*vantage, servers_, options_);
    runner_->run(planned.batch, index,
                 [this, vantage_name = planned.vantage, batch = planned.batch,
                  index](Trace trace) {
                   results_.push_back(std::move(trace));
                   pending_commit_ = static_cast<int>(results_.size()) - 1;
                   if (after_trace_) after_trace_(vantage_name, batch, index);
                   next_trace();
                 });
  } catch (const std::exception& e) {
    // Quarantine: scrap whatever the failed trace managed to schedule,
    // attribute the loss, and carry on with the next trace.
    vantages_.begin()->second->host().network().sim().clear_pending();
    failures_.push_back({index, planned.vantage, planned.batch, e.what()});
    if (quarantine_) quarantine_(planned.vantage, planned.batch, index, e.what());
    next_trace();
  }
}

}  // namespace ecnprobe::measure
