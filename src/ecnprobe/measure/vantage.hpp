// A measurement vantage point: one Host bundled with the client machinery
// the paper's measurement application needs -- an NTP prober, a TCP stack
// with an HTTP client, a traceroute engine, and a packet capture standing in
// for the parallel tcpdump session.
#pragma once

#include <memory>
#include <string>

#include "ecnprobe/http/http_service.hpp"
#include "ecnprobe/netsim/capture.hpp"
#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/ntp/ntp.hpp"
#include "ecnprobe/tcp/tcp.hpp"
#include "ecnprobe/traceroute/traceroute.hpp"

namespace ecnprobe::measure {

class Vantage {
public:
  Vantage(std::string name, netsim::Host& host, ntp::SimClock clock,
          tcp::TcpConfig tcp_config = {});
  ~Vantage();
  Vantage(const Vantage&) = delete;
  Vantage& operator=(const Vantage&) = delete;

  const std::string& name() const { return name_; }
  netsim::Host& host() { return host_; }
  ntp::NtpClient& ntp() { return ntp_client_; }
  tcp::TcpStack& tcp() { return tcp_stack_; }
  http::HttpGetClient& http() { return http_client_; }
  traceroute::Tracerouter& tracer();

  /// The always-on capture (tcpdump analogue); cleared between traces by
  /// the campaign runner.
  netsim::PacketCapture& capture() { return capture_; }

private:
  std::string name_;
  netsim::Host& host_;
  netsim::PacketCapture capture_;
  ntp::NtpClient ntp_client_;
  tcp::TcpStack tcp_stack_;
  http::HttpGetClient http_client_;
  // Lazily constructed: the Tracerouter claims the host's ICMP handler.
  std::unique_ptr<traceroute::Tracerouter> tracer_;
};

}  // namespace ecnprobe::measure
