// Sharded parallel campaign executor. The campaign's traces are
// independent given the determinism contract (every trace is a pure
// function of the world seed and its campaign index), so they shard
// trivially: a fixed-size worker pool pulls per-trace work items from a
// shared queue, each worker runs them on its own isolated, seed-derived
// world -- no mutable simulation state is shared between threads -- and
// the merged result vector is in plan order, byte-identical to what the
// sequential Campaign produces on one world.
//
// Thread affinity contract:
//   * CampaignShard instances are created by the factory *on the worker
//     thread* that will use them; the shard's Simulator is therefore owned
//     by that thread (netsim::Simulator enforces single-thread use).
//   * begin_trace() is called on the worker thread and may freely mutate
//     the shard's own world.
//   * The observer hook (set_observer) runs serialized under a mutex, one
//     invocation at a time, but on whichever worker claimed the trace.
//   * run() blocks the calling thread until every trace finished.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ecnprobe/measure/campaign.hpp"
#include "ecnprobe/measure/journal.hpp"
#include "ecnprobe/measure/probe.hpp"
#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/obs/metrics.hpp"
#include "ecnprobe/obs/telemetry.hpp"

namespace ecnprobe::measure {

/// One worker's isolated execution context: a private world clone with its
/// own Simulator, vantages, and server pool. Implemented by the scenario
/// layer (scenario::World); measure/ stays ignorant of how worlds are
/// built.
class CampaignShard {
public:
  virtual ~CampaignShard() = default;

  virtual netsim::Simulator& sim() = 0;
  virtual std::map<std::string, Vantage*> vantages() = 0;
  virtual std::vector<wire::Ipv4Address> servers() = 0;

  /// Puts this shard's world into the exact state the sequential campaign
  /// would have before trace `index`: availability/churn for (batch, index)
  /// plus the per-trace epoch reset (RNG streams, middlebox state).
  virtual void begin_trace(const std::string& vantage, int batch, int index) = 0;

  /// Observability delta for the trace that just finished: everything the
  /// shard's metrics registry and drop ledger accumulated since the last
  /// begin_trace(). Called after sim().run() returned, i.e. from a fully
  /// quiescent world, so straggler events are included. Shards that don't
  /// track metrics return an empty snapshot.
  virtual obs::ObsSnapshot collect_trace_metrics() { return {}; }

  /// Flight-recorder events for the trace that just finished -- everything
  /// the shard's recorder captured since the last begin_trace(). Same
  /// quiescence contract as collect_trace_metrics(). Shards without a
  /// recorder return an empty vector.
  virtual std::vector<obs::FlightEvent> collect_trace_events() { return {}; }

  /// A trace on this shard threw: attribute the loss (drop ledger) before
  /// the executor collects the partial delta. Default: no attribution.
  virtual void quarantine_trace(const std::string& vantage, int batch, int index) {
    (void)vantage;
    (void)batch;
    (void)index;
  }

  /// Circuit-breaker group resolver bound to THIS shard's world (each
  /// worker's clone owns a private ip2as map, so the resolver must not
  /// outlive or cross shards). Null = use whatever ProbeOptions carries.
  virtual sched::GroupResolver breaker_group() { return {}; }
};

class ParallelCampaign {
public:
  /// Builds worker `worker_index`'s shard. Invoked on the worker thread.
  using ShardFactory = std::function<std::unique_ptr<CampaignShard>(int worker_index)>;
  /// Progress observer; serialized across workers. Must not touch any
  /// shard's world (each worker resets its own via CampaignShard).
  using ObserverHook =
      std::function<void(const std::string& vantage, int batch, int index)>;

  struct Options {
    int workers = 1;
    ProbeOptions probe;
    /// Simulated crash: stop claiming new live traces once this many have
    /// been claimed across all workers (journal replays don't count).
    /// 0 = run the whole plan.
    int halt_after_traces = 0;
    /// Sketched-telemetry config for the campaign-level aggregate. Must be
    /// pre-resolved (seed filled in) identically to the config the shards'
    /// worlds arm, or the fold would hash into different sketch cells --
    /// scenario::run_parallel_campaign does this from WorldParams.
    obs::TelemetryConfig telemetry;
  };

  /// See measure::TraceFailure; kept as a nested alias for callers that
  /// predate the sequential executor growing quarantine support.
  using TraceFailure = measure::TraceFailure;

  ParallelCampaign(ShardFactory factory, Options options);

  void set_observer(ObserverHook hook) { observer_ = std::move(hook); }

  /// Cooperative cancel, callable from any thread (a watchdog, a signal
  /// handler's drain path, a daemon shutdown): workers stop claiming new
  /// traces and run() returns once in-flight traces finish. Already-
  /// journaled work is untouched, so a later resume completes the plan
  /// byte-identically. Sticky for the lifetime of this executor.
  void request_halt() { halt_requested_.store(true, std::memory_order_relaxed); }
  bool halt_requested() const {
    return halt_requested_.load(std::memory_order_relaxed);
  }

  /// Attaches a write-ahead journal. Traces already in it are replayed
  /// (result + metrics delta taken from disk, counted as completed, never
  /// re-run); every live trace is appended and flushed before its result
  /// is considered complete. The journal must outlive run().
  void set_journal(CampaignJournal* journal) { journal_ = journal; }

  /// Runs the plan across the worker pool; blocks until done. Returns the
  /// successful traces merged back into plan order (failed traces are
  /// omitted -- never duplicated, never reordered).
  std::vector<Trace> run(const CampaignPlan& plan);

  /// Traces that threw during the last run(), in campaign-index order.
  const std::vector<TraceFailure>& failures() const { return failures_; }

  /// Live progress: traces finished so far (readable from any thread).
  int traces_completed() const { return completed_.load(std::memory_order_relaxed); }

  /// Point-in-time progress snapshot, safe to call from any thread while
  /// run() is executing on another.
  struct Progress {
    int total = 0;      ///< traces in the plan
    int completed = 0;  ///< traces that produced a result
    int failed = 0;     ///< traces that threw
    int in_flight = 0;  ///< traces currently executing on a worker
    std::map<std::string, int> completed_by_vantage;
  };
  Progress progress() const;

  /// Campaign observability merged from the per-trace shard deltas in plan
  /// order -- byte-identical to the sequential World's campaign snapshot
  /// regardless of worker count. Valid after run() returns.
  const obs::ObsSnapshot& metrics() const { return merged_metrics_; }

  /// Point-in-time copy of the merged campaign snapshot, safe to call
  /// from any thread while run() executes (the live /metrics endpoint's
  /// data source). Mid-run it holds the contiguous plan-order prefix of
  /// folded traces, so every counter is <= its final value and the
  /// mid-run scrape reconciles with the final --metrics-out export.
  obs::ObsSnapshot metrics_snapshot() const {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    return merged_metrics_;
  }

  /// Flight-recorder events merged from the per-trace shard slices in plan
  /// order -- byte-identical to the sequential World's campaign_flights()
  /// regardless of worker count. Empty unless the shards armed their
  /// recorders. Valid after run() returns.
  const std::vector<obs::FlightEvent>& flight_events() const { return flight_events_; }

  /// Campaign telemetry aggregate folded from the per-trace deltas in plan
  /// order -- byte-identical to the sequential World's campaign_telemetry()
  /// regardless of worker count. Inactive unless Options::telemetry is
  /// sketched. Valid after run() returns.
  const obs::TelemetryAggregate& telemetry() const { return telemetry_; }

  /// Executor-runtime metrics (worker utilization, in-flight gauges).
  /// Timing-dependent, hence deliberately separate from the deterministic
  /// campaign metrics().
  obs::MetricsSnapshot runtime_metrics() const { return runtime_.snapshot(); }

private:
  struct Worker;

  /// One finished trace's observability, parked until every lower-index
  /// trace has been folded. Holding deltas instead of per-trace campaign
  /// snapshots is what bounds executor memory: the pending window is at
  /// most ~workers deep (claims are strictly increasing), so campaign
  /// telemetry stays O(sketch) rather than O(traces x labels).
  struct PendingDelta {
    obs::ObsSnapshot obs;
    std::vector<obs::FlightEvent> events;
  };

  void run_one(Worker& worker, const std::vector<PlannedTrace>& schedule, int index,
               std::vector<std::unique_ptr<Trace>>& slots);

  /// Parks `delta` for trace `index`, then folds the contiguous ready
  /// prefix into the campaign snapshot/telemetry/flight log in plan order.
  /// Thread-safe; each index must be committed exactly once.
  void commit_delta(int index, PendingDelta delta);
  /// Folds any still-parked deltas (holes from halt_after_traces leave the
  /// prefix short) in index order. Call only after the pool is idle.
  void flush_pending();

  ShardFactory factory_;
  Options options_;
  ObserverHook observer_;
  CampaignJournal* journal_ = nullptr;
  std::mutex journal_mutex_;
  std::mutex observer_mutex_;
  std::mutex failures_mutex_;
  std::vector<TraceFailure> failures_;
  std::atomic<int> completed_{0};
  std::atomic<int> total_{0};
  std::atomic<bool> halt_requested_{false};
  mutable std::mutex merge_mutex_;
  std::map<int, PendingDelta> pending_;
  int next_merge_ = 0;
  obs::ObsSnapshot merged_metrics_;
  obs::TelemetryAggregate telemetry_;
  std::vector<obs::FlightEvent> flight_events_;
  obs::MetricsRegistry runtime_;
};

}  // namespace ecnprobe::measure
