// Write-ahead campaign journal: every completed trace is appended --
// results plus that trace's observability delta -- under an FNV-1a-64
// checksum, and flushed before the campaign moves on. A campaign killed
// mid-run (crash, ^C, or a chaos-injected crash-after-N fault) resumes
// from the journal: completed traces replay from disk, the rest run live,
// and because every trace is a pure function of (seed, index) the final
// CSV and metrics are byte-identical to an uninterrupted run.
//
// File format (one record per line, space-separated tokens):
//
//   ecnprobe-journal v1 plan=<fp> faults=<fp> seed=<u64> traces=<n> servers=<n>
//   T <index> <checksum> <payload>
//
// The payload encodes the trace (losslessly, RTTs as raw IEEE bits) and
// the obs::codec rendering of its metrics delta, percent-escaped into a
// single token. The checksum covers the escaped payload; any flipped
// byte -- in the payload or the checksum itself -- fails open() with the
// offending line number rather than silently replaying a damaged trace.
// The header pins what the journal is a journal *of*: resuming under a
// different plan, fault profile, seed, or server count is refused.
//
// Thread safety: none. ParallelCampaign serializes append() calls under
// its own mutex; the sequential Campaign is single-threaded.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "ecnprobe/measure/campaign.hpp"
#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/obs/ledger.hpp"

namespace ecnprobe::measure {

/// What campaign this journal belongs to. Compared field-for-field when
/// opening an existing journal.
struct JournalMeta {
  std::string plan;    ///< plan_fingerprint() of the CampaignPlan
  std::string faults;  ///< chaos::FaultPlan::fingerprint() ("none#..." when clean)
  std::uint64_t seed = 0;
  int total_traces = 0;
  int server_count = 0;

  bool operator==(const JournalMeta&) const = default;
};

/// Fingerprint of a campaign plan: vantage/batch/count entries hashed in
/// order, so two journals disagree whenever their schedules would.
std::string plan_fingerprint(const CampaignPlan& plan);

class CampaignJournal {
public:
  struct Entry {
    Trace trace;
    obs::ObsSnapshot delta;  ///< this trace's metrics + ledger slice
  };

  /// Opens `path` for checkpointing: a missing file starts a fresh journal
  /// (header written immediately); an existing file is validated against
  /// `meta` and its records loaded into entries(). Returns false -- with a
  /// human-readable reason in `*error` -- on a header mismatch, a checksum
  /// failure, or any malformed record. Never silently drops a record.
  bool open(const std::string& path, const JournalMeta& meta, std::string* error);

  /// Completed traces recovered from disk, by campaign index.
  const std::map<int, Entry>& entries() const { return entries_; }
  bool has(int index) const { return entries_.count(index) != 0; }

  /// Appends one completed trace and flushes. Also records it in
  /// entries(), so a journal can be handed to a resumed executor as-is.
  bool append(const Trace& trace, const obs::ObsSnapshot& delta);

  /// Crash-atomic checkpoint rotation: rewrites the header plus every
  /// entry to `<path>.tmp`, flushes it, then renames it over the journal.
  /// A kill at ANY point leaves either the old complete journal or the new
  /// complete journal on disk -- never a torn file. A stale `.tmp` from a
  /// mid-rotation crash is swept by the next open(). On I/O failure
  /// returns false (reason in *error) with the original journal still
  /// attached and appendable.
  bool rotate(std::string* error = nullptr);

  const JournalMeta& meta() const { return meta_; }
  const std::string& path() const { return path_; }
  bool is_open() const { return out_.is_open(); }

private:
  JournalMeta meta_;
  std::string path_;
  std::map<int, Entry> entries_;
  std::ofstream out_;
};

}  // namespace ecnprobe::measure
