// Campaign orchestration: the paper's 210 traces across 13 vantage points in
// two batches (authors' homes + University of Glasgow in April/May 2015,
// then those plus nine EC2 regions in July/August 2015). A hook fires before
// each trace so the scenario can advance world state -- pool churn between
// batches, per-trace server availability.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ecnprobe/measure/probe.hpp"

namespace ecnprobe::measure {

/// A trace that threw instead of producing a result. Both executors
/// quarantine such traces -- the campaign completes, the failure is
/// recorded here (and attributed in the drop ledger via the quarantine
/// hook) instead of aborting the run.
struct TraceFailure {
  int index = 0;
  std::string vantage;
  int batch = 0;
  std::string message;
};

struct CampaignPlan {
  struct Entry {
    std::string vantage;
    int batch = 1;
    int count = 1;  ///< traces from this vantage in this batch
  };
  std::vector<Entry> entries;

  int total_traces() const;

  /// The paper's layout: `home_traces` per home/campus vantage split across
  /// both batches, `ec2_traces` per EC2 region in batch 2 only, totalling
  /// 210 with the defaults.
  static CampaignPlan paper_layout(int home_batch1 = 9, int home_batch2 = 12,
                                   int ec2_traces = 14);

  /// The scaled layout every front end shares: the paper's per-vantage
  /// counts multiplied by `scale` (floored at 1 each), or -- when
  /// `traces_override` > 0 -- exactly that many traces spread uniformly
  /// over the 13 vantages. The CLI's campaign/trace-autopsy/report
  /// commands and the ecnprobed daemon all build plans through here, so a
  /// daemon campaign and a batch CLI run with the same (scale, traces)
  /// spec execute -- and number -- identical traces.
  static CampaignPlan for_scale(double scale, int traces_override = 0);
};

/// Names of the paper's 13 vantage points, in Figure 2's order.
const std::vector<std::string>& paper_vantage_names();

/// One scheduled trace: the plan expanded into campaign execution order
/// (batch 1 before batch 2, vantages interleaved round-robin within a
/// batch, the way the paper alternated collection locations). The position
/// in the returned vector is the trace's campaign-wide index. Shared by the
/// sequential Campaign and the sharded ParallelCampaign so both execute --
/// and number -- exactly the same traces.
struct PlannedTrace {
  std::string vantage;
  int batch = 1;
};
std::vector<PlannedTrace> expand_schedule(const CampaignPlan& plan);

/// Sequential campaign executor.
///
/// Thread affinity: Campaign is single-threaded. run() must be called on
/// the thread that owns the vantages' Simulator, and both hooks fire on
/// that same thread -- BeforeTraceHook immediately before each trace starts
/// (from a quiescent simulator, so it may mutate world state), DoneHandler
/// once from within the final simulator event. The result vector is moved
/// into the DoneHandler; no copy is made.
class Campaign {
public:
  /// Called before each trace starts; lets the scenario re-roll
  /// availability or apply batch churn.
  using BeforeTraceHook = std::function<void(const std::string& vantage, int batch,
                                             int index)>;
  /// Called when a trace's TraceRunner delivers its result (straggler
  /// events may still be in flight -- the quiescence barrier runs after).
  using AfterTraceHook = BeforeTraceHook;
  using DoneHandler = std::function<void(std::vector<Trace>)>;
  /// Fires at the quiescence barrier after a trace's stragglers settled --
  /// the point where its observability delta is complete. Journalling
  /// hooks in here: the trace is durable before the next one starts.
  using CommitHook = std::function<void(const Trace& trace)>;
  /// Consulted before each trace runs. Returning a Trace short-circuits
  /// the live run: the result is taken as-is (checkpoint replay).
  using ReplayHook = std::function<std::optional<Trace>(int index)>;
  /// Fires when a trace threw; the scenario attributes the loss (drop
  /// ledger) before the campaign moves on.
  using QuarantineHook = std::function<void(const std::string& vantage, int batch,
                                            int index, const std::string& reason)>;

  Campaign(std::map<std::string, Vantage*> vantages,
           std::vector<wire::Ipv4Address> servers, ProbeOptions options);

  void set_before_trace(BeforeTraceHook hook) { before_trace_ = std::move(hook); }
  void set_after_trace(AfterTraceHook hook) { after_trace_ = std::move(hook); }
  void set_commit(CommitHook hook) { commit_ = std::move(hook); }
  void set_replay(ReplayHook hook) { replay_ = std::move(hook); }
  void set_quarantine(QuarantineHook hook) { quarantine_ = std::move(hook); }
  /// Simulated crash: stop claiming new live traces once `n` have started
  /// (replays don't count) and finish with whatever completed. 0 = never.
  void set_halt_after(int n) { halt_after_ = n; }
  /// External cancel, consulted before each live trace starts (replays
  /// still run). Returning true abandons the rest of the schedule the
  /// same way halt_after does -- committed traces stay durable, a resume
  /// run finishes the plan. The check runs on the campaign thread; the
  /// callable may read a flag set from elsewhere (a signal handler's
  /// sig_atomic_t, a daemon's atomic).
  using HaltCheck = std::function<bool()>;
  void set_halt_check(HaltCheck check) { halt_check_ = std::move(check); }

  /// Traces that threw and were quarantined instead of aborting the run.
  const std::vector<TraceFailure>& failures() const { return failures_; }

  /// Runs every trace in the plan sequentially; `done` fires at the end.
  /// Each trace starts only once the simulator has gone quiescent -- every
  /// straggler packet and timer of the previous trace has settled -- so a
  /// trace's outcome cannot leak into the next one's event interleaving.
  void run(const CampaignPlan& plan, DoneHandler done);

  /// Progress introspection for long campaigns.
  int traces_completed() const { return static_cast<int>(results_.size()); }

private:
  void next_trace();
  void start_trace();
  void commit_pending();

  std::map<std::string, Vantage*> vantages_;
  std::vector<wire::Ipv4Address> servers_;
  ProbeOptions options_;
  BeforeTraceHook before_trace_;
  AfterTraceHook after_trace_;
  CommitHook commit_;
  ReplayHook replay_;
  QuarantineHook quarantine_;
  int halt_after_ = 0;
  HaltCheck halt_check_;
  int live_started_ = 0;

  std::vector<PlannedTrace> schedule_;
  std::size_t cursor_ = 0;
  std::vector<Trace> results_;
  std::vector<TraceFailure> failures_;
  int pending_commit_ = -1;  ///< index into results_ awaiting its commit hook
  std::unique_ptr<TraceRunner> runner_;
  DoneHandler done_;
};

}  // namespace ecnprobe::measure
