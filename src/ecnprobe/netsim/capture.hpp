// Packet capture: the simulator's stand-in for the "parallel tcpdump
// session" the paper runs beside its measurement application. A capture
// attaches to a Host and records every datagram crossing the host's access
// interface in either direction, before transport demux -- so it sees
// responses even when no socket matches, exactly like a packet sniffer.
#pragma once

#include <functional>
#include <vector>

#include "ecnprobe/netsim/sim.hpp"
#include "ecnprobe/wire/datagram.hpp"

namespace ecnprobe::netsim {

enum class Direction { Tx, Rx };

struct CapturedPacket {
  SimTime time;
  Direction dir = Direction::Tx;
  wire::Datagram dgram;
};

class PacketCapture {
public:
  /// Optional BPF-style predicate; packets failing it are not recorded.
  using Filter = std::function<bool(const wire::Datagram&)>;

  PacketCapture() = default;
  explicit PacketCapture(Filter filter) : filter_(std::move(filter)) {}

  void record(SimTime time, Direction dir, const wire::Datagram& dgram);

  const std::vector<CapturedPacket>& packets() const { return packets_; }
  void clear() { packets_.clear(); }

  /// Convenience filters mirroring common tcpdump expressions.
  static Filter proto_filter(wire::IpProto proto);
  static Filter udp_port_filter(std::uint16_t port);

private:
  Filter filter_;
  std::vector<CapturedPacket> packets_;
};

}  // namespace ecnprobe::netsim
