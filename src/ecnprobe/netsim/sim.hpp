// Discrete-event simulation engine. A single-threaded event queue with
// deterministic FIFO tie-breaking: the ordering key is explicitly
// (timestamp, insertion sequence number), so two events scheduled for the
// same nanosecond fire in scheduling order and a campaign replays
// identically for a given seed -- on either scheduler backend.
//
// The backend is a calendar queue by default (see event_queue.hpp); the
// pre-calendar binary heap stays selectable via SchedulerKind::LegacyHeap or
// ECNPROBE_SCHEDULER=heap for differential testing. Both produce the same
// event order bit for bit because they share the same total order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "ecnprobe/netsim/event_queue.hpp"
#include "ecnprobe/obs/metrics.hpp"
#include "ecnprobe/util/function.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::netsim {

using util::SimDuration;
using util::SimTime;

/// Handle for cancelling a scheduled event (protocol timers).
class EventHandle {
public:
  EventHandle() = default;

  /// Cancels the event if it has not fired; safe to call repeatedly.
  void cancel();
  bool pending() const;

private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
public:
  explicit Simulator(SchedulerKind kind = scheduler_kind_from_env()) : queue_(kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  SchedulerKind scheduler_kind() const { return queue_.kind(); }

  /// Schedules `fn` to run at `now() + delay` (delays clamp to zero).
  template <typename F>
  EventHandle schedule(SimDuration delay, F&& fn) {
    if (delay < SimDuration{}) delay = SimDuration{};
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  EventHandle schedule_at(SimTime when, F&& fn) {
    assert_owner();
    if (when < now_) when = now_;
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(SimEvent{when, next_seq_++, util::UniqueFunction(std::forward<F>(fn)),
                         cancelled, now_});
    ++live_;
    if (live_ > live_high_water_) live_high_water_ = live_;
    return EventHandle{std::move(cancelled)};
  }

  /// Fire-and-forget scheduling for the packet-delivery hot path: no handle,
  /// so no per-event cancellation control block is allocated. Ordering is
  /// identical to schedule() -- posts draw from the same sequence counter.
  template <typename F>
  void post(SimDuration delay, F&& fn) {
    assert_owner();
    if (delay < SimDuration{}) delay = SimDuration{};
    queue_.push(SimEvent{now_ + delay, next_seq_++, util::UniqueFunction(std::forward<F>(fn)),
                         nullptr, now_});
    ++live_;
    if (live_ > live_high_water_) live_high_water_ = live_;
  }

  /// Runs `fn` the next time the event queue drains (all live events fired,
  /// no time attached). run() processes idle callbacks one at a time, so a
  /// callback that schedules new events keeps the simulation going and the
  /// next idle callback fires only once those events drain too. This is the
  /// quiescence barrier between campaign traces: straggler packets and
  /// timers from one trace fully settle before the next trace starts.
  void schedule_when_idle(std::function<void()> fn);

  /// Runs events until the queue empties or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with a timestamp <= `until`. Time advances to `until` even
  /// if the queue drains early. Note the historical edge this preserves: the
  /// timestamp check looks at the earliest *queued* entry including
  /// already-cancelled ones, and firing then skips past cancelled entries --
  /// so a cancelled event at <= `until` can pull in one live event beyond
  /// `until`. Both schedulers reproduce this exactly.
  std::size_t run_until(SimTime until);

  /// Discards every pending event and idle callback without firing them.
  /// Recovery hatch after an exception unwound mid-trace: queued callbacks
  /// may reference destroyed objects and must never fire.
  void clear_pending();

  std::size_t events_processed() const { return processed_; }
  std::size_t events_pending() const { return live_; }
  /// Deepest the live-event queue has ever been: the self-profiler's
  /// scheduler pressure gauge. One branch on the schedule path.
  std::size_t events_high_water() const { return live_high_water_; }
  std::size_t idle_callbacks_pending() const { return idle_.size(); }

  /// Event-loop instrumentation: a fired-events counter and a histogram of
  /// the *simulated* delay between scheduling and firing (both measured in
  /// sim time, so they are deterministic). Either may be null.
  void set_metrics(obs::Counter* events_fired, obs::Histogram* event_lag_ms) {
    events_counter_ = events_fired;
    lag_histogram_ = event_lag_ms;
  }

private:
  bool fire_next();
  void assert_owner();

  EventQueue queue_;
  std::deque<std::function<void()>> idle_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t live_ = 0;  ///< queued events not yet cancelled
  std::size_t live_high_water_ = 0;
  obs::Counter* events_counter_ = nullptr;
  obs::Histogram* lag_histogram_ = nullptr;

  // A Simulator is single-threaded by design; with campaign shards running
  // one Simulator per worker, this catches accidental cross-thread sharing.
  // The owner binds on first schedule/run and never rebinds.
  std::thread::id owner_;
};

}  // namespace ecnprobe::netsim
