// Discrete-event simulation engine. A single-threaded event queue with
// deterministic FIFO tie-breaking: two events scheduled for the same instant
// fire in scheduling order, so a campaign replays identically for a given
// seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "ecnprobe/obs/metrics.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::netsim {

using util::SimDuration;
using util::SimTime;

/// Handle for cancelling a scheduled event (protocol timers).
class EventHandle {
public:
  EventHandle() = default;

  /// Cancels the event if it has not fired; safe to call repeatedly.
  void cancel();
  bool pending() const;

private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at `now() + delay` (delays clamp to zero).
  EventHandle schedule(SimDuration delay, std::function<void()> fn);
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Runs `fn` the next time the event queue drains (all live events fired,
  /// no time attached). run() processes idle callbacks one at a time, so a
  /// callback that schedules new events keeps the simulation going and the
  /// next idle callback fires only once those events drain too. This is the
  /// quiescence barrier between campaign traces: straggler packets and
  /// timers from one trace fully settle before the next trace starts.
  void schedule_when_idle(std::function<void()> fn);

  /// Runs events until the queue empties or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with a timestamp <= `until`. Time advances to `until` even
  /// if the queue drains early.
  std::size_t run_until(SimTime until);

  /// Discards every pending event and idle callback without firing them.
  /// Recovery hatch after an exception unwound mid-trace: queued callbacks
  /// may reference destroyed objects and must never fire.
  void clear_pending();

  std::size_t events_processed() const { return processed_; }
  std::size_t events_pending() const { return live_; }
  std::size_t idle_callbacks_pending() const { return idle_.size(); }

  /// Event-loop instrumentation: a fired-events counter and a histogram of
  /// the *simulated* delay between scheduling and firing (both measured in
  /// sim time, so they are deterministic). Either may be null.
  void set_metrics(obs::Counter* events_fired, obs::Histogram* event_lag_ms) {
    events_counter_ = events_fired;
    lag_histogram_ = event_lag_ms;
  }

private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    SimTime scheduled_at;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool fire_next();
  void assert_owner();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::deque<std::function<void()>> idle_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t live_ = 0;  ///< queued events not yet cancelled
  obs::Counter* events_counter_ = nullptr;
  obs::Histogram* lag_histogram_ = nullptr;

  // A Simulator is single-threaded by design; with campaign shards running
  // one Simulator per worker, this catches accidental cross-thread sharing.
  // The owner binds on first schedule/run and never rebinds.
  std::thread::id owner_;
};

}  // namespace ecnprobe::netsim
