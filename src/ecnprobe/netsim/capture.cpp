#include "ecnprobe/netsim/capture.hpp"

#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::netsim {

void PacketCapture::record(SimTime time, Direction dir, const wire::Datagram& dgram) {
  if (filter_ && !filter_(dgram)) return;
  packets_.push_back(CapturedPacket{time, dir, dgram});
}

PacketCapture::Filter PacketCapture::proto_filter(wire::IpProto proto) {
  return [proto](const wire::Datagram& d) { return d.ip.protocol == proto; };
}

PacketCapture::Filter PacketCapture::udp_port_filter(std::uint16_t port) {
  return [port](const wire::Datagram& d) {
    if (d.ip.protocol != wire::IpProto::Udp) return false;
    const auto header = wire::UdpHeader::decode(d.payload);
    if (!header) return false;
    return header->src_port == port || header->dst_port == port;
  };
}

}  // namespace ecnprobe::netsim
