// The Network owns the node graph: nodes (routers, hosts) joined by
// point-to-point links with delay, jitter, and loss, and per-interface
// middlebox policy chains. `transmit` is the single datapath: egress
// policies -> link loss -> propagation delay -> ingress policies -> the
// peer's on_receive. Routing decisions are delegated to an oracle installed
// by the topology module.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ecnprobe/netsim/policy.hpp"
#include "ecnprobe/netsim/sim.hpp"
#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/datagram.hpp"

namespace ecnprobe::netsim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr int kNoInterface = -1;

class Network;

/// Base class for anything attached to the network.
class Node {
public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Delivery upcall: the datagram as it arrived on `ingress_if` after
  /// ingress policies ran.
  virtual void on_receive(wire::Datagram dgram, int ingress_if) = 0;

  /// Called once when the node is added to a network.
  virtual void on_attached(Network& net, NodeId id);

  /// Epoch boundary (Network::begin_epoch): nodes holding per-node random
  /// streams or transient counters re-derive them from `epoch_seed` so the
  /// upcoming epoch's behaviour is a pure function of the seed, independent
  /// of traffic in earlier epochs. Default: nothing to reset.
  virtual void on_epoch(std::uint64_t epoch_seed) { (void)epoch_seed; }

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  wire::Ipv4Address address() const { return address_; }
  void set_address(wire::Ipv4Address addr);

  Network& network() const { return *net_; }

protected:
  Network* net_ = nullptr;

private:
  NodeId id_ = kInvalidNode;
  std::string name_;
  wire::Ipv4Address address_;
};

struct LinkParams {
  SimDuration delay = SimDuration::millis(1);
  SimDuration jitter;          ///< uniform [0, jitter) added per packet
  double loss_rate = 0.0;      ///< independent per-packet loss, each direction
};

/// One end of a point-to-point link.
struct Interface {
  NodeId peer = kInvalidNode;
  int peer_if = kNoInterface;
  LinkParams link;
  std::vector<PolicyPtr> egress_policies;
  std::vector<PolicyPtr> ingress_policies;
  bool up = true;
};

/// Network-wide datapath counters.
struct NetworkStats {
  std::uint64_t packets_transmitted = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_policy = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicated = 0;  ///< extra copies injected by duplication faults
};

class Network {
public:
  Network(Simulator& sim, util::Rng rng);

  /// Adds a node; the network takes ownership.
  NodeId add_node(std::unique_ptr<Node> node);

  /// Connects two nodes; returns the new interface index on each side.
  std::pair<int, int> connect(NodeId a, NodeId b, const LinkParams& link);

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }

  Interface& interface(NodeId id, int if_index);
  std::size_t interface_count(NodeId id) const { return ifaces_.at(id).size(); }

  void add_egress_policy(NodeId id, int if_index, PolicyPtr policy);
  void add_ingress_policy(NodeId id, int if_index, PolicyPtr policy);
  void set_link_up(NodeId id, int if_index, bool up);

  /// Sends a datagram out of `egress_if`. Consumes the datagram.
  void transmit(NodeId from, int egress_if, wire::Datagram dgram);

  /// Next-hop decision: returns the egress interface on `at` toward `dst`,
  /// or kNoInterface when unroutable. Installed by the topology layer.
  using RoutingOracle = std::function<int(NodeId at, wire::Ipv4Address dst)>;
  void set_routing_oracle(RoutingOracle oracle) { oracle_ = std::move(oracle); }
  int route(NodeId at, wire::Ipv4Address dst) const;

  /// Address directory (populated by Node::set_address).
  NodeId find_by_address(wire::Ipv4Address addr) const;
  void register_address(wire::Ipv4Address addr, NodeId id);

  Simulator& sim() { return sim_; }
  const NetworkStats& stats() const { return stats_; }

  /// The observability sink every datapath layer reports into: drops and
  /// ECN rewrites are attributed in its ledger, aggregates mirrored into
  /// its registry. Defaults to the process-wide instance; a World installs
  /// its own so parallel worker clones never share one.
  obs::Observability& obs() const { return *obs_; }
  void set_observability(obs::Observability* obs);

  /// Monotonic IP identification counter shared by all senders.
  std::uint16_t next_ip_id() { return ip_id_++; }

  /// Starts a deterministic epoch: reseeds the datapath stream (loss,
  /// jitter, policy draws) from `epoch_seed`, resets the IP-id counter,
  /// clears behavioural middlebox state (PacketPolicy::reset_state), and
  /// lets every node re-derive its per-node streams (Node::on_epoch).
  /// Called between campaign traces -- from a quiescent simulator -- so a
  /// trace's outcome does not depend on which traces ran before it, which
  /// is what makes sharded parallel campaigns byte-identical to sequential
  /// ones. Aggregate stats() counters are not touched.
  void begin_epoch(std::uint64_t epoch_seed);

private:
  Simulator& sim_;
  util::Rng rng_;
  RoutingOracle oracle_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<Interface>> ifaces_;
  std::map<std::uint32_t, NodeId> by_address_;
  NetworkStats stats_;
  std::uint16_t ip_id_ = 1;
  obs::Observability* obs_;
  obs::Counter* transmitted_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* duplicated_counter_ = nullptr;
};

}  // namespace ecnprobe::netsim
