// IP router: forwards by the network's routing oracle, decrements TTL, and
// generates ICMP Time-Exceeded errors quoting the datagram *as received*
// (RFC 1812), which is the mechanism the traceroute study exploits to
// detect upstream ECN stripping. Routers answer TTL expiry probabilistically
// to model the ICMP rate limiting that keeps real traceroutes sparse.
#pragma once

#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::netsim {

class Router final : public Node {
public:
  struct Params {
    /// Probability a TTL-expired packet earns an ICMP Time-Exceeded reply
    /// (ICMP generation is commonly rate-limited or disabled).
    double icmp_response_prob = 1.0;
  };

  Router(std::string name, Params params, util::Rng rng)
      : Node(std::move(name)), params_(params), rng_(rng) {}

  void on_receive(wire::Datagram dgram, int ingress_if) override;

  /// Epoch boundary: re-derives the ICMP rate-limit stream.
  void on_epoch(std::uint64_t epoch_seed) override { rng_ = util::Rng(epoch_seed); }

  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t ttl_expired = 0;
    std::uint64_t icmp_sent = 0;
    std::uint64_t unroutable = 0;
    std::uint64_t delivered_local = 0;
  };
  const Stats& stats() const { return stats_; }

private:
  void send_icmp(wire::Datagram&& icmp, const char* kind);

  Params params_;
  util::Rng rng_;
  Stats stats_;
};

}  // namespace ecnprobe::netsim
