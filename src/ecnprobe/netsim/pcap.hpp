// Export PacketCapture contents as a pcap file (the classic libpcap format,
// LINKTYPE_RAW: packets begin at the IPv4 header), so simulated captures --
// the stand-in for the paper's "parallel tcpdump session" -- open directly
// in tcpdump/Wireshark for inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "ecnprobe/netsim/capture.hpp"

namespace ecnprobe::netsim {

/// Writes `capture` to `os` in pcap format (magic 0xa1b2c3d4, microsecond
/// timestamps, LINKTYPE_RAW = 101). Returns the number of packets written.
std::size_t write_pcap(std::ostream& os, const PacketCapture& capture);

/// Convenience: writes straight to a file; returns false on I/O failure.
bool write_pcap_file(const std::string& path, const PacketCapture& capture);

}  // namespace ecnprobe::netsim
