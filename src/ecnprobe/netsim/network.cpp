#include "ecnprobe/netsim/network.hpp"

#include <stdexcept>

#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::netsim {

void Node::on_attached(Network& net, NodeId id) {
  net_ = &net;
  id_ = id;
}

void Node::set_address(wire::Ipv4Address addr) {
  address_ = addr;
  if (net_ != nullptr && !addr.is_unspecified()) net_->register_address(addr, id_);
}

Network::Network(Simulator& sim, util::Rng rng)
    : sim_(sim), rng_(rng), obs_(&obs::Observability::process()) {
  set_observability(obs_);
}

void Network::set_observability(obs::Observability* obs) {
  obs_ = obs;
  transmitted_counter_ = obs_->registry.counter("net_packets_transmitted_total", {},
                                                "datagrams entering the datapath");
  delivered_counter_ = obs_->registry.counter("net_packets_delivered_total", {},
                                              "datagrams delivered to a node");
  duplicated_counter_ = obs_->registry.counter(
      "net_packets_duplicated_total", {}, "extra datagram copies injected by duplication faults");
}

namespace {
obs::RewriteCause rewrite_cause_for(wire::Ecn after) {
  return after == wire::Ecn::Ce ? obs::RewriteCause::CeMarked : obs::RewriteCause::Bleached;
}

/// Flight-recorder taps for the datapath. Each is a no-op unless the
/// recorder is armed AND the datagram carries a flight stamp, so the
/// common case costs one bool test.
void record_flight_drop(obs::FlightRecorder& rec, Simulator& sim, const Node& node,
                        obs::Layer layer, wire::Datagram& dgram, std::string detail) {
  if (!rec.armed() || dgram.flight == 0) return;
  rec.record(dgram.flight, obs::SpanEvent::PolicyDrop, sim.now(), layer, node.name(),
             node.address().value(), std::move(detail), dgram.wire_view());
}

void record_flight_rewrite(obs::FlightRecorder& rec, Simulator& sim, const Node& node,
                           wire::Datagram& dgram, wire::Ecn before) {
  if (!rec.armed() || dgram.flight == 0) return;
  rec.record(dgram.flight, obs::SpanEvent::EcnRewritten, sim.now(), obs::Layer::Policy,
             node.name(), node.address().value(),
             util::strf("%s->%s", std::string(wire::to_string(before)).c_str(),
                        std::string(wire::to_string(dgram.ip.ecn)).c_str()),
             dgram.wire_view());
}
}  // namespace

void Network::begin_epoch(std::uint64_t epoch_seed) {
  rng_ = util::Rng(util::derive_seed(epoch_seed, "datapath"));
  ip_id_ = 1;
  // Policies are visited in deterministic order (node id, interface index,
  // egress then ingress, chain position), so the salted seed each one gets
  // is a pure function of (epoch seed, its place in the topology) -- the
  // same in sequential runs and in every worker's world clone.
  const std::uint64_t policy_seed = util::derive_seed(epoch_seed, "policy");
  std::uint64_t salt = 0;
  for (auto& ifaces : ifaces_) {
    for (auto& iface : ifaces) {
      for (auto& policy : iface.egress_policies) {
        policy->on_epoch(util::derive_seed(policy_seed, ++salt));
      }
      for (auto& policy : iface.ingress_policies) {
        policy->on_epoch(util::derive_seed(policy_seed, ++salt));
      }
    }
  }
  // Node ids are assigned in construction order, which is deterministic per
  // seed, so id-salted derivation gives every node a stable epoch stream.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->on_epoch(util::derive_seed(epoch_seed, static_cast<std::uint64_t>(i) + 1));
  }
}

NodeId Network::add_node(std::unique_ptr<Node> node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  ifaces_.emplace_back();
  nodes_.back()->on_attached(*this, id);
  if (!nodes_.back()->address().is_unspecified()) {
    register_address(nodes_.back()->address(), id);
  }
  return id;
}

std::pair<int, int> Network::connect(NodeId a, NodeId b, const LinkParams& link) {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) {
    throw std::invalid_argument("Network::connect: bad node ids");
  }
  const auto if_a = static_cast<int>(ifaces_[a].size());
  const auto if_b = static_cast<int>(ifaces_[b].size());
  Interface ia;
  ia.peer = b;
  ia.peer_if = if_b;
  ia.link = link;
  Interface ib;
  ib.peer = a;
  ib.peer_if = if_a;
  ib.link = link;
  ifaces_[a].push_back(std::move(ia));
  ifaces_[b].push_back(std::move(ib));
  return {if_a, if_b};
}

Interface& Network::interface(NodeId id, int if_index) {
  return ifaces_.at(id).at(static_cast<std::size_t>(if_index));
}

void Network::add_egress_policy(NodeId id, int if_index, PolicyPtr policy) {
  interface(id, if_index).egress_policies.push_back(std::move(policy));
}

void Network::add_ingress_policy(NodeId id, int if_index, PolicyPtr policy) {
  interface(id, if_index).ingress_policies.push_back(std::move(policy));
}

void Network::set_link_up(NodeId id, int if_index, bool up) {
  Interface& iface = interface(id, if_index);
  iface.up = up;
  // Links are symmetric: mirror onto the peer side.
  interface(iface.peer, iface.peer_if).up = up;
}

void Network::transmit(NodeId from, int egress_if, wire::Datagram dgram) {
  Interface& iface = interface(from, egress_if);
  ++stats_.packets_transmitted;
  transmitted_counter_->inc();
  if (!iface.up) {
    ++stats_.dropped_link_down;
    obs_->ledger.record_drop(obs::Layer::Link, obs::DropCause::LinkDown,
                             nodes_[from]->name());
    record_flight_drop(obs_->recorder, sim_, *nodes_[from], obs::Layer::Link, dgram,
                       "link-down");
    return;
  }
  SimDuration policy_delay;
  bool duplicate = false;
  for (auto& policy : iface.egress_policies) {
    const wire::Ecn before = dgram.ip.ecn;
    if (policy->apply(dgram, rng_, sim_.now()) == PolicyAction::Drop) {
      ++stats_.dropped_policy;
      obs_->ledger.record_drop(obs::Layer::Policy, policy->drop_cause(),
                               nodes_[from]->name());
      record_flight_drop(obs_->recorder, sim_, *nodes_[from], obs::Layer::Policy, dgram,
                         std::string(to_string(policy->drop_cause())));
      return;
    }
    if (dgram.ip.ecn != before) {
      obs_->ledger.record_rewrite(obs::Layer::Policy, rewrite_cause_for(dgram.ip.ecn),
                                  nodes_[from]->name());
      record_flight_rewrite(obs_->recorder, sim_, *nodes_[from], dgram, before);
    }
    policy_delay += policy->take_extra_delay();  // queuing policies
    duplicate = policy->take_duplicate() || duplicate;
  }
  if (iface.link.loss_rate > 0.0 && rng_.bernoulli(iface.link.loss_rate)) {
    ++stats_.dropped_loss;
    obs_->ledger.record_drop(obs::Layer::Link, obs::DropCause::LinkLoss,
                             nodes_[from]->name());
    record_flight_drop(obs_->recorder, sim_, *nodes_[from], obs::Layer::Link, dgram,
                       "link-loss");
    return;
  }
  auto link_delay = [&]() {
    SimDuration d = iface.link.delay + policy_delay;
    if (iface.link.jitter > SimDuration{}) {
      d += SimDuration::nanos(static_cast<std::int64_t>(
          rng_.next_double() * static_cast<double>(iface.link.jitter.count_nanos())));
    }
    return d;
  };
  const SimDuration delay = link_delay();
  const NodeId to = iface.peer;
  const int ingress_if = iface.peer_if;
  auto deliver = [this, to, ingress_if](SimDuration after, wire::Datagram packet) {
    // post(): fire-and-forget, so the delivery hot path allocates no
    // cancellation control block and the closure stays inline in the event.
    sim_.post(after, [this, to, ingress_if, d = std::move(packet)]() mutable {
      Interface& rx = interface(to, ingress_if);
      for (auto& policy : rx.ingress_policies) {
        const wire::Ecn before = d.ip.ecn;
        if (policy->apply(d, rng_, sim_.now()) == PolicyAction::Drop) {
          ++stats_.dropped_policy;
          obs_->ledger.record_drop(obs::Layer::Policy, policy->drop_cause(),
                                   nodes_[to]->name());
          record_flight_drop(obs_->recorder, sim_, *nodes_[to], obs::Layer::Policy, d,
                             std::string(to_string(policy->drop_cause())));
          return;
        }
        if (d.ip.ecn != before) {
          obs_->ledger.record_rewrite(obs::Layer::Policy, rewrite_cause_for(d.ip.ecn),
                                      nodes_[to]->name());
          record_flight_rewrite(obs_->recorder, sim_, *nodes_[to], d, before);
        }
      }
      ++stats_.delivered;
      delivered_counter_->inc();
      nodes_[to]->on_receive(std::move(d), ingress_if);
    });
  };
  if (duplicate) {
    // The copy draws its own jitter (after the original's draw, so the
    // fault-free RNG stream is untouched when no duplication fires).
    ++stats_.duplicated;
    duplicated_counter_->inc();
    deliver(link_delay(), dgram);
  }
  deliver(delay, std::move(dgram));
}

int Network::route(NodeId at, wire::Ipv4Address dst) const {
  if (!oracle_) return kNoInterface;
  return oracle_(at, dst);
}

NodeId Network::find_by_address(wire::Ipv4Address addr) const {
  const auto it = by_address_.find(addr.value());
  return it == by_address_.end() ? kInvalidNode : it->second;
}

void Network::register_address(wire::Ipv4Address addr, NodeId id) {
  by_address_[addr.value()] = id;
}

}  // namespace ecnprobe::netsim
