// End host with a small network stack: UDP sockets with per-packet ECN
// marking (the knob the whole study turns), protocol handler hooks for the
// userspace TCP stack and for ICMP consumers (traceroute), and capture taps
// that observe every packet on the access link. UDP datagrams with no
// matching socket are dropped silently by default -- matching the observed
// behaviour that traceroutes to NTP servers "stop one hop before the
// destination" (the pool hosts do not answer probes to unused ports).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ecnprobe/netsim/capture.hpp"
#include "ecnprobe/netsim/network.hpp"

namespace ecnprobe::netsim {

/// A UDP datagram delivered to a socket, with the IP-layer metadata the
/// receiving application can observe (source, and the ECN field as
/// received -- how an ECN-aware server would read congestion marks).
struct UdpDelivery {
  wire::Ipv4Address src;
  std::uint16_t src_port = 0;
  wire::Ipv4Address dst;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;
  wire::Ecn ecn = wire::Ecn::NotEct;
  std::uint32_t flight = 0;  ///< flight-recorder id of the carrying datagram
};

class Host;

/// A bound UDP socket. Obtained from Host::open_udp; closing (or dropping
/// the last shared_ptr) releases the port.
class UdpSocket {
public:
  using ReceiveHandler = std::function<void(const UdpDelivery&)>;

  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t local_port() const { return port_; }

  /// Sends a UDP datagram with the given ECN codepoint and TTL.
  void send(wire::Ipv4Address dst, std::uint16_t dst_port,
            std::span<const std::uint8_t> payload, wire::Ecn ecn,
            std::uint8_t ttl = wire::Ipv4Header::kDefaultTtl);

  void set_receive_handler(ReceiveHandler handler) { handler_ = std::move(handler); }
  void close();

private:
  friend class Host;
  UdpSocket(Host& host, std::uint16_t port) : host_(&host), port_(port) {}

  Host* host_;
  std::uint16_t port_;
  ReceiveHandler handler_;
};

class Host final : public Node {
public:
  struct Params {
    /// Send ICMP Port-Unreachable for UDP to a closed port. Off by default:
    /// pool servers observably do not (Section 4.2's truncated traceroutes).
    bool udp_port_unreachable = false;
  };

  Host(std::string name, Params params, util::Rng rng)
      : Node(std::move(name)), params_(params), rng_(rng) {}

  // -- sockets ------------------------------------------------------------

  /// Binds a UDP socket; port 0 picks an ephemeral port. Throws if the port
  /// is taken.
  std::shared_ptr<UdpSocket> open_udp(std::uint16_t port = 0);

  // -- raw datapath (used by the TCP stack and traceroute) -----------------

  /// Sends a fully-formed datagram via the access interface. Stamps the IP
  /// identification field.
  void send_datagram(wire::Datagram dgram);

  /// Installs a handler receiving every datagram of `proto` addressed to
  /// this host (TCP stack, ICMP listeners). One handler per protocol.
  using ProtocolHandler = std::function<void(const wire::Datagram&)>;
  void set_protocol_handler(wire::IpProto proto, ProtocolHandler handler);
  void clear_protocol_handler(wire::IpProto proto);

  // -- capture ("parallel tcpdump") ----------------------------------------

  /// Attaches a capture tap; not owned. Remove before destroying the tap.
  void add_capture(PacketCapture* capture);
  void remove_capture(PacketCapture* capture);

  // -- Node ---------------------------------------------------------------

  void on_receive(wire::Datagram dgram, int ingress_if) override;

  /// Epoch boundary: re-derives the host random stream (ISNs, service
  /// response draws) and rewinds the ephemeral-port allocator, so the
  /// host's behaviour in the new epoch is a pure function of the seed.
  void on_epoch(std::uint64_t epoch_seed) override {
    rng_ = util::Rng(epoch_seed);
    next_ephemeral_ = 49152;
  }

  struct Stats {
    std::uint64_t udp_delivered = 0;
    std::uint64_t udp_no_socket = 0;
    std::uint64_t udp_bad_checksum = 0;
    std::uint64_t sent = 0;
  };
  const Stats& stats() const { return stats_; }

  util::Rng& rng() { return rng_; }

private:
  friend class UdpSocket;
  void release_port(std::uint16_t port);
  std::uint16_t pick_ephemeral_port();
  void deliver_udp(const wire::Datagram& dgram);

  Params params_;
  util::Rng rng_;
  std::map<std::uint16_t, UdpSocket*> udp_sockets_;
  std::map<wire::IpProto, ProtocolHandler> proto_handlers_;
  std::vector<PacketCapture*> captures_;
  std::uint16_t next_ephemeral_ = 49152;
  Stats stats_;
};

}  // namespace ecnprobe::netsim
