// Middlebox packet policies. The paper's central question is behavioural:
// do middleboxes on the path (a) strip ECT marks from the IP header, or
// (b) drop ECT-marked UDP outright? These policies model exactly those
// behaviours, plus the AQM CE-marking routers perform when ECN works as
// intended. Policies attach to interface ingress/egress chains in the
// Network and keep counters the analysis and ablation benches read back.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/util/stats.hpp"
#include "ecnprobe/util/time.hpp"
#include "ecnprobe/wire/datagram.hpp"

namespace ecnprobe::netsim {

enum class PolicyAction : std::uint8_t {
  Pass,  ///< forward (possibly modified)
  Drop,  ///< silently discard
};

/// Counters every policy maintains; read by the analysis/ablation benches.
struct PolicyStats {
  std::uint64_t seen = 0;
  std::uint64_t modified = 0;
  std::uint64_t dropped = 0;
};

class PacketPolicy {
public:
  virtual ~PacketPolicy() = default;

  /// Inspects and possibly rewrites the datagram. `rng` is the owning
  /// interface's deterministic stream; `now` is the simulation clock
  /// (stateful policies use it for idle timeouts).
  PolicyAction apply(wire::Datagram& dgram, util::Rng& rng,
                     util::SimTime now = util::SimTime::zero());

  virtual std::string name() const = 0;
  const PolicyStats& stats() const { return stats_; }

  /// Attribution for packets this policy drops, recorded in the network's
  /// drop ledger. Queue policies that drop for more than one reason
  /// (BottleneckAqmPolicy) report the cause of the most recent verdict.
  virtual obs::DropCause drop_cause() const { return obs::DropCause::PolicyOther; }

  /// Forgets behavioural state (conntrack tables, queue backlogs) so the
  /// next packet sees a freshly-booted middlebox. Counters in stats() are
  /// preserved: they report on the whole run, not one epoch. Called by
  /// Network::begin_epoch between campaign traces to keep each trace a pure
  /// function of (seed, trace index). Stateless policies inherit the no-op.
  virtual void reset_state() {}

  /// Epoch boundary hook. `seed` is derived by the network from
  /// (epoch seed, this policy's position in deterministic interface
  /// order), so a policy that keeps a private RNG (the chaos fault
  /// policies) can reseed it and stay a pure function of the trace
  /// index regardless of sharding. The default just reset_state()s.
  virtual void on_epoch(std::uint64_t seed) {
    (void)seed;
    reset_state();
  }

  /// Extra forwarding delay imposed on the packet just passed (queuing
  /// policies). The datapath reads this once per apply(); stateless
  /// policies return zero.
  virtual util::SimDuration take_extra_delay() { return {}; }

  /// True if the packet just passed should additionally be delivered a
  /// second time (duplication faults). Read-and-clear, once per apply(),
  /// like take_extra_delay().
  virtual bool take_duplicate() { return false; }

protected:
  virtual PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                                util::SimTime now) = 0;

private:
  PolicyStats stats_;
};

/// Rewrites ECT(0)/ECT(1)/CE to not-ECT with probability `prob` -- the
/// "ECN bleaching" the traceroute study localises (Section 4.2). prob < 1
/// models the 125 hops the paper saw "sometimes" stripping.
class EcnBleachPolicy final : public PacketPolicy {
public:
  explicit EcnBleachPolicy(double prob = 1.0) : prob_(prob) {}
  std::string name() const override;
  double probability() const { return prob_; }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime now) override;

private:
  double prob_;
};

/// Drops ECT-marked UDP while passing everything else -- the firewall
/// behaviour behind the paper's persistently ECT-unreachable NTP servers
/// (Section 4.1) and behind the UDP/TCP asymmetry of Section 4.4.
class EctUdpDropPolicy final : public PacketPolicy {
public:
  explicit EctUdpDropPolicy(double prob = 1.0) : prob_(prob) {}
  std::string name() const override;
  obs::DropCause drop_cause() const override { return obs::DropCause::EctUdpFilter; }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime now) override;

private:
  double prob_;
};

/// Drops ECT-marked packets of *any* protocol (firewalls that key on the IP
/// ECN field alone; used by ablations and by servers that also refuse TCP
/// ECN data).
class EctAnyDropPolicy final : public PacketPolicy {
public:
  explicit EctAnyDropPolicy(double prob = 1.0) : prob_(prob) {}
  std::string name() const override;
  obs::DropCause drop_cause() const override { return obs::DropCause::EctAnyFilter; }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime now) override;

private:
  double prob_;
};

/// Drops packets with a non-zero ToS octet with some probability -- the
/// paper's conjecture for McQuistin-home behaviour: "routers treating the
/// ECN bits as part of the type-of-service field and preferentially
/// dropping such packets".
class TosSensitiveDropPolicy final : public PacketPolicy {
public:
  explicit TosSensitiveDropPolicy(double prob) : prob_(prob) {}
  std::string name() const override;
  obs::DropCause drop_cause() const override { return obs::DropCause::TosFilter; }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime now) override;

private:
  double prob_;
};

/// Generic match-and-drop: the escape hatch for odd observed behaviours,
/// e.g. the two "Phoenix Public Library" servers that were unreachable with
/// *not-ECT* UDP from EC2 vantage points only (Figure 3b).
class MatchDropPolicy final : public PacketPolicy {
public:
  struct Match {
    std::optional<wire::IpProto> protocol;
    std::optional<bool> ect;  ///< true: ECT/CE only; false: not-ECT only
    std::optional<std::pair<wire::Ipv4Address, int>> src_prefix;
    double drop_prob = 1.0;
  };

  explicit MatchDropPolicy(Match match, std::string label = "match-drop")
      : match_(match), label_(std::move(label)) {}
  std::string name() const override { return label_; }
  obs::DropCause drop_cause() const override { return obs::DropCause::MatchFilter; }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime now) override;

private:
  Match match_;
  std::string label_;
};

/// RFC 3168 AQM behaviour at a congested queue: ECT packets are CE-marked
/// with `mark_prob`; not-ECT packets are dropped with `drop_prob` (the loss
/// ECN exists to avoid). Also drops ECT packets with `overload_drop_prob`
/// to model queues beyond the marking threshold.
class CongestionPolicy final : public PacketPolicy {
public:
  CongestionPolicy(double mark_prob, double drop_prob, double overload_drop_prob = 0.0)
      : mark_prob_(mark_prob), drop_prob_(drop_prob), overload_drop_prob_(overload_drop_prob) {}
  std::string name() const override;
  obs::DropCause drop_cause() const override { return obs::DropCause::CongestionLoss; }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime now) override;

private:
  double mark_prob_;
  double drop_prob_;
  double overload_drop_prob_;
};

/// Stateful conntrack-style greylisting in front of a server: a new source
/// must send several UDP packets before the firewall starts passing them,
/// and the per-source state resets after an idle period. Because the
/// measurement application probes each server with not-ECT NTP *first* and
/// ECT(0) NTP immediately after (Section 3's test order), a greylist
/// threshold of 5-9 packets makes the plain test fail while the ECT test --
/// whose packets arrive with the counter already warm -- succeeds. This is
/// the mechanism behind the paper's Figure 2b observation that ~0.5% of
/// servers per trace are reachable with ECT(0) but not with not-ECT UDP,
/// with different servers affected in each trace.
class GreylistUdpPolicy final : public PacketPolicy {
public:
  struct Params {
    /// Per idle-reset draw: probability the firewall demands 5-9 packets.
    double flaky_prob = 0.006;
    /// ...or is effectively wedged (threshold far above any probe count).
    double dead_prob = 0.001;
    util::SimDuration idle_reset = util::SimDuration::seconds(60);
  };

  explicit GreylistUdpPolicy(Params params) : params_(params) {}
  std::string name() const override { return "greylist-udp"; }
  obs::DropCause drop_cause() const override { return obs::DropCause::Greylist; }
  void reset_state() override { sources_.clear(); }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                        util::SimTime now) override;

private:
  struct SourceState {
    std::uint32_t packets = 0;
    util::SimTime last;
    std::uint32_t threshold = 0;
  };
  Params params_;
  std::map<std::uint32_t, SourceState> sources_;
};

/// A bottleneck link queue with RED-style AQM (the router behaviour RFC 3168
/// section 4 assumes): a token-bucket drain at `rate_bps`, a finite queue,
/// and an occupancy-proportional early-action ramp that CE-marks ECT packets
/// and drops not-ECT ones. Passing packets pick up the queuing delay they
/// would experience -- making the latency benefit of ECN (the paper's
/// interactive-media motivation) directly measurable.
class BottleneckAqmPolicy final : public PacketPolicy {
public:
  struct Params {
    double rate_bps = 2e6;
    std::size_t queue_capacity_bytes = 48 * 1024;
    double red_min_fraction = 0.25;  ///< start marking/dropping above this
    double red_max_fraction = 0.85;  ///< certain action above this
    bool ecn_enabled = true;         ///< CE-mark ECT instead of dropping
  };

  explicit BottleneckAqmPolicy(Params params) : params_(params) {}
  std::string name() const override;
  obs::DropCause drop_cause() const override { return last_drop_cause_; }
  void reset_state() override {
    backlog_bytes_ = 0.0;
    last_drain_ = {};
    pending_delay_ = {};
  }

  util::SimDuration take_extra_delay() override {
    const auto delay = pending_delay_;
    pending_delay_ = {};
    return delay;
  }

  struct QueueStats {
    std::uint64_t enqueued = 0;
    std::uint64_t ce_marked = 0;
    std::uint64_t dropped_early = 0;     ///< RED action on not-ECT
    std::uint64_t dropped_overflow = 0;  ///< hard queue overflow
    double peak_occupancy = 0.0;         ///< fraction of capacity
    util::RunningStats delay_ms;         ///< per-enqueued-packet queue delay
  };
  const QueueStats& queue_stats() const { return queue_stats_; }

protected:
  PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                        util::SimTime now) override;

private:
  Params params_;
  double backlog_bytes_ = 0.0;
  util::SimTime last_drain_;
  util::SimDuration pending_delay_;
  QueueStats queue_stats_;
  obs::DropCause last_drop_cause_ = obs::DropCause::AqmEarly;
};

using PolicyPtr = std::shared_ptr<PacketPolicy>;

}  // namespace ecnprobe::netsim
