#include "ecnprobe/netsim/host.hpp"

#include <algorithm>
#include <stdexcept>

#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::netsim {

UdpSocket::~UdpSocket() { close(); }

void UdpSocket::send(wire::Ipv4Address dst, std::uint16_t dst_port,
                     std::span<const std::uint8_t> payload, wire::Ecn ecn,
                     std::uint8_t ttl) {
  if (host_ == nullptr) return;
  wire::Datagram dgram =
      wire::make_udp_datagram(host_->address(), dst, port_, dst_port, payload, ecn, ttl);
  host_->send_datagram(std::move(dgram));
}

void UdpSocket::close() {
  if (host_ != nullptr) {
    host_->release_port(port_);
    host_ = nullptr;
  }
}

std::shared_ptr<UdpSocket> Host::open_udp(std::uint16_t port) {
  if (port == 0) port = pick_ephemeral_port();
  if (udp_sockets_.contains(port)) {
    throw std::runtime_error("Host::open_udp: port in use: " + std::to_string(port));
  }
  // Private constructor: can't use make_shared.
  std::shared_ptr<UdpSocket> socket(new UdpSocket(*this, port));
  udp_sockets_[port] = socket.get();
  return socket;
}

void Host::send_datagram(wire::Datagram dgram) {
  // Consume a staged flight before the early-out below: a client that
  // staged a send which never reaches the wire must not leak its pending
  // state into the next unrelated send.
  auto* recorder = net_ != nullptr ? &net_->obs().recorder : nullptr;
  const auto pending =
      recorder != nullptr && recorder->armed() ? recorder->take_pending() : std::nullopt;
  if (net_ == nullptr || net_->interface_count(id()) == 0) return;
  dgram.set_identification(net_->next_ip_id());
  if (pending) {
    dgram.flight = pending->flight;
    if (!pending->is_reply) {
      recorder->set_flight_origin(pending->flight, id());
      recorder->record(
          dgram.flight,
          pending->retransmit ? obs::SpanEvent::Retransmit : obs::SpanEvent::ProbeSent,
          net_->sim().now(), obs::Layer::Host, name(), address().value(),
          util::strf("dst=%s ecn=%s proto=%s", dgram.ip.dst.to_string().c_str(),
                     std::string(wire::to_string(dgram.ip.ecn)).c_str(),
                     std::string(wire::to_string(dgram.ip.protocol)).c_str()),
          dgram.wire_view());
    }
  }
  ++stats_.sent;
  for (auto* capture : captures_) capture->record(net_->sim().now(), Direction::Tx, dgram);
  net_->transmit(id(), 0, std::move(dgram));
}

void Host::set_protocol_handler(wire::IpProto proto, ProtocolHandler handler) {
  proto_handlers_[proto] = std::move(handler);
}

void Host::clear_protocol_handler(wire::IpProto proto) { proto_handlers_.erase(proto); }

void Host::add_capture(PacketCapture* capture) { captures_.push_back(capture); }

void Host::remove_capture(PacketCapture* capture) {
  captures_.erase(std::remove(captures_.begin(), captures_.end(), capture), captures_.end());
}

void Host::on_receive(wire::Datagram dgram, int /*ingress_if*/) {
  for (auto* capture : captures_) capture->record(net_->sim().now(), Direction::Rx, dgram);
  if (dgram.ip.dst != address()) return;  // not ours; hosts do not forward

  // A tracked packet coming home: replies inherit the request's flight id,
  // and the origin gate keeps the request's arrival at the *server* from
  // masquerading as a reply.
  auto& recorder = net_->obs().recorder;
  if (recorder.armed() && dgram.flight != 0 && recorder.flight_origin_is(dgram.flight, id())) {
    recorder.record(dgram.flight, obs::SpanEvent::ReplyReceived, net_->sim().now(),
                    obs::Layer::Host, name(), address().value(),
                    util::strf("src=%s ecn=%s proto=%s", dgram.ip.src.to_string().c_str(),
                               std::string(wire::to_string(dgram.ip.ecn)).c_str(),
                               std::string(wire::to_string(dgram.ip.protocol)).c_str()),
                    dgram.wire_view());
  }

  if (dgram.ip.protocol == wire::IpProto::Udp) {
    deliver_udp(dgram);
    return;
  }
  const auto it = proto_handlers_.find(dgram.ip.protocol);
  if (it != proto_handlers_.end()) it->second(dgram);
}

void Host::deliver_udp(const wire::Datagram& dgram) {
  auto segment = wire::decode_udp_segment(dgram.ip.src, dgram.ip.dst, dgram.payload);
  if (!segment || !segment->checksum_ok) {
    ++stats_.udp_bad_checksum;
    net_->obs().ledger.record_drop(obs::Layer::Host, obs::DropCause::BadChecksum, name());
    return;
  }
  const auto it = udp_sockets_.find(segment->header.dst_port);
  if (it == udp_sockets_.end()) {
    ++stats_.udp_no_socket;
    net_->obs().ledger.record_drop(obs::Layer::Host, obs::DropCause::NoSocket, name());
    if (params_.udp_port_unreachable) {
      send_datagram(wire::make_dest_unreachable(address(), dgram,
                                                wire::IcmpUnreachCode::Port));
    }
    return;
  }
  ++stats_.udp_delivered;
  if (!it->second->handler_) return;
  UdpDelivery delivery;
  delivery.src = dgram.ip.src;
  delivery.src_port = segment->header.src_port;
  delivery.dst = dgram.ip.dst;
  delivery.dst_port = segment->header.dst_port;
  delivery.payload.assign(segment->payload.begin(), segment->payload.end());
  delivery.ecn = dgram.ip.ecn;
  delivery.flight = dgram.flight;
  it->second->handler_(delivery);
}

void Host::release_port(std::uint16_t port) { udp_sockets_.erase(port); }

std::uint16_t Host::pick_ephemeral_port() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65535 ? 49152 : static_cast<std::uint16_t>(
                                                             next_ephemeral_ + 1);
    if (!udp_sockets_.contains(candidate)) return candidate;
  }
  throw std::runtime_error("Host::pick_ephemeral_port: exhausted");
}

}  // namespace ecnprobe::netsim
