// Event-queue implementations behind netsim::Simulator. Two schedulers
// share one contract -- events pop in ascending (when, seq) order, where
// `seq` is the global insertion sequence number -- so their firing order is
// bit-identical and either can replay a campaign:
//
//  * CalendarQueue (the default): a bucketed integer-nanosecond wheel with
//    an overflow ladder. push/pop are O(1) amortized: near-future events
//    land in a circular array of time buckets; events beyond the wheel's
//    horizon wait in a binary-heap ladder and are re-bucketed when the
//    wheel drains down to them. Buckets retain their capacity across
//    clear(), so per-trace steady state performs no heap allocation.
//
//  * LegacyHeapQueue: the pre-calendar std::priority_queue-equivalent
//    binary heap, kept compilable and selectable (ECNPROBE_SCHEDULER=heap
//    or SchedulerKind::LegacyHeap) as the reference implementation for the
//    differential scheduler tests.
//
// The FIFO tie-break is explicit: `seq` is part of the ordering key, not an
// accident of container behaviour. Two events scheduled for the same
// nanosecond fire in scheduling order on both schedulers, by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "ecnprobe/util/function.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::netsim {

using util::SimTime;

/// One scheduled event. `cancelled` is shared with the EventHandle given to
/// the scheduler's caller; it is null for fire-and-forget posts, which then
/// skip the per-event control-block allocation entirely.
struct SimEvent {
  SimTime when;
  std::uint64_t seq = 0;
  util::UniqueFunction fn;
  std::shared_ptr<bool> cancelled;
  SimTime scheduled_at;

  /// The total order both schedulers pop in.
  bool before(const SimEvent& other) const {
    if (when != other.when) return when < other.when;
    return seq < other.seq;
  }
};

/// Which scheduler a Simulator runs on.
enum class SchedulerKind {
  Calendar,    ///< calendar-queue wheel + overflow ladder (default)
  LegacyHeap,  ///< reference binary heap (differential tests)
};

/// Reads ECNPROBE_SCHEDULER ("calendar" | "heap"); defaults to Calendar.
SchedulerKind scheduler_kind_from_env();

/// The reference scheduler: a binary heap ordered by (when, seq), exactly
/// the ordering the old std::priority_queue<Event, vector, Later> had.
class LegacyHeapQueue {
public:
  void push(SimEvent&& ev);
  SimEvent pop();
  /// Key of the earliest queued event (cancelled entries included, matching
  /// the historical run_until() semantics). Undefined when empty.
  SimTime min_when() const { return heap_.front().when; }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const { return b.before(a); }
  };
  std::vector<SimEvent> heap_;
};

/// Calendar queue: a circular array of `bucket_count` buckets, each
/// `bucket_width` nanoseconds wide, covering the wheel's horizon of
/// bucket_count x bucket_width from the cursor; plus a heap-ordered
/// overflow ladder for events beyond the horizon.
///
/// Invariants:
///  * every wheel event E satisfies cursor_time <= bucket-of(E) window,
///    i.e. wheel buckets ahead of the cursor hold strictly later windows
///    (no wrap-around ambiguity: far events live in the ladder instead);
///  * events pushed at-or-before the cursor's window (the simulator clamps
///    to `now`, but a stale cursor can be ahead of `now` after run_until
///    drained the wheel) drop into the cursor bucket itself -- pop always
///    min-scans that bucket first, so ordering stays exact;
///  * every ladder event is at or beyond the wheel horizon.
///
/// Pop finds the first non-empty bucket at/after the cursor (amortized O(1):
/// cursor advance is monotonic between re-anchors) and min-scans it by
/// (when, seq). When the wheel drains, the wheel re-anchors at the ladder's
/// minimum and re-buckets every ladder event inside the new horizon.
class CalendarQueue {
public:
  explicit CalendarQueue(std::int64_t bucket_width_ns = kDefaultBucketWidthNs,
                         std::size_t bucket_count = kDefaultBucketCount);

  void push(SimEvent&& ev);
  SimEvent pop();
  /// Key of the earliest queued event. Undefined when empty. May advance
  /// the cursor over empty buckets (a pure optimization; see invariants).
  SimTime min_when();
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  /// Empties the queue but keeps bucket capacity (steady-state reuse).
  void clear();

  static constexpr std::int64_t kDefaultBucketWidthNs = 65'536;  // ~66us
  static constexpr std::size_t kDefaultBucketCount = 1024;
  /// Wheel doubles when occupancy exceeds this many events per bucket. The
  /// resize also re-fits the bucket width to the live span (see grow_wheel)
  /// so the per-pop min-scan stays O(kGrowOccupancy) whether pending events
  /// cluster in one millisecond or sprawl across simulated minutes.
  static constexpr std::size_t kGrowOccupancy = 4;
  /// Bucket width never adapts below this (same-instant bursts share one
  /// bucket no matter how fine the wheel: their scan cost is inherent).
  static constexpr std::int64_t kMinBucketWidthNs = 64;

  // -- introspection for tests/benches --------------------------------------
  std::size_t wheel_size() const { return wheel_count_; }
  std::size_t ladder_size() const { return ladder_.size(); }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::int64_t bucket_width_ns() const { return width_ns_; }
  std::uint64_t resizes() const { return resizes_; }

private:
  std::int64_t horizon_ns() const {
    return base_ns_ + static_cast<std::int64_t>(buckets_.size()) * width_ns_;
  }
  std::size_t bucket_index_for(std::int64_t when_ns) const;
  /// Positions the cursor on the bucket holding the global minimum:
  /// re-anchors from the ladder if the wheel drained, advances over empty
  /// buckets, and pulls ladder events the grown horizon now covers.
  void prepare_front();
  void drain_ladder_within_horizon();
  void reseed_from_ladder();
  void grow_wheel();

  struct LadderLater {
    bool operator()(const SimEvent& a, const SimEvent& b) const { return b.before(a); }
  };

  std::int64_t width_ns_;
  std::vector<std::vector<SimEvent>> buckets_;
  std::size_t cursor_ = 0;     ///< bucket whose window starts at base_ns_
  std::int64_t base_ns_ = 0;   ///< inclusive start of the cursor bucket's window
  std::size_t wheel_count_ = 0;
  std::vector<SimEvent> ladder_;  ///< std::*_heap ordered by LadderLater
  std::size_t size_ = 0;
  std::uint64_t resizes_ = 0;
};

/// The facade Simulator drives: one scheduler active per instance, chosen
/// at construction. A branch on the kind per operation is cheaper than a
/// virtual dispatch and keeps both implementations trivially inlinable.
class EventQueue {
public:
  explicit EventQueue(SchedulerKind kind) : kind_(kind) {}

  SchedulerKind kind() const { return kind_; }

  void push(SimEvent&& ev) {
    if (kind_ == SchedulerKind::Calendar) calendar_.push(std::move(ev));
    else heap_.push(std::move(ev));
  }
  SimEvent pop() {
    return kind_ == SchedulerKind::Calendar ? calendar_.pop() : heap_.pop();
  }
  SimTime min_when() {
    return kind_ == SchedulerKind::Calendar ? calendar_.min_when() : heap_.min_when();
  }
  bool empty() const {
    return kind_ == SchedulerKind::Calendar ? calendar_.empty() : heap_.empty();
  }
  std::size_t size() const {
    return kind_ == SchedulerKind::Calendar ? calendar_.size() : heap_.size();
  }
  void clear() {
    if (kind_ == SchedulerKind::Calendar) calendar_.clear();
    else heap_.clear();
  }

private:
  SchedulerKind kind_;
  CalendarQueue calendar_;
  LegacyHeapQueue heap_;
};

}  // namespace ecnprobe::netsim
