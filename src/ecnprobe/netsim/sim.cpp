#include "ecnprobe/netsim/sim.hpp"

#include <stdexcept>

namespace ecnprobe::netsim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

void Simulator::assert_owner() {
  const auto self = std::this_thread::get_id();
  if (owner_ == std::thread::id{}) {
    owner_ = self;
  } else if (owner_ != self) {
    throw std::logic_error(
        "Simulator: used from a second thread; each simulation instance is "
        "single-threaded (give every campaign worker its own world)");
  }
}

EventHandle Simulator::schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration{}) delay = SimDuration{};
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  assert_owner();
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled, now_});
  ++live_;
  return EventHandle{std::move(cancelled)};
}

void Simulator::schedule_when_idle(std::function<void()> fn) {
  assert_owner();
  idle_.push_back(std::move(fn));
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out, which is cheap
    // relative to simulated work and keeps the queue invariant simple.
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) {
      --live_;  // reap an event cancelled via its handle
      continue;
    }
    --live_;
    now_ = ev.when;
    *ev.cancelled = true;  // marks "fired" so EventHandle::pending() is false
    if (events_counter_ != nullptr) events_counter_->inc();
    if (lag_histogram_ != nullptr) {
      lag_histogram_->observe((ev.when - ev.scheduled_at).to_millis());
    }
    ev.fn();
    ++processed_;
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  assert_owner();
  std::size_t fired = 0;
  while (fired < limit) {
    if (fire_next()) {
      ++fired;
      continue;
    }
    if (idle_.empty()) break;
    auto fn = std::move(idle_.front());
    idle_.pop_front();
    fn();
    ++fired;
  }
  return fired;
}

std::size_t Simulator::run_until(SimTime until) {
  assert_owner();
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    if (fire_next()) ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

void Simulator::clear_pending() {
  assert_owner();
  while (!queue_.empty()) queue_.pop();
  idle_.clear();
  live_ = 0;
}

}  // namespace ecnprobe::netsim
