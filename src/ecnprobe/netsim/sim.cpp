#include "ecnprobe/netsim/sim.hpp"

namespace ecnprobe::netsim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Simulator::schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration{}) delay = SimDuration{};
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  ++live_;
  return EventHandle{std::move(cancelled)};
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out, which is cheap
    // relative to simulated work and keeps the queue invariant simple.
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) {
      --live_;  // reap an event cancelled via its handle
      continue;
    }
    --live_;
    now_ = ev.when;
    *ev.cancelled = true;  // marks "fired" so EventHandle::pending() is false
    ev.fn();
    ++processed_;
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    if (fire_next()) ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

}  // namespace ecnprobe::netsim
