#include "ecnprobe/netsim/sim.hpp"

#include <stdexcept>

namespace ecnprobe::netsim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

void Simulator::assert_owner() {
  const auto self = std::this_thread::get_id();
  if (owner_ == std::thread::id{}) {
    owner_ = self;
  } else if (owner_ != self) {
    throw std::logic_error(
        "Simulator: used from a second thread; each simulation instance is "
        "single-threaded (give every campaign worker its own world)");
  }
}

void Simulator::schedule_when_idle(std::function<void()> fn) {
  assert_owner();
  idle_.push_back(std::move(fn));
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    SimEvent ev = queue_.pop();
    if (ev.cancelled && *ev.cancelled) {
      --live_;  // reap an event cancelled via its handle
      continue;
    }
    --live_;
    now_ = ev.when;
    if (ev.cancelled) *ev.cancelled = true;  // "fired": EventHandle::pending() is false
    if (events_counter_ != nullptr) events_counter_->inc();
    if (lag_histogram_ != nullptr) {
      lag_histogram_->observe((ev.when - ev.scheduled_at).to_millis());
    }
    ev.fn();
    ++processed_;
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  assert_owner();
  std::size_t fired = 0;
  while (fired < limit) {
    if (fire_next()) {
      ++fired;
      continue;
    }
    if (idle_.empty()) break;
    auto fn = std::move(idle_.front());
    idle_.pop_front();
    fn();
    ++fired;
  }
  return fired;
}

std::size_t Simulator::run_until(SimTime until) {
  assert_owner();
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.min_when() <= until) {
    if (fire_next()) ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

void Simulator::clear_pending() {
  assert_owner();
  queue_.clear();
  idle_.clear();
  live_ = 0;
}

}  // namespace ecnprobe::netsim
