#include "ecnprobe/netsim/policy.hpp"

#include <algorithm>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::netsim {

PolicyAction PacketPolicy::apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime now) {
  ++stats_.seen;
  const wire::Ecn before = dgram.ip.ecn;
  const PolicyAction action = do_apply(dgram, rng, now);
  if (action == PolicyAction::Drop) {
    ++stats_.dropped;
  } else if (dgram.ip.ecn != before) {
    ++stats_.modified;
  }
  return action;
}

std::string EcnBleachPolicy::name() const {
  return util::strf("ecn-bleach(p=%.2f)", prob_);
}

PolicyAction EcnBleachPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime /*now*/) {
  if (wire::is_ect(dgram.ip.ecn) && rng.bernoulli(prob_)) {
    dgram.set_ecn(wire::Ecn::NotEct);
  }
  return PolicyAction::Pass;
}

std::string EctUdpDropPolicy::name() const { return "ect-udp-drop"; }

PolicyAction EctUdpDropPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime /*now*/) {
  if (dgram.ip.protocol == wire::IpProto::Udp && wire::is_ect(dgram.ip.ecn) &&
      rng.bernoulli(prob_)) {
    return PolicyAction::Drop;
  }
  return PolicyAction::Pass;
}

std::string EctAnyDropPolicy::name() const { return "ect-any-drop"; }

PolicyAction EctAnyDropPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime /*now*/) {
  if (wire::is_ect(dgram.ip.ecn) && rng.bernoulli(prob_)) return PolicyAction::Drop;
  return PolicyAction::Pass;
}

std::string TosSensitiveDropPolicy::name() const {
  return util::strf("tos-drop(p=%.3f)", prob_);
}

PolicyAction TosSensitiveDropPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime /*now*/) {
  if (dgram.ip.tos_octet() != 0 && rng.bernoulli(prob_)) return PolicyAction::Drop;
  return PolicyAction::Pass;
}

PolicyAction MatchDropPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime /*now*/) {
  if (match_.protocol && dgram.ip.protocol != *match_.protocol) return PolicyAction::Pass;
  if (match_.ect && wire::is_ect(dgram.ip.ecn) != *match_.ect) return PolicyAction::Pass;
  if (match_.src_prefix &&
      !dgram.ip.src.in_prefix(match_.src_prefix->first, match_.src_prefix->second)) {
    return PolicyAction::Pass;
  }
  return rng.bernoulli(match_.drop_prob) ? PolicyAction::Drop : PolicyAction::Pass;
}

std::string CongestionPolicy::name() const {
  return util::strf("congestion(mark=%.2f,drop=%.2f)", mark_prob_, drop_prob_);
}

PolicyAction CongestionPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng, util::SimTime /*now*/) {
  if (wire::is_ect(dgram.ip.ecn)) {
    if (overload_drop_prob_ > 0.0 && rng.bernoulli(overload_drop_prob_)) {
      return PolicyAction::Drop;
    }
    if (rng.bernoulli(mark_prob_)) dgram.set_ecn(wire::Ecn::Ce);
    return PolicyAction::Pass;
  }
  return rng.bernoulli(drop_prob_) ? PolicyAction::Drop : PolicyAction::Pass;
}

PolicyAction GreylistUdpPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng,
                                         util::SimTime now) {
  if (dgram.ip.protocol != wire::IpProto::Udp) return PolicyAction::Pass;
  SourceState& state = sources_[dgram.ip.src.value()];
  if (state.packets == 0 || now - state.last > params_.idle_reset) {
    // Fresh (or expired) conntrack entry: draw this window's behaviour.
    state.packets = 0;
    const double u = rng.next_double();
    if (u < params_.flaky_prob) {
      state.threshold = 5 + static_cast<std::uint32_t>(rng.next_below(5));  // 5..9
    } else if (u < params_.flaky_prob + params_.dead_prob) {
      state.threshold = 1u << 20;  // never passes within a probe sequence
    } else {
      state.threshold = 0;
    }
  }
  state.last = now;
  ++state.packets;
  return state.packets > state.threshold ? PolicyAction::Pass : PolicyAction::Drop;
}

std::string BottleneckAqmPolicy::name() const {
  return util::strf("bottleneck-aqm(%.1fMbps)", params_.rate_bps / 1e6);
}

PolicyAction BottleneckAqmPolicy::do_apply(wire::Datagram& dgram, util::Rng& rng,
                                           util::SimTime now) {
  // Drain the virtual queue since the last packet.
  const double elapsed_s = (now - last_drain_).to_seconds();
  if (elapsed_s > 0.0) {
    backlog_bytes_ -= elapsed_s * params_.rate_bps / 8.0;
    if (backlog_bytes_ < 0.0) backlog_bytes_ = 0.0;
  }
  last_drain_ = now;

  const auto size = static_cast<double>(wire::Ipv4Header::kSize + dgram.payload.size());
  const auto capacity = static_cast<double>(params_.queue_capacity_bytes);
  const double occupancy = backlog_bytes_ / capacity;
  queue_stats_.peak_occupancy = std::max(queue_stats_.peak_occupancy, occupancy);

  // Hard overflow: nothing fits, ECN or not (RFC 3168: marking never
  // replaces drops once the queue is actually full).
  if (backlog_bytes_ + size > capacity) {
    ++queue_stats_.dropped_overflow;
    last_drop_cause_ = obs::DropCause::AqmOverflow;
    return PolicyAction::Drop;
  }

  // RED-style early action: linear probability ramp over the occupancy band.
  if (occupancy > params_.red_min_fraction) {
    const double band = params_.red_max_fraction - params_.red_min_fraction;
    const double p = band > 0.0
                         ? std::min(1.0, (occupancy - params_.red_min_fraction) / band)
                         : 1.0;
    if (rng.bernoulli(p)) {
      if (params_.ecn_enabled && wire::is_ect(dgram.ip.ecn)) {
        dgram.set_ecn(wire::Ecn::Ce);  // signal instead of dropping
        ++queue_stats_.ce_marked;
      } else {
        ++queue_stats_.dropped_early;
        last_drop_cause_ = obs::DropCause::AqmEarly;
        return PolicyAction::Drop;
      }
    }
  }

  backlog_bytes_ += size;
  ++queue_stats_.enqueued;
  const double delay_s = backlog_bytes_ / (params_.rate_bps / 8.0);
  pending_delay_ = util::SimDuration::from_seconds(delay_s);
  queue_stats_.delay_ms.add(delay_s * 1e3);
  return PolicyAction::Pass;
}

}  // namespace ecnprobe::netsim
