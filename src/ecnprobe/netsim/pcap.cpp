#include "ecnprobe/netsim/pcap.hpp"

#include <fstream>
#include <ostream>

namespace ecnprobe::netsim {

namespace {

// pcap is host-endian by spec (readers detect byte order from the magic);
// we emit little-endian explicitly for a stable on-disk format.
void put_u16(std::ostream& os, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  os.write(bytes, 2);
}

void put_u32(std::ostream& os, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                         static_cast<char>((v >> 16) & 0xff),
                         static_cast<char>(v >> 24)};
  os.write(bytes, 4);
}

constexpr std::uint32_t kMagicMicroseconds = 0xa1b2c3d4;
constexpr std::uint32_t kLinktypeRaw = 101;  // packets start at the IP header

}  // namespace

std::size_t write_pcap(std::ostream& os, const PacketCapture& capture) {
  // Global header.
  put_u32(os, kMagicMicroseconds);
  put_u16(os, 2);   // version major
  put_u16(os, 4);   // version minor
  put_u32(os, 0);   // thiszone
  put_u32(os, 0);   // sigfigs
  put_u32(os, 65535);  // snaplen
  put_u32(os, kLinktypeRaw);

  std::size_t written = 0;
  for (const auto& packet : capture.packets()) {
    const auto bytes = packet.dgram.encode();
    const std::int64_t ns = packet.time.count_nanos();
    put_u32(os, static_cast<std::uint32_t>(ns / 1'000'000'000));
    put_u32(os, static_cast<std::uint32_t>((ns % 1'000'000'000) / 1'000));
    put_u32(os, static_cast<std::uint32_t>(bytes.size()));  // captured length
    put_u32(os, static_cast<std::uint32_t>(bytes.size()));  // original length
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    ++written;
  }
  return written;
}

bool write_pcap_file(const std::string& path, const PacketCapture& capture) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_pcap(os, capture);
  return static_cast<bool>(os);
}

}  // namespace ecnprobe::netsim
