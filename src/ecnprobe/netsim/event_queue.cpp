#include "ecnprobe/netsim/event_queue.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace ecnprobe::netsim {

SchedulerKind scheduler_kind_from_env() {
  if (const char* env = std::getenv("ECNPROBE_SCHEDULER")) {
    if (std::strcmp(env, "heap") == 0) return SchedulerKind::LegacyHeap;
  }
  return SchedulerKind::Calendar;
}

// ---------------------------------------------------------------- LegacyHeap

void LegacyHeapQueue::push(SimEvent&& ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SimEvent LegacyHeapQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  SimEvent out = std::move(heap_.back());
  heap_.pop_back();
  return out;
}

// ------------------------------------------------------------- CalendarQueue

CalendarQueue::CalendarQueue(std::int64_t bucket_width_ns, std::size_t bucket_count)
    : width_ns_(bucket_width_ns > 0 ? bucket_width_ns : kDefaultBucketWidthNs),
      buckets_(bucket_count > 0 ? bucket_count : kDefaultBucketCount) {}

std::size_t CalendarQueue::bucket_index_for(std::int64_t when_ns) const {
  const std::int64_t delta = when_ns - base_ns_;
  if (delta < width_ns_) return cursor_;  // cursor window, or behind a stale cursor
  return (cursor_ + static_cast<std::size_t>(delta / width_ns_)) % buckets_.size();
}

void CalendarQueue::push(SimEvent&& ev) {
  const std::int64_t when_ns = ev.when.count_nanos();
  if (size_ == 0) {
    // Fully empty: re-anchor the wheel at this event so the horizon is
    // centred on live work instead of wherever the last trace ended.
    base_ns_ = when_ns - (when_ns % width_ns_);
    if (base_ns_ > when_ns) base_ns_ -= width_ns_;  // negative-time safety
    cursor_ = static_cast<std::size_t>(
                  ((when_ns / width_ns_) % static_cast<std::int64_t>(buckets_.size()) +
                   static_cast<std::int64_t>(buckets_.size())) %
                  static_cast<std::int64_t>(buckets_.size()));
  }
  ++size_;
  // Grow (and possibly re-fit the bucket width) before the horizon test:
  // a resize can shrink the horizon, which may push this event's window
  // from "wheel" to "ladder".
  if (when_ns < horizon_ns() && wheel_count_ + 1 > buckets_.size() * kGrowOccupancy) {
    grow_wheel();
  }
  if (when_ns >= horizon_ns()) {
    ladder_.push_back(std::move(ev));
    std::push_heap(ladder_.begin(), ladder_.end(), LadderLater{});
    return;
  }
  buckets_[bucket_index_for(when_ns)].push_back(std::move(ev));
  ++wheel_count_;
}

void CalendarQueue::prepare_front() {
  if (wheel_count_ == 0) {
    reseed_from_ladder();
    return;  // reseed leaves the cursor on the ladder-minimum's bucket
  }
  // All wheel events live within one horizon of the cursor, so at most one
  // rotation of empty buckets can precede the first occupied one.
  while (buckets_[cursor_].empty()) {
    cursor_ = (cursor_ + 1) % buckets_.size();
    base_ns_ += width_ns_;
  }
  // Advancing the cursor grew the horizon; ladder events it now covers must
  // join the wheel or they would pop after later-but-bucketed events.
  drain_ladder_within_horizon();
}

void CalendarQueue::drain_ladder_within_horizon() {
  const std::int64_t horizon = horizon_ns();
  while (!ladder_.empty() && ladder_.front().when.count_nanos() < horizon) {
    std::pop_heap(ladder_.begin(), ladder_.end(), LadderLater{});
    SimEvent ev = std::move(ladder_.back());
    ladder_.pop_back();
    buckets_[bucket_index_for(ev.when.count_nanos())].push_back(std::move(ev));
    ++wheel_count_;
  }
}

void CalendarQueue::reseed_from_ladder() {
  // The wheel drained; re-anchor it at the ladder's minimum and pull every
  // ladder event inside the new horizon into buckets.
  const std::int64_t min_ns = ladder_.front().when.count_nanos();
  base_ns_ = min_ns - (min_ns % width_ns_);
  if (base_ns_ > min_ns) base_ns_ -= width_ns_;
  cursor_ = static_cast<std::size_t>(
                ((min_ns / width_ns_) % static_cast<std::int64_t>(buckets_.size()) +
                 static_cast<std::int64_t>(buckets_.size())) %
                static_cast<std::int64_t>(buckets_.size()));
  drain_ladder_within_horizon();
}

void CalendarQueue::grow_wheel() {
  // Double the wheel, re-fit the bucket width to the live span, and
  // re-bucket. Order is unaffected: pop selects by explicit (when, seq),
  // never by bucket position. Width adaptation is what keeps the per-pop
  // min-scan bounded: a fixed width degrades to O(n) scans whenever n
  // events cluster inside one bucket's window, no matter how many buckets
  // the wheel has. Re-fitting targets kGrowOccupancy events per bucket on
  // average for the *current* population, whatever its time scale.
  ++resizes_;
  std::vector<std::vector<SimEvent>> old = std::move(buckets_);
  const auto new_count = old.size() * 2;

  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ns = std::numeric_limits<std::int64_t>::min();
  for (const auto& bucket : old) {
    for (const auto& ev : bucket) {
      min_ns = std::min(min_ns, ev.when.count_nanos());
      max_ns = std::max(max_ns, ev.when.count_nanos());
    }
  }
  if (min_ns <= max_ns) {
    // Aim for the span to occupy ~3/4 of the new wheel: density lands near
    // kGrowOccupancy x 3/4 and there is headroom past max_ns before the
    // horizon, so steady pushes slightly beyond the tail stay on the wheel.
    const std::int64_t span = max_ns - min_ns + 1;
    width_ns_ = std::max(kMinBucketWidthNs,
                         span / static_cast<std::int64_t>(new_count * 3 / 4));
    base_ns_ = min_ns - (min_ns % width_ns_);
    if (base_ns_ > min_ns) base_ns_ -= width_ns_;  // negative-time safety
  }

  buckets_ = std::vector<std::vector<SimEvent>>(new_count);
  cursor_ = static_cast<std::size_t>(
                ((base_ns_ / width_ns_) % static_cast<std::int64_t>(buckets_.size()) +
                 static_cast<std::int64_t>(buckets_.size())) %
                static_cast<std::int64_t>(buckets_.size()));
  wheel_count_ = 0;
  const std::int64_t horizon = horizon_ns();
  for (auto& bucket : old) {
    for (auto& ev : bucket) {
      // A narrower width can shrink the horizon below an event that used to
      // fit the wheel; such events spill to the ladder.
      if (ev.when.count_nanos() >= horizon) {
        ladder_.push_back(std::move(ev));
        std::push_heap(ladder_.begin(), ladder_.end(), LadderLater{});
      } else {
        buckets_[bucket_index_for(ev.when.count_nanos())].push_back(std::move(ev));
        ++wheel_count_;
      }
    }
    bucket.clear();
  }
  // A farther horizon may newly cover ladder events; pull them in.
  drain_ladder_within_horizon();
}

SimTime CalendarQueue::min_when() {
  assert(size_ > 0);
  prepare_front();
  const std::vector<SimEvent>& bucket = buckets_[cursor_];
  const SimEvent* best = &bucket.front();
  for (const SimEvent& ev : bucket) {
    if (ev.before(*best)) best = &ev;
  }
  return best->when;
}

SimEvent CalendarQueue::pop() {
  assert(size_ > 0);
  prepare_front();
  std::vector<SimEvent>& bucket = buckets_[cursor_];
  std::size_t best = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    if (bucket[i].before(bucket[best])) best = i;
  }
  SimEvent out = std::move(bucket[best]);
  if (best + 1 != bucket.size()) bucket[best] = std::move(bucket.back());
  bucket.pop_back();
  --wheel_count_;
  --size_;
  return out;
}

void CalendarQueue::clear() {
  for (auto& bucket : buckets_) bucket.clear();  // capacity retained
  ladder_.clear();
  wheel_count_ = 0;
  size_ = 0;
}

}  // namespace ecnprobe::netsim
