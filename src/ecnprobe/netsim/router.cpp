#include "ecnprobe/netsim/router.hpp"

#include "ecnprobe/util/log.hpp"

namespace ecnprobe::netsim {

void Router::on_receive(wire::Datagram dgram, int /*ingress_if*/) {
  if (dgram.ip.dst == address()) {
    // Routers are not probe targets in this study; traffic addressed to a
    // router (other than our ICMP) is absorbed.
    ++stats_.delivered_local;
    return;
  }

  // RFC 791: decrement TTL at each hop; expire at zero.
  if (dgram.ip.ttl <= 1) {
    ++stats_.ttl_expired;
    net_->obs().ledger.record_drop(obs::Layer::Router, obs::DropCause::TtlExpired, name());
    if (rng_.bernoulli(params_.icmp_response_prob)) {
      // Quote the datagram exactly as received -- including any ECN mark an
      // upstream middlebox stripped -- per RFC 1812 section 4.3.2.3.
      send_icmp(wire::make_time_exceeded(address(), dgram));
    }
    return;
  }
  dgram.ip.ttl = static_cast<std::uint8_t>(dgram.ip.ttl - 1);

  const int egress = net_->route(id(), dgram.ip.dst);
  if (egress == kNoInterface) {
    ++stats_.unroutable;
    net_->obs().ledger.record_drop(obs::Layer::Router, obs::DropCause::Unroutable, name());
    if (rng_.bernoulli(params_.icmp_response_prob)) {
      send_icmp(wire::make_dest_unreachable(address(), dgram,
                                            wire::IcmpUnreachCode::Net));
    }
    return;
  }
  ++stats_.forwarded;
  net_->transmit(id(), egress, std::move(dgram));
}

void Router::send_icmp(wire::Datagram&& icmp) {
  icmp.ip.identification = net_->next_ip_id();
  const int egress = net_->route(id(), icmp.ip.dst);
  if (egress == kNoInterface) return;
  ++stats_.icmp_sent;
  net_->transmit(id(), egress, std::move(icmp));
}

}  // namespace ecnprobe::netsim
