#include "ecnprobe/netsim/router.hpp"

#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::netsim {

void Router::on_receive(wire::Datagram dgram, int /*ingress_if*/) {
  if (dgram.ip.dst == address()) {
    // Routers are not probe targets in this study; traffic addressed to a
    // router (other than our ICMP) is absorbed.
    ++stats_.delivered_local;
    return;
  }

  auto& recorder = net_->obs().recorder;

  // RFC 791: decrement TTL at each hop; expire at zero.
  if (dgram.ip.ttl <= 1) {
    ++stats_.ttl_expired;
    net_->obs().ledger.record_drop(obs::Layer::Router, obs::DropCause::TtlExpired, name());
    if (recorder.armed() && dgram.flight != 0) {
      recorder.record(dgram.flight, obs::SpanEvent::PolicyDrop, net_->sim().now(),
                      obs::Layer::Router, name(), address().value(), "ttl-expired",
                      dgram.wire_view());
    }
    if (rng_.bernoulli(params_.icmp_response_prob)) {
      // Quote the datagram exactly as received -- including any ECN mark an
      // upstream middlebox stripped -- per RFC 1812 section 4.3.2.3.
      wire::Datagram icmp = wire::make_time_exceeded(address(), dgram);
      icmp.flight = dgram.flight;  // the error is part of the probe's story
      send_icmp(std::move(icmp), "time-exceeded");
    }
    return;
  }
  dgram.set_ttl(static_cast<std::uint8_t>(dgram.ip.ttl - 1));

  const int egress = net_->route(id(), dgram.ip.dst);
  if (egress == kNoInterface) {
    ++stats_.unroutable;
    net_->obs().ledger.record_drop(obs::Layer::Router, obs::DropCause::Unroutable, name());
    if (recorder.armed() && dgram.flight != 0) {
      recorder.record(dgram.flight, obs::SpanEvent::PolicyDrop, net_->sim().now(),
                      obs::Layer::Router, name(), address().value(), "unroutable",
                      dgram.wire_view());
    }
    if (rng_.bernoulli(params_.icmp_response_prob)) {
      wire::Datagram icmp =
          wire::make_dest_unreachable(address(), dgram, wire::IcmpUnreachCode::Net);
      icmp.flight = dgram.flight;
      send_icmp(std::move(icmp), "dest-unreachable");
    }
    return;
  }
  ++stats_.forwarded;
  if (recorder.armed() && dgram.flight != 0) {
    recorder.record(dgram.flight, obs::SpanEvent::HopForward, net_->sim().now(),
                    obs::Layer::Router, name(), address().value(),
                    util::strf("ttl=%d", dgram.ip.ttl), dgram.wire_view());
  }
  net_->transmit(id(), egress, std::move(dgram));
}

void Router::send_icmp(wire::Datagram&& icmp, const char* kind) {
  icmp.set_identification(net_->next_ip_id());
  const int egress = net_->route(id(), icmp.ip.dst);
  if (egress == kNoInterface) return;
  ++stats_.icmp_sent;
  auto& recorder = net_->obs().recorder;
  if (recorder.armed() && icmp.flight != 0) {
    recorder.record(icmp.flight, obs::SpanEvent::IcmpGenerated, net_->sim().now(),
                    obs::Layer::Router, name(), address().value(), kind, icmp.wire_view());
  }
  net_->transmit(id(), egress, std::move(icmp));
}

}  // namespace ecnprobe::netsim
