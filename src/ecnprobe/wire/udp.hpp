// UDP header (RFC 768). The probes of the paper are NTP requests inside UDP
// datagrams whose IP-layer ECN field is the independent variable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    ///< header + payload
  std::uint16_t checksum = 0;  ///< 0 = not computed (legal for IPv4)

  void encode(class ByteWriter& out) const;
  static util::Expected<UdpHeader> decode(std::span<const std::uint8_t> data);
};

/// Serialises header+payload with a correct pseudo-header checksum.
std::vector<std::uint8_t> encode_udp_segment(Ipv4Address src, Ipv4Address dst,
                                             std::uint16_t src_port, std::uint16_t dst_port,
                                             std::span<const std::uint8_t> payload);

/// Parsed UDP segment view: header plus the payload bytes that follow it.
struct UdpSegmentView {
  UdpHeader header;
  std::span<const std::uint8_t> payload;
  bool checksum_ok = true;  ///< true when checksum == 0 (unused) or verified
};

util::Expected<UdpSegmentView> decode_udp_segment(Ipv4Address src, Ipv4Address dst,
                                                  std::span<const std::uint8_t> segment);

}  // namespace ecnprobe::wire
