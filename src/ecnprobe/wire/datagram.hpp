// A Datagram is the unit that traverses the simulated network: a decoded
// IPv4 header plus the raw transport-segment bytes. Keeping the header
// decoded lets routers and middleboxes inspect/modify TTL and ECN cheaply;
// `encode()` produces the bit-accurate wire bytes whenever they are needed
// (packet capture, ICMP quotations, the live driver).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/icmp.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {

struct Datagram {
  Ipv4Header ip;
  std::vector<std::uint8_t> payload;  ///< transport segment (UDP/TCP/ICMP bytes)

  /// Flight-recorder correlation id. Simulation metadata only: never
  /// serialised by encode(), left 0 by decode(). 0 means "not tracked".
  std::uint32_t flight = 0;

  /// Full wire serialisation (header checksum recomputed).
  std::vector<std::uint8_t> encode() const;

  /// Parses wire bytes back into a Datagram. Fails on truncation or a bad
  /// IP checksum.
  static util::Expected<Datagram> decode(std::span<const std::uint8_t> bytes);

  std::string summary() const;
};

/// Builds a UDP datagram with the given ECN mark; fills in lengths and all
/// checksums.
Datagram make_udp_datagram(Ipv4Address src, Ipv4Address dst, std::uint16_t src_port,
                           std::uint16_t dst_port, std::span<const std::uint8_t> payload,
                           Ecn ecn, std::uint8_t ttl = Ipv4Header::kDefaultTtl);

/// Builds a TCP datagram around an already-populated TCP header. Data
/// segments on a negotiated-ECN connection pass Ecn::Ect0; SYNs must be
/// not-ECT (RFC 3168 section 6.1.1).
Datagram make_tcp_datagram(Ipv4Address src, Ipv4Address dst,
                           const struct TcpHeader& tcp,
                           std::span<const std::uint8_t> payload, Ecn ecn,
                           std::uint8_t ttl = Ipv4Header::kDefaultTtl);

/// Builds an ICMP datagram (errors and echo). ICMP is always not-ECT.
Datagram make_icmp_datagram(Ipv4Address src, Ipv4Address dst, const IcmpMessage& msg,
                            std::uint8_t ttl = Ipv4Header::kDefaultTtl);

/// Builds the ICMP Time-Exceeded error a router sends when TTL expires,
/// quoting the received datagram per RFC 792/1812.
Datagram make_time_exceeded(Ipv4Address router_addr, const Datagram& received);

/// Builds an ICMP Destination-Unreachable error quoting the received
/// datagram.
Datagram make_dest_unreachable(Ipv4Address sender_addr, const Datagram& received,
                               IcmpUnreachCode code);

}  // namespace ecnprobe::wire
