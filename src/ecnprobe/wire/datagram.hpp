// A Datagram is the unit that traverses the simulated network: a decoded
// IPv4 header plus the raw transport-segment bytes. Keeping the header
// decoded lets routers and middleboxes inspect/modify TTL and ECN cheaply;
// `encode()` produces the bit-accurate wire bytes whenever they are needed
// (packet capture, ICMP quotations, the live driver).
//
// Hot-path wire cache: the flight recorder serialises every datagram at
// every recorded hop. `wire_view()` serialises once into a pooled buffer
// and the datapath mutators (`set_ttl`/`set_ecn`/`set_dscp`/
// `set_identification`) patch the cached bytes in place, updating the IP
// header checksum incrementally per RFC 1624 instead of re-summing the
// header. The cache is primed ONLY by wire_view() -- plain field writes
// (tests, scenario setup) stay safe because nothing is cached yet -- and
// copying a Datagram drops the cache, so a stale copy cannot exist. Code
// that mutates `payload` on a possibly-cached datagram calls
// touch_payload() first.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ecnprobe/util/arena.hpp"
#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/icmp.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {

struct Datagram {
  Ipv4Header ip;
  std::vector<std::uint8_t> payload;  ///< transport segment (UDP/TCP/ICMP bytes)

  /// Flight-recorder correlation id. Simulation metadata only: never
  /// serialised by encode(), left 0 by decode(). 0 means "not tracked".
  std::uint32_t flight = 0;

  /// Full wire serialisation (header checksum recomputed; served from the
  /// wire cache when one is primed).
  std::vector<std::uint8_t> encode() const;

  /// The wire bytes of this datagram, serialised at most once: the first
  /// call fills a pooled buffer, later calls (and datapath mutators) keep
  /// it current. The span is invalidated by any mutation or by destruction.
  std::span<const std::uint8_t> wire_view();

  // -- datapath mutators: keep the wire cache and checksum in sync ----------
  void set_ttl(std::uint8_t ttl);
  void set_ecn(Ecn ecn);
  void set_dscp(std::uint8_t dscp);
  void set_identification(std::uint16_t id);
  /// Call before mutating `payload` (or total_length) directly: drops the
  /// cached wire bytes so the next wire_view() re-serialises.
  void touch_payload() { wire_.clear(); }

  /// Whether a cached serialisation is live (test/bench introspection).
  bool wire_cached() const { return !wire_.empty(); }

  /// Parses wire bytes back into a Datagram. Fails on truncation or a bad
  /// IP checksum.
  static util::Expected<Datagram> decode(std::span<const std::uint8_t> bytes);

  std::string summary() const;

private:
  /// RFC 1624 patch of one 16-bit header word in the cached bytes.
  void patch_wire_u16(std::size_t offset, std::uint16_t new_word);

  util::PooledBuffer wire_;  ///< cached serialisation; copies start cold
};

/// Builds a UDP datagram with the given ECN mark; fills in lengths and all
/// checksums.
Datagram make_udp_datagram(Ipv4Address src, Ipv4Address dst, std::uint16_t src_port,
                           std::uint16_t dst_port, std::span<const std::uint8_t> payload,
                           Ecn ecn, std::uint8_t ttl = Ipv4Header::kDefaultTtl);

/// Builds a TCP datagram around an already-populated TCP header. Data
/// segments on a negotiated-ECN connection pass Ecn::Ect0; SYNs must be
/// not-ECT (RFC 3168 section 6.1.1).
Datagram make_tcp_datagram(Ipv4Address src, Ipv4Address dst,
                           const struct TcpHeader& tcp,
                           std::span<const std::uint8_t> payload, Ecn ecn,
                           std::uint8_t ttl = Ipv4Header::kDefaultTtl);

/// Builds an ICMP datagram (errors and echo). ICMP is always not-ECT.
Datagram make_icmp_datagram(Ipv4Address src, Ipv4Address dst, const IcmpMessage& msg,
                            std::uint8_t ttl = Ipv4Header::kDefaultTtl);

/// Builds the ICMP Time-Exceeded error a router sends when TTL expires,
/// quoting the received datagram per RFC 792/1812.
Datagram make_time_exceeded(Ipv4Address router_addr, const Datagram& received);

/// Builds an ICMP Destination-Unreachable error quoting the received
/// datagram.
Datagram make_dest_unreachable(Ipv4Address sender_addr, const Datagram& received,
                               IcmpUnreachCode code);

}  // namespace ecnprobe::wire
