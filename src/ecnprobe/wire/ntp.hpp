// NTP packet format (RFC 5905, the 48-byte header used by SNTP clients like
// the paper's custom measurement tool). The probe sends a mode-3 (client)
// request; a pool server answers with mode 4 (server), copying the request's
// transmit timestamp into the origin timestamp field.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecnprobe/util/expected.hpp"

namespace ecnprobe::wire {

constexpr std::uint16_t kNtpPort = 123;

/// 64-bit NTP timestamp: seconds since 1900-01-01 plus a 2^-32 fraction.
struct NtpTimestamp {
  std::uint32_t seconds = 0;
  std::uint32_t fraction = 0;

  /// Offset between the NTP era (1900) and the Unix epoch (1970).
  static constexpr std::uint32_t kUnixEpochOffset = 2'208'988'800u;

  static NtpTimestamp from_unix_nanos(std::int64_t unix_ns);
  double to_unix_seconds() const;
  bool is_zero() const { return seconds == 0 && fraction == 0; }

  bool operator==(const NtpTimestamp&) const = default;
};

enum class NtpMode : std::uint8_t {
  Reserved = 0,
  SymmetricActive = 1,
  SymmetricPassive = 2,
  Client = 3,
  Server = 4,
  Broadcast = 5,
  ControlMessage = 6,
  Private = 7,
};

enum class NtpLeap : std::uint8_t {
  NoWarning = 0,
  LastMinute61 = 1,
  LastMinute59 = 2,
  Unsynchronized = 3,
};

struct NtpPacket {
  static constexpr std::size_t kSize = 48;
  static constexpr std::uint8_t kVersion = 4;

  NtpLeap leap = NtpLeap::NoWarning;
  std::uint8_t version = kVersion;
  NtpMode mode = NtpMode::Client;
  std::uint8_t stratum = 0;
  std::int8_t poll = 0;
  std::int8_t precision = 0;
  std::uint32_t root_delay = 0;
  std::uint32_t root_dispersion = 0;
  std::uint32_t reference_id = 0;
  NtpTimestamp reference_ts;
  NtpTimestamp origin_ts;
  NtpTimestamp receive_ts;
  NtpTimestamp transmit_ts;

  std::vector<std::uint8_t> encode() const;
  static util::Expected<NtpPacket> decode(std::span<const std::uint8_t> data);

  /// A client (mode 3) request as the measurement application sends it: only
  /// the version/mode octet and the transmit timestamp are populated.
  static NtpPacket make_client_request(NtpTimestamp transmit_time);

  /// A server (mode 4) response per RFC 5905: origin <- request transmit,
  /// receive/transmit from the server clock.
  static NtpPacket make_server_response(const NtpPacket& request, std::uint8_t stratum,
                                        std::uint32_t reference_id, NtpTimestamp rx_time,
                                        NtpTimestamp tx_time);

  /// True for a response that plausibly answers `request` (mode 4, stratum
  /// 1..15, origin timestamp echoes the request's transmit timestamp).
  bool answers(const NtpPacket& request) const;
};

}  // namespace ecnprobe::wire
