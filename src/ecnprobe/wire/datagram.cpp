#include "ecnprobe/wire/datagram.hpp"

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"
#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::wire {

std::vector<std::uint8_t> Datagram::encode() const {
  if (wire_cached()) {
    const auto cached = wire_.view();
    return {cached.begin(), cached.end()};
  }
  Ipv4Header h = ip;
  h.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + payload.size());
  ByteWriter out(h.total_length);
  h.encode(out);
  out.bytes(payload);
  return out.take();
}

std::span<const std::uint8_t> Datagram::wire_view() {
  if (!wire_cached()) {
    Ipv4Header h = ip;
    h.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + payload.size());
    // Serialise into the pooled buffer's storage: move it through a
    // ByteWriter and back, so a warm buffer is refilled allocation-free.
    ByteWriter out(std::move(wire_.mut()));
    h.encode(out);
    out.bytes(payload);
    wire_.mut() = out.take();
  }
  return wire_.view();
}

void Datagram::patch_wire_u16(std::size_t offset, std::uint16_t new_word) {
  auto& b = wire_.mut();
  const auto old_word = static_cast<std::uint16_t>((b[offset] << 8) | b[offset + 1]);
  if (old_word == new_word) return;
  b[offset] = static_cast<std::uint8_t>(new_word >> 8);
  b[offset + 1] = static_cast<std::uint8_t>(new_word);
  const auto old_check = static_cast<std::uint16_t>((b[10] << 8) | b[11]);
  const std::uint16_t new_check = checksum_update(old_check, old_word, new_word);
  b[10] = static_cast<std::uint8_t>(new_check >> 8);
  b[11] = static_cast<std::uint8_t>(new_check);
}

void Datagram::set_ttl(std::uint8_t ttl) {
  ip.ttl = ttl;
  if (wire_cached()) {
    patch_wire_u16(8, static_cast<std::uint16_t>(
                          (ttl << 8) | static_cast<std::uint8_t>(ip.protocol)));
  }
}

void Datagram::set_ecn(Ecn ecn) {
  ip.ecn = ecn;
  if (wire_cached()) {
    patch_wire_u16(0, static_cast<std::uint16_t>((0x45u << 8) | ip.tos_octet()));
  }
}

void Datagram::set_dscp(std::uint8_t dscp) {
  ip.dscp = dscp;
  if (wire_cached()) {
    patch_wire_u16(0, static_cast<std::uint16_t>((0x45u << 8) | ip.tos_octet()));
  }
}

void Datagram::set_identification(std::uint16_t id) {
  ip.identification = id;
  if (wire_cached()) patch_wire_u16(4, id);
}

util::Expected<Datagram> Datagram::decode(std::span<const std::uint8_t> bytes) {
  auto decoded = decode_ipv4_header(bytes);
  if (!decoded) return decoded.error();
  if (!decoded->checksum_ok) return util::make_error("datagram.decode", "bad IP checksum");
  if (bytes.size() < decoded->header.total_length) {
    return util::make_error("datagram.decode", "truncated datagram");
  }
  Datagram d;
  d.ip = decoded->header;
  const auto payload =
      bytes.subspan(decoded->header_len, decoded->header.total_length - decoded->header_len);
  d.payload.assign(payload.begin(), payload.end());
  return d;
}

std::string Datagram::summary() const {
  return util::strf("%s payload=%zuB", ip.to_string().c_str(), payload.size());
}

namespace {

Datagram finish(Ipv4Address src, Ipv4Address dst, IpProto proto, Ecn ecn, std::uint8_t ttl,
                std::vector<std::uint8_t> segment) {
  Datagram d;
  d.ip.src = src;
  d.ip.dst = dst;
  d.ip.protocol = proto;
  d.ip.ecn = ecn;
  d.ip.ttl = ttl;
  d.payload = std::move(segment);
  d.ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + d.payload.size());
  return d;
}

}  // namespace

Datagram make_udp_datagram(Ipv4Address src, Ipv4Address dst, std::uint16_t src_port,
                           std::uint16_t dst_port, std::span<const std::uint8_t> payload,
                           Ecn ecn, std::uint8_t ttl) {
  return finish(src, dst, IpProto::Udp, ecn, ttl,
                encode_udp_segment(src, dst, src_port, dst_port, payload));
}

Datagram make_tcp_datagram(Ipv4Address src, Ipv4Address dst, const TcpHeader& tcp,
                           std::span<const std::uint8_t> payload, Ecn ecn, std::uint8_t ttl) {
  return finish(src, dst, IpProto::Tcp, ecn, ttl, encode_tcp_segment(src, dst, tcp, payload));
}

Datagram make_icmp_datagram(Ipv4Address src, Ipv4Address dst, const IcmpMessage& msg,
                            std::uint8_t ttl) {
  return finish(src, dst, IpProto::Icmp, Ecn::NotEct, ttl, msg.encode());
}

namespace {

Datagram make_icmp_error(Ipv4Address sender, const Datagram& received, IcmpType type,
                         std::uint8_t code) {
  // Quote the header exactly as received (TTL, ECN, and all); this is what
  // lets the traceroute analysis see upstream modifications.
  Ipv4Header quoted = received.ip;
  quoted.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + received.payload.size());
  IcmpMessage msg;
  msg.type = type;
  msg.code = code;
  msg.body = make_error_quotation(quoted, received.payload);
  return make_icmp_datagram(sender, received.ip.src, msg);
}

}  // namespace

Datagram make_time_exceeded(Ipv4Address router_addr, const Datagram& received) {
  return make_icmp_error(router_addr, received, IcmpType::TimeExceeded, 0);
}

Datagram make_dest_unreachable(Ipv4Address sender_addr, const Datagram& received,
                               IcmpUnreachCode code) {
  return make_icmp_error(sender_addr, received, IcmpType::DestUnreachable,
                         static_cast<std::uint8_t>(code));
}

}  // namespace ecnprobe::wire
