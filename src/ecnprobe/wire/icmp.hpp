// ICMP (RFC 792). The traceroute experiment depends on the error-message
// quotation rule: Time-Exceeded and Destination-Unreachable messages carry
// the IP header (plus at least 8 payload bytes) of the datagram *as the
// router received it*. Comparing the quoted ECN field against the field the
// prober sent reveals where ECT(0) marks are stripped (Section 4.2 of the
// paper; same technique as Bauer et al. and tracebox).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {

enum class IcmpType : std::uint8_t {
  EchoReply = 0,
  DestUnreachable = 3,
  EchoRequest = 8,
  TimeExceeded = 11,
};

/// Codes for DestUnreachable.
enum class IcmpUnreachCode : std::uint8_t {
  Net = 0,
  Host = 1,
  Protocol = 2,
  Port = 3,
  AdminProhibited = 13,
};

struct IcmpMessage {
  static constexpr std::size_t kHeaderSize = 8;

  IcmpType type = IcmpType::EchoRequest;
  std::uint8_t code = 0;
  std::uint32_t rest_of_header = 0;  ///< id/seq for echo; unused/zero for errors
  std::vector<std::uint8_t> body;    ///< quoted datagram for errors; data for echo

  /// Serialises with a correct ICMP checksum (plain RFC 1071, no
  /// pseudo-header).
  std::vector<std::uint8_t> encode() const;

  bool is_error() const {
    return type == IcmpType::DestUnreachable || type == IcmpType::TimeExceeded;
  }
};

struct IcmpDecoded {
  IcmpMessage message;
  bool checksum_ok = true;
};

util::Expected<IcmpDecoded> decode_icmp_message(std::span<const std::uint8_t> data);

/// Builds the error body required by RFC 792: the offending datagram's IP
/// header followed by the first 8 bytes of its transport payload -- exactly
/// the bytes the router saw, which is what makes ECN-stripping visible.
std::vector<std::uint8_t> make_error_quotation(const Ipv4Header& received_header,
                                               std::span<const std::uint8_t> transport_bytes);

/// Parses the quotation inside an ICMP error body: the inner IP header and
/// whatever transport bytes were included. Quotes truncated below the full
/// inner IP header (an RFC 1812 violation routers commit in the wild, and
/// one the chaos layer injects) still parse: the fields that survived are
/// filled in, `header_complete` is false, and `ecn_known` says whether the
/// ToS/ECN octet was among them -- callers must treat the ECN field as
/// unobserved rather than bleached when it is not.
struct Quotation {
  Ipv4Header inner_header;
  std::vector<std::uint8_t> transport_prefix;
  bool header_complete = true;  ///< the full IHL-length inner header was present
  bool ecn_known = true;        ///< the ToS/ECN octet was present
};
util::Expected<Quotation> parse_quotation(std::span<const std::uint8_t> body);

}  // namespace ecnprobe::wire
