#include "ecnprobe/wire/ecn.hpp"

namespace ecnprobe::wire {

std::string_view to_string(Ecn e) {
  switch (e) {
    case Ecn::NotEct: return "not-ECT";
    case Ecn::Ect1: return "ECT(1)";
    case Ecn::Ect0: return "ECT(0)";
    case Ecn::Ce: return "CE";
  }
  return "invalid";
}

}  // namespace ecnprobe::wire
