#include "ecnprobe/wire/icmp.hpp"

#include <algorithm>

#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"

namespace ecnprobe::wire {

std::vector<std::uint8_t> IcmpMessage::encode() const {
  ByteWriter out(kHeaderSize + body.size());
  out.u8(static_cast<std::uint8_t>(type));
  out.u8(code);
  out.u16(0);  // checksum placeholder
  out.u32(rest_of_header);
  out.bytes(body);
  out.patch_u16(2, internet_checksum(out.view()));
  return out.take();
}

util::Expected<IcmpDecoded> decode_icmp_message(std::span<const std::uint8_t> data) {
  if (data.size() < IcmpMessage::kHeaderSize) {
    return util::make_error("icmp.decode", "truncated header");
  }
  IcmpDecoded out;
  ByteReader in(data);
  out.message.type = static_cast<IcmpType>(in.u8());
  out.message.code = in.u8();
  in.u16();  // checksum, verified over the whole message below
  out.message.rest_of_header = in.u32();
  const auto body = in.rest();
  out.message.body.assign(body.begin(), body.end());
  out.checksum_ok = internet_checksum(data) == 0;
  return out;
}

std::vector<std::uint8_t> make_error_quotation(const Ipv4Header& received_header,
                                               std::span<const std::uint8_t> transport_bytes) {
  ByteWriter out(Ipv4Header::kSize + 8);
  received_header.encode(out);
  const std::size_t quoted = std::min<std::size_t>(transport_bytes.size(), 8);
  out.bytes(transport_bytes.subspan(0, quoted));
  return out.take();
}

util::Expected<Quotation> parse_quotation(std::span<const std::uint8_t> body) {
  auto inner = decode_ipv4_header(body);
  if (!inner) return util::make_error("icmp.quotation", "undecodable inner IP header");
  Quotation q;
  q.inner_header = inner->header;
  const auto rest = body.subspan(inner->header_len);
  q.transport_prefix.assign(rest.begin(), rest.end());
  return q;
}

}  // namespace ecnprobe::wire
