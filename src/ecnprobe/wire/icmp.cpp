#include "ecnprobe/wire/icmp.hpp"

#include <algorithm>

#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"

namespace ecnprobe::wire {

std::vector<std::uint8_t> IcmpMessage::encode() const {
  ByteWriter out(kHeaderSize + body.size());
  out.u8(static_cast<std::uint8_t>(type));
  out.u8(code);
  out.u16(0);  // checksum placeholder
  out.u32(rest_of_header);
  out.bytes(body);
  out.patch_u16(2, internet_checksum(out.view()));
  return out.take();
}

util::Expected<IcmpDecoded> decode_icmp_message(std::span<const std::uint8_t> data) {
  if (data.size() < IcmpMessage::kHeaderSize) {
    return util::make_error("icmp.decode", "truncated header");
  }
  IcmpDecoded out;
  ByteReader in(data);
  out.message.type = static_cast<IcmpType>(in.u8());
  out.message.code = in.u8();
  in.u16();  // checksum, verified over the whole message below
  out.message.rest_of_header = in.u32();
  const auto body = in.rest();
  out.message.body.assign(body.begin(), body.end());
  out.checksum_ok = internet_checksum(data) == 0;
  return out;
}

std::vector<std::uint8_t> make_error_quotation(const Ipv4Header& received_header,
                                               std::span<const std::uint8_t> transport_bytes) {
  ByteWriter out(Ipv4Header::kSize + 8);
  received_header.encode(out);
  const std::size_t quoted = std::min<std::size_t>(transport_bytes.size(), 8);
  out.bytes(transport_bytes.subspan(0, quoted));
  return out.take();
}

util::Expected<Quotation> parse_quotation(std::span<const std::uint8_t> body) {
  auto inner = decode_ipv4_header(body);
  if (inner) {
    Quotation q;
    q.inner_header = inner->header;
    const auto rest = body.subspan(inner->header_len);
    q.transport_prefix.assign(rest.begin(), rest.end());
    return q;
  }
  // Tolerant path: a quote cut short of the full inner header. Accept any
  // prefix that is recognisably the start of an IPv4 header and report
  // exactly which fields survived; anything else stays an error.
  if (body.empty()) {
    return util::make_error("icmp.quotation", "empty quotation");
  }
  const std::uint8_t ver_ihl = body[0];
  const std::size_t header_len = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if ((ver_ihl >> 4) != 4 || header_len < Ipv4Header::kSize ||
      body.size() >= header_len) {
    // Not IPv4, bad IHL, or a full-length header that failed to decode for
    // some other reason: truncation tolerance does not apply.
    return util::make_error("icmp.quotation", "undecodable inner IP header");
  }
  Quotation q;
  q.header_complete = false;
  q.ecn_known = false;
  Ipv4Header& h = q.inner_header;
  if (body.size() >= 2) {
    h.dscp = static_cast<std::uint8_t>(body[1] >> 2);
    h.ecn = ecn_from_bits(body[1]);
    q.ecn_known = true;
  }
  if (body.size() >= 4) {
    h.total_length = static_cast<std::uint16_t>((body[2] << 8) | body[3]);
  }
  if (body.size() >= 6) {
    h.identification = static_cast<std::uint16_t>((body[4] << 8) | body[5]);
  }
  if (body.size() >= 8) {
    const std::uint16_t flags_frag = static_cast<std::uint16_t>((body[6] << 8) | body[7]);
    h.dont_fragment = (flags_frag & 0x4000) != 0;
    h.more_fragments = (flags_frag & 0x2000) != 0;
    h.fragment_offset = flags_frag & 0x1fff;
  }
  if (body.size() >= 9) h.ttl = body[8];
  if (body.size() >= 10) h.protocol = static_cast<IpProto>(body[9]);
  if (body.size() >= 16) {
    h.src = Ipv4Address{static_cast<std::uint32_t>(
        (body[12] << 24) | (body[13] << 16) | (body[14] << 8) | body[15])};
  }
  return q;
}

}  // namespace ecnprobe::wire
