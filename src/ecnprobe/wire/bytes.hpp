// Bounds-checked big-endian (network byte order) serialisation primitives.
// All wire codecs are written against ByteReader/ByteWriter so that a
// malformed or truncated packet can never read or write out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace ecnprobe::wire {

/// Sequential big-endian reader over a byte span. Reads past the end set a
/// sticky `ok() == false` flag and return zeros; callers check `ok()` once
/// at the end of a parse instead of after every field.
class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() {
    if (!require(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    if (!require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t hi = u32();
    std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }

  /// Reads `n` raw bytes; returns an empty span (and poisons the reader) on
  /// underrun.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) { (void)bytes(n); }

  /// Remaining unread bytes without consuming them.
  std::span<const std::uint8_t> rest() const {
    return ok_ ? data_.subspan(pos_) : std::span<const std::uint8_t>{};
  }

  /// Random access for decompression-style parsing (DNS name pointers).
  std::span<const std::uint8_t> whole() const { return data_; }
  void seek(std::size_t pos) {
    if (pos > data_.size()) ok_ = false;
    else pos_ = pos;
  }

private:
  bool require(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Appending big-endian writer backed by a growable buffer.
class ByteWriter {
public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Writes into an adopted buffer (cleared, capacity kept) so pooled
  /// buffers can be refilled without a fresh allocation.
  explicit ByteWriter(std::vector<std::uint8_t>&& adopt) : buf_(std::move(adopt)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    for (int i = 3; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Overwrites a previously written 16-bit field (length/checksum patching).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace ecnprobe::wire
