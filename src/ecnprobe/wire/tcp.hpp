// TCP header (RFC 793) with the RFC 3168 ECN flags (ECE, CWR) and the
// RFC 3540 NS bit. The paper's TCP experiment hinges on two packets: the
// ECN-setup SYN (ECE+CWR set) and the ECN-setup SYN-ACK (ECE set, CWR
// clear); helpers for both classifications live here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {

/// TCP flag bits in header order (high to low: NS is bit 8 in the
/// data-offset/flags word).
struct TcpFlags {
  bool ns = false;
  bool cwr = false;
  bool ece = false;
  bool urg = false;
  bool ack = false;
  bool psh = false;
  bool rst = false;
  bool syn = false;
  bool fin = false;

  std::uint16_t to_bits() const;
  static TcpFlags from_bits(std::uint16_t bits);
  std::string to_string() const;

  bool operator==(const TcpFlags&) const = default;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;
  std::vector<std::uint8_t> options;  ///< raw option bytes, padded to 4n

  /// RFC 3168 section 6.1.1: a SYN with both ECE and CWR set.
  bool is_ecn_setup_syn() const {
    return flags.syn && !flags.ack && flags.ece && flags.cwr;
  }
  /// RFC 3168 section 6.1.1: a SYN-ACK with ECE set and CWR clear.
  bool is_ecn_setup_syn_ack() const {
    return flags.syn && flags.ack && flags.ece && !flags.cwr;
  }

  std::size_t header_len() const { return kMinSize + options.size(); }

  void encode(class ByteWriter& out) const;

  std::string to_string() const;
};

struct TcpDecoded {
  TcpHeader header;
  std::size_t header_len = TcpHeader::kMinSize;
};

util::Expected<TcpDecoded> decode_tcp_header(std::span<const std::uint8_t> data);

/// Builds the 4-byte MSS option (kind 2) carried on SYN segments.
std::vector<std::uint8_t> make_mss_option(std::uint16_t mss);

/// Scans a TCP options blob for an MSS option (kind 2); handles NOP/EOL and
/// skips unknown options by their length byte. nullopt when absent or
/// malformed.
std::optional<std::uint16_t> find_mss_option(std::span<const std::uint8_t> options);

/// Serialises header+payload with a correct pseudo-header checksum.
std::vector<std::uint8_t> encode_tcp_segment(Ipv4Address src, Ipv4Address dst,
                                             const TcpHeader& header,
                                             std::span<const std::uint8_t> payload);

struct TcpSegmentView {
  TcpHeader header;
  std::span<const std::uint8_t> payload;
  bool checksum_ok = true;
};

util::Expected<TcpSegmentView> decode_tcp_segment(Ipv4Address src, Ipv4Address dst,
                                                  std::span<const std::uint8_t> segment);

}  // namespace ecnprobe::wire
