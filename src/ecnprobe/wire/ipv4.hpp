// IPv4 address and header (RFC 791), with the ECN field (RFC 3168) exposed
// as a first-class type. The header codec round-trips the exact 20-byte
// layout so that middlebox modifications, ICMP quotations, and the live
// raw-socket driver all see bit-accurate bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/ecn.hpp"

namespace ecnprobe::wire {

/// IPv4 address held in host byte order for arithmetic convenience; the
/// codec converts to network order at the wire boundary.
class Ipv4Address {
public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses dotted-quad notation; rejects anything else.
  static util::Expected<Ipv4Address> parse(std::string_view text);

  constexpr std::uint32_t value() const { return addr_; }
  std::string to_string() const;

  constexpr bool is_unspecified() const { return addr_ == 0; }

  /// True if this address lies within prefix/len.
  constexpr bool in_prefix(Ipv4Address prefix, int len) const {
    if (len <= 0) return true;
    if (len >= 32) return addr_ == prefix.addr_;
    const std::uint32_t mask = ~((1u << (32 - len)) - 1);
    return (addr_ & mask) == (prefix.addr_ & mask);
  }

  constexpr auto operator<=>(const Ipv4Address&) const = default;

private:
  std::uint32_t addr_ = 0;
};

/// IP protocol numbers used in this project.
enum class IpProto : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

std::string_view to_string(IpProto p);

/// The fixed 20-byte IPv4 header. Options are not modelled (none of the
/// paper's probes use them); IHL is validated on decode and any options
/// bytes are skipped.
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;
  static constexpr std::uint8_t kDefaultTtl = 64;

  std::uint8_t dscp = 0;          ///< upper six bits of the old ToS octet
  Ecn ecn = Ecn::NotEct;          ///< lower two bits: the ECN field
  std::uint16_t total_length = 0; ///< header + payload, bytes
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  ///< in 8-byte units
  std::uint8_t ttl = kDefaultTtl;
  IpProto protocol = IpProto::Udp;
  std::uint16_t header_checksum = 0;  ///< as decoded; recomputed on encode
  Ipv4Address src;
  Ipv4Address dst;

  /// Serialises the 20-byte header with a freshly computed checksum.
  void encode(class ByteWriter& out) const;

  /// The former ToS octet: DSCP in the high six bits, ECN in the low two.
  std::uint8_t tos_octet() const {
    return static_cast<std::uint8_t>((dscp << 2) | to_bits(ecn));
  }

  std::string to_string() const;
};

/// Decoded header plus the number of header bytes consumed (IHL*4).
struct Ipv4Decoded {
  Ipv4Header header;
  std::size_t header_len = Ipv4Header::kSize;
  bool checksum_ok = true;
};

util::Expected<Ipv4Decoded> decode_ipv4_header(std::span<const std::uint8_t> data);

}  // namespace ecnprobe::wire
