#include "ecnprobe/wire/ipv4.hpp"

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"

namespace ecnprobe::wire {

util::Expected<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    return util::make_error("ipv4.parse", "expected four dotted octets");
  }
  std::uint32_t addr = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) {
      return util::make_error("ipv4.parse", "bad octet length");
    }
    unsigned value = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return util::make_error("ipv4.parse", "non-digit octet");
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value > 255) return util::make_error("ipv4.parse", "octet out of range");
    addr = (addr << 8) | value;
  }
  return Ipv4Address{addr};
}

std::string Ipv4Address::to_string() const {
  return util::strf("%u.%u.%u.%u", (addr_ >> 24) & 0xff, (addr_ >> 16) & 0xff,
                    (addr_ >> 8) & 0xff, addr_ & 0xff);
}

std::string_view to_string(IpProto p) {
  switch (p) {
    case IpProto::Icmp: return "ICMP";
    case IpProto::Tcp: return "TCP";
    case IpProto::Udp: return "UDP";
  }
  return "proto?";
}

void Ipv4Header::encode(ByteWriter& out) const {
  const std::size_t start = out.size();
  out.u8(0x45);  // version 4, IHL 5
  out.u8(tos_octet());
  out.u16(total_length);
  out.u16(identification);
  std::uint16_t flags_frag = fragment_offset & 0x1fff;
  if (dont_fragment) flags_frag |= 0x4000;
  if (more_fragments) flags_frag |= 0x2000;
  out.u16(flags_frag);
  out.u8(ttl);
  out.u8(static_cast<std::uint8_t>(protocol));
  out.u16(0);  // checksum placeholder
  out.u32(src.value());
  out.u32(dst.value());
  const auto header_bytes = out.view().subspan(start, kSize);
  out.patch_u16(start + 10, internet_checksum(header_bytes));
}

util::Expected<Ipv4Decoded> decode_ipv4_header(std::span<const std::uint8_t> data) {
  ByteReader in(data);
  const std::uint8_t ver_ihl = in.u8();
  if (!in.ok()) return util::make_error("ipv4.decode", "truncated header");
  if ((ver_ihl >> 4) != 4) return util::make_error("ipv4.decode", "not IPv4");
  const std::size_t header_len = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (header_len < Ipv4Header::kSize) return util::make_error("ipv4.decode", "IHL below minimum");
  if (data.size() < header_len) return util::make_error("ipv4.decode", "truncated options");

  Ipv4Decoded out;
  out.header_len = header_len;
  Ipv4Header& h = out.header;
  const std::uint8_t tos = in.u8();
  h.dscp = static_cast<std::uint8_t>(tos >> 2);
  h.ecn = ecn_from_bits(tos);
  h.total_length = in.u16();
  h.identification = in.u16();
  const std::uint16_t flags_frag = in.u16();
  h.dont_fragment = (flags_frag & 0x4000) != 0;
  h.more_fragments = (flags_frag & 0x2000) != 0;
  h.fragment_offset = flags_frag & 0x1fff;
  h.ttl = in.u8();
  h.protocol = static_cast<IpProto>(in.u8());
  h.header_checksum = in.u16();
  h.src = Ipv4Address{in.u32()};
  h.dst = Ipv4Address{in.u32()};
  if (!in.ok()) return util::make_error("ipv4.decode", "truncated header");
  if (h.total_length < header_len) {
    return util::make_error("ipv4.decode", "total_length below header length");
  }
  out.checksum_ok = internet_checksum(data.subspan(0, header_len)) == 0;
  return out;
}

std::string Ipv4Header::to_string() const {
  return util::strf("IPv4 %s -> %s proto=%s ttl=%u ecn=%s len=%u",
                    src.to_string().c_str(), dst.to_string().c_str(),
                    std::string(wire::to_string(protocol)).c_str(), ttl,
                    std::string(wire::to_string(ecn)).c_str(), total_length);
}

}  // namespace ecnprobe::wire
