#include "ecnprobe/wire/ntp.hpp"

#include "ecnprobe/wire/bytes.hpp"

namespace ecnprobe::wire {

NtpTimestamp NtpTimestamp::from_unix_nanos(std::int64_t unix_ns) {
  NtpTimestamp ts;
  const auto secs = static_cast<std::uint64_t>(unix_ns / 1'000'000'000);
  const auto nanos = static_cast<std::uint64_t>(unix_ns % 1'000'000'000);
  ts.seconds = static_cast<std::uint32_t>(secs + kUnixEpochOffset);
  ts.fraction = static_cast<std::uint32_t>((nanos << 32) / 1'000'000'000);
  return ts;
}

double NtpTimestamp::to_unix_seconds() const {
  return static_cast<double>(seconds) - static_cast<double>(kUnixEpochOffset) +
         static_cast<double>(fraction) / 4294967296.0;
}

namespace {
void put_ts(ByteWriter& out, const NtpTimestamp& ts) {
  out.u32(ts.seconds);
  out.u32(ts.fraction);
}
NtpTimestamp get_ts(ByteReader& in) {
  NtpTimestamp ts;
  ts.seconds = in.u32();
  ts.fraction = in.u32();
  return ts;
}
}  // namespace

std::vector<std::uint8_t> NtpPacket::encode() const {
  ByteWriter out(kSize);
  out.u8(static_cast<std::uint8_t>((static_cast<std::uint8_t>(leap) << 6) |
                                   ((version & 0x7) << 3) |
                                   static_cast<std::uint8_t>(mode)));
  out.u8(stratum);
  out.u8(static_cast<std::uint8_t>(poll));
  out.u8(static_cast<std::uint8_t>(precision));
  out.u32(root_delay);
  out.u32(root_dispersion);
  out.u32(reference_id);
  put_ts(out, reference_ts);
  put_ts(out, origin_ts);
  put_ts(out, receive_ts);
  put_ts(out, transmit_ts);
  return out.take();
}

util::Expected<NtpPacket> NtpPacket::decode(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return util::make_error("ntp.decode", "packet below 48 bytes");
  ByteReader in(data);
  NtpPacket p;
  const std::uint8_t li_vn_mode = in.u8();
  p.leap = static_cast<NtpLeap>(li_vn_mode >> 6);
  p.version = (li_vn_mode >> 3) & 0x7;
  p.mode = static_cast<NtpMode>(li_vn_mode & 0x7);
  p.stratum = in.u8();
  p.poll = static_cast<std::int8_t>(in.u8());
  p.precision = static_cast<std::int8_t>(in.u8());
  p.root_delay = in.u32();
  p.root_dispersion = in.u32();
  p.reference_id = in.u32();
  p.reference_ts = get_ts(in);
  p.origin_ts = get_ts(in);
  p.receive_ts = get_ts(in);
  p.transmit_ts = get_ts(in);
  if (p.version < 1 || p.version > 4) return util::make_error("ntp.decode", "bad version");
  return p;
}

NtpPacket NtpPacket::make_client_request(NtpTimestamp transmit_time) {
  NtpPacket p;
  p.mode = NtpMode::Client;
  p.transmit_ts = transmit_time;
  return p;
}

NtpPacket NtpPacket::make_server_response(const NtpPacket& request, std::uint8_t stratum,
                                          std::uint32_t reference_id, NtpTimestamp rx_time,
                                          NtpTimestamp tx_time) {
  NtpPacket p;
  p.mode = NtpMode::Server;
  p.stratum = stratum;
  p.poll = request.poll;
  p.precision = -20;
  p.reference_id = reference_id;
  p.reference_ts = rx_time;
  p.origin_ts = request.transmit_ts;
  p.receive_ts = rx_time;
  p.transmit_ts = tx_time;
  return p;
}

bool NtpPacket::answers(const NtpPacket& request) const {
  return mode == NtpMode::Server && stratum >= 1 && stratum <= 15 &&
         origin_ts == request.transmit_ts;
}

}  // namespace ecnprobe::wire
