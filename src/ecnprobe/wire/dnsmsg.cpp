#include "ecnprobe/wire/dnsmsg.hpp"

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/bytes.hpp"

namespace ecnprobe::wire {

DnsRecord DnsRecord::make_a(std::string name, Ipv4Address addr, std::uint32_t ttl) {
  DnsRecord r;
  r.name = std::move(name);
  r.rtype = DnsType::A;
  r.ttl = ttl;
  r.rdata.resize(4);
  const std::uint32_t v = addr.value();
  for (int i = 0; i < 4; ++i) r.rdata[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(v >> (8 * (3 - i)));
  return r;
}

util::Expected<Ipv4Address> DnsRecord::a_address() const {
  if (rtype != DnsType::A || rdata.size() != 4) {
    return util::make_error("dns.a", "record is not a well-formed A record");
  }
  std::uint32_t v = 0;
  for (auto b : rdata) v = (v << 8) | b;
  return Ipv4Address{v};
}

util::Expected<std::vector<std::uint8_t>> encode_dns_name(const std::string& name) {
  std::vector<std::uint8_t> out;
  const auto labels = util::split(name, '.');
  std::size_t total = 0;
  for (const auto& label : labels) {
    if (label.empty()) return util::make_error("dns.name", "empty label");
    if (label.size() > 63) return util::make_error("dns.name", "label over 63 octets");
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
    total += label.size() + 1;
    if (total > 255) return util::make_error("dns.name", "name over 255 octets");
  }
  out.push_back(0);
  return out;
}

namespace {

// Decodes a possibly-compressed name starting at the reader's position.
// Follows at most 32 pointers to reject loops.
util::Expected<std::string> decode_dns_name(ByteReader& in) {
  std::string out;
  int pointers = 0;
  std::size_t resume = 0;
  bool jumped = false;
  while (true) {
    const std::uint8_t len = in.u8();
    if (!in.ok()) return util::make_error("dns.name", "truncated name");
    if ((len & 0xc0) == 0xc0) {
      const std::uint8_t low = in.u8();
      if (!in.ok()) return util::make_error("dns.name", "truncated pointer");
      if (++pointers > 32) return util::make_error("dns.name", "pointer loop");
      if (!jumped) {
        resume = in.offset();
        jumped = true;
      }
      const std::size_t target = (static_cast<std::size_t>(len & 0x3f) << 8) | low;
      in.seek(target);
      continue;
    }
    if (len == 0) break;
    if (len > 63) return util::make_error("dns.name", "bad label length");
    const auto label = in.bytes(len);
    if (!in.ok()) return util::make_error("dns.name", "truncated label");
    if (!out.empty()) out.push_back('.');
    out.append(label.begin(), label.end());
    if (out.size() > 255) return util::make_error("dns.name", "name over 255 octets");
  }
  if (jumped) in.seek(resume);
  return out;
}

}  // namespace

std::vector<std::uint8_t> DnsMessage::encode() const {
  ByteWriter out(64);
  out.u16(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  if (recursion_desired) flags |= 0x0100;
  if (recursion_available) flags |= 0x0080;
  flags = static_cast<std::uint16_t>(flags | static_cast<std::uint16_t>(rcode));
  out.u16(flags);
  out.u16(static_cast<std::uint16_t>(questions.size()));
  out.u16(static_cast<std::uint16_t>(answers.size()));
  out.u16(0);  // authority
  out.u16(0);  // additional
  for (const auto& q : questions) {
    auto name = encode_dns_name(q.name);
    out.bytes(name ? *name : std::vector<std::uint8_t>{0});
    out.u16(static_cast<std::uint16_t>(q.qtype));
    out.u16(1);  // class IN
  }
  for (const auto& rr : answers) {
    auto name = encode_dns_name(rr.name);
    out.bytes(name ? *name : std::vector<std::uint8_t>{0});
    out.u16(static_cast<std::uint16_t>(rr.rtype));
    out.u16(1);  // class IN
    out.u32(rr.ttl);
    out.u16(static_cast<std::uint16_t>(rr.rdata.size()));
    out.bytes(rr.rdata);
  }
  return out.take();
}

util::Expected<DnsMessage> DnsMessage::decode(std::span<const std::uint8_t> data) {
  ByteReader in(data);
  DnsMessage m;
  m.id = in.u16();
  const std::uint16_t flags = in.u16();
  m.is_response = (flags & 0x8000) != 0;
  m.recursion_desired = (flags & 0x0100) != 0;
  m.recursion_available = (flags & 0x0080) != 0;
  m.rcode = static_cast<DnsRcode>(flags & 0x000f);
  const std::uint16_t qd = in.u16();
  const std::uint16_t an = in.u16();
  in.u16();  // authority count (ignored)
  in.u16();  // additional count (ignored)
  if (!in.ok()) return util::make_error("dns.decode", "truncated header");

  for (std::uint16_t i = 0; i < qd; ++i) {
    auto name = decode_dns_name(in);
    if (!name) return name.error();
    DnsQuestion q;
    q.name = std::move(*name);
    q.qtype = static_cast<DnsType>(in.u16());
    in.u16();  // class
    if (!in.ok()) return util::make_error("dns.decode", "truncated question");
    m.questions.push_back(std::move(q));
  }
  for (std::uint16_t i = 0; i < an; ++i) {
    auto name = decode_dns_name(in);
    if (!name) return name.error();
    DnsRecord rr;
    rr.name = std::move(*name);
    rr.rtype = static_cast<DnsType>(in.u16());
    in.u16();  // class
    rr.ttl = in.u32();
    const std::uint16_t rdlen = in.u16();
    const auto rdata = in.bytes(rdlen);
    if (!in.ok()) return util::make_error("dns.decode", "truncated record");
    rr.rdata.assign(rdata.begin(), rdata.end());
    m.answers.push_back(std::move(rr));
  }
  return m;
}

DnsMessage DnsMessage::make_query(std::uint16_t id, std::string name, DnsType qtype) {
  DnsMessage m;
  m.id = id;
  m.questions.push_back(DnsQuestion{std::move(name), qtype});
  return m;
}

DnsMessage DnsMessage::make_response(const DnsMessage& query, DnsRcode rcode,
                                     std::vector<DnsRecord> answers) {
  DnsMessage m;
  m.id = query.id;
  m.is_response = true;
  m.recursion_desired = query.recursion_desired;
  m.recursion_available = true;
  m.rcode = rcode;
  m.questions = query.questions;
  m.answers = std::move(answers);
  return m;
}

}  // namespace ecnprobe::wire
