#include "ecnprobe/wire/dissect.hpp"

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/dnsmsg.hpp"
#include "ecnprobe/wire/ntp.hpp"
#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::wire {

namespace {

std::string dissect_ntp(std::span<const std::uint8_t> payload) {
  const auto packet = NtpPacket::decode(payload);
  if (!packet) return "NTP (malformed)";
  const char* mode = "?";
  switch (packet->mode) {
    case NtpMode::Client: mode = "client"; break;
    case NtpMode::Server: mode = "server"; break;
    case NtpMode::Broadcast: mode = "broadcast"; break;
    default: mode = "other"; break;
  }
  return util::strf("NTPv%u %s stratum %u", packet->version, mode, packet->stratum);
}

std::string dissect_dns(std::span<const std::uint8_t> payload) {
  const auto message = DnsMessage::decode(payload);
  if (!message) return "DNS (malformed)";
  if (!message->is_response) {
    return message->questions.empty()
               ? "DNS query"
               : util::strf("DNS query %s", message->questions[0].name.c_str());
  }
  return util::strf("DNS response %zu answer%s rcode %d", message->answers.size(),
                    message->answers.size() == 1 ? "" : "s",
                    static_cast<int>(message->rcode));
}

std::string dissect_udp(const Datagram& dgram) {
  const auto segment = decode_udp_segment(dgram.ip.src, dgram.ip.dst, dgram.payload);
  if (!segment) return "UDP (malformed)";
  std::string app;
  if (segment->header.dst_port == kNtpPort || segment->header.src_port == kNtpPort) {
    app = " " + dissect_ntp(segment->payload);
  } else if (segment->header.dst_port == kDnsPort ||
             segment->header.src_port == kDnsPort) {
    app = " " + dissect_dns(segment->payload);
  }
  return util::strf("%s.%u > %s.%u: UDP len %zu%s%s",
                    dgram.ip.src.to_string().c_str(), segment->header.src_port,
                    dgram.ip.dst.to_string().c_str(), segment->header.dst_port,
                    segment->payload.size(), app.c_str(),
                    segment->checksum_ok ? "" : " (bad cksum)");
}

std::string dissect_tcp(const Datagram& dgram) {
  const auto segment = decode_tcp_segment(dgram.ip.src, dgram.ip.dst, dgram.payload);
  if (!segment) return "TCP (malformed)";
  std::string extra;
  if (segment->header.is_ecn_setup_syn()) extra = " [ECN-setup SYN]";
  else if (segment->header.is_ecn_setup_syn_ack()) extra = " [ECN-setup SYN-ACK]";
  return util::strf("%s.%u > %s.%u: TCP %s seq %u ack %u len %zu%s",
                    dgram.ip.src.to_string().c_str(), segment->header.src_port,
                    dgram.ip.dst.to_string().c_str(), segment->header.dst_port,
                    segment->header.flags.to_string().c_str(), segment->header.seq,
                    segment->header.ack, segment->payload.size(), extra.c_str());
}

std::string dissect_icmp(const Datagram& dgram) {
  const auto decoded = decode_icmp_message(dgram.payload);
  if (!decoded) return "ICMP (malformed)";
  const char* type = "other";
  switch (decoded->message.type) {
    case IcmpType::EchoRequest: type = "echo request"; break;
    case IcmpType::EchoReply: type = "echo reply"; break;
    case IcmpType::TimeExceeded: type = "time exceeded"; break;
    case IcmpType::DestUnreachable: type = "destination unreachable"; break;
  }
  std::string quoted;
  if (decoded->message.is_error()) {
    if (const auto quotation = parse_quotation(decoded->message.body)) {
      quoted = util::strf(" quoting [%s > %s %s ttl %u]",
                          quotation->inner_header.src.to_string().c_str(),
                          quotation->inner_header.dst.to_string().c_str(),
                          std::string(to_string(quotation->inner_header.ecn)).c_str(),
                          quotation->inner_header.ttl);
    }
  }
  return util::strf("%s > %s: ICMP %s%s", dgram.ip.src.to_string().c_str(),
                    dgram.ip.dst.to_string().c_str(), type, quoted.c_str());
}

}  // namespace

std::string dissect(const Datagram& dgram) {
  std::string line;
  switch (dgram.ip.protocol) {
    case IpProto::Udp: line = dissect_udp(dgram); break;
    case IpProto::Tcp: line = dissect_tcp(dgram); break;
    case IpProto::Icmp: line = dissect_icmp(dgram); break;
    default:
      line = util::strf("%s > %s: proto %u len %zu", dgram.ip.src.to_string().c_str(),
                        dgram.ip.dst.to_string().c_str(),
                        static_cast<unsigned>(dgram.ip.protocol), dgram.payload.size());
  }
  return util::strf("%s %s ttl %u", line.c_str(),
                    std::string(to_string(dgram.ip.ecn)).c_str(), dgram.ip.ttl);
}

}  // namespace ecnprobe::wire
