#include "ecnprobe/wire/tcp.hpp"

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"

namespace ecnprobe::wire {

std::uint16_t TcpFlags::to_bits() const {
  std::uint16_t bits = 0;
  if (ns) bits |= 0x100;
  if (cwr) bits |= 0x080;
  if (ece) bits |= 0x040;
  if (urg) bits |= 0x020;
  if (ack) bits |= 0x010;
  if (psh) bits |= 0x008;
  if (rst) bits |= 0x004;
  if (syn) bits |= 0x002;
  if (fin) bits |= 0x001;
  return bits;
}

TcpFlags TcpFlags::from_bits(std::uint16_t bits) {
  TcpFlags f;
  f.ns = bits & 0x100;
  f.cwr = bits & 0x080;
  f.ece = bits & 0x040;
  f.urg = bits & 0x020;
  f.ack = bits & 0x010;
  f.psh = bits & 0x008;
  f.rst = bits & 0x004;
  f.syn = bits & 0x002;
  f.fin = bits & 0x001;
  return f;
}

std::string TcpFlags::to_string() const {
  std::string out;
  auto add = [&](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += '|';
    out += name;
  };
  add(syn, "SYN");
  add(ack, "ACK");
  add(fin, "FIN");
  add(rst, "RST");
  add(psh, "PSH");
  add(urg, "URG");
  add(ece, "ECE");
  add(cwr, "CWR");
  add(ns, "NS");
  return out.empty() ? "-" : out;
}

void TcpHeader::encode(ByteWriter& out) const {
  out.u16(src_port);
  out.u16(dst_port);
  out.u32(seq);
  out.u32(ack);
  const std::size_t padded_opts = (options.size() + 3) / 4 * 4;
  const auto data_offset = static_cast<std::uint16_t>((kMinSize + padded_opts) / 4);
  out.u16(static_cast<std::uint16_t>((data_offset << 12) | flags.to_bits()));
  out.u16(window);
  out.u16(checksum);
  out.u16(urgent);
  out.bytes(options);
  out.zeros(padded_opts - options.size());
}

util::Expected<TcpDecoded> decode_tcp_header(std::span<const std::uint8_t> data) {
  ByteReader in(data);
  TcpDecoded out;
  TcpHeader& h = out.header;
  h.src_port = in.u16();
  h.dst_port = in.u16();
  h.seq = in.u32();
  h.ack = in.u32();
  const std::uint16_t off_flags = in.u16();
  const std::size_t header_len = static_cast<std::size_t>(off_flags >> 12) * 4;
  h.flags = TcpFlags::from_bits(off_flags & 0x1ff);
  h.window = in.u16();
  h.checksum = in.u16();
  h.urgent = in.u16();
  if (!in.ok()) return util::make_error("tcp.decode", "truncated header");
  if (header_len < TcpHeader::kMinSize) return util::make_error("tcp.decode", "data offset below 5");
  if (data.size() < header_len) return util::make_error("tcp.decode", "truncated options");
  const auto opts = in.bytes(header_len - TcpHeader::kMinSize);
  h.options.assign(opts.begin(), opts.end());
  out.header_len = header_len;
  return out;
}

std::string TcpHeader::to_string() const {
  return util::strf("TCP %u->%u seq=%u ack=%u flags=%s win=%u", src_port, dst_port, seq,
                    ack, flags.to_string().c_str(), window);
}

std::vector<std::uint8_t> encode_tcp_segment(Ipv4Address src, Ipv4Address dst,
                                             const TcpHeader& header,
                                             std::span<const std::uint8_t> payload) {
  ByteWriter out(header.header_len() + payload.size());
  TcpHeader h = header;
  h.checksum = 0;
  h.encode(out);
  out.bytes(payload);
  const std::uint16_t csum = transport_checksum(
      src.value(), dst.value(), static_cast<std::uint8_t>(IpProto::Tcp), out.view());
  out.patch_u16(16, csum);
  return out.take();
}

util::Expected<TcpSegmentView> decode_tcp_segment(Ipv4Address src, Ipv4Address dst,
                                                  std::span<const std::uint8_t> segment) {
  auto decoded = decode_tcp_header(segment);
  if (!decoded) return decoded.error();
  TcpSegmentView view;
  view.header = std::move(decoded->header);
  view.payload = segment.subspan(decoded->header_len);
  view.checksum_ok = transport_checksum(src.value(), dst.value(),
                                        static_cast<std::uint8_t>(IpProto::Tcp), segment) == 0;
  return view;
}

std::vector<std::uint8_t> make_mss_option(std::uint16_t mss) {
  return {0x02, 0x04, static_cast<std::uint8_t>(mss >> 8),
          static_cast<std::uint8_t>(mss)};
}

std::optional<std::uint16_t> find_mss_option(std::span<const std::uint8_t> options) {
  std::size_t i = 0;
  while (i < options.size()) {
    const std::uint8_t kind = options[i];
    if (kind == 0) break;        // EOL
    if (kind == 1) {             // NOP
      ++i;
      continue;
    }
    if (i + 1 >= options.size()) return std::nullopt;  // truncated length
    const std::uint8_t len = options[i + 1];
    if (len < 2 || i + len > options.size()) return std::nullopt;
    if (kind == 2) {
      if (len != 4) return std::nullopt;
      return static_cast<std::uint16_t>((options[i + 2] << 8) | options[i + 3]);
    }
    i += len;
  }
  return std::nullopt;
}

}  // namespace ecnprobe::wire
