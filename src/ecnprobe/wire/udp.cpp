#include "ecnprobe/wire/udp.hpp"

#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"

namespace ecnprobe::wire {

void UdpHeader::encode(ByteWriter& out) const {
  out.u16(src_port);
  out.u16(dst_port);
  out.u16(length);
  out.u16(checksum);
}

util::Expected<UdpHeader> UdpHeader::decode(std::span<const std::uint8_t> data) {
  ByteReader in(data);
  UdpHeader h;
  h.src_port = in.u16();
  h.dst_port = in.u16();
  h.length = in.u16();
  h.checksum = in.u16();
  if (!in.ok()) return util::make_error("udp.decode", "truncated header");
  if (h.length < kSize) return util::make_error("udp.decode", "length below header size");
  return h;
}

std::vector<std::uint8_t> encode_udp_segment(Ipv4Address src, Ipv4Address dst,
                                             std::uint16_t src_port, std::uint16_t dst_port,
                                             std::span<const std::uint8_t> payload) {
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  h.checksum = 0;

  ByteWriter out(UdpHeader::kSize + payload.size());
  h.encode(out);
  out.bytes(payload);
  std::uint16_t csum = transport_checksum(src.value(), dst.value(),
                                          static_cast<std::uint8_t>(IpProto::Udp), out.view());
  // RFC 768: a computed checksum of zero is transmitted as all ones.
  if (csum == 0) csum = 0xffff;
  out.patch_u16(6, csum);
  return out.take();
}

util::Expected<UdpSegmentView> decode_udp_segment(Ipv4Address src, Ipv4Address dst,
                                                  std::span<const std::uint8_t> segment) {
  auto header = UdpHeader::decode(segment);
  if (!header) return header.error();
  if (segment.size() < header->length) {
    return util::make_error("udp.decode", "segment shorter than length field");
  }
  UdpSegmentView view;
  view.header = *header;
  view.payload = segment.subspan(UdpHeader::kSize, header->length - UdpHeader::kSize);
  if (header->checksum != 0) {
    // Verify over exactly `length` bytes (ignores link padding).
    view.checksum_ok = transport_checksum(src.value(), dst.value(),
                                          static_cast<std::uint8_t>(IpProto::Udp),
                                          segment.subspan(0, header->length)) == 0;
  }
  return view;
}

}  // namespace ecnprobe::wire
