// The Internet checksum (RFC 1071) and the UDP/TCP pseudo-header variant
// (RFC 768 / RFC 793). Used by every header codec and verified on receive in
// both the simulator host stack and the live raw-socket driver.
#pragma once

#include <cstdint>
#include <span>

namespace ecnprobe::wire {

/// One's-complement sum of 16-bit words (RFC 1071), without final inversion.
/// Odd trailing byte is padded with zero. Exposed for incremental use.
std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc = 0);

/// Folds a 32-bit accumulator to 16 bits and inverts. 0 maps to 0xffff per
/// UDP convention handled by callers.
std::uint16_t checksum_finish(std::uint32_t acc);

/// Complete Internet checksum over a buffer.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// RFC 1624 incremental update: the checksum after one 16-bit word of the
/// covered data changes from `old_word` to `new_word`, given the checksum
/// `check` computed before the change. Routers rewriting TTL or the ECN
/// codepoint patch the stored header checksum with this instead of
/// re-summing the whole header.
///
/// Uses the corrected HC' = ~(~HC + ~m + m') form. For IPv4 headers this is
/// bit-exact with a full recompute: the version/IHL byte 0x45 forces the
/// folded one's-complement sum into [1, 0xffff], so the stored checksum is
/// never 0xffff and the +0/-0 ambiguity RFC 1624 warns about cannot arise.
/// A 10k-case property test pins this equivalence.
std::uint16_t checksum_update(std::uint16_t check, std::uint16_t old_word,
                              std::uint16_t new_word);

/// Pseudo-header seed for UDP/TCP checksums: src/dst address, protocol, and
/// transport length, as RFC 768/793 require.
std::uint32_t pseudo_header_sum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                std::uint8_t protocol, std::uint16_t transport_len);

/// Checksum of a full transport segment (header+payload bytes with the
/// checksum field zeroed) including the pseudo-header.
std::uint16_t transport_checksum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace ecnprobe::wire
