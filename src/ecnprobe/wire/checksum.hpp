// The Internet checksum (RFC 1071) and the UDP/TCP pseudo-header variant
// (RFC 768 / RFC 793). Used by every header codec and verified on receive in
// both the simulator host stack and the live raw-socket driver.
#pragma once

#include <cstdint>
#include <span>

namespace ecnprobe::wire {

/// One's-complement sum of 16-bit words (RFC 1071), without final inversion.
/// Odd trailing byte is padded with zero. Exposed for incremental use.
std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc = 0);

/// Folds a 32-bit accumulator to 16 bits and inverts. 0 maps to 0xffff per
/// UDP convention handled by callers.
std::uint16_t checksum_finish(std::uint32_t acc);

/// Complete Internet checksum over a buffer.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Pseudo-header seed for UDP/TCP checksums: src/dst address, protocol, and
/// transport length, as RFC 768/793 require.
std::uint32_t pseudo_header_sum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                std::uint8_t protocol, std::uint16_t transport_len);

/// Checksum of a full transport segment (header+payload bytes with the
/// checksum field zeroed) including the pseudo-header.
std::uint16_t transport_checksum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace ecnprobe::wire
