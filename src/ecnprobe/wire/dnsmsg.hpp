// DNS message codec (RFC 1035): enough to implement the pool.ntp.org
// discovery crawl -- A queries for the pool domains and responses carrying a
// rotating set of A records. Name decompression (11-style pointers) is
// supported on decode; encoding writes uncompressed names.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {

constexpr std::uint16_t kDnsPort = 53;

enum class DnsType : std::uint16_t {
  A = 1,
  Ns = 2,
  Cname = 5,
  Txt = 16,
};

enum class DnsRcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
};

struct DnsQuestion {
  std::string name;  ///< presentation form, e.g. "uk.pool.ntp.org"
  DnsType qtype = DnsType::A;

  bool operator==(const DnsQuestion&) const = default;
};

struct DnsRecord {
  std::string name;
  DnsType rtype = DnsType::A;
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;

  static DnsRecord make_a(std::string name, Ipv4Address addr, std::uint32_t ttl);
  util::Expected<Ipv4Address> a_address() const;
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  DnsRcode rcode = DnsRcode::NoError;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;

  std::vector<std::uint8_t> encode() const;
  static util::Expected<DnsMessage> decode(std::span<const std::uint8_t> data);

  static DnsMessage make_query(std::uint16_t id, std::string name,
                               DnsType qtype = DnsType::A);
  static DnsMessage make_response(const DnsMessage& query, DnsRcode rcode,
                                  std::vector<DnsRecord> answers);
};

/// Validates and encodes a presentation-form name into wire labels. Rejects
/// empty labels, labels over 63 octets, and names over 255 octets.
util::Expected<std::vector<std::uint8_t>> encode_dns_name(const std::string& name);

}  // namespace ecnprobe::wire
