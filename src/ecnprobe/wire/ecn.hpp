// The ECN field of the IPv4 header (RFC 3168): the two least significant
// bits of the former type-of-service octet. This tiny type is the heart of
// the study -- every probe, middlebox, and analysis keys on it.
#pragma once

#include <cstdint>
#include <string_view>

namespace ecnprobe::wire {

/// RFC 3168 ECN codepoints.
enum class Ecn : std::uint8_t {
  NotEct = 0b00,  ///< not ECN-capable transport
  Ect1 = 0b01,    ///< ECN-capable transport, codepoint 1
  Ect0 = 0b10,    ///< ECN-capable transport, codepoint 0 (used by the paper)
  Ce = 0b11,      ///< congestion experienced
};

/// True for ECT(0), ECT(1), and CE -- packets a router may CE-mark.
constexpr bool is_ect(Ecn e) { return e != Ecn::NotEct; }

/// True for the two ECT codepoints (excludes CE).
constexpr bool is_ect_codepoint(Ecn e) { return e == Ecn::Ect0 || e == Ecn::Ect1; }

constexpr std::uint8_t to_bits(Ecn e) { return static_cast<std::uint8_t>(e); }

constexpr Ecn ecn_from_bits(std::uint8_t bits) { return static_cast<Ecn>(bits & 0b11); }

std::string_view to_string(Ecn e);

}  // namespace ecnprobe::wire
