// One-line tcpdump-style dissection of a datagram: IP metadata (including
// the ECN field, always), then the recognised transport and application
// payloads (UDP/TCP/ICMP; NTP/DNS on well-known ports; ICMP quotations).
// Used by examples and debugging output.
#pragma once

#include <string>

#include "ecnprobe/wire/datagram.hpp"

namespace ecnprobe::wire {

/// e.g. "10.0.0.1.44001 > 11.0.0.2.123: UDP ECT(0) ttl 64 NTPv4 client len 48"
std::string dissect(const Datagram& dgram);

}  // namespace ecnprobe::wire
