#include "ecnprobe/wire/http.hpp"

#include <algorithm>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::wire {

bool CaseInsensitiveLess::operator()(const std::string& a, const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(), [](char x, char y) {
        return std::tolower(static_cast<unsigned char>(x)) <
               std::tolower(static_cast<unsigned char>(y));
      });
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  HttpHeaders h = headers;
  if (!body.empty() && !h.contains("Content-Length")) {
    h["Content-Length"] = std::to_string(body.size());
  }
  for (const auto& [name, value] : h) out += name + ": " + value + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::serialize() const {
  std::string out = version + " " + std::to_string(status) + " " + reason + "\r\n";
  HttpHeaders h = headers;
  if (!body.empty() && !h.contains("Content-Length")) {
    h["Content-Length"] = std::to_string(body.size());
  }
  for (const auto& [name, value] : h) out += name + ": " + value + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

bool HttpParser::feed(std::span<const std::uint8_t> bytes) {
  if (failed_) return false;
  buffer_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  try_parse();
  return !failed_;
}

bool HttpParser::feed(std::string_view text) {
  return feed(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void HttpParser::try_parse() {
  if (complete_ || failed_) return;
  if (!head_done_) {
    const std::size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer_.size() > 64 * 1024) {
        failed_ = true;
        error_ = "head over 64KiB";
      }
      return;
    }
    if (!parse_head(std::string_view(buffer_).substr(0, end))) {
      failed_ = true;
      return;
    }
    buffer_.erase(0, end + 4);
    head_done_ = true;
    const HttpHeaders& headers =
        kind_ == Kind::Request ? request_.headers : response_.headers;
    const auto it = headers.find("Content-Length");
    if (it == headers.end()) {
      // No length. A request without one has no body in this subset; a
      // response's HTTP/1.0 body runs to connection close and we treat the
      // head as the completion point (the probe only needs the status line).
      complete_ = true;
      return;
    }
    char* endp = nullptr;
    const unsigned long long len = std::strtoull(it->second.c_str(), &endp, 10);
    if (endp == it->second.c_str() || *endp != '\0') {
      failed_ = true;
      error_ = "bad Content-Length";
      return;
    }
    body_needed_ = static_cast<std::size_t>(len);
  }
  if (head_done_ && !complete_) {
    if (buffer_.size() >= body_needed_) {
      std::string& body = kind_ == Kind::Request ? request_.body : response_.body;
      body = buffer_.substr(0, body_needed_);
      complete_ = true;
    }
  }
}

bool HttpParser::parse_head(std::string_view head) {
  const auto lines = util::split(head, '\n');
  if (lines.empty()) {
    error_ = "empty head";
    return false;
  }
  const auto strip_cr = [](std::string_view s) {
    if (!s.empty() && s.back() == '\r') s.remove_suffix(1);
    return s;
  };
  const std::string_view start_line = strip_cr(lines[0]);
  const auto parts = util::split(start_line, ' ');
  if (kind_ == Kind::Request) {
    if (parts.size() != 3) {
      error_ = "malformed request line";
      return false;
    }
    request_.method = parts[0];
    request_.target = parts[1];
    request_.version = parts[2];
    if (!util::istarts_with(request_.version, "HTTP/")) {
      error_ = "bad version token";
      return false;
    }
  } else {
    if (parts.size() < 2 || !util::istarts_with(parts[0], "HTTP/")) {
      error_ = "malformed status line";
      return false;
    }
    response_.version = parts[0];
    char* endp = nullptr;
    const long status = std::strtol(parts[1].c_str(), &endp, 10);
    if (endp == parts[1].c_str() || *endp != '\0' || status < 100 || status > 599) {
      error_ = "bad status code";
      return false;
    }
    response_.status = static_cast<int>(status);
    response_.reason.clear();
    for (std::size_t i = 2; i < parts.size(); ++i) {
      if (i > 2) response_.reason += ' ';
      response_.reason += parts[i];
    }
  }
  HttpHeaders& headers = kind_ == Kind::Request ? request_.headers : response_.headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = strip_cr(lines[i]);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      error_ = "header line without colon";
      return false;
    }
    headers[std::string(util::trim(line.substr(0, colon)))] =
        std::string(util::trim(line.substr(colon + 1)));
  }
  return true;
}

}  // namespace ecnprobe::wire
