#include "ecnprobe/wire/checksum.hpp"

namespace ecnprobe::wire {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i] << 8);
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(data));
}

std::uint16_t checksum_update(std::uint16_t check, std::uint16_t old_word,
                              std::uint16_t new_word) {
  // HC' = ~fold(~HC + ~m + m')   (RFC 1624 eqn 3)
  std::uint32_t acc = static_cast<std::uint32_t>(~check & 0xffff);
  acc += static_cast<std::uint32_t>(~old_word & 0xffff);
  acc += new_word;
  acc = (acc & 0xffff) + (acc >> 16);
  acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

std::uint32_t pseudo_header_sum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                std::uint8_t protocol, std::uint16_t transport_len) {
  std::uint32_t acc = 0;
  acc += src_addr >> 16;
  acc += src_addr & 0xffff;
  acc += dst_addr >> 16;
  acc += dst_addr & 0xffff;
  acc += protocol;
  acc += transport_len;
  return acc;
}

std::uint16_t transport_checksum(std::uint32_t src_addr, std::uint32_t dst_addr,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
  const auto acc = checksum_accumulate(
      segment, pseudo_header_sum(src_addr, dst_addr, protocol,
                                 static_cast<std::uint16_t>(segment.size())));
  return checksum_finish(acc);
}

}  // namespace ecnprobe::wire
