// Minimal HTTP/1.0-style codec: the TCP probe issues `GET /` against the web
// server the NTP pool encourages operators to run, and records the status
// line (usually a 302 redirect to www.pool.ntp.org). Parsing is incremental
// so it composes with the byte-stream TCP layer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"

namespace ecnprobe::wire {

constexpr std::uint16_t kHttpPort = 80;

/// Case-insensitive header map (HTTP field names are case-insensitive).
struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using HttpHeaders = std::map<std::string, std::string, CaseInsensitiveLess>;

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.0";
  HttpHeaders headers;
  /// Request body (POSTed documents). Serialized only when non-empty, so
  /// the body-less probe requests encode byte-identically to always.
  std::string body;

  std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.0";
  HttpHeaders headers;
  std::string body;

  std::string serialize() const;
};

/// Incremental parser: feed() bytes as they arrive from TCP; `request()` /
/// `response()` become available once the head (and, for responses with a
/// Content-Length, the body) is complete. Any syntax error is sticky.
class HttpParser {
public:
  enum class Kind { Request, Response };

  explicit HttpParser(Kind kind) : kind_(kind) {}

  /// Appends bytes; returns false once the parser is in an error state.
  bool feed(std::span<const std::uint8_t> bytes);
  bool feed(std::string_view text);

  bool complete() const { return complete_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// True once the request/status line and headers have parsed; lets a
  /// server enforce a header-size cap distinct from the body cap.
  bool head_complete() const { return head_done_; }
  /// Declared Content-Length once head_complete(); 0 when absent. Lets a
  /// server refuse an oversized body before buffering any of it.
  std::size_t body_needed() const { return body_needed_; }

  /// Valid only when complete() and the corresponding kind.
  const HttpRequest& request() const { return request_; }
  const HttpResponse& response() const { return response_; }

private:
  void try_parse();
  bool parse_head(std::string_view head);

  Kind kind_;
  std::string buffer_;
  bool complete_ = false;
  bool failed_ = false;
  bool head_done_ = false;
  std::size_t body_needed_ = 0;
  std::string error_;
  HttpRequest request_;
  HttpResponse response_;
};

}  // namespace ecnprobe::wire
