// The pool.ntp.org discovery machinery. The pool runs round-robin DNS that
// returns a different small answer set every few minutes; the paper's
// discovery script queried pool.ntp.org and every country/region sub-domain
// at ~10 minute intervals for several weeks to enumerate 2500 servers
// (Section 3). This module provides all three pieces: the authoritative
// zone data, a DNS server service answering over simulated UDP, a stub
// resolver client, and the discovery crawler.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/dnsmsg.hpp"

namespace ecnprobe::dns {

/// Authoritative data: zone name -> member servers, with a rotating cursor
/// per zone implementing the pool's round-robin behaviour.
class PoolZones {
public:
  explicit PoolZones(std::size_t answers_per_query = 4)
      : answers_per_query_(answers_per_query) {}

  void add_member(const std::string& zone, wire::Ipv4Address addr);
  void remove_member(const std::string& zone, wire::Ipv4Address addr);

  bool has_zone(const std::string& zone) const { return zones_.contains(zone); }
  std::vector<std::string> zone_names() const;
  std::size_t member_count(const std::string& zone) const;

  /// The next answer set for `zone` (advances the round-robin cursor).
  std::vector<wire::Ipv4Address> next_answers(const std::string& zone);

private:
  struct Zone {
    std::vector<wire::Ipv4Address> members;
    std::size_t cursor = 0;
  };
  std::map<std::string, Zone> zones_;
  std::size_t answers_per_query_;
};

/// DNS service bound to UDP port 53 of a Host, answering A queries from a
/// PoolZones database.
class DnsServerService {
public:
  DnsServerService(netsim::Host& host, std::shared_ptr<PoolZones> zones);

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t nxdomain = 0;
  };
  const Stats& stats() const { return stats_; }

private:
  netsim::Host& host_;
  std::shared_ptr<PoolZones> zones_;
  std::shared_ptr<netsim::UdpSocket> socket_;
  Stats stats_;
};

struct DnsQueryResult {
  bool success = false;
  wire::DnsRcode rcode = wire::DnsRcode::ServFail;
  std::vector<wire::Ipv4Address> addresses;
};

/// Stub resolver: one query, bounded retries.
class DnsClient {
public:
  using Handler = std::function<void(const DnsQueryResult&)>;

  DnsClient(netsim::Host& host, wire::Ipv4Address resolver)
      : host_(host), resolver_(resolver) {}

  void query(const std::string& name, Handler handler,
             util::SimDuration timeout = util::SimDuration::seconds(2), int attempts = 3);

private:
  struct Pending;
  netsim::Host& host_;
  wire::Ipv4Address resolver_;
  std::uint16_t next_id_ = 1;
};

/// The discovery crawl: every `round_interval`, query each zone in turn with
/// `inter_query_gap` between queries, accumulating unique addresses.
class DiscoveryCrawler {
public:
  struct Params {
    util::SimDuration round_interval = util::SimDuration::minutes(10);
    util::SimDuration inter_query_gap = util::SimDuration::seconds(1);
    int rounds = 100;
  };
  using DoneHandler = std::function<void(const std::set<std::uint32_t>&)>;

  DiscoveryCrawler(netsim::Host& host, wire::Ipv4Address resolver,
                   std::vector<std::string> zones, Params params);

  /// Starts crawling; `done` fires after the last round.
  void start(DoneHandler done);

  const std::set<std::uint32_t>& discovered() const { return discovered_; }
  int rounds_completed() const { return rounds_completed_; }

private:
  void query_next();

  netsim::Host& host_;
  DnsClient client_;
  std::vector<std::string> zones_;
  Params params_;
  DoneHandler done_;
  std::set<std::uint32_t> discovered_;
  std::size_t zone_index_ = 0;
  int rounds_completed_ = 0;
};

}  // namespace ecnprobe::dns
