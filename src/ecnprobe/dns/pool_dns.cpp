#include "ecnprobe/dns/pool_dns.hpp"

#include <algorithm>

#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::dns {

void PoolZones::add_member(const std::string& zone, wire::Ipv4Address addr) {
  zones_[util::to_lower(zone)].members.push_back(addr);
}

void PoolZones::remove_member(const std::string& zone, wire::Ipv4Address addr) {
  const auto it = zones_.find(util::to_lower(zone));
  if (it == zones_.end()) return;
  auto& members = it->second.members;
  members.erase(std::remove(members.begin(), members.end(), addr), members.end());
  if (it->second.cursor >= members.size()) it->second.cursor = 0;
}

std::vector<std::string> PoolZones::zone_names() const {
  std::vector<std::string> out;
  out.reserve(zones_.size());
  for (const auto& [name, _] : zones_) out.push_back(name);
  return out;
}

std::size_t PoolZones::member_count(const std::string& zone) const {
  const auto it = zones_.find(util::to_lower(zone));
  return it == zones_.end() ? 0 : it->second.members.size();
}

std::vector<wire::Ipv4Address> PoolZones::next_answers(const std::string& zone) {
  const auto it = zones_.find(util::to_lower(zone));
  if (it == zones_.end()) return {};
  Zone& z = it->second;
  std::vector<wire::Ipv4Address> out;
  const std::size_t n = std::min(answers_per_query_, z.members.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(z.members[z.cursor]);
    z.cursor = (z.cursor + 1) % z.members.size();
  }
  return out;
}

DnsServerService::DnsServerService(netsim::Host& host, std::shared_ptr<PoolZones> zones)
    : host_(host), zones_(std::move(zones)) {
  socket_ = host_.open_udp(wire::kDnsPort);
  socket_->set_receive_handler([this](const netsim::UdpDelivery& delivery) {
    const auto query = wire::DnsMessage::decode(delivery.payload);
    if (!query || query->is_response || query->questions.empty()) return;
    ++stats_.queries;
    const auto& question = query->questions.front();
    const std::string zone = util::to_lower(question.name);
    wire::DnsMessage response;
    if (question.qtype == wire::DnsType::A && zones_->has_zone(zone)) {
      std::vector<wire::DnsRecord> answers;
      for (const auto addr : zones_->next_answers(zone)) {
        answers.push_back(wire::DnsRecord::make_a(question.name, addr, 150));
      }
      response = wire::DnsMessage::make_response(*query, wire::DnsRcode::NoError,
                                                 std::move(answers));
    } else {
      ++stats_.nxdomain;
      response = wire::DnsMessage::make_response(*query, wire::DnsRcode::NxDomain, {});
    }
    const auto bytes = response.encode();
    socket_->send(delivery.src, delivery.src_port, bytes, wire::Ecn::NotEct);
  });
}

struct DnsClient::Pending : std::enable_shared_from_this<DnsClient::Pending> {
  netsim::Host& host;
  wire::Ipv4Address resolver;
  std::string name;
  Handler handler;
  util::SimDuration timeout;
  int attempts_left;
  std::uint16_t id;

  std::shared_ptr<netsim::UdpSocket> socket;
  netsim::EventHandle timer;
  bool done = false;

  Pending(netsim::Host& h, wire::Ipv4Address r, std::string n, Handler cb,
          util::SimDuration t, int attempts, std::uint16_t query_id)
      : host(h), resolver(r), name(std::move(n)), handler(std::move(cb)), timeout(t),
        attempts_left(attempts), id(query_id) {}

  void start() {
    socket = host.open_udp();
    auto self = shared_from_this();
    socket->set_receive_handler(
        [self](const netsim::UdpDelivery& delivery) { self->on_response(delivery); });
    send_attempt();
  }

  void send_attempt() {
    --attempts_left;
    const auto query = wire::DnsMessage::make_query(id, name);
    const auto bytes = query.encode();
    socket->send(resolver, wire::kDnsPort, bytes, wire::Ecn::NotEct);
    auto self = shared_from_this();
    timer = host.network().sim().schedule(timeout, [self]() { self->on_timeout(); });
  }

  void on_response(const netsim::UdpDelivery& delivery) {
    if (done) return;
    const auto response = wire::DnsMessage::decode(delivery.payload);
    if (!response || !response->is_response || response->id != id) return;
    done = true;
    timer.cancel();
    DnsQueryResult result;
    result.rcode = response->rcode;
    result.success = response->rcode == wire::DnsRcode::NoError;
    for (const auto& rr : response->answers) {
      if (const auto addr = rr.a_address()) result.addresses.push_back(*addr);
    }
    finish(result);
  }

  void on_timeout() {
    if (done) return;
    if (attempts_left <= 0) {
      done = true;
      finish(DnsQueryResult{});
      return;
    }
    send_attempt();
  }

  void finish(const DnsQueryResult& result) {
    socket->close();
    if (handler) handler(result);
  }
};

void DnsClient::query(const std::string& name, Handler handler, util::SimDuration timeout,
                      int attempts) {
  auto pending = std::make_shared<Pending>(host_, resolver_, name, std::move(handler),
                                           timeout, attempts, next_id_++);
  pending->start();
}

DiscoveryCrawler::DiscoveryCrawler(netsim::Host& host, wire::Ipv4Address resolver,
                                   std::vector<std::string> zones, Params params)
    : host_(host), client_(host, resolver), zones_(std::move(zones)), params_(params) {}

void DiscoveryCrawler::start(DoneHandler done) {
  done_ = std::move(done);
  zone_index_ = 0;
  rounds_completed_ = 0;
  query_next();
}

void DiscoveryCrawler::query_next() {
  if (zone_index_ >= zones_.size()) {
    zone_index_ = 0;
    ++rounds_completed_;
    if (rounds_completed_ >= params_.rounds) {
      if (done_) done_(discovered_);
      return;
    }
    // Wait out the remainder of the round interval, then start over.
    host_.network().sim().schedule(params_.round_interval, [this]() { query_next(); });
    return;
  }
  const std::string zone = zones_[zone_index_++];
  client_.query(zone, [this](const DnsQueryResult& result) {
    for (const auto addr : result.addresses) discovered_.insert(addr.value());
    host_.network().sim().schedule(params_.inter_query_gap, [this]() { query_next(); });
  });
}

}  // namespace ecnprobe::dns
