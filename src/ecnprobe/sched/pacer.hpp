// Token-bucket pacer on the simulated clock. All arithmetic is on int64
// nanoseconds (the token level is stored as "nanoseconds of accumulated
// credit"), so the launch times it hands out are bit-stable across
// platforms and worker counts -- no floating-point accumulation ever
// enters the schedule.
#pragma once

#include <cstdint>
#include <map>

#include "ecnprobe/sched/policy.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::sched {

class Pacer {
public:
  explicit Pacer(const PacerPolicy& policy);

  /// Earliest launch time >= now for the next probe step to `dest`,
  /// consuming one token at that time and honouring the per-destination
  /// gap. Callers must invoke this in non-decreasing `now` order (the
  /// sequential trace runner does by construction).
  util::SimTime acquire(util::SimTime now, wire::Ipv4Address dest);

  /// True when the last acquire() had to delay past `now`.
  bool last_delayed() const { return last_delayed_; }

private:
  std::int64_t interval_ns_ = 0;  ///< ns per token; 0 = unlimited rate
  std::int64_t cap_ns_ = 0;      ///< bucket capacity (burst * interval)
  std::int64_t level_ns_ = 0;    ///< accumulated credit, starts full
  std::int64_t last_refill_ns_ = 0;
  std::int64_t per_dest_gap_ns_ = 0;
  bool last_delayed_ = false;
  std::map<std::uint32_t, std::int64_t> last_send_ns_;  ///< per-destination
};

}  // namespace ecnprobe::sched
