#include "ecnprobe/sched/policy.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::sched {
namespace {

util::Error bad(const std::string& what) { return util::make_error("sched", what); }

bool parse_double_strict(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool parse_int_strict(const std::string& tok, int* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || v < -(1l << 30) || v > (1l << 30)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

util::SimDuration from_ms(double ms) {
  return util::SimDuration::nanos(static_cast<std::int64_t>(ms * 1e6));
}

}  // namespace

std::vector<util::SimDuration> build_retry_schedule(const RetryPolicy& policy,
                                                    util::Rng& rng) {
  std::vector<util::SimDuration> schedule;
  if (policy.kind == RetryPolicy::Kind::PaperFixed) {
    // No draws: the fixed schedule must not move any RNG stream.
    schedule.assign(static_cast<std::size_t>(std::max(1, policy.max_attempts)),
                    policy.base_timeout);
    return schedule;
  }
  const std::int64_t budget_ns = policy.total_budget.count_nanos();
  std::int64_t spent_ns = 0;
  double nominal_ns = static_cast<double>(policy.base_timeout.count_nanos());
  const double max_ns = static_cast<double>(policy.max_timeout.count_nanos());
  std::int64_t floor_ns = 0;  // monotonicity clamp: previous entry
  for (int i = 0; i < policy.max_attempts; ++i) {
    double t = std::min(nominal_ns, max_ns);
    if (policy.jitter > 0.0) {
      // Seed-deterministic scale uniform in [1 - j, 1 + j).
      t *= 1.0 + policy.jitter * (2.0 * rng.next_double() - 1.0);
    }
    std::int64_t t_ns = std::max<std::int64_t>(1, static_cast<std::int64_t>(t));
    t_ns = std::max(t_ns, floor_ns);  // never shrink: monotone non-decreasing
    if (budget_ns > 0 && !schedule.empty() && spent_ns + t_ns > budget_ns) {
      break;  // an attempt that does not fully fit the budget is dropped
    }
    schedule.push_back(util::SimDuration::nanos(t_ns));
    spent_ns += t_ns;
    floor_ns = t_ns;
    nominal_ns = std::min(nominal_ns * policy.backoff_factor, max_ns);
  }
  return schedule;
}

bool SupervisorConfig::is_paper_default() const {
  return retry.kind == RetryPolicy::Kind::PaperFixed &&
         retry.hedge_delay.count_nanos() == 0 && !breaker.enabled && !pacer.enabled &&
         watchdog.deadline.count_nanos() == 0;
}

void SupervisorConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("sched::SupervisorConfig: " + what);
  };
  if (retry.max_attempts <= 0) fail("retry max-attempts must be >= 1");
  if (retry.base_timeout.count_nanos() <= 0) fail("retry base timeout must be > 0");
  if (retry.backoff_factor < 1.0) fail("retry backoff factor must be >= 1");
  if (retry.max_timeout < retry.base_timeout) {
    fail("retry max timeout must be >= base timeout");
  }
  if (retry.jitter < 0.0 || retry.jitter >= 1.0) fail("retry jitter must be in [0, 1)");
  if (retry.total_budget.count_nanos() < 0) fail("retry budget must be >= 0");
  if (retry.total_budget.count_nanos() > 0 && retry.total_budget < retry.base_timeout) {
    fail("retry budget smaller than one base timeout leaves no attempt");
  }
  if (retry.hedge_delay.count_nanos() < 0) fail("hedge delay must be >= 0");
  if (retry.hedge_delay.count_nanos() > 0 &&
      retry.kind == RetryPolicy::Kind::PaperFixed) {
    fail("hedging requires the backoff retry policy");
  }
  if (breaker.enabled) {
    if (breaker.failure_threshold <= 0) fail("breaker failure threshold must be >= 1");
    if (breaker.half_open_after <= 0) fail("breaker half-open skip count must be >= 1");
  }
  if (pacer.enabled) {
    if (pacer.rate_per_sec <= 0.0) fail("pacer rate must be > 0");
    if (pacer.burst <= 0) fail("pacer burst must be >= 1");
    if (pacer.per_dest_gap.count_nanos() < 0) fail("pacer per-dest gap must be >= 0");
  }
  if (watchdog.deadline.count_nanos() < 0) fail("watchdog deadline must be >= 0");
}

util::Expected<SupervisorConfig> SupervisorConfig::parse(const std::string& spec) {
  const auto parts = util::split(spec, ',');
  if (parts.empty() || parts[0].empty()) return bad("empty supervisor spec");
  SupervisorConfig config;
  const std::string kind{util::trim(parts[0])};
  if (kind == "paper") {
    config.retry.kind = RetryPolicy::Kind::PaperFixed;
  } else if (kind == "backoff") {
    config.retry.kind = RetryPolicy::Kind::Backoff;
  } else {
    return bad("unknown retry policy '" + kind + "' (known: paper, backoff)");
  }
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string part{util::trim(parts[i])};
    const auto eq = part.find('=');
    if (eq == std::string::npos) return bad("expected key=value, got '" + part + "'");
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    double d = 0;
    int n = 0;
    const auto want_double = [&](double lo) {
      return parse_double_strict(value, &d) && d >= lo;
    };
    const auto want_int = [&](int lo) { return parse_int_strict(value, &n) && n >= lo; };
    if (key == "max-attempts") {
      if (!want_int(1)) return bad("bad max-attempts '" + value + "'");
      config.retry.max_attempts = n;
    } else if (key == "base-ms") {
      if (!want_double(0.0) || d <= 0.0) return bad("bad base-ms '" + value + "'");
      config.retry.base_timeout = from_ms(d);
    } else if (key == "factor") {
      if (!want_double(1.0)) return bad("bad factor '" + value + "' (must be >= 1)");
      config.retry.backoff_factor = d;
    } else if (key == "max-ms") {
      if (!want_double(0.0) || d <= 0.0) return bad("bad max-ms '" + value + "'");
      config.retry.max_timeout = from_ms(d);
    } else if (key == "jitter") {
      if (!want_double(0.0) || d >= 1.0) {
        return bad("bad jitter '" + value + "' (must be in [0, 1))");
      }
      config.retry.jitter = d;
    } else if (key == "budget-ms") {
      if (!want_double(0.0)) return bad("bad budget-ms '" + value + "'");
      config.retry.total_budget = from_ms(d);
    } else if (key == "hedge-ms") {
      if (!want_double(0.0)) return bad("bad hedge-ms '" + value + "'");
      config.retry.hedge_delay = from_ms(d);
    } else if (key == "breaker-failures") {
      if (!want_int(1)) return bad("bad breaker-failures '" + value + "'");
      config.breaker.enabled = true;
      config.breaker.failure_threshold = n;
    } else if (key == "breaker-half-open") {
      if (!want_int(1)) return bad("bad breaker-half-open '" + value + "'");
      config.breaker.enabled = true;
      config.breaker.half_open_after = n;
    } else if (key == "pace-rate") {
      if (!want_double(0.0) || d <= 0.0) return bad("bad pace-rate '" + value + "'");
      config.pacer.enabled = true;
      config.pacer.rate_per_sec = d;
    } else if (key == "pace-burst") {
      if (!want_int(1)) return bad("bad pace-burst '" + value + "'");
      config.pacer.enabled = true;
      config.pacer.burst = n;
    } else if (key == "pace-dest-gap-ms") {
      if (!want_double(0.0)) return bad("bad pace-dest-gap-ms '" + value + "'");
      config.pacer.enabled = true;
      config.pacer.per_dest_gap = from_ms(d);
    } else if (key == "watchdog-ms") {
      if (!want_double(0.0) || d <= 0.0) return bad("bad watchdog-ms '" + value + "'");
      config.watchdog.deadline = from_ms(d);
    } else if (key == "seed") {
      std::uint64_t s = 0;
      char* end = nullptr;
      errno = 0;
      s = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || errno != 0 || end != value.c_str() + value.size()) {
        return bad("bad seed '" + value + "'");
      }
      config.seed = s;
    } else {
      return bad("unknown supervisor key '" + key + "'");
    }
  }
  try {
    config.validate();
  } catch (const std::invalid_argument& e) {
    return bad(e.what());
  }
  return config;
}

std::string SupervisorConfig::serialize() const {
  // Every emitted key parses back: disabled subsystems are expressed by
  // omission (parse() re-enables them from their threshold keys), so a
  // valid config round-trips to an equal config and an equal string.
  std::string out =
      retry.kind == RetryPolicy::Kind::PaperFixed ? "paper" : "backoff";
  out += util::strf(",max-attempts=%d", retry.max_attempts);
  out += util::strf(",base-ms=%.17g", retry.base_timeout.to_millis());
  out += util::strf(",factor=%.17g", retry.backoff_factor);
  out += util::strf(",max-ms=%.17g", retry.max_timeout.to_millis());
  out += util::strf(",jitter=%.17g", retry.jitter);
  out += util::strf(",budget-ms=%.17g", retry.total_budget.to_millis());
  out += util::strf(",hedge-ms=%.17g", retry.hedge_delay.to_millis());
  if (breaker.enabled) {
    out += util::strf(",breaker-failures=%d", breaker.failure_threshold);
    out += util::strf(",breaker-half-open=%d", breaker.half_open_after);
  }
  if (pacer.enabled) {
    out += util::strf(",pace-rate=%.17g", pacer.rate_per_sec);
    out += util::strf(",pace-burst=%d", pacer.burst);
    out += util::strf(",pace-dest-gap-ms=%.17g", pacer.per_dest_gap.to_millis());
  }
  if (watchdog.deadline.count_nanos() > 0) {
    out += util::strf(",watchdog-ms=%.17g", watchdog.deadline.to_millis());
  }
  out += util::strf(",seed=%llu", static_cast<unsigned long long>(seed));
  return out;
}

}  // namespace ecnprobe::sched
