#include "ecnprobe/sched/pacer.hpp"

#include <algorithm>
#include <cmath>

namespace ecnprobe::sched {

Pacer::Pacer(const PacerPolicy& policy) {
  if (policy.enabled && policy.rate_per_sec > 0.0) {
    // The only floating-point operation the pacer ever performs, done once:
    // every later decision is integer arithmetic on this interval.
    interval_ns_ = std::max<std::int64_t>(1, std::llround(1e9 / policy.rate_per_sec));
    cap_ns_ = interval_ns_ * std::max(1, policy.burst);
    level_ns_ = cap_ns_;  // bucket starts full: the first burst is free
  }
  per_dest_gap_ns_ = policy.per_dest_gap.count_nanos();
}

util::SimTime Pacer::acquire(util::SimTime now, wire::Ipv4Address dest) {
  std::int64_t launch_ns = now.count_nanos();
  if (interval_ns_ > 0) {
    level_ns_ = std::min(cap_ns_, level_ns_ + (launch_ns - last_refill_ns_));
    last_refill_ns_ = launch_ns;
    if (level_ns_ >= interval_ns_) {
      level_ns_ -= interval_ns_;
    } else {
      // Wait until the bucket refills to one token; the token is consumed
      // exactly at launch, leaving the level at zero.
      launch_ns += interval_ns_ - level_ns_;
      level_ns_ = 0;
      last_refill_ns_ = launch_ns;
    }
  }
  if (per_dest_gap_ns_ > 0) {
    const auto it = last_send_ns_.find(dest.value());
    if (it != last_send_ns_.end()) {
      launch_ns = std::max(launch_ns, it->second + per_dest_gap_ns_);
    }
    last_send_ns_[dest.value()] = launch_ns;
  }
  last_delayed_ = launch_ns > now.count_nanos();
  return util::SimTime::from_nanos(launch_ns);
}

}  // namespace ecnprobe::sched
