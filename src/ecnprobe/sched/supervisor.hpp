// The per-trace probe-lifecycle supervisor: owns the trace's circuit
// breakers (per server and per AS group), the token-bucket pacer, and the
// jitter streams behind adaptive retry schedules, and records every
// decision it takes into the owning world's observability (sched_*
// metrics, circuit-open drop attributions).
//
// Determinism contract: the supervisor is TRACE-SCOPED. TraceRunner builds
// a fresh one per trace, seeded by (config.seed, trace index), so its state
// never spans traces -- a parallel worker that picks up trace 17 cold
// reproduces exactly the breaker/pacer state a sequential executor would
// have at trace 17, because that state is a pure function of the trace's
// own probe outcomes. Every retry schedule is a pure function of
// (seed, trace, server, step); the pacer is pure integer arithmetic on the
// sim clock; the breakers are pure functions of the outcome sequence.
// Nothing here draws from any Host RNG stream.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/sched/circuit_breaker.hpp"
#include "ecnprobe/sched/pacer.hpp"
#include "ecnprobe/sched/policy.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::sched {

/// Maps a destination to its breaker group (the scenario layer binds this
/// to ip2as lookup: "AS<n>"). Null resolver = no group breakers.
using GroupResolver = std::function<std::string(wire::Ipv4Address)>;

class TraceSupervisor {
public:
  /// `trace_salt` is the campaign trace index (or 0 outside a campaign):
  /// it salts the jitter streams so distinct traces get distinct
  /// schedules while any executor reproduces any trace independently.
  TraceSupervisor(SupervisorConfig config, obs::Observability& obs,
                  GroupResolver groups, std::uint64_t trace_salt = 0);

  const SupervisorConfig& config() const { return config_; }
  bool adaptive_retry() const {
    return config_.retry.kind == RetryPolicy::Kind::Backoff;
  }

  // -- circuit breakers -------------------------------------------------------

  /// Gate for a whole server (consulted once, before its four-step probe):
  /// the server's AS-group breaker. False = skip the server entirely.
  bool allow_server(wire::Ipv4Address server);
  /// Gate for one probe step: the per-server breaker. False = skip the
  /// step (recorded as failed without sending anything).
  bool allow_step(wire::Ipv4Address server);
  /// Reports one probe step's outcome to the per-server breaker.
  void on_step_result(wire::Ipv4Address server, bool success);
  /// Reports a completed (or watchdog-cancelled) server probe to its
  /// group breaker. `any_success` = at least one of the four steps worked.
  void on_server_result(wire::Ipv4Address server, bool any_success);
  /// Attributes one skipped probe step in the drop ledger (circuit-open)
  /// and counts it. `scope` is "server" or "group".
  void record_skip(wire::Ipv4Address server, const char* scope);

  // -- adaptive retry ---------------------------------------------------------

  /// The per-attempt timeout schedule for (server, step) under the
  /// configured backoff policy. Deterministic: derived from
  /// (config.seed, trace_salt, server, step) alone.
  std::vector<util::SimDuration> retry_schedule(wire::Ipv4Address server, int step);
  /// Counts a finished UDP step's attempt total (retries-by-attempt
  /// metric). Only called under adaptive retry.
  void count_attempts(const char* test, int attempts);

  // -- pacing -----------------------------------------------------------------

  /// Earliest launch time >= now for the next probe step; records pacer
  /// wait metrics when the step had to be delayed.
  util::SimTime pace(util::SimTime now, wire::Ipv4Address server);

  // -- watchdog ---------------------------------------------------------------

  void count_watchdog_cancel(const std::string& vantage);

private:
  CircuitBreaker& server_breaker(wire::Ipv4Address server);
  CircuitBreaker& group_breaker(const std::string& group);
  CircuitBreaker::Listener transition_listener(const char* scope);

  SupervisorConfig config_;
  obs::Observability& obs_;
  GroupResolver groups_;
  std::uint64_t schedule_seed_ = 0;
  std::unique_ptr<Pacer> pacer_;
  std::map<std::uint32_t, std::unique_ptr<CircuitBreaker>> server_breakers_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> group_breakers_;
};

}  // namespace ecnprobe::sched
