// Closed / open / half-open circuit breaker. Pure state machine -- no
// clock, no RNG -- driven by the probe layer's success/failure reports, so
// its decisions are a function of the (deterministic) probe outcome
// sequence alone and shard identically at any worker count.
//
//   Closed ──(failure_threshold consecutive failures)──► Open
//   Open ──(half_open_after skipped requests)──► HalfOpen
//   HalfOpen ──(trial success)──► Closed
//   HalfOpen ──(trial failure)──► Open
#pragma once

#include <functional>

#include "ecnprobe/sched/policy.hpp"

namespace ecnprobe::sched {

class CircuitBreaker {
public:
  enum class State : std::uint8_t { Closed, Open, HalfOpen };

  /// Fires on every state change (metrics hook).
  using Listener = std::function<void(State from, State to)>;

  explicit CircuitBreaker(BreakerPolicy policy, Listener listener = nullptr)
      : policy_(policy), listener_(std::move(listener)) {}

  /// May the next request proceed? Open swallows the request (counting it
  /// toward the half-open trial); HalfOpen and Closed let it through.
  bool allow() {
    if (state_ != State::Open) return true;
    if (++skips_ >= policy_.half_open_after) {
      skips_ = 0;
      transition(State::HalfOpen);
      return true;
    }
    return false;
  }

  void on_success() {
    consecutive_failures_ = 0;
    if (state_ != State::Closed) transition(State::Closed);
  }

  void on_failure() {
    ++consecutive_failures_;
    if (state_ == State::HalfOpen) {
      // The trial request failed: straight back to open.
      transition(State::Open);
      skips_ = 0;
    } else if (state_ == State::Closed &&
               consecutive_failures_ >= policy_.failure_threshold) {
      transition(State::Open);
      skips_ = 0;
    }
  }

  State state() const { return state_; }

private:
  void transition(State to) {
    const State from = state_;
    state_ = to;
    if (listener_) listener_(from, to);
  }

  BreakerPolicy policy_;
  Listener listener_;
  State state_ = State::Closed;
  int consecutive_failures_ = 0;
  int skips_ = 0;
};

std::string_view to_string(CircuitBreaker::State state);

}  // namespace ecnprobe::sched
