#include "ecnprobe/sched/supervisor.hpp"

#include "ecnprobe/obs/event_stream.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::sched {

std::string_view to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "?";
}

TraceSupervisor::TraceSupervisor(SupervisorConfig config, obs::Observability& obs,
                                 GroupResolver groups, std::uint64_t trace_salt)
    : config_(std::move(config)), obs_(obs), groups_(std::move(groups)) {
  config_.validate();
  schedule_seed_ =
      util::derive_seed(util::derive_seed(config_.seed, "sched-retry"), trace_salt);
  if (config_.pacer.enabled) pacer_ = std::make_unique<Pacer>(config_.pacer);
}

CircuitBreaker::Listener TraceSupervisor::transition_listener(const char* scope) {
  // Every state change lands in sched_breaker_transitions_total{scope,to}.
  // The listener only fires when breakers are enabled, so the default
  // config never creates these families.
  return [this, scope](CircuitBreaker::State from, CircuitBreaker::State to) {
    obs_.registry
        .counter("sched_breaker_transitions_total",
                 {{"scope", scope}, {"to", std::string(to_string(to))}},
                 "circuit breaker state transitions, by scope and target state")
        ->inc();
    // Live plane: breaker trips flow to the SSE stream. Observation-only
    // and gated, so unserved campaigns pay one atomic load.
    auto& stream = obs::EventStream::process();
    if (stream.enabled()) {
      stream.emit("breaker",
                  util::strf("scope=%s %s -> %s", scope,
                             std::string(to_string(from)).c_str(),
                             std::string(to_string(to)).c_str()));
    }
  };
}

CircuitBreaker& TraceSupervisor::server_breaker(wire::Ipv4Address server) {
  auto& slot = server_breakers_[server.value()];
  if (!slot) {
    slot = std::make_unique<CircuitBreaker>(config_.breaker,
                                            transition_listener("server"));
  }
  return *slot;
}

CircuitBreaker& TraceSupervisor::group_breaker(const std::string& group) {
  auto& slot = group_breakers_[group];
  if (!slot) {
    slot = std::make_unique<CircuitBreaker>(config_.breaker,
                                            transition_listener("group"));
  }
  return *slot;
}

bool TraceSupervisor::allow_server(wire::Ipv4Address server) {
  if (!config_.breaker.enabled || !groups_) return true;
  return group_breaker(groups_(server)).allow();
}

bool TraceSupervisor::allow_step(wire::Ipv4Address server) {
  if (!config_.breaker.enabled) return true;
  return server_breaker(server).allow();
}

void TraceSupervisor::on_step_result(wire::Ipv4Address server, bool success) {
  if (!config_.breaker.enabled) return;
  auto& breaker = server_breaker(server);
  if (success) {
    breaker.on_success();
  } else {
    breaker.on_failure();
  }
}

void TraceSupervisor::on_server_result(wire::Ipv4Address server, bool any_success) {
  if (!config_.breaker.enabled || !groups_) return;
  auto& breaker = group_breaker(groups_(server));
  if (any_success) {
    breaker.on_success();
  } else {
    breaker.on_failure();
  }
}

void TraceSupervisor::record_skip(wire::Ipv4Address server, const char* scope) {
  obs_.ledger.record_drop(obs::Layer::Measure, obs::DropCause::CircuitOpen,
                          server.to_string());
  obs_.registry
      .counter("sched_breaker_skips_total", {{"scope", scope}},
               "probe steps skipped because a circuit breaker was open")
      ->inc();
}

std::vector<util::SimDuration> TraceSupervisor::retry_schedule(
    wire::Ipv4Address server, int step) {
  // A private stream per (seed, trace, server, step): any executor running
  // this trace derives the identical schedule, in any order.
  util::Rng rng(util::derive_seed(util::derive_seed(schedule_seed_, server.value()),
                                  static_cast<std::uint64_t>(step)));
  return build_retry_schedule(config_.retry, rng);
}

void TraceSupervisor::count_attempts(const char* test, int attempts) {
  obs_.registry
      .counter("sched_retry_attempts_total",
               {{"test", test}, {"attempts", std::to_string(attempts)}},
               "UDP probe steps finished, by test and total attempts used")
      ->inc();
}

util::SimTime TraceSupervisor::pace(util::SimTime now, wire::Ipv4Address server) {
  if (!pacer_) return now;
  const auto launch = pacer_->acquire(now, server);
  if (pacer_->last_delayed()) {
    obs_.registry
        .counter("sched_pacer_delays_total", {},
                 "probe steps the pacer had to delay")
        ->inc();
    obs_.registry
        .histogram("sched_pacer_wait_ms", {1.0, 5.0, 25.0, 100.0, 500.0, 2500.0}, {},
                   "sim-time the pacer held a probe step back, ms")
        ->observe((launch - now).to_millis());
    // The sequential trace runner launches one step at a time, so the
    // queue behind the pacer is the step being held: depth 1 per delay.
    obs_.registry
        .histogram("sched_pacer_queue_depth", {1.0, 2.0, 4.0, 8.0}, {},
                   "probe steps queued behind the pacer when it delayed one")
        ->observe(1.0);
  }
  return launch;
}

void TraceSupervisor::count_watchdog_cancel(const std::string& vantage) {
  obs_.registry
      .counter("sched_watchdog_cancellations_total", {{"vantage", vantage}},
               "server probes cancelled by the watchdog deadline")
      ->inc();
}

}  // namespace ecnprobe::sched
