// Probe-lifecycle supervision policies (the deterministic scheduler layer).
//
// The paper's probing discipline -- up to five NTP requests one second
// apart, a 15 s HTTP deadline -- is the *default* policy here, and the
// default must be invisible: a campaign run with SupervisorConfig::
// paper_default() takes exactly the pre-supervisor code path, makes zero
// extra RNG draws, and reproduces the golden campaign artefacts bit for
// bit. Everything beyond the default (exponential backoff with
// seed-deterministic jitter, hedged duplicates, circuit breakers, pacing,
// a per-server watchdog) is opt-in and purely a function of
// (SupervisorConfig, seed, server, step), so campaigns stay byte-identical
// sequential vs --workers N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::sched {

/// How UDP probe attempts are timed. PaperFixed reproduces Section 3's
/// schedule verbatim (the probe layer keeps its inline loop); Backoff
/// builds a per-step timeout schedule via build_retry_schedule().
struct RetryPolicy {
  enum class Kind : std::uint8_t { PaperFixed, Backoff };

  Kind kind = Kind::PaperFixed;
  int max_attempts = 5;
  util::SimDuration base_timeout = util::SimDuration::seconds(1);
  /// Backoff only: attempt i nominally waits base * factor^i, capped at
  /// max_timeout. Must be >= 1.
  double backoff_factor = 2.0;
  util::SimDuration max_timeout = util::SimDuration::seconds(8);
  /// Backoff only: each timeout is scaled by a seed-deterministic factor
  /// uniform in [1 - jitter, 1 + jitter), then clamped so the schedule
  /// stays monotone non-decreasing. In [0, 1).
  double jitter = 0.0;
  /// Backoff only: attempts whose cumulative timeout would exceed this are
  /// dropped (zero = unbounded). The schedule always keeps attempt one.
  util::SimDuration total_budget{};
  /// Backoff only: after this long without a response, the attempt's
  /// request is duplicated once on the wire (a hedge against tail loss).
  /// Zero disables hedging.
  util::SimDuration hedge_delay{};
};

/// Per-attempt timeout schedule: a pure function of (policy, rng). The
/// sequence is monotone non-decreasing, every entry lies within
/// [base*(1-jitter), max_timeout*(1+jitter)], and the sum never exceeds
/// total_budget (when set). PaperFixed makes no RNG draws at all.
std::vector<util::SimDuration> build_retry_schedule(const RetryPolicy& policy,
                                                    util::Rng& rng);

/// Circuit-breaker thresholds, shared by the per-server breakers (counting
/// consecutive failed probe steps within one server's four-step sequence)
/// and the per-AS group breakers (counting consecutive fully-dead servers).
struct BreakerPolicy {
  bool enabled = false;
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  /// Skips in the open state before one trial probe is let through
  /// (half-open). A successful trial closes the breaker; a failure
  /// re-opens it.
  int half_open_after = 4;
};

/// Global token-bucket pacing of probe-step launches on the sim clock,
/// plus an optional per-destination minimum gap. Integer-nanosecond
/// arithmetic throughout: no floating-point accumulation, so the pacing
/// decisions are bit-stable at any worker count.
struct PacerPolicy {
  bool enabled = false;
  double rate_per_sec = 0.0;  ///< steady-state probe steps per sim-second
  int burst = 1;              ///< bucket depth, in steps
  util::SimDuration per_dest_gap{};  ///< min spacing between sends to one server
};

/// Hard per-server-probe deadline. A server whose four-step sequence is
/// still unfinished after `deadline` is cancelled: its remaining steps are
/// recorded as failed, the loss is attributed (watchdog-cancelled) in the
/// drop ledger, and a flight-recorder span names the stall for
/// trace-autopsy. Zero disables the watchdog.
struct WatchdogPolicy {
  util::SimDuration deadline{};
};

struct SupervisorConfig {
  RetryPolicy retry;
  BreakerPolicy breaker;
  PacerPolicy pacer;
  WatchdogPolicy watchdog;
  /// Base seed for the jitter streams. The scenario layer defaults it to
  /// the world seed; each trace supervisor further salts it with the trace
  /// index, each schedule with (server, step).
  std::uint64_t seed = 0;

  /// The paper's fixed discipline; the probe layer bypasses the supervisor
  /// entirely for it.
  static SupervisorConfig paper_default() { return {}; }

  /// True when nothing here would change the inline probe loop's
  /// behaviour -- the byte-identity contract hinges on this predicate.
  bool is_paper_default() const;

  /// Throws std::invalid_argument with a precise message on any
  /// out-of-range field.
  void validate() const;

  /// Parses "paper" / "backoff" optionally followed by ,key=value
  /// overrides, e.g. "backoff,base-ms=500,factor=2,jitter=0.1,
  /// breaker-failures=3,pace-rate=50,watchdog-ms=30000". The parsed
  /// config is validated. Key list in docs/robustness.md.
  static util::Expected<SupervisorConfig> parse(const std::string& spec);

  /// Canonical key=value rendering: fixed order, disabled subsystems
  /// omitted, so parse(serialize()) round-trips to an equal config and
  /// equal configs serialise to equal strings.
  std::string serialize() const;
};

}  // namespace ecnprobe::sched
