#include "ecnprobe/http/obs_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ecnprobe/obs/event_stream.hpp"
#include "ecnprobe/wire/http.hpp"

namespace ecnprobe::http {

namespace {

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  wire::HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.version = "HTTP/1.1";
  response.headers["Content-Type"] = content_type;
  response.headers["Content-Length"] = std::to_string(body.size());
  response.headers["Connection"] = "close";
  response.body = body;
  return response.serialize();
}

std::string render_routed(const ObsHttpServer::Response& routed) {
  wire::HttpResponse response;
  response.status = routed.status;
  response.reason = routed.reason;
  response.version = "HTTP/1.1";
  response.headers["Content-Type"] = routed.content_type;
  response.headers["Content-Length"] = std::to_string(routed.body.size());
  response.headers["Connection"] = "close";
  for (const auto& [name, value] : routed.headers) {
    response.headers[name] = value;
  }
  response.body = routed.body;
  return response.serialize();
}

}  // namespace

ObsHttpServer::ObsHttpServer(Options options, Providers providers)
    : options_(std::move(options)), providers_(std::move(providers)) {}

ObsHttpServer::~ObsHttpServer() { stop(); }

bool ObsHttpServer::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind port " + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  stop_.store(false);
  obs::EventStream::process().set_enabled(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  running_ = true;
  return true;
}

void ObsHttpServer::stop() {
  if (!running_) return;
  stop_.store(true);
  // Nudge blocked SSE pollers and recv()s: shut the sockets down so the
  // per-client threads observe EOF/error and exit promptly.
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    threads.swap(client_threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  obs::EventStream::process().set_enabled(false);
  running_ = false;
}

void ObsHttpServer::accept_loop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    sessions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(clients_mutex_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd] { handle_client(fd); });
  }
}

bool ObsHttpServer::send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
  }
  return true;
}

void ObsHttpServer::serve_events(int fd) {
  std::string head =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/event-stream\r\n"
      "Cache-Control: no-cache\r\n"
      "Connection: close\r\n\r\n";
  if (!send_all(fd, head)) return;
  auto& stream = obs::EventStream::process();
  std::uint64_t last_id = 0;
  auto idle_since = std::chrono::steady_clock::now();
  while (!stop_.load()) {
    // Poll in short slices so stop() is honoured within ~250 ms even on
    // a silent stream; keep-alive comments go out on the configured
    // cadence so proxies and clients can tell the stream is live.
    const auto events =
        stream.poll_after(last_id, std::chrono::milliseconds(250));
    if (!events.empty()) {
      std::string frame;
      for (const auto& event : events) {
        frame += "id: " + std::to_string(event.id) + "\n";
        frame += "event: " + event.kind + "\n";
        frame += "data: " + event.text + "\n\n";
        last_id = event.id;
      }
      if (!send_all(fd, frame)) return;
      idle_since = std::chrono::steady_clock::now();
      continue;
    }
    if (std::chrono::steady_clock::now() - idle_since >= options_.keepalive) {
      if (!send_all(fd, ": keep-alive\n\n")) return;
      idle_since = std::chrono::steady_clock::now();
    }
  }
}

bool ObsHttpServer::read_request(int fd, wire::HttpParser& parser) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.read_deadline;
  std::size_t pre_head_bytes = 0;
  char buf[4096];
  while (!parser.complete() && !stop_.load()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      rejected_timeout_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, http_response(408, "Request Timeout", "text/plain",
                                 "request not completed within deadline\n"));
      return false;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    // Short poll slices keep stop() responsive even against a client
    // dripping one byte per deadline (the classic slowloris shape).
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1,
        static_cast<int>(std::min<long long>(remaining.count() + 1, 250)));
    if (ready < 0) return false;
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    if (!parser.head_complete()) {
      pre_head_bytes += static_cast<std::size_t>(n);
    }
    if (!parser.feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
      send_all(fd, http_response(400, "Bad Request", "text/plain",
                                 parser.error() + "\n"));
      return false;
    }
    if (!parser.head_complete() &&
        pre_head_bytes > options_.max_header_bytes) {
      rejected_oversized_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, http_response(431, "Request Header Fields Too Large",
                                 "text/plain", "request head over limit\n"));
      return false;
    }
    if (parser.head_complete() &&
        parser.body_needed() > options_.max_body_bytes) {
      rejected_oversized_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, http_response(413, "Content Too Large", "text/plain",
                                 "request body over limit\n"));
      return false;
    }
  }
  return parser.complete();
}

void ObsHttpServer::handle_client(int fd) {
  wire::HttpParser parser(wire::HttpParser::Kind::Request);
  if (read_request(fd, parser)) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    const wire::HttpRequest& request = parser.request();
    const std::string& target = request.target;
    const bool is_get = request.method == "GET";
    if (is_get && target == "/metrics") {
      std::string body = providers_.metrics ? providers_.metrics() : "";
      // The live plane reports its own event-ring losses so a scraper
      // can tell "no events" apart from "events evicted unread".
      body +=
          "# HELP ecnprobe_obs_events_dropped_total Events evicted from the "
          "bounded event ring before delivery.\n"
          "# TYPE ecnprobe_obs_events_dropped_total counter\n"
          "ecnprobe_obs_events_dropped_total " +
          std::to_string(obs::EventStream::process().dropped()) + "\n";
      send_all(fd, http_response(200, "OK", "text/plain; version=0.0.4", body));
    } else if (is_get && target == "/progress") {
      const std::string body =
          providers_.progress ? providers_.progress() : "{}";
      send_all(fd, http_response(200, "OK", "application/json", body));
    } else if (is_get && target == "/events") {
      serve_events(fd);
    } else if (handler_) {
      send_all(fd, render_routed(handler_(request)));
    } else if (!is_get) {
      send_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                                 "only GET is served\n"));
    } else {
      send_all(fd, http_response(404, "Not Found", "text/plain",
                                 "unknown endpoint\n"));
    }
  }
  {
    // Deregister before close: a recycled fd number must not be
    // shutdown() by a later stop().
    std::lock_guard<std::mutex> lock(clients_mutex_);
    std::erase(client_fds_, fd);
  }
  ::close(fd);
}

ObsHttpServer::Stats ObsHttpServer::stats() const {
  Stats stats;
  stats.sessions = sessions_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  stats.rejected_timeout = rejected_timeout_.load(std::memory_order_relaxed);
  stats.rejected_oversized =
      rejected_oversized_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ecnprobe::http
