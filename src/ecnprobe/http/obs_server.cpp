#include "ecnprobe/http/obs_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ecnprobe/obs/event_stream.hpp"
#include "ecnprobe/wire/http.hpp"

namespace ecnprobe::http {

namespace {

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  wire::HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.version = "HTTP/1.1";
  response.headers["Content-Type"] = content_type;
  response.headers["Content-Length"] = std::to_string(body.size());
  response.headers["Connection"] = "close";
  response.body = body;
  return response.serialize();
}

}  // namespace

ObsHttpServer::ObsHttpServer(Options options, Providers providers)
    : options_(std::move(options)), providers_(std::move(providers)) {}

ObsHttpServer::~ObsHttpServer() { stop(); }

bool ObsHttpServer::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind port " + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  stop_.store(false);
  obs::EventStream::process().set_enabled(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  running_ = true;
  return true;
}

void ObsHttpServer::stop() {
  if (!running_) return;
  stop_.store(true);
  // Nudge blocked SSE pollers and recv()s: shut the sockets down so the
  // per-client threads observe EOF/error and exit promptly.
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    threads.swap(client_threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  obs::EventStream::process().set_enabled(false);
  running_ = false;
}

void ObsHttpServer::accept_loop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    sessions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(clients_mutex_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd] { handle_client(fd); });
  }
}

bool ObsHttpServer::send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
  }
  return true;
}

void ObsHttpServer::serve_events(int fd) {
  std::string head =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/event-stream\r\n"
      "Cache-Control: no-cache\r\n"
      "Connection: close\r\n\r\n";
  if (!send_all(fd, head)) return;
  auto& stream = obs::EventStream::process();
  std::uint64_t last_id = 0;
  auto idle_since = std::chrono::steady_clock::now();
  while (!stop_.load()) {
    // Poll in short slices so stop() is honoured within ~250 ms even on
    // a silent stream; keep-alive comments go out on the configured
    // cadence so proxies and clients can tell the stream is live.
    const auto events =
        stream.poll_after(last_id, std::chrono::milliseconds(250));
    if (!events.empty()) {
      std::string frame;
      for (const auto& event : events) {
        frame += "id: " + std::to_string(event.id) + "\n";
        frame += "event: " + event.kind + "\n";
        frame += "data: " + event.text + "\n\n";
        last_id = event.id;
      }
      if (!send_all(fd, frame)) return;
      idle_since = std::chrono::steady_clock::now();
      continue;
    }
    if (std::chrono::steady_clock::now() - idle_since >= options_.keepalive) {
      if (!send_all(fd, ": keep-alive\n\n")) return;
      idle_since = std::chrono::steady_clock::now();
    }
  }
}

void ObsHttpServer::handle_client(int fd) {
  // A scraper that never finishes its request must not pin the thread.
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  wire::HttpParser parser(wire::HttpParser::Kind::Request);
  char buf[4096];
  while (!parser.complete() && !parser.failed() && !stop_.load()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  if (parser.complete()) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    const std::string& target = parser.request().target;
    if (target == "/metrics") {
      const std::string body = providers_.metrics ? providers_.metrics() : "";
      send_all(fd, http_response(200, "OK", "text/plain; version=0.0.4", body));
    } else if (target == "/progress") {
      const std::string body =
          providers_.progress ? providers_.progress() : "{}";
      send_all(fd, http_response(200, "OK", "application/json", body));
    } else if (target == "/events") {
      serve_events(fd);
    } else {
      send_all(fd, http_response(404, "Not Found", "text/plain",
                                 "unknown endpoint\n"));
    }
  }
  {
    // Deregister before close: a recycled fd number must not be
    // shutdown() by a later stop().
    std::lock_guard<std::mutex> lock(clients_mutex_);
    std::erase(client_fds_, fd);
  }
  ::close(fd);
}

ObsHttpServer::Stats ObsHttpServer::stats() const {
  Stats stats;
  stats.sessions = sessions_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ecnprobe::http
