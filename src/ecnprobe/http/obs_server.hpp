// The live observability plane: a small real (POSIX-socket) HTTP server
// that makes a running campaign scrapable. Not to be confused with
// HttpServerService, which is a *simulated* server inside the world --
// this one binds an actual TCP port on the machine running the campaign.
//
// Read-only by construction: every endpoint renders from thread-safe
// snapshot providers (ParallelCampaign::progress(), the streaming
// merger's metrics snapshot) or from the process event stream, so
// serving never touches worker-owned state.
//
//   GET /metrics   Prometheus text exposition of the campaign-so-far
//   GET /progress  JSON snapshot of campaign progress
//   GET /events    text/event-stream of window rollovers, quarantines,
//                  breaker trips, and checkpoint appends (SSE framing:
//                  id:/event:/data:, ": keep-alive" comments while idle)
//
// Anything else routes through the optional Handler hook, which is how
// ecnprobed mounts its campaign-submission API (POST /campaigns,
// GET /campaigns/<id>/...) on this same listener.
//
// Hardened request path: a connection that does not deliver a complete
// request head within `read_deadline` is answered 408 and closed (a
// slowloris drip cannot pin a serving thread), heads over
// `max_header_bytes` are answered 431, and declared bodies over
// `max_body_bytes` are answered 413 without ever buffering the excess.
//
// Determinism boundary: nothing in the campaign reads back anything this
// server produces; mid-run scrapes observe prefix-merged totals that
// reconcile with (are <= ) the final --metrics-out export.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ecnprobe/wire/http.hpp"

namespace ecnprobe::http {

class ObsHttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start()
    /// Idle interval between SSE keep-alive comments.
    std::chrono::milliseconds keepalive{10000};
    /// Total wall-clock allowance for receiving one complete request
    /// (head + declared body). Exceeding it answers 408 Request Timeout.
    std::chrono::milliseconds read_deadline{5000};
    /// Request head cap; exceeding it answers 431 Request Header Fields
    /// Too Large before the head is parsed.
    std::size_t max_header_bytes = 16 * 1024;
    /// Declared request body cap; exceeding it answers 413 Content Too
    /// Large without reading the body in.
    std::size_t max_body_bytes = 256 * 1024;
  };

  /// Snapshot providers, called per request from server threads; they
  /// must be safe to invoke while campaign workers run.
  struct Providers {
    std::function<std::string()> metrics;   ///< Prometheus text
    std::function<std::string()> progress;  ///< JSON object
  };

  /// A routed response built by the Handler hook.
  struct Response {
    int status = 200;
    std::string reason = "OK";
    std::string content_type = "text/plain";
    std::string body;
    /// Extra headers (e.g. {"Retry-After", "2"} on a 429 shed).
    std::vector<std::pair<std::string, std::string>> headers;
  };

  /// Fallback router for requests no built-in endpoint matches (and for
  /// every non-GET request). Runs on a server thread; must be
  /// thread-safe. Absent handler = 404 / 405 as before.
  using Handler = std::function<Response(const wire::HttpRequest&)>;

  /// Self-observation counters (satellite of the live plane): the
  /// serving path counts its own sessions, requests, and bytes.
  struct Stats {
    std::uint64_t sessions = 0;
    std::uint64_t requests = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t rejected_timeout = 0;   ///< 408s (read deadline)
    std::uint64_t rejected_oversized = 0; ///< 431s + 413s (size caps)
  };

  ObsHttpServer(Options options, Providers providers);
  ~ObsHttpServer();
  ObsHttpServer(const ObsHttpServer&) = delete;
  ObsHttpServer& operator=(const ObsHttpServer&) = delete;

  /// Installs the fallback router. Call before start().
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Binds and starts the accept loop. On failure fills *error and
  /// returns false.
  bool start(std::string* error);
  void stop();
  bool running() const { return running_; }

  /// The bound port (resolves ephemeral port 0 requests).
  std::uint16_t port() const { return port_; }

  Stats stats() const;

 private:
  void accept_loop();
  void handle_client(int fd);
  bool send_all(int fd, const std::string& data);
  void serve_events(int fd);
  /// Receives one request within the hardening envelope. Returns true
  /// with a complete parse, or false after answering 408/413/431/400.
  bool read_request(int fd, wire::HttpParser& parser);

  Options options_;
  Providers providers_;
  Handler handler_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex clients_mutex_;
  std::vector<int> client_fds_;
  std::vector<std::thread> client_threads_;
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> rejected_timeout_{0};
  std::atomic<std::uint64_t> rejected_oversized_{0};
};

}  // namespace ecnprobe::http
