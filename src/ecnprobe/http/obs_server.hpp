// The live observability plane: a small real (POSIX-socket) HTTP server
// that makes a running campaign scrapable. Not to be confused with
// HttpServerService, which is a *simulated* server inside the world --
// this one binds an actual TCP port on the machine running the campaign.
//
// Read-only by construction: every endpoint renders from thread-safe
// snapshot providers (ParallelCampaign::progress(), the streaming
// merger's metrics snapshot) or from the process event stream, so
// serving never touches worker-owned state.
//
//   GET /metrics   Prometheus text exposition of the campaign-so-far
//   GET /progress  JSON snapshot of campaign progress
//   GET /events    text/event-stream of window rollovers, quarantines,
//                  breaker trips, and checkpoint appends (SSE framing:
//                  id:/event:/data:, ": keep-alive" comments while idle)
//
// Determinism boundary: nothing in the campaign reads back anything this
// server produces; mid-run scrapes observe prefix-merged totals that
// reconcile with (are <= ) the final --metrics-out export.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ecnprobe::http {

class ObsHttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start()
    /// Idle interval between SSE keep-alive comments.
    std::chrono::milliseconds keepalive{10000};
  };

  /// Snapshot providers, called per request from server threads; they
  /// must be safe to invoke while campaign workers run.
  struct Providers {
    std::function<std::string()> metrics;   ///< Prometheus text
    std::function<std::string()> progress;  ///< JSON object
  };

  /// Self-observation counters (satellite of the live plane): the
  /// serving path counts its own sessions, requests, and bytes.
  struct Stats {
    std::uint64_t sessions = 0;
    std::uint64_t requests = 0;
    std::uint64_t bytes_sent = 0;
  };

  ObsHttpServer(Options options, Providers providers);
  ~ObsHttpServer();
  ObsHttpServer(const ObsHttpServer&) = delete;
  ObsHttpServer& operator=(const ObsHttpServer&) = delete;

  /// Binds and starts the accept loop. On failure fills *error and
  /// returns false.
  bool start(std::string* error);
  void stop();
  bool running() const { return running_; }

  /// The bound port (resolves ephemeral port 0 requests).
  std::uint16_t port() const { return port_; }

  Stats stats() const;

 private:
  void accept_loop();
  void handle_client(int fd);
  bool send_all(int fd, const std::string& data);
  void serve_events(int fd);

  Options options_;
  Providers providers_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex clients_mutex_;
  std::vector<int> client_fds_;
  std::vector<std::thread> client_threads_;
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace ecnprobe::http
