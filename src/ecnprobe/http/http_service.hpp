// The HTTP side of the study. Pool operators are encouraged to run a web
// server that redirects to www.pool.ntp.org; the paper probes it twice per
// server per trace -- once with a normal SYN and once with an ECN-setup SYN
// -- recording whether the server responds and whether the SYN-ACK is an
// ECN-setup SYN-ACK (Section 3). HttpServerService is the pool-side
// redirector; HttpGetClient is the probing side.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ecnprobe/obs/metrics.hpp"
#include "ecnprobe/tcp/tcp.hpp"
#include "ecnprobe/wire/http.hpp"

namespace ecnprobe::http {

/// Minimal pool web server: answers any request with a configurable status
/// (default 302 redirect to the pool website), then closes.
class HttpServerService {
public:
  struct Config {
    int status = 302;
    std::string reason = "Found";
    std::string location = "http://www.pool.ntp.org/";
    std::string body;
    std::string server_header = "nginx";
  };

  HttpServerService(tcp::TcpStack& stack, Config config,
                    std::uint16_t port = wire::kHttpPort);

  /// Withdraw/restore the listener (pool churn: host up, web server down).
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t ecn_connections = 0;  ///< connections that negotiated ECN
    std::uint64_t bytes_sent = 0;       ///< response bytes handed to TCP
  };
  const Stats& stats() const { return stats_; }

  /// Mirrors the stats into `http_*` counter families so the serving
  /// plane observes itself in the campaign metrics. All services in a
  /// world share the same registry, so the families aggregate across the
  /// server pool. Simulated traffic is deterministic, so the mirrored
  /// counters stay inside the determinism contract.
  void set_metrics(obs::MetricsRegistry* registry);

private:
  struct Session;
  void install_listener();

  tcp::TcpStack& stack_;
  Config config_;
  std::uint16_t port_;
  bool enabled_ = true;
  Stats stats_;
  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* ecn_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
};

struct HttpGetResult {
  bool connected = false;        ///< handshake completed
  bool ecn_negotiated = false;   ///< SYN-ACK was an ECN-setup SYN-ACK
  bool got_response = false;     ///< a parseable HTTP response arrived
  int status = 0;
  std::string location;          ///< Location header if present
  tcp::CloseReason close_reason = tcp::CloseReason::Graceful;
};

/// One-shot `GET /` with optional ECN negotiation and an overall deadline.
class HttpGetClient {
public:
  using Handler = std::function<void(const HttpGetResult&)>;

  explicit HttpGetClient(tcp::TcpStack& stack) : stack_(stack) {}

  void get(wire::Ipv4Address server, bool want_ecn, Handler handler,
           std::uint16_t port = wire::kHttpPort,
           util::SimDuration deadline = util::SimDuration::seconds(15));

private:
  struct Pending;
  tcp::TcpStack& stack_;
};

}  // namespace ecnprobe::http
