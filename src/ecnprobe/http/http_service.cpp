#include "ecnprobe/http/http_service.hpp"

#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::http {

// One accepted connection: parse the request, emit the configured response,
// close. Owns itself via the shared_ptr captured in the handlers.
struct HttpServerService::Session : std::enable_shared_from_this<Session> {
  std::shared_ptr<tcp::TcpConnection> conn;
  wire::HttpParser parser{wire::HttpParser::Kind::Request};
  HttpServerService* service;
  bool responded = false;

  Session(std::shared_ptr<tcp::TcpConnection> c, HttpServerService* s)
      : conn(std::move(c)), service(s) {}

  void start() {
    auto self = shared_from_this();
    conn->set_receive_handler([self](std::span<const std::uint8_t> bytes) {
      self->on_bytes(bytes);
    });
    conn->set_close_handler([self](tcp::CloseReason) {
      // Keeps the session alive until teardown completes; nothing to do.
    });
  }

  void on_bytes(std::span<const std::uint8_t> bytes) {
    if (responded) return;
    if (!parser.feed(bytes)) {
      conn->abort();
      return;
    }
    if (!parser.complete()) return;
    responded = true;
    ++service->stats_.requests_served;
    if (service->requests_counter_ != nullptr) service->requests_counter_->inc();
    if (conn->ecn_negotiated()) {
      ++service->stats_.ecn_connections;
      if (service->ecn_counter_ != nullptr) service->ecn_counter_->inc();
    }

    wire::HttpResponse response;
    response.status = service->config_.status;
    response.reason = service->config_.reason;
    response.headers["Server"] = service->config_.server_header;
    if (service->config_.status >= 300 && service->config_.status < 400) {
      response.headers["Location"] = service->config_.location;
    }
    response.body = service->config_.body;
    const std::string bytes_out = response.serialize();
    service->stats_.bytes_sent += bytes_out.size();
    if (service->bytes_counter_ != nullptr) {
      service->bytes_counter_->inc(bytes_out.size());
    }
    conn->send(bytes_out);
    conn->close();
  }
};

HttpServerService::HttpServerService(tcp::TcpStack& stack, Config config,
                                     std::uint16_t port)
    : stack_(stack), config_(std::move(config)), port_(port) {
  install_listener();
}

void HttpServerService::install_listener() {
  stack_.listen(port_, [this](std::shared_ptr<tcp::TcpConnection> conn) {
    ++stats_.connections;
    if (connections_counter_ != nullptr) connections_counter_->inc();
    std::make_shared<Session>(std::move(conn), this)->start();
  });
}

void HttpServerService::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    connections_counter_ = requests_counter_ = ecn_counter_ = bytes_counter_ =
        nullptr;
    return;
  }
  connections_counter_ = registry->counter(
      "http_connections_total", {}, "TCP connections accepted by pool web servers");
  requests_counter_ = registry->counter(
      "http_requests_total", {}, "HTTP requests answered by pool web servers");
  ecn_counter_ = registry->counter(
      "http_ecn_connections_total", {},
      "accepted connections that negotiated ECN");
  bytes_counter_ = registry->counter(
      "http_bytes_sent_total", {}, "HTTP response bytes handed to TCP");
}

void HttpServerService::set_enabled(bool enabled) {
  if (enabled == enabled_) return;
  enabled_ = enabled;
  if (enabled) install_listener();
  else stack_.close_listener(port_);
}

// ---------------------------------------------------------------------------

struct HttpGetClient::Pending : std::enable_shared_from_this<HttpGetClient::Pending> {
  tcp::TcpStack& stack;
  wire::Ipv4Address server;
  std::uint16_t port;
  bool want_ecn;
  Handler handler;

  std::shared_ptr<tcp::TcpConnection> conn;
  wire::HttpParser parser{wire::HttpParser::Kind::Response};
  netsim::EventHandle deadline_timer;
  HttpGetResult result;
  bool done = false;

  Pending(tcp::TcpStack& s, wire::Ipv4Address addr, std::uint16_t p, bool ecn, Handler cb)
      : stack(s), server(addr), port(p), want_ecn(ecn), handler(std::move(cb)) {}

  void start(util::SimDuration deadline) {
    auto self = shared_from_this();
    deadline_timer = stack.host().network().sim().schedule(deadline, [self]() {
      if (self->done) return;
      if (self->conn) self->conn->abort();
      self->finish();
    });
    conn = stack.connect(server, port, want_ecn, [self](bool established) {
      self->on_connect(established);
    });
    conn->set_receive_handler(
        [self](std::span<const std::uint8_t> bytes) { self->on_bytes(bytes); });
    conn->set_close_handler([self](tcp::CloseReason reason) { self->on_close(reason); });
  }

  void on_connect(bool established) {
    if (done) return;
    result.connected = established;
    if (!established) {
      finish();
      return;
    }
    result.ecn_negotiated = conn->ecn_negotiated();
    wire::HttpRequest request;
    request.target = "/";
    request.headers["Host"] = server.to_string();
    request.headers["User-Agent"] = "ecnprobe/1.0";
    conn->send(request.serialize());
  }

  void on_bytes(std::span<const std::uint8_t> bytes) {
    if (done) return;
    if (!parser.feed(bytes)) {
      conn->abort();
      finish();
      return;
    }
    if (!parser.complete()) return;
    result.got_response = true;
    result.status = parser.response().status;
    const auto it = parser.response().headers.find("Location");
    if (it != parser.response().headers.end()) result.location = it->second;
    conn->close();
    finish();
  }

  void on_close(tcp::CloseReason reason) {
    if (done) return;
    result.close_reason = reason;
    finish();
  }

  void finish() {
    if (done) return;
    done = true;
    deadline_timer.cancel();
    if (handler) handler(result);
  }
};

void HttpGetClient::get(wire::Ipv4Address server, bool want_ecn, Handler handler,
                        std::uint16_t port, util::SimDuration deadline) {
  auto pending =
      std::make_shared<Pending>(stack_, server, port, want_ecn, std::move(handler));
  pending->start(deadline);
}

}  // namespace ecnprobe::http
