#include "ecnprobe/obs/telemetry.hpp"

#include <cerrno>
#include <cstdlib>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::obs {

namespace {

util::Error bad(const std::string& what) {
  return util::make_error("telemetry", what);
}

bool parse_double_strict(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool parse_int_strict(const std::string& tok, int* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || v < -(1l << 30) ||
      v > (1l << 30)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64_strict(const std::string& tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::string_view to_string(TelemetryMode mode) {
  return mode == TelemetryMode::Sketched ? "sketched" : "exact";
}

TelemetryConfig TelemetryConfig::resolved(std::uint64_t campaign_seed) const {
  TelemetryConfig out = *this;
  if (out.seed == 0) out.seed = campaign_seed;
  return out;
}

std::string TelemetryConfig::summary() const {
  if (!sketched()) return "exact";
  return util::strf(
      "sketched eps=%g delta=%g alpha=%g sample-every=%d reservoir=%d "
      "budget=%zuB seed=%llu",
      epsilon, delta, alpha, sample_every, reservoir, budget_bytes,
      static_cast<unsigned long long>(seed));
}

util::Expected<TelemetryConfig> TelemetryConfig::parse(
    const std::string& spec) {
  const auto parts = util::split(spec, ',');
  if (parts.empty() || parts[0].empty()) return bad("empty telemetry spec");
  TelemetryConfig config;
  const std::string mode{util::trim(parts[0])};
  if (mode == "exact") {
    config.mode = TelemetryMode::Exact;
  } else if (mode == "sketched") {
    config.mode = TelemetryMode::Sketched;
  } else {
    return bad("unknown telemetry mode '" + mode +
               "' (known: exact, sketched)");
  }
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string part{util::trim(parts[i])};
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      return bad("expected key=value, got '" + part + "'");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    double d = 0;
    int n = 0;
    if (key == "eps" || key == "epsilon") {
      if (!parse_double_strict(value, &d) || d <= 0.0 || d >= 1.0) {
        return bad("eps must be in (0, 1), got '" + value + "'");
      }
      config.epsilon = d;
    } else if (key == "delta") {
      if (!parse_double_strict(value, &d) || d <= 0.0 || d >= 1.0) {
        return bad("delta must be in (0, 1), got '" + value + "'");
      }
      config.delta = d;
    } else if (key == "alpha") {
      if (!parse_double_strict(value, &d) || d <= 0.0 || d > 1.0) {
        return bad("alpha must be in (0, 1], got '" + value + "'");
      }
      config.alpha = d;
    } else if (key == "sample-every") {
      if (!parse_int_strict(value, &n) || n < 1) {
        return bad("sample-every must be >= 1, got '" + value + "'");
      }
      config.sample_every = n;
    } else if (key == "reservoir") {
      if (!parse_int_strict(value, &n) || n < 0) {
        return bad("reservoir must be >= 0, got '" + value + "'");
      }
      config.reservoir = n;
    } else if (key == "budget-kb") {
      if (!parse_int_strict(value, &n) || n < 0) {
        return bad("budget-kb must be >= 0, got '" + value + "'");
      }
      config.budget_bytes = static_cast<std::size_t>(n) * 1024;
    } else if (key == "seed") {
      std::uint64_t s = 0;
      if (!parse_u64_strict(value, &s)) {
        return bad("bad seed '" + value + "'");
      }
      config.seed = s;
    } else {
      return bad("unknown telemetry key '" + key + "'");
    }
  }
  if (!config.sketched() && parts.size() > 1) {
    return bad("exact mode takes no options");
  }
  return config;
}

bool TelemetryDelta::empty() const {
  return counts.empty() && rtt_buckets.empty() && rtt_count == 0 &&
         rtt_sum_nanos == 0 && folded_records == 0 && sampled_exact == 0 &&
         exemplars.empty();
}

void TelemetryDelta::clear() { *this = TelemetryDelta{}; }

void TelemetryDelta::merge(const TelemetryDelta& other) {
  for (const auto& [key, n] : other.counts) counts[key] += n;
  for (const auto& [bucket, n] : other.rtt_buckets) rtt_buckets[bucket] += n;
  rtt_count += other.rtt_count;
  rtt_sum_nanos += other.rtt_sum_nanos;
  folded_records += other.folded_records;
  sampled_exact += other.sampled_exact;
  exemplars.insert(exemplars.end(), other.exemplars.begin(),
                   other.exemplars.end());
}

void TelemetryRecorder::arm(const TelemetryConfig& config) {
  config_ = config;
  armed_ = config.sketched();
  rtt_subbits_ = armed_ ? LogHistogram(config.alpha).subbits() : 0;
  sampled_ = true;
  trace_ = -1;
  current_.clear();
}

void TelemetryRecorder::disarm() {
  armed_ = false;
  sampled_ = true;
  current_.clear();
}

void TelemetryRecorder::begin_trace(int trace) {
  if (!armed_) return;
  trace_ = trace;
  sampled_ = config_.keeps_exact_trace(trace);
  reservoir_rng_ = util::Rng(util::derive_seed(
      util::derive_seed(config_.seed, "telemetry-reservoir"),
      static_cast<std::uint64_t>(trace)));
  current_.clear();
  current_.sampled_exact = sampled_ ? 1 : 0;
}

void TelemetryRecorder::on_drop(std::string_view layer, std::string_view cause,
                                const std::string& node) {
  if (!armed_) return;
  std::string key;
  key.reserve(8 + layer.size() + node.size() + cause.size());
  key.append("cause:").append(layer).append("/").append(cause);
  ++current_.counts[key];
  key.assign("hop:").append(node).append("/").append(cause);
  ++current_.counts[key];
  if (as_labeler_) {
    const std::string as = as_labeler_(node);
    if (!as.empty()) {
      key.assign("as:").append(as).append("/").append(cause);
      ++current_.counts[key];
    }
  }
  if (sampled_) return;  // the ledger keeps the exact record
  // This record exists only in the sketches; keep a reservoir-sampled
  // exemplar so reports can still show a concrete victim. Algorithm R
  // over the trace's folded drops, driven by the private telemetry Rng.
  ++current_.folded_records;
  const auto cap = static_cast<std::size_t>(config_.reservoir);
  if (cap == 0) return;
  TelemetryExemplar exemplar{trace_, std::string(layer), std::string(cause),
                             node};
  if (current_.exemplars.size() < cap) {
    current_.exemplars.push_back(std::move(exemplar));
    return;
  }
  const std::uint64_t slot =
      reservoir_rng_.next_below(current_.folded_records);
  if (slot < cap) current_.exemplars[slot] = std::move(exemplar);
}

void TelemetryRecorder::on_rewrite(std::string_view layer,
                                   std::string_view cause) {
  if (!armed_) return;
  std::string key;
  key.reserve(9 + layer.size() + cause.size());
  key.append("rewrite:").append(layer).append("/").append(cause);
  ++current_.counts[key];
}

void TelemetryRecorder::observe_rtt(util::SimDuration rtt) {
  if (!armed_) return;
  const std::int64_t nanos = rtt.count_nanos();
  ++current_.rtt_buckets[LogHistogram::bucket_index(nanos, rtt_subbits_)];
  ++current_.rtt_count;
  current_.rtt_sum_nanos += nanos;
}

TelemetryAggregate::TelemetryAggregate(const TelemetryConfig& config)
    : active_(config.sketched()),
      config_(config),
      counts_(config.sketched()
                  ? CountMinSketch(config.epsilon, config.delta, config.seed)
                  : CountMinSketch()),
      rtt_(config.sketched() ? LogHistogram(config.alpha) : LogHistogram()),
      budget_(config.budget_bytes),
      exemplar_rng_(util::derive_seed(config.seed, "exemplar-reservoir")) {
  if (active_) {
    budget_.charge_fixed(counts_.memory_bytes() + rtt_.memory_bytes());
  }
}

std::size_t TelemetryAggregate::exemplar_capacity() const {
  if (!active_ || config_.reservoir <= 0) return 0;
  return static_cast<std::size_t>(config_.reservoir) * 32;
}

void TelemetryAggregate::fold(const TelemetryDelta& delta) {
  if (!active_) return;
  ++traces_folded_;
  sampled_exact_ += delta.sampled_exact;
  folded_records_ += delta.folded_records;
  for (const auto& [key, n] : delta.counts) {
    counts_.add(key, n);
    if (!tracked_keys_.contains(key)) {
      // Directory entries are variable-size: ask the budget. A refused
      // key still counts in the sketch -- only enumeration loses it.
      if (budget_.try_charge(key.size() + 64)) {
        tracked_keys_.insert(key);
      } else {
        ++untracked_keys_;
      }
    }
  }
  for (const auto& [bucket, n] : delta.rtt_buckets) rtt_.add_bucket(bucket, n);
  rtt_.add_sum(delta.rtt_sum_nanos);
  // Campaign-level reservoir (Algorithm R): exemplar memory stays a fixed
  // multiple of the per-trace reservoir no matter how many traces fold.
  // Deterministic because folds -- and therefore the reservoir RNG draws
  // -- happen in plan order at any worker count.
  const std::size_t cap = exemplar_capacity();
  for (const auto& exemplar : delta.exemplars) {
    const std::size_t bytes = sizeof(TelemetryExemplar) +
                              exemplar.layer.size() + exemplar.cause.size() +
                              exemplar.node.size();
    ++exemplar_seen_;
    if (exemplars_.size() < cap) {
      if (budget_.try_charge(bytes)) exemplars_.push_back(exemplar);
      continue;
    }
    const auto slot = exemplar_rng_.next_below(exemplar_seen_);
    if (slot >= cap) continue;
    auto& old = exemplars_[slot];
    const std::size_t old_bytes = sizeof(TelemetryExemplar) + old.layer.size() +
                                  old.cause.size() + old.node.size();
    budget_.release(old_bytes);
    if (budget_.try_charge(bytes)) {
      old = exemplar;
    } else {
      budget_.charge_fixed(old_bytes);  // refused: keep the incumbent
    }
  }
}

std::size_t TelemetryAggregate::memory_bytes() const {
  return counts_.memory_bytes() + rtt_.memory_bytes() + budget_.used();
}

}  // namespace ecnprobe::obs
