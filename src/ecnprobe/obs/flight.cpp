#include "ecnprobe/obs/flight.hpp"

namespace ecnprobe::obs {

std::string_view to_string(SpanEvent event) {
  switch (event) {
    case SpanEvent::ProbeSent: return "probe-sent";
    case SpanEvent::HopForward: return "hop-forward";
    case SpanEvent::EcnRewritten: return "ecn-rewritten";
    case SpanEvent::PolicyDrop: return "policy-drop";
    case SpanEvent::IcmpGenerated: return "icmp-generated";
    case SpanEvent::ReplyReceived: return "reply-received";
    case SpanEvent::Timeout: return "timeout";
    case SpanEvent::Retransmit: return "retransmit";
  }
  return "?";
}

void FlightRecorder::arm(std::size_t capacity) {
  enabled_ = capacity > 0;
  armed_ = enabled_ && !suppressed_;
  capacity_ = capacity;
}

void FlightRecorder::disarm() {
  armed_ = false;
  enabled_ = false;
  suppressed_ = false;
  capacity_ = 0;
  flights_.clear();
  flight_arena_.reset();
  pending_.reset();
  ring_.clear();
  base_ = 0;
  dropped_ = 0;
}

void FlightRecorder::set_trace(int trace, util::SimTime epoch_base) {
  trace_ = trace;
  probe_ = -1;
  seq_ = 0;
  epoch_base_ = epoch_base;
  // The simulator is quiescent at trace boundaries: no packet from the old
  // trace is still in flight, so the table can restart. Restarting the id
  // counter keeps every worker's per-trace flight sequence identical. The
  // map must be cleared *before* the arena rewind poisons its nodes.
  flights_.clear();
  flight_arena_.reset();
  pending_.reset();
  next_flight_ = 1;
}

std::uint32_t FlightRecorder::begin_flight(bool retransmit) {
  if (!armed_) return 0;
  const std::uint32_t id = next_flight_++;
  flights_[id] = FlightEntry{context(), 0xffffffff};
  pending_ = PendingSend{id, retransmit, false};
  return id;
}

void FlightRecorder::stage_reply(std::uint32_t flight) {
  if (!armed_ || flight == 0) return;
  pending_ = PendingSend{flight, false, true};
}

std::optional<FlightRecorder::PendingSend> FlightRecorder::take_pending() {
  auto out = pending_;
  pending_.reset();
  return out;
}

void FlightRecorder::set_flight_origin(std::uint32_t flight, std::uint32_t node_id) {
  const auto it = flights_.find(flight);
  if (it != flights_.end()) it->second.origin_node = node_id;
}

bool FlightRecorder::flight_origin_is(std::uint32_t flight, std::uint32_t node_id) const {
  const auto it = flights_.find(flight);
  return it != flights_.end() && it->second.origin_node == node_id;
}

void FlightRecorder::record(std::uint32_t flight, SpanEvent type, util::SimTime time,
                            Layer layer, std::string_view node, std::uint32_t node_addr,
                            std::string detail, std::vector<std::uint8_t> wire) {
  if (!armed_ || flight == 0) return;
  const auto it = flights_.find(flight);
  if (it == flights_.end()) return;  // straggler from before the trace boundary
  FlightEvent event;
  event.key = it->second.key;
  event.type = type;
  event.time = util::SimTime::zero() + (time - epoch_base_);
  event.layer = layer;
  event.node.assign(node);
  event.node_addr = node_addr;
  event.detail = std::move(detail);
  event.wire = std::move(wire);
  push(std::move(event));
}

void FlightRecorder::record(std::uint32_t flight, SpanEvent type, util::SimTime time,
                            Layer layer, std::string_view node, std::uint32_t node_addr,
                            std::string detail, std::span<const std::uint8_t> wire) {
  record(flight, type, time, layer, node, node_addr, std::move(detail),
         std::vector<std::uint8_t>(wire.begin(), wire.end()));
}

void FlightRecorder::record_here(SpanEvent type, util::SimTime time, Layer layer,
                                 std::string_view node, std::uint32_t node_addr,
                                 std::string detail) {
  if (!armed_) return;
  FlightEvent event;
  event.key = context();
  event.type = type;
  event.time = util::SimTime::zero() + (time - epoch_base_);
  event.layer = layer;
  event.node.assign(node);
  event.node_addr = node_addr;
  event.detail = std::move(detail);
  push(std::move(event));
}

void FlightRecorder::push(FlightEvent event) {
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++base_;
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

std::vector<FlightEvent> FlightRecorder::collect_since(std::size_t mark) const {
  std::vector<FlightEvent> out;
  const std::size_t from = mark > base_ ? mark - base_ : 0;
  if (from >= ring_.size()) return out;
  out.reserve(ring_.size() - from);
  for (std::size_t i = from; i < ring_.size(); ++i) out.push_back(ring_[i]);
  return out;
}

}  // namespace ecnprobe::obs
