// Budgeted telemetry: the campaign-selectable fidelity knob between the
// exact observability pipeline (every drop a ledger record, every probe a
// flight) and a sketched one whose memory is O(servers), not
// O(servers x traces).
//
// Two-level design, mirroring the metrics/ledger delta machinery:
//
//  * TelemetryRecorder lives in each world's Observability and observes
//    drop/rewrite/RTT events for the CURRENT trace into a TelemetryDelta
//    -- small sparse exact maps, cleared at each trace epoch. Recording
//    is observation-only: it makes no simulation RNG draws (the exemplar
//    reservoir runs its own Rng keyed on (config.seed, trace)), so
//    arming it cannot perturb outcomes.
//
//  * TelemetryAggregate lives at the campaign level and folds each
//    trace's delta -- in plan order -- into a CountMinSketch (keyed
//    cause/hop/AS counters with epsilon/delta bounds), a LogHistogram
//    (RTT quantiles with relative-error alpha), a budget-capped tracked
//    key directory, and reservoir exemplars. Every fold is commutative
//    integer addition applied in a deterministic order, so sequential
//    and --workers N campaigns produce bit-identical aggregates.
//
// Head-based trace sampling: every sample_every-th trace keeps exact
// records (ledger rows, flight events); the rest fold into the sketches
// only. Exact mode (the default) leaves the recorder disarmed -- one
// bool test on the hot path, zero deltas, byte-identical output to a
// build without this layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ecnprobe/obs/budget.hpp"
#include "ecnprobe/obs/loghist.hpp"
#include "ecnprobe/obs/sketch.hpp"
#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::obs {

enum class TelemetryMode { Exact, Sketched };

std::string_view to_string(TelemetryMode mode);

// Parsed from --telemetry "exact" | "sketched[,key=value...]". All
// estimator behaviour is a pure function of this config plus the seed and
// the trace index.
struct TelemetryConfig {
  TelemetryMode mode = TelemetryMode::Exact;
  double epsilon = 0.001;      // CMS overcount bound, fraction of stream total
  double delta = 0.01;         // probability any one estimate exceeds the bound
  double alpha = 0.01;         // RTT histogram relative quantile error
  int sample_every = 64;       // trace kept exact iff index % sample_every == 0
  int reservoir = 8;           // exemplar drop records kept per folded trace
  std::size_t budget_bytes = std::size_t{1} << 20;  // key directory + exemplars
  std::uint64_t seed = 0;      // 0 = inherit the campaign seed

  bool sketched() const { return mode == TelemetryMode::Sketched; }
  bool keeps_exact_trace(int trace) const {
    return !sketched() || sample_every <= 1 || trace % sample_every == 0;
  }
  // The sketch/reservoir seed: explicit seed if set, else the campaign's.
  TelemetryConfig resolved(std::uint64_t campaign_seed) const;
  std::string summary() const;

  // Spec grammar: "exact" or "sketched" optionally followed by
  // ",eps=F,delta=F,alpha=F,sample-every=N,reservoir=N,budget-kb=N,seed=N".
  static util::Expected<TelemetryConfig> parse(const std::string& spec);
};

// One drop record kept verbatim from a folded (not exactly-sampled)
// trace, chosen by the per-trace reservoir: enough to show a concrete
// victim in reports whose ledger rows were sketched away.
struct TelemetryExemplar {
  int trace = -1;
  std::string layer;
  std::string cause;
  std::string node;

  bool operator==(const TelemetryExemplar&) const = default;
};

// Per-trace telemetry observations: sparse, exact, small. Journaled with
// the rest of the ObsSnapshot delta so kill-and-resume folds identically.
struct TelemetryDelta {
  // Composite keys: "cause:<layer>/<cause>", "hop:<node>/<cause>",
  // "as:<AS>/<cause>", "rewrite:<layer>/<cause>".
  std::map<std::string, std::uint64_t> counts;
  std::map<std::int32_t, std::uint64_t> rtt_buckets;
  std::uint64_t rtt_count = 0;
  std::int64_t rtt_sum_nanos = 0;
  std::uint64_t folded_records = 0;  // drops represented only in sketches
  std::uint64_t sampled_exact = 0;   // 1 when this trace kept exact records
  std::vector<TelemetryExemplar> exemplars;

  bool empty() const;
  void clear();
  void merge(const TelemetryDelta& other);

  bool operator==(const TelemetryDelta&) const = default;
};

// The per-world observer. Disarmed (exact mode) every hook is a single
// bool test.
class TelemetryRecorder {
 public:
  // Maps a ledger node name (usually an IPv4 address string) to an AS
  // label ("AS3320"); empty result skips the per-AS key.
  using AsLabeler = std::function<std::string(const std::string& node)>;

  void arm(const TelemetryConfig& config);
  void disarm();
  bool armed() const { return armed_; }
  const TelemetryConfig& config() const { return config_; }
  int rtt_subbits() const { return rtt_subbits_; }

  void set_as_labeler(AsLabeler labeler) { as_labeler_ = std::move(labeler); }

  // Starts a trace epoch: clears the delta, decides head-based sampling,
  // reseeds the private exemplar reservoir from (config.seed, trace).
  void begin_trace(int trace);
  // True when the current trace keeps exact ledger/flight records.
  bool trace_sampled_exact() const { return !armed_ || sampled_; }

  void on_drop(std::string_view layer, std::string_view cause,
               const std::string& node);
  void on_rewrite(std::string_view layer, std::string_view cause);
  void observe_rtt(util::SimDuration rtt);

  // Non-destructive copy of the current trace's delta (mirrors the
  // metrics baseline/delta convention).
  TelemetryDelta collect_delta() const { return current_; }

 private:
  bool armed_ = false;
  bool sampled_ = true;
  int trace_ = -1;
  int rtt_subbits_ = 0;
  TelemetryConfig config_;
  TelemetryDelta current_;
  util::Rng reservoir_rng_{0};
  AsLabeler as_labeler_;
};

// The campaign-level estimator state: fold per-trace deltas in plan
// order; read estimates, quantiles, and budget self-metrics at the end.
class TelemetryAggregate {
 public:
  // Inactive aggregate: fold() ignores (empty) deltas, exports nothing.
  TelemetryAggregate() = default;
  // config must already be resolved() -- a zero seed here is a bug.
  explicit TelemetryAggregate(const TelemetryConfig& config);

  bool active() const { return active_; }
  const TelemetryConfig& config() const { return config_; }

  void fold(const TelemetryDelta& delta);

  std::uint64_t estimate(std::string_view key) const {
    return counts_.estimate(key);
  }
  // ceil(epsilon * stream total): the one-sided overcount bound.
  std::uint64_t error_bound() const { return counts_.error_bound(); }

  const CountMinSketch& counts() const { return counts_; }
  const LogHistogram& rtt() const { return rtt_; }
  const TelemetryBudget& budget() const { return budget_; }
  // Budget-capped directory of keys seen (for export enumeration; the
  // sketch itself answers any key).
  const std::set<std::string>& tracked_keys() const { return tracked_keys_; }
  std::uint64_t untracked_keys() const { return untracked_keys_; }
  const std::vector<TelemetryExemplar>& exemplars() const {
    return exemplars_;
  }
  // Campaign-level exemplar capacity: a fixed multiple of the per-trace
  // reservoir, so exemplar memory is O(1) in the trace count.
  std::size_t exemplar_capacity() const;
  std::uint64_t exemplars_seen() const { return exemplar_seen_; }

  std::uint64_t traces_folded() const { return traces_folded_; }
  std::uint64_t sampled_exact_traces() const { return sampled_exact_; }
  std::uint64_t folded_records() const { return folded_records_; }
  std::size_t memory_bytes() const;

 private:
  bool active_ = false;
  TelemetryConfig config_;
  CountMinSketch counts_;
  LogHistogram rtt_;
  TelemetryBudget budget_;
  std::set<std::string> tracked_keys_;
  std::uint64_t untracked_keys_ = 0;
  std::vector<TelemetryExemplar> exemplars_;
  util::Rng exemplar_rng_{0};
  std::uint64_t exemplar_seen_ = 0;
  std::uint64_t traces_folded_ = 0;
  std::uint64_t sampled_exact_ = 0;
  std::uint64_t folded_records_ = 0;
};

}  // namespace ecnprobe::obs
