#include "ecnprobe/obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ecnprobe::obs {

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

// -- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be increasing");
}

void Histogram::observe(double value) {
  // Fixed-point milli-units: exact, commutative accumulation so that
  // per-trace snapshot deltas merge to the same bytes in any order.
  sum_milli_.fetch_add(static_cast<std::int64_t>(std::llround(value * 1000.0)),
                       std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

// -- SampleValue -------------------------------------------------------------

bool SampleValue::is_zero() const {
  if (counter != 0 || gauge != 0 || count != 0 || sum_milli != 0) return false;
  return std::all_of(buckets.begin(), buckets.end(),
                     [](std::uint64_t b) { return b == 0; });
}

void SampleValue::add(const SampleValue& other) {
  counter += other.counter;
  gauge += other.gauge;
  count += other.count;
  sum_milli += other.sum_milli;
  if (buckets.size() < other.buckets.size()) buckets.resize(other.buckets.size());
  for (std::size_t i = 0; i < other.buckets.size(); ++i) buckets[i] += other.buckets[i];
}

SampleValue SampleValue::minus(const SampleValue& base) const {
  SampleValue out = *this;
  out.counter -= base.counter;
  out.gauge -= base.gauge;
  out.count -= base.count;
  out.sum_milli -= base.sum_milli;
  for (std::size_t i = 0; i < base.buckets.size() && i < out.buckets.size(); ++i) {
    out.buckets[i] -= base.buckets[i];
  }
  return out;
}

// -- MetricsSnapshot ---------------------------------------------------------

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, fam] : other.families) {
    auto [it, inserted] = families.try_emplace(name, fam);
    if (inserted) continue;
    // Histograms from registries that disagree on the bucket layout would
    // add bucket vectors element-wise into nonsense; fail loudly instead.
    if (!it->second.bounds.empty() && !fam.bounds.empty() &&
        it->second.bounds != fam.bounds) {
      throw std::invalid_argument(
          "MetricsSnapshot::merge: histogram '" + name +
          "' has mismatched bucket bounds across registries");
    }
    if (it->second.bounds.empty()) it->second.bounds = fam.bounds;
    for (const auto& [labels, value] : fam.samples) {
      auto [sit, fresh] = it->second.samples.try_emplace(labels, value);
      if (!fresh) sit->second.add(value);
    }
  }
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, fam] : families) {
    const auto base_fam = base.families.find(name);
    FamilySnapshot delta;
    delta.kind = fam.kind;
    delta.help = fam.help;
    delta.bounds = fam.bounds;
    for (const auto& [labels, value] : fam.samples) {
      SampleValue d = value;
      if (base_fam != base.families.end()) {
        const auto base_sample = base_fam->second.samples.find(labels);
        if (base_sample != base_fam->second.samples.end()) {
          d = value.minus(base_sample->second);
        }
      }
      if (!d.is_zero()) delta.samples.emplace(labels, std::move(d));
    }
    if (!delta.samples.empty()) out.families.emplace(name, std::move(delta));
  }
  return out;
}

// -- MetricsRegistry ---------------------------------------------------------

MetricsRegistry::Family& MetricsRegistry::family_locked(const std::string& name,
                                                        MetricKind kind,
                                                        const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    assert(it->second.kind == kind && "metric family re-registered with a different kind");
    if (it->second.help.empty()) it->second.help = help;
  }
  return it->second;
}

Counter* MetricsRegistry::counter(const std::string& family, const LabelSet& labels,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& fam = family_locked(family, MetricKind::Counter, help);
  auto [it, inserted] = fam.counters.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& family, const LabelSet& labels,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& fam = family_locked(family, MetricKind::Gauge, help);
  auto [it, inserted] = fam.gauges.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& family,
                                      std::vector<double> bounds, const LabelSet& labels,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& fam = family_locked(family, MetricKind::Histogram, help);
  if (fam.bounds.empty()) fam.bounds = bounds;
  auto [it, inserted] = fam.histograms.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Histogram>(fam.bounds);
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, fam] : families_) {
    FamilySnapshot snap;
    snap.kind = fam.kind;
    snap.help = fam.help;
    snap.bounds = fam.bounds;
    for (const auto& [labels, cell] : fam.counters) {
      SampleValue v;
      v.counter = cell->value();
      snap.samples.emplace(labels, std::move(v));
    }
    for (const auto& [labels, cell] : fam.gauges) {
      SampleValue v;
      v.gauge = cell->value();
      snap.samples.emplace(labels, std::move(v));
    }
    for (const auto& [labels, cell] : fam.histograms) {
      SampleValue v;
      v.count = cell->count();
      v.sum_milli = cell->sum_milli();
      v.buckets.resize(fam.bounds.size() + 1);
      for (std::size_t i = 0; i < v.buckets.size(); ++i) v.buckets[i] = cell->bucket_count(i);
      snap.samples.emplace(labels, std::move(v));
    }
    out.families.emplace(name, std::move(snap));
  }
  return out;
}

}  // namespace ecnprobe::obs
