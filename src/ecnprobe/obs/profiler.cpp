#include "ecnprobe/obs/profiler.hpp"

#include <cstdio>
#include <functional>
#include <thread>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::obs {

Profiler& Profiler::process() {
  static Profiler profiler;
  return profiler;
}

void Profiler::set_enabled(bool enabled) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled && epoch_ == std::chrono::steady_clock::time_point{}) {
      epoch_ = std::chrono::steady_clock::now();
    }
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

Profiler::Scope::Scope(const char* stage)
    : stage_(stage), active_(Profiler::process().enabled()) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

Profiler::Scope::~Scope() {
  if (!active_) return;
  Profiler::process().record(stage_, start_, std::chrono::steady_clock::now());
}

void Profiler::record(const char* stage,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end) {
  const auto nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count();
  const std::uint64_t thread =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<std::mutex> lock(mutex_);
  auto& stats = stages_[stage];
  ++stats.count;
  stats.total_nanos += nanos;
  if (nanos > stats.max_nanos) stats.max_nanos = nanos;
  if (slices_.size() < kMaxSlices) {
    Slice slice;
    slice.thread = thread;
    slice.start_nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
            .count();
    slice.duration_nanos = nanos;
    slice.stage = stage;
    slices_.push_back(std::move(slice));
  } else {
    ++slices_dropped_;
  }
}

void Profiler::gauge_max(const std::string& name, std::int64_t value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_[name] = value;
  } else if (value > it->second) {
    it->second = value;
  }
}

std::map<std::string, Profiler::StageStats> Profiler::stages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

std::map<std::string, std::int64_t> Profiler::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

std::string Profiler::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"stages\":{";
  bool first = true;
  for (const auto& [stage, stats] : stages_) {
    if (!first) out += ",";
    first = false;
    out += util::strf(
        "\"%s\":{\"count\":%llu,\"total_nanos\":%lld,\"max_nanos\":%lld}",
        stage.c_str(), static_cast<unsigned long long>(stats.count),
        static_cast<long long>(stats.total_nanos),
        static_cast<long long>(stats.max_nanos));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += util::strf("\"%s\":%lld", name.c_str(),
                      static_cast<long long>(value));
  }
  out += util::strf("},\"timeline_slices\":%zu,\"timeline_dropped\":%llu}",
                    slices_.size(),
                    static_cast<unsigned long long>(slices_dropped_));
  return out;
}

bool Profiler::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(f, "{\"traceEvents\":[");
  // Stable thread rows: map each hashed id to a small tid in first-seen
  // order so the trace viewer shows "worker 0..N" style lanes.
  std::map<std::uint64_t, int> tids;
  bool first = true;
  for (const auto& slice : slices_) {
    auto [it, inserted] = tids.emplace(slice.thread,
                                       static_cast<int>(tids.size()));
    if (!first) std::fprintf(f, ",");
    first = false;
    std::fprintf(f,
                 "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                 "\"ts\":%.3f,\"dur\":%.3f}",
                 slice.stage.c_str(), it->second,
                 static_cast<double>(slice.start_nanos) / 1000.0,
                 static_cast<double>(slice.duration_nanos) / 1000.0);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_ = std::chrono::steady_clock::now();
  stages_.clear();
  gauges_.clear();
  slices_.clear();
  slices_dropped_ = 0;
}

}  // namespace ecnprobe::obs
