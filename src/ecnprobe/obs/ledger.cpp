#include "ecnprobe/obs/ledger.hpp"

namespace ecnprobe::obs {

std::string_view to_string(Layer layer) {
  switch (layer) {
    case Layer::Link: return "link";
    case Layer::Policy: return "policy";
    case Layer::Router: return "router";
    case Layer::Host: return "host";
    case Layer::App: return "app";
    case Layer::Measure: return "measure";
  }
  return "?";
}

std::string_view to_string(DropCause cause) {
  switch (cause) {
    case DropCause::LinkLoss: return "link-loss";
    case DropCause::LinkDown: return "link-down";
    case DropCause::Greylist: return "greylist";
    case DropCause::AqmEarly: return "aqm-early-drop";
    case DropCause::AqmOverflow: return "aqm-overflow";
    case DropCause::CongestionLoss: return "congestion-loss";
    case DropCause::EctUdpFilter: return "ect-udp-filter";
    case DropCause::EctAnyFilter: return "ect-any-filter";
    case DropCause::TosFilter: return "tos-filter";
    case DropCause::MatchFilter: return "match-filter";
    case DropCause::PolicyOther: return "policy-other";
    case DropCause::TtlExpired: return "ttl-expired";
    case DropCause::Unroutable: return "unroutable";
    case DropCause::NoSocket: return "no-socket";
    case DropCause::BadChecksum: return "bad-checksum";
    case DropCause::ServerOffline: return "server-offline";
    case DropCause::RateLimited: return "rate-limited";
    case DropCause::ProbeTimeout: return "probe-timeout";
    case DropCause::CircuitOpen: return "circuit-open";
    case DropCause::WatchdogCancelled: return "watchdog-cancelled";
    case DropCause::IcmpBlackhole: return "icmp-blackhole";
    case DropCause::RouteFlap: return "route-flap";
    case DropCause::TraceQuarantined: return "trace-quarantined";
  }
  return "?";
}

std::string_view to_string(RewriteCause cause) {
  switch (cause) {
    case RewriteCause::Bleached: return "bleached";
    case RewriteCause::CeMarked: return "ce-marked";
  }
  return "?";
}

// -- LedgerSnapshot ----------------------------------------------------------

std::uint64_t LedgerSnapshot::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& [key, n] : drops) total += n;
  return total;
}

std::uint64_t LedgerSnapshot::total_rewrites() const {
  std::uint64_t total = 0;
  for (const auto& [key, n] : rewrites) total += n;
  return total;
}

std::uint64_t LedgerSnapshot::drops_for_cause(std::string_view cause) const {
  std::uint64_t total = 0;
  for (const auto& [key, n] : drops) {
    if (key.second == cause) total += n;
  }
  return total;
}

void LedgerSnapshot::merge(const LedgerSnapshot& other) {
  for (const auto& [key, n] : other.drops) drops[key] += n;
  for (const auto& [key, n] : other.rewrites) rewrites[key] += n;
}

// -- DropLedger --------------------------------------------------------------

void DropLedger::begin_trace(int index) {
  trace_ = index;
  if (telemetry_ != nullptr && telemetry_->armed()) {
    // Sketched mode: the previous trace's records have been folded into
    // the campaign aggregate already; dropping them here keeps a worker's
    // ledger bounded by one trace instead of the whole campaign.
    drops_.clear();
    rewrites_.clear();
  }
}

void DropLedger::record_drop(Layer layer, DropCause cause, std::string node) {
  if (timeseries_ != nullptr && timeseries_->armed()) {
    // Series count every drop regardless of the telemetry sampling
    // decision; the window index is sim-time, so this stays deterministic.
    timeseries_->on_drop(to_string(layer), to_string(cause));
  }
  if (telemetry_ != nullptr && telemetry_->armed()) {
    telemetry_->on_drop(to_string(layer), to_string(cause), node);
    // Unsampled traces live only in the sketches (plus a reservoir
    // exemplar kept by the recorder); sampled traces keep the exact row
    // for autopsies but skip the registry mirror -- in sketched mode the
    // estimates replace `ecn_drops_total`, and mirroring a biased subset
    // would misread as a truth counter.
    if (!telemetry_->trace_sampled_exact()) return;
    drops_.push_back(DropRecord{trace_, layer, cause, std::move(node)});
    return;
  }
  const auto li = static_cast<std::size_t>(layer);
  const auto ci = static_cast<std::size_t>(cause);
  Counter*& mirror = drop_counters_[li][ci];
  if (mirror == nullptr) {
    mirror = registry_->counter(
        "ecn_drops_total",
        {{"layer", std::string(to_string(layer))}, {"cause", std::string(to_string(cause))}},
        "packets discarded, by layer and attributed cause");
  }
  mirror->inc();
  drops_.push_back(DropRecord{trace_, layer, cause, std::move(node)});
}

void DropLedger::record_rewrite(Layer layer, RewriteCause cause, std::string node) {
  if (timeseries_ != nullptr && timeseries_->armed()) {
    timeseries_->on_rewrite(to_string(layer), to_string(cause));
  }
  if (telemetry_ != nullptr && telemetry_->armed()) {
    telemetry_->on_rewrite(to_string(layer), to_string(cause));
    if (!telemetry_->trace_sampled_exact()) return;
    rewrites_.push_back(RewriteRecord{trace_, layer, cause, std::move(node)});
    return;
  }
  const auto li = static_cast<std::size_t>(layer);
  const auto ci = static_cast<std::size_t>(cause);
  Counter*& mirror = rewrite_counters_[li][ci];
  if (mirror == nullptr) {
    mirror = registry_->counter(
        "ecn_rewrites_total",
        {{"layer", std::string(to_string(layer))}, {"cause", std::string(to_string(cause))}},
        "in-flight ECN codepoint rewrites, by layer and cause");
  }
  mirror->inc();
  rewrites_.push_back(RewriteRecord{trace_, layer, cause, std::move(node)});
}

LedgerSnapshot DropLedger::aggregate(std::size_t drop_from, std::size_t rewrite_from) const {
  LedgerSnapshot out;
  for (std::size_t i = drop_from; i < drops_.size(); ++i) {
    const auto& r = drops_[i];
    out.drops[{std::string(to_string(r.layer)), std::string(to_string(r.cause))}] += 1;
  }
  for (std::size_t i = rewrite_from; i < rewrites_.size(); ++i) {
    const auto& r = rewrites_[i];
    out.rewrites[{std::string(to_string(r.layer)), std::string(to_string(r.cause))}] += 1;
  }
  return out;
}

void DropLedger::clear() {
  trace_ = -1;
  drops_.clear();
  rewrites_.clear();
}

Observability& Observability::process() {
  static Observability instance;
  return instance;
}

}  // namespace ecnprobe::obs
