// The drop-attribution ledger: every packet the simulator discards or
// ECN-rewrites leaves a record of {trace idx, node, layer, cause}. This is
// the "why did that probe fail" companion to the paper's outcome figures:
// Figure 2's unreachable cells, Figure 3's ECT-dependent losses, and
// Figure 4's bleaching boundaries all have a concrete cause here.
//
// The ledger is single-threaded by design: it belongs to one world (one
// simulator thread). Parallel campaign workers each own a private ledger
// inside their world clone; per-trace slices are merged in plan order, so
// the combined cause totals are byte-identical to a sequential run.
//
// Every record is also mirrored into the owning MetricsRegistry as
// `ecn_drops_total{layer,cause}` / `ecn_rewrites_total{layer,cause}`
// counters, so exports and the loss-autopsy table need no special casing.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ecnprobe/obs/flight.hpp"
#include "ecnprobe/obs/layer.hpp"
#include "ecnprobe/obs/metrics.hpp"
#include "ecnprobe/obs/telemetry.hpp"
#include "ecnprobe/obs/timeseries.hpp"

namespace ecnprobe::obs {

/// Why the packet died (or was rewritten).
enum class DropCause : std::uint8_t {
  // Link
  LinkLoss,
  LinkDown,
  // Policy verdicts
  Greylist,
  AqmEarly,      ///< RED early drop (queue under pressure, ECN off)
  AqmOverflow,   ///< queue full
  CongestionLoss,
  EctUdpFilter,  ///< firewall dropping ECT-marked UDP
  EctAnyFilter,  ///< filter dropping any ECT traffic
  TosFilter,     ///< ToS-sensitive access link
  MatchFilter,   ///< address/port match rule (Figure 3b oddities)
  PolicyOther,
  // Router
  TtlExpired,
  Unroutable,
  // Host
  NoSocket,
  BadChecksum,
  // App
  ServerOffline,
  RateLimited,
  // Measure
  ProbeTimeout,
  CircuitOpen,        ///< probe skipped: the destination's breaker was open
  WatchdogCancelled,  ///< server probe cancelled at the watchdog deadline
  // Chaos (injected faults)
  IcmpBlackhole,     ///< fault plan eating ICMP error traffic at a router
  RouteFlap,         ///< mid-path link in its flap-down window
  TraceQuarantined,  ///< whole trace thrown away by the campaign executor
};
inline constexpr std::size_t kDropCauseCount = 23;

enum class RewriteCause : std::uint8_t {
  Bleached,  ///< ECT/CE codepoint stripped to not-ECT
  CeMarked,  ///< AQM congestion-experienced mark
};
inline constexpr std::size_t kRewriteCauseCount = 2;

std::string_view to_string(DropCause cause);
std::string_view to_string(RewriteCause cause);

/// One discarded packet.
struct DropRecord {
  int trace = -1;  ///< campaign trace index, -1 outside any trace epoch
  Layer layer = Layer::Link;
  DropCause cause = DropCause::LinkLoss;
  std::string node;  ///< hop where it died (node name or server address)
};

/// One ECN-codepoint rewrite observed in flight.
struct RewriteRecord {
  int trace = -1;
  Layer layer = Layer::Policy;
  RewriteCause cause = RewriteCause::Bleached;
  std::string node;
};

/// Aggregated ledger slice: cause x layer totals plus per-node detail.
/// Plain data, mergeable, deterministic encoding (maps throughout).
struct LedgerSnapshot {
  std::map<std::pair<std::string, std::string>, std::uint64_t> drops;     ///< {layer,cause} -> n
  std::map<std::pair<std::string, std::string>, std::uint64_t> rewrites;  ///< {layer,cause} -> n

  std::uint64_t total_drops() const;
  std::uint64_t total_rewrites() const;
  std::uint64_t drops_for_cause(std::string_view cause) const;
  void merge(const LedgerSnapshot& other);
};

class DropLedger {
public:
  explicit DropLedger(MetricsRegistry* registry) : registry_(registry) {}

  /// Stamps subsequent records with the given campaign trace index.
  void set_trace(int index) { trace_ = index; }
  int trace() const { return trace_; }

  /// Trace-epoch entry point: stamps the index and, when sketched
  /// telemetry is armed, releases the previous trace's record vectors so
  /// a worker's ledger stays O(one trace), not O(campaign). Call BEFORE
  /// the world snapshots its obs baseline.
  void begin_trace(int index);

  /// Sketched-mode wiring: when set and armed, records are forwarded to
  /// the telemetry recorder; only exactly-sampled traces keep ledger rows
  /// and registry mirror counters.
  void set_telemetry(TelemetryRecorder* telemetry) { telemetry_ = telemetry; }

  /// Sim-time-series wiring: when set and armed, every record is also
  /// bucketed into the current sim-time window (independent of the
  /// telemetry sampling decision -- series count everything).
  void set_timeseries(TimeSeriesRecorder* timeseries) {
    timeseries_ = timeseries;
  }

  void record_drop(Layer layer, DropCause cause, std::string node);
  void record_rewrite(Layer layer, RewriteCause cause, std::string node);

  const std::vector<DropRecord>& drops() const { return drops_; }
  const std::vector<RewriteRecord>& rewrites() const { return rewrites_; }

  /// Aggregates records [drop_from, rewrite_from) .. end -- the campaign
  /// executors use this to slice out one trace's worth of attribution.
  LedgerSnapshot aggregate(std::size_t drop_from = 0, std::size_t rewrite_from = 0) const;

  void clear();

private:
  MetricsRegistry* registry_;
  TelemetryRecorder* telemetry_ = nullptr;
  TimeSeriesRecorder* timeseries_ = nullptr;
  int trace_ = -1;
  std::vector<DropRecord> drops_;
  std::vector<RewriteRecord> rewrites_;
  // Mirror counters, resolved lazily per (layer, cause).
  std::array<std::array<Counter*, kDropCauseCount>, kLayerCount> drop_counters_{};
  std::array<std::array<Counter*, kRewriteCauseCount>, kLayerCount> rewrite_counters_{};
};

/// The bundle the simulator layers see: one registry, one ledger, one
/// flight recorder. Network/World wire a world-private instance through
/// the datapath; code running outside a world (unit tests poking a bare
/// Network) falls back to the process-wide instance. The recorder ships
/// disarmed: until World arms it, every datapath touch is one bool test.
struct Observability {
  Observability() : ledger(&registry) {
    ledger.set_telemetry(&telemetry);
    ledger.set_timeseries(&timeseries);
  }
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  static Observability& process();

  MetricsRegistry registry;
  DropLedger ledger;
  FlightRecorder recorder;
  TelemetryRecorder telemetry;    ///< disarmed in exact mode: one bool test
  TimeSeriesRecorder timeseries;  ///< disarmed by default: one bool test
};

/// Everything one campaign produced: the metrics delta plus the ledger
/// slice plus the (empty in exact mode) telemetry delta, all
/// deterministic under sharding.
struct ObsSnapshot {
  MetricsSnapshot metrics;
  LedgerSnapshot ledger;
  TelemetryDelta telemetry;
  TimeSeriesDelta timeseries;

  void merge(const ObsSnapshot& other) {
    metrics.merge(other.metrics);
    ledger.merge(other.ledger);
    telemetry.merge(other.telemetry);
    timeseries.merge(other.timeseries);
  }
};

}  // namespace ecnprobe::obs
