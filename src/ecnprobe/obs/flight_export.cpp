#include "ecnprobe/obs/flight_export.hpp"

#include <cinttypes>
#include <fstream>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::obs {

namespace {

// pcapng readers detect byte order from the SHB magic; we emit
// little-endian explicitly for a stable on-disk format (same choice as the
// classic pcap writer in netsim).
void put_u16(std::ostream& os, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  os.write(bytes, 2);
}

void put_u32(std::ostream& os, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                         static_cast<char>((v >> 16) & 0xff),
                         static_cast<char>(v >> 24)};
  os.write(bytes, 4);
}

void put_padded(std::ostream& os, const void* data, std::size_t size) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  static const char zeros[4] = {0, 0, 0, 0};
  const std::size_t pad = (4 - size % 4) % 4;
  if (pad > 0) os.write(zeros, static_cast<std::streamsize>(pad));
}

std::size_t padded(std::size_t size) { return size + (4 - size % 4) % 4; }

constexpr std::uint32_t kShbType = 0x0a0d0d0a;
constexpr std::uint32_t kShbMagic = 0x1a2b3c4d;
constexpr std::uint32_t kIdbType = 0x00000001;
constexpr std::uint32_t kEpbType = 0x00000006;
constexpr std::uint32_t kLinktypeRaw = 101;  // packets start at the IP header
constexpr std::uint16_t kOptComment = 1;
constexpr std::uint16_t kOptEndOfOpt = 0;
constexpr std::uint16_t kOptIfTsResol = 9;

std::string event_comment(const FlightEvent& event) {
  return util::strf("trace=%d probe=%d seq=%d event=%s layer=%s node=%s detail=%s",
                    event.key.trace, event.key.probe, event.key.seq,
                    std::string(to_string(event.type)).c_str(),
                    std::string(to_string(event.layer)).c_str(), event.node.c_str(),
                    event.detail.c_str());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::size_t write_pcapng(std::ostream& os, const std::vector<FlightEvent>& events) {
  // Section Header Block, no options.
  put_u32(os, kShbType);
  put_u32(os, 28);
  put_u32(os, kShbMagic);
  put_u16(os, 1);  // version major
  put_u16(os, 0);  // version minor
  put_u32(os, 0xffffffff);  // section length unknown (low word)
  put_u32(os, 0xffffffff);  // (high word)
  put_u32(os, 28);

  // Interface Description Block: raw IP, nanosecond timestamps.
  // Options: if_tsresol(9) + end-of-options = 4 + 4 bytes.
  put_u32(os, kIdbType);
  put_u32(os, 28);
  put_u16(os, static_cast<std::uint16_t>(kLinktypeRaw));
  put_u16(os, 0);  // reserved
  put_u32(os, 0);  // snaplen: unlimited
  put_u16(os, kOptIfTsResol);
  put_u16(os, 1);
  const char tsresol[4] = {9, 0, 0, 0};  // 10^-9, padded to 4
  os.write(tsresol, 4);
  put_u16(os, kOptEndOfOpt);
  put_u16(os, 0);
  put_u32(os, 28);

  std::size_t written = 0;
  for (const auto& event : events) {
    if (event.wire.empty()) continue;  // timeouts have no packet
    const std::string comment = event_comment(event);
    const std::size_t options_len = 4 + padded(comment.size()) + 4;
    const std::size_t block_len = 32 + padded(event.wire.size()) + options_len;
    const std::uint64_t ns = static_cast<std::uint64_t>(event.time.count_nanos());

    put_u32(os, kEpbType);
    put_u32(os, static_cast<std::uint32_t>(block_len));
    put_u32(os, 0);  // interface id
    put_u32(os, static_cast<std::uint32_t>(ns >> 32));
    put_u32(os, static_cast<std::uint32_t>(ns & 0xffffffff));
    put_u32(os, static_cast<std::uint32_t>(event.wire.size()));  // captured
    put_u32(os, static_cast<std::uint32_t>(event.wire.size()));  // original
    put_padded(os, event.wire.data(), event.wire.size());
    put_u16(os, kOptComment);
    put_u16(os, static_cast<std::uint16_t>(comment.size()));
    put_padded(os, comment.data(), comment.size());
    put_u16(os, kOptEndOfOpt);
    put_u16(os, 0);
    put_u32(os, static_cast<std::uint32_t>(block_len));
    ++written;
  }
  return written;
}

bool write_pcapng_file(const std::string& path, const std::vector<FlightEvent>& events) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_pcapng(os, events);
  return static_cast<bool>(os);
}

std::string to_chrome_trace_json(const std::vector<FlightEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) out += ",";
    first = false;
    const std::int64_t ns = event.time.count_nanos();
    out += util::strf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%" PRId64 ".%03" PRId64 ",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"seq\":%d,\"node\":\"%s\",\"detail\":\"%s\",\"wire_bytes\":%zu}}",
        std::string(to_string(event.type)).c_str(),
        std::string(to_string(event.layer)).c_str(), ns / 1000, ns % 1000,
        event.key.trace, event.key.probe, event.key.seq,
        json_escape(event.node).c_str(), json_escape(event.detail).c_str(),
        event.wire.size());
  }
  return out + "]}\n";
}

bool write_flight_files(const std::string& prefix, const std::vector<FlightEvent>& events) {
  if (!write_pcapng_file(prefix + ".pcapng", events)) return false;
  std::ofstream json_os(prefix + ".trace.json");
  if (!json_os) return false;
  json_os << to_chrome_trace_json(events);
  return static_cast<bool>(json_os);
}

}  // namespace ecnprobe::obs
