#include "ecnprobe/obs/loghist.hpp"

#include <bit>
#include <stdexcept>

namespace ecnprobe::obs {

LogHistogram::LogHistogram(double alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("LogHistogram: alpha must be in (0, 1]");
  }
  // Smallest subbits with 2^-subbits <= alpha. Multiplying a double by a
  // power of two is exact, so this loop is deterministic everywhere.
  int sb = 1;
  while (sb < 12 && static_cast<double>(std::int64_t{1} << sb) * alpha < 1.0) {
    ++sb;
  }
  subbits_ = sb;
}

double LogHistogram::relative_error() const {
  if (subbits_ == 0) return 0.0;
  return 1.0 / static_cast<double>(std::int64_t{1} << subbits_);
}

std::int32_t LogHistogram::bucket_index(std::int64_t value, int subbits) {
  if (value <= 0) return 0;
  const std::int64_t unit = std::int64_t{1} << subbits;
  if (value < unit) return static_cast<std::int32_t>(value);
  const auto v = static_cast<std::uint64_t>(value);
  const int exponent =
      static_cast<int>(std::bit_width(v)) - 1;  // floor(log2(v)) >= subbits
  const int shift = exponent - subbits;
  // Top (subbits + 1) bits of v, minus the implicit leading bit, give the
  // sub-bucket in [0, 2^subbits).
  const auto sub = static_cast<std::int64_t>(v >> shift) - unit;
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(exponent - subbits + 1) << subbits) + sub);
}

std::int64_t LogHistogram::bucket_upper(std::int32_t index, int subbits) {
  if (index < 0) return 0;
  const std::int64_t unit = std::int64_t{1} << subbits;
  if (index < unit) return index;  // exact unit buckets
  const std::int64_t group = index >> subbits;   // exponent - subbits + 1
  const std::int64_t sub = index & (unit - 1);
  const std::int64_t scale = std::int64_t{1} << (group - 1);
  return (unit + sub + 1) * scale - 1;
}

void LogHistogram::observe(std::int64_t value) {
  if (subbits_ == 0) return;
  if (value < 0) value = 0;
  ++buckets_[bucket_index(value, subbits_)];
  ++count_;
  sum_ += value;
}

void LogHistogram::add_bucket(std::int32_t index, std::uint64_t n) {
  if (subbits_ == 0 || n == 0) return;
  buckets_[index] += n;
  count_ += n;
}

void LogHistogram::add_sum(std::int64_t sum) { sum_ += sum; }

void LogHistogram::merge(const LogHistogram& other) {
  if (other.subbits_ == 0) return;
  if (subbits_ == 0) {
    *this = other;
    return;
  }
  if (subbits_ != other.subbits_) {
    throw std::invalid_argument("LogHistogram::merge: subbits mismatch");
  }
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // rank in [1, count]: smallest bucket whose cumulative count reaches it.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) return bucket_upper(index, subbits_);
  }
  return bucket_upper(buckets_.rbegin()->first, subbits_);
}

std::size_t LogHistogram::memory_bytes() const {
  // Conservative per-node estimate for the sparse map.
  return sizeof(*this) + buckets_.size() * (sizeof(std::int32_t) +
                                            sizeof(std::uint64_t) + 48);
}

void LogHistogram::clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
}

}  // namespace ecnprobe::obs
