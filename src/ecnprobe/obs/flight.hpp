// The flight recorder: a bounded ring-buffer sink for per-packet span
// events. Where the drop ledger answers "how many packets died of what",
// the recorder answers "what happened to *this* probe": every instrumented
// packet carries a flight id, and each layer it traverses appends an event
// -- sent, forwarded at a hop, ECN-rewritten, dropped by a policy, quoted
// into an ICMP error, delivered back, timed out -- keyed by
// {trace, probe, seq} with the sim-clock timestamp and the full wire bytes
// at that point in the path.
//
// Single-threaded by design, like the ledger: one recorder per world, one
// world per thread. Parallel campaign workers each record into their own
// world's recorder; per-trace slices are collected at the trace's
// quiescence barrier and merged in plan order, so the combined event
// stream is byte-identical to a sequential run at any worker count.
//
// Disabled (the default) the recorder is a single bool test on the hot
// path: no allocation, no encoding, no RNG interaction. Recording is
// observation-only either way -- it makes no RNG draws -- so arming it
// cannot perturb simulation outcomes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ecnprobe/obs/layer.hpp"
#include "ecnprobe/util/arena.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::obs {

/// What happened to the packet (or the probe waiting for it).
enum class SpanEvent : std::uint8_t {
  ProbeSent,     ///< instrumented probe left its origin host
  HopForward,    ///< a router forwarded it (TTL already decremented)
  EcnRewritten,  ///< a middlebox changed the ECN codepoint in flight
  PolicyDrop,    ///< discarded: policy verdict, link loss/down, TTL, filter
  IcmpGenerated, ///< a router generated an ICMP error quoting it
  ReplyReceived, ///< a flight-stamped packet arrived back at its origin
  Timeout,       ///< the probe gave up waiting
  Retransmit,    ///< a retry left the origin host
};
inline constexpr std::size_t kSpanEventCount = 8;

std::string_view to_string(SpanEvent event);

/// The span a packet belongs to: which campaign trace, which probe within
/// the trace (campaign: server index * 4 + step; traceroute: the TTL), and
/// which attempt of that probe.
struct SpanKey {
  int trace = -1;
  int probe = -1;
  int seq = 0;

  bool operator==(const SpanKey&) const = default;
};

/// One recorded span event. Plain data; deterministic given the world seed.
struct FlightEvent {
  SpanKey key;
  SpanEvent type = SpanEvent::ProbeSent;
  util::SimTime time;
  Layer layer = Layer::Measure;
  std::string node;                ///< emitting node name
  std::uint32_t node_addr = 0;     ///< emitting node address (0 if none)
  std::string detail;              ///< cause / codepoints / outcome text
  std::vector<std::uint8_t> wire;  ///< full wire bytes (empty for timeouts)

  bool operator==(const FlightEvent&) const = default;
};

class FlightRecorder {
public:
  /// Enables recording with the given ring capacity (events). When the
  /// ring is full the oldest event is evicted -- the end of a packet's
  /// story (the drop, the timeout) survives overflow, and the campaign
  /// executors drain the ring every trace so overflow is rare in practice.
  void arm(std::size_t capacity);
  void disarm();

  /// The hot-path guard: every datapath call site tests this one bool
  /// before touching the recorder, so a disarmed recorder costs a single
  /// predictable branch per packet.
  bool armed() const { return armed_; }

  // -- span context ---------------------------------------------------------
  // The measure layer sets trace/probe; clients set seq per attempt. The
  // context is captured into the flight table at begin_flight() time.

  /// Starts a trace epoch: stamps subsequent flights with `trace` and
  /// clears the flight table (a quiescent simulator has no packets in
  /// flight across a trace boundary) so flight ids restart from 1 -- which
  /// keeps every worker's per-trace id sequence identical. `epoch_base` is
  /// the sim clock at the epoch boundary: recorded timestamps are relative
  /// to it, because the absolute clock depends on which traces an executor
  /// ran before this one (a parallel shard only ages by its own share) and
  /// would break byte-identical sequential-vs-sharded recordings.
  void set_trace(int trace, util::SimTime epoch_base = util::SimTime::zero());

  /// Head-based telemetry sampling: an armed recorder on an unsampled
  /// trace records nothing (the trace's story lives in the sketches
  /// instead). Folded into the same `armed_` bool the hot path already
  /// tests, so suppression adds no per-packet cost. World sets this right
  /// after set_trace(); exact mode always passes true.
  void set_trace_sampled(bool sampled) {
    suppressed_ = !sampled;
    armed_ = enabled_ && !suppressed_;
  }

  void set_probe(int probe) { probe_ = probe; }
  void set_seq(int seq) { seq_ = seq; }
  SpanKey context() const { return {trace_, probe_, seq_}; }

  // -- flight lifecycle -----------------------------------------------------

  /// Allocates a flight id bound to the current context and stages it for
  /// the next Host::send_datagram on this world, which stamps the datagram
  /// and records the ProbeSent/Retransmit event with the final wire bytes
  /// (IP id included). Returns the id so clients can key timeout events.
  std::uint32_t begin_flight(bool retransmit);

  /// Stages an existing flight id for the next send *without* a send
  /// event: server replies inherit the request's flight so the return path
  /// (hops, rewrites, drops) is attributed to the same span.
  void stage_reply(std::uint32_t flight);

  struct PendingSend {
    std::uint32_t flight = 0;
    bool retransmit = false;
    bool is_reply = false;
  };
  /// Consumes the staged send, if any. Called by Host::send_datagram.
  std::optional<PendingSend> take_pending();

  /// Marks `node` as the flight's origin; ReplyReceived fires only when a
  /// stamped packet arrives back *there* (not at the probed server).
  void set_flight_origin(std::uint32_t flight, std::uint32_t node_id);
  bool flight_origin_is(std::uint32_t flight, std::uint32_t node_id) const;

  // -- event sink -----------------------------------------------------------

  /// Records an event against a stamped packet; resolves the span key from
  /// the flight table. No-op when disarmed, unstamped (flight 0), or the
  /// flight is unknown (a straggler from before the last trace boundary).
  void record(std::uint32_t flight, SpanEvent type, util::SimTime time, Layer layer,
              std::string_view node, std::uint32_t node_addr, std::string detail,
              std::vector<std::uint8_t> wire = {});

  /// Span overload for datapath taps feeding Datagram::wire_view(): the
  /// datagram serialises once into its pooled cache and every tap copies
  /// from it, instead of each tap running a full encode.
  void record(std::uint32_t flight, SpanEvent type, util::SimTime time, Layer layer,
              std::string_view node, std::uint32_t node_addr, std::string detail,
              std::span<const std::uint8_t> wire);

  /// Records an event keyed by the current context -- for probe-level
  /// outcomes (timeouts) that have no packet to hang the event on.
  void record_here(SpanEvent type, util::SimTime time, Layer layer,
                   std::string_view node, std::uint32_t node_addr, std::string detail);

  // -- per-trace slicing ----------------------------------------------------

  /// Monotonic position in the event stream (survives ring eviction).
  /// World::mark_obs_baseline stores it; collect_since slices from it.
  std::size_t cursor() const { return base_ + ring_.size(); }

  /// Events recorded since `mark`, oldest first. Events evicted by ring
  /// overflow are gone; dropped_events() says how many, ever.
  std::vector<FlightEvent> collect_since(std::size_t mark) const;

  /// Events evicted by ring overflow since arm().
  std::uint64_t dropped_events() const { return dropped_; }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }

private:
  struct FlightEntry {
    SpanKey key;
    std::uint32_t origin_node = 0xffffffff;
  };
  /// Flight-table nodes come from an arena rewound at each trace boundary:
  /// a campaign of a million traces churns the table constantly, and the
  /// arena caps that at zero heap traffic once the first trace warmed it.
  using FlightMap =
      std::map<std::uint32_t, FlightEntry, std::less<std::uint32_t>,
               util::ArenaAllocator<std::pair<const std::uint32_t, FlightEntry>>>;

  void push(FlightEvent event);

  bool armed_ = false;       ///< enabled_ && !suppressed_: the hot-path test
  bool enabled_ = false;     ///< arm() was called with capacity > 0
  bool suppressed_ = false;  ///< current trace sampled out of exact recording
  std::size_t capacity_ = 0;
  int trace_ = -1;
  int probe_ = -1;
  int seq_ = 0;
  std::uint32_t next_flight_ = 1;
  util::SimTime epoch_base_;  ///< recorded times are offsets from this
  util::Arena flight_arena_;  ///< declared before flights_: backs its nodes
  FlightMap flights_{
      util::ArenaAllocator<std::pair<const std::uint32_t, FlightEntry>>(flight_arena_)};
  std::optional<PendingSend> pending_;
  std::deque<FlightEvent> ring_;
  std::size_t base_ = 0;  ///< global index of ring_.front()
  std::uint64_t dropped_ = 0;
};

}  // namespace ecnprobe::obs
