// Wall-clock self-profiler for the campaign hot path. Everything here is
// EXPLICITLY OUTSIDE the determinism contract: stage durations, queue
// depths, and worker timelines measure the machine, not the simulation,
// and are exported only into unguarded surfaces (the "unguarded_profile"
// member of --bench-json, which scripts/check_bench_json.py ignores, and
// a Chrome-trace sidecar file).
//
// Disabled (the default) every instrumentation point is one relaxed
// atomic load; a Scope on a disabled profiler never reads the clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ecnprobe::obs {

class Profiler {
 public:
  /// Bounded timeline ring: enough for a full reduced-scale campaign's
  /// per-trace slices without unbounded growth on long runs.
  static constexpr std::size_t kMaxSlices = 16384;

  struct StageStats {
    std::uint64_t count = 0;
    std::int64_t total_nanos = 0;
    std::int64_t max_nanos = 0;
  };

  /// One timeline slice for the Chrome trace ("X" complete events).
  struct Slice {
    std::uint64_t thread = 0;  ///< hashed std::thread::id
    std::int64_t start_nanos = 0;  ///< offset from the profiler epoch
    std::int64_t duration_nanos = 0;
    std::string stage;
  };

  static Profiler& process();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled);

  /// RAII stage timer; a no-op (no clock read) while disabled.
  class Scope {
   public:
    explicit Scope(const char* stage);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const char* stage_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Records a finished stage interval (Scope calls this).
  void record(const char* stage, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  /// High-water gauge: keeps the maximum value reported under `name`.
  void gauge_max(const std::string& name, std::int64_t value);

  /// {"stages": {...}, "gauges": {...}} -- std::map ordering, so equal
  /// profiles encode to equal bytes (handy for tests; the values
  /// themselves are wall-clock noise by design).
  std::string to_json() const;

  /// Chrome trace-event JSON (chrome://tracing / Perfetto "X" events),
  /// one row per worker thread. Returns false if the file cannot be
  /// written.
  bool write_chrome_trace(const std::string& path) const;

  std::map<std::string, StageStats> stages() const;
  std::map<std::string, std::int64_t> gauges() const;

  void reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_{};
  std::map<std::string, StageStats> stages_;
  std::map<std::string, std::int64_t> gauges_;
  std::vector<Slice> slices_;
  std::uint64_t slices_dropped_ = 0;
};

}  // namespace ecnprobe::obs
