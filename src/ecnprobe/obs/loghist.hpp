// Log-bucketed histogram for latency distributions (RTT, queue delay):
// DDSketch-style relative-error quantiles with pure-integer bucket
// indexing, so the bucket layout is a deterministic function of the
// value alone -- no std::log, no libm, no platform drift.
//
// Layout (HDR-histogram style): values below 2^subbits land in exact
// unit buckets; above that, each power-of-two range splits into
// 2^subbits sub-buckets, so every bucket's width is at most
// 2^-subbits of its lower edge. Choosing subbits = ceil(log2(1/alpha))
// makes the relative quantile error <= 2^-subbits <= alpha.
//
// Storage is a sparse ordered map: a campaign's RTT spread touches a few
// dozen buckets regardless of sample count, so memory is O(distinct
// buckets), not O(samples). merge() is bucket-wise integer addition --
// commutative -- so plan-order folding is byte-identical at any worker
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace ecnprobe::obs {

class LogHistogram {
 public:
  // An inert histogram (subbits 0): observe/merge are no-ops.
  LogHistogram() = default;

  // alpha: target relative error in (0, 1]. Throws std::invalid_argument
  // otherwise. subbits is clamped to [1, 12].
  explicit LogHistogram(double alpha);

  bool active() const { return subbits_ != 0; }
  int subbits() const { return subbits_; }
  // The realised bound 2^-subbits (<= the requested alpha).
  double relative_error() const;

  // Pure-integer bucket mapping, exposed for codecs and tests. Values
  // <= 0 land in bucket 0.
  static std::int32_t bucket_index(std::int64_t value, int subbits);
  // Inclusive upper edge of a bucket: the largest value mapping to it.
  static std::int64_t bucket_upper(std::int32_t index, int subbits);

  void observe(std::int64_t value);
  // Fold a pre-bucketed count (from a per-trace delta); adds to count().
  void add_bucket(std::int32_t index, std::uint64_t n);
  // Fold a pre-accumulated sum alongside add_bucket calls.
  void add_sum(std::int64_t sum);

  // Throws std::invalid_argument on subbits mismatch.
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  // Upper edge of the bucket containing the q-quantile (q in [0, 1]);
  // within relative_error() of the true quantile. Zero when empty.
  std::int64_t quantile(double q) const;
  const std::map<std::int32_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  std::size_t memory_bytes() const;
  void clear();

 private:
  int subbits_ = 0;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace ecnprobe::obs
