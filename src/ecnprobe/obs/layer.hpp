// Which layer of the stack acted on a packet. Shared between the drop
// ledger (attribution records) and the flight recorder (span events), so
// a ledger row and the recorder event describing the same discard name
// the same layer.
#pragma once

#include <cstdint>
#include <string_view>

namespace ecnprobe::obs {

/// Which layer of the stack dropped (or rewrote) the packet.
enum class Layer : std::uint8_t {
  Link,       ///< physical link: random loss, interface down
  Policy,     ///< a PacketPolicy verdict on some interface
  Router,     ///< routing: TTL expiry, no route
  Host,       ///< end-host delivery: no socket, bad checksum
  App,        ///< application service: offline, rate limiting
  Measure,    ///< the measurement harness: probe gave up
};
inline constexpr std::size_t kLayerCount = 6;

std::string_view to_string(Layer layer);

}  // namespace ecnprobe::obs
