#include "ecnprobe/obs/sketch.hpp"

#include <cmath>
#include <stdexcept>

#include "ecnprobe/util/hash.hpp"
#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::obs {

namespace {

constexpr double kEuler = 2.718281828459045;
constexpr std::size_t kMaxCells = std::size_t{1} << 26;

}  // namespace

CountMinSketch::CountMinSketch(double epsilon, double delta,
                               std::uint64_t seed)
    : epsilon_(epsilon), delta_(delta), seed_(seed) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument("CountMinSketch: epsilon must be in (0, 1)");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    throw std::invalid_argument("CountMinSketch: delta must be in (0, 1)");
  }
  width_ = static_cast<std::size_t>(std::ceil(kEuler / epsilon));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  if (depth_ == 0) depth_ = 1;
  if (width_ == 0 || width_ > kMaxCells / depth_) {
    throw std::invalid_argument("CountMinSketch: table would exceed cell cap");
  }
  row_basis_.reserve(depth_);
  for (std::size_t row = 0; row < depth_; ++row) {
    // Each row hashes with its own FNV basis so the rows are independent
    // functions of the key; the bases are pure functions of (seed, row).
    row_basis_.push_back(util::derive_seed(seed_, static_cast<std::uint64_t>(row)));
  }
  cells_.assign(width_ * depth_, 0);
}

std::size_t CountMinSketch::cell_index(std::size_t row,
                                       std::string_view key) const {
  return row * width_ +
         static_cast<std::size_t>(util::fnv1a64(key, row_basis_[row]) % width_);
}

void CountMinSketch::add(std::string_view key, std::uint64_t weight) {
  if (width_ == 0 || weight == 0) return;
  for (std::size_t row = 0; row < depth_; ++row) {
    cells_[cell_index(row, key)] += weight;
  }
  total_ += weight;
}

std::uint64_t CountMinSketch::estimate(std::string_view key) const {
  if (width_ == 0) return 0;
  std::uint64_t best = cells_[cell_index(0, key)];
  for (std::size_t row = 1; row < depth_; ++row) {
    const std::uint64_t cell = cells_[cell_index(row, key)];
    if (cell < best) best = cell;
  }
  return best;
}

std::uint64_t CountMinSketch::error_bound() const {
  if (width_ == 0) return 0;
  return static_cast<std::uint64_t>(
      std::ceil(epsilon_ * static_cast<double>(total_)));
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (other.width_ == 0) return;
  if (width_ == 0) {
    *this = other;
    return;
  }
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    throw std::invalid_argument(
        "CountMinSketch::merge: incompatible sketch dimensions or seed");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

void CountMinSketch::clear() {
  cells_.assign(cells_.size(), 0);
  total_ = 0;
}

std::size_t CountMinSketch::memory_bytes() const {
  return cells_.capacity() * sizeof(std::uint64_t) +
         row_basis_.capacity() * sizeof(std::uint64_t) + sizeof(*this);
}

}  // namespace ecnprobe::obs
