// Deterministic sim-time series: the time-resolved companion to the
// end-of-run metric totals. The paper's figures aggregate a whole
// campaign; "ECN verbose mode"-style questions (when did the drops
// happen? did RTT shift as congestion built?) need mark/drop/probe rates
// as series over *simulated* time.
//
// Two-level design, the same shape as the telemetry recorder:
//
//  * TimeSeriesRecorder lives in each world's Observability and buckets
//    probe outcomes, drop/rewrite causes, and RTT samples for the
//    CURRENT trace into fixed-width sim-time windows. Window indices are
//    epoch-relative (offset from the trace's sim-clock origin), so a
//    trace's series is a pure function of (WorldParams, batch, index) --
//    exactly the property that makes per-trace deltas shardable.
//
//  * TimeSeriesDelta is the per-trace result, journaled inside
//    ObsSnapshot and folded in plan order by both campaign executors.
//    Folding is window-wise commutative integer addition, so sequential
//    and --workers N campaigns produce byte-identical series.
//
// RTT samples use the LogHistogram bucket mapping (pure-integer, no
// libm), one sparse histogram per window, so per-window quantiles come
// out with the same relative-error contract as the telemetry layer.
//
// Disabled (the default) every hook is a single bool test and the delta
// stays empty, which keeps every existing export and journal encoding
// byte-identical to a build without this layer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "ecnprobe/obs/loghist.hpp"
#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::obs {

// Parsed from --timeseries "off" | "<window-ms>" | "window-ms=N[,...]".
// Series shape is a pure function of this config plus the trace stream.
struct TimeSeriesConfig {
  bool enabled = false;
  std::int64_t window_nanos = 1'000'000'000;  // 1 s of sim time per window
  double alpha = 0.01;   // per-window RTT histogram relative error
  int max_windows = 512; // later samples clamp into the last window

  // Spec grammar: "off", a bare window width in sim-milliseconds, or a
  // comma list "window-ms=N,alpha=F,max-windows=N".
  static util::Expected<TimeSeriesConfig> parse(const std::string& spec);
  std::string summary() const;
};

/// One sim-time window's worth of observations. Keys are composite:
/// "probe:<test>/<outcome>", "drop:<layer>/<cause>",
/// "rewrite:<layer>/<cause>".
struct TimeSeriesWindow {
  std::map<std::string, std::uint64_t> counts;
  std::map<std::int32_t, std::uint64_t> rtt_buckets;
  std::uint64_t rtt_count = 0;
  std::int64_t rtt_sum_nanos = 0;

  bool empty() const;
  void merge(const TimeSeriesWindow& other);

  bool operator==(const TimeSeriesWindow&) const = default;
};

/// Per-trace (and, after folding, per-campaign) series. The config echo
/// (window width, RTT subbits) rides along so merges can check
/// compatibility and decoders need no out-of-band state.
struct TimeSeriesDelta {
  std::int64_t window_nanos = 0;  // 0 = inert (recorder disabled)
  int rtt_subbits = 0;
  std::map<std::int32_t, TimeSeriesWindow> windows;

  bool empty() const { return windows.empty(); }
  void clear() { windows.clear(); }
  /// Window-wise commutative addition. An inert side adopts the other's
  /// config; mismatched configs throw std::invalid_argument.
  void merge(const TimeSeriesDelta& other);

  bool operator==(const TimeSeriesDelta&) const = default;
};

/// The per-world observer. Window indices come from a sim-clock callback
/// relative to the origin captured at begin_trace(), so the series is
/// epoch-hermetic: it never sees the absolute sim clock, which differs
/// between sequential and sharded executions.
class TimeSeriesRecorder {
 public:
  using Clock = std::function<std::int64_t()>;  // sim now, nanoseconds

  void arm(const TimeSeriesConfig& config);
  void disarm();
  bool armed() const { return armed_; }
  const TimeSeriesConfig& config() const { return config_; }
  int rtt_subbits() const { return rtt_subbits_; }

  void set_clock(Clock clock) { clock_ = std::move(clock); }

  /// Starts a trace epoch: captures the sim-clock origin, clears the
  /// delta.
  void begin_trace(int trace);

  void on_probe(std::string_view test, std::string_view outcome);
  void on_drop(std::string_view layer, std::string_view cause);
  void on_rewrite(std::string_view layer, std::string_view cause);
  void observe_rtt(util::SimDuration rtt);

  /// Non-destructive copy of the current trace's delta.
  TimeSeriesDelta collect_delta() const { return current_; }

 private:
  TimeSeriesWindow& window_now();

  bool armed_ = false;
  int trace_ = -1;
  int rtt_subbits_ = 0;
  std::int64_t origin_nanos_ = 0;
  std::int32_t last_window_ = 0;
  TimeSeriesConfig config_;
  TimeSeriesDelta current_;
  Clock clock_;
};

}  // namespace ecnprobe::obs
