#include "ecnprobe/obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/util/table.hpp"

namespace ecnprobe::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Exact decimal rendering of a fixed-point milli value ("12.345").
std::string milli_to_string(std::int64_t milli) {
  const char* sign = milli < 0 ? "-" : "";
  const std::int64_t abs = milli < 0 ? -milli : milli;
  return util::strf("%s%" PRId64 ".%03" PRId64, sign, abs / 1000, abs % 1000);
}

std::string labels_to_json(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  return out + "}";
}

/// Prometheus text-format label values escape backslash, double quote and
/// newline (and nothing else); node names flow into label values verbatim,
/// so a hostile name must not be able to break out of the quoted string or
/// smuggle an extra sample line into the exposition.
std::string prometheus_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// {cause="greylist",layer="policy"} -- keys already sorted by LabelSet.
std::string labels_to_prometheus(const LabelSet& labels, const std::string& extra_key = "",
                                 const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + prometheus_escape(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + prometheus_escape(extra_value) + "\"";
  }
  return out + "}";
}

std::string bound_to_string(double bound) { return util::strf("%g", bound); }

void sample_to_json(std::string& out, const FamilySnapshot& family,
                    const SampleValue& value) {
  switch (family.kind) {
    case MetricKind::Counter:
      out += util::strf("%" PRIu64, value.counter);
      break;
    case MetricKind::Gauge:
      out += util::strf("%" PRId64, value.gauge);
      break;
    case MetricKind::Histogram: {
      out += util::strf("{\"count\":%" PRIu64 ",\"sum\":%s,\"buckets\":[", value.count,
                        milli_to_string(value.sum_milli).c_str());
      for (std::size_t i = 0; i < value.buckets.size(); ++i) {
        if (i > 0) out += ",";
        const std::string le =
            i < family.bounds.size() ? bound_to_string(family.bounds[i]) : "+Inf";
        out += util::strf("{\"le\":\"%s\",\"count\":%" PRIu64 "}", le.c_str(),
                          value.buckets[i]);
      }
      out += "]}";
      break;
    }
  }
}

/// Splits a telemetry composite key "<kind>:<label>/<cause>" at the first
/// ':' and the last '/'. Layer/node/AS labels never contain '/', causes
/// never contain ':', so the split is unambiguous.
struct ParsedTelemetryKey {
  std::string_view kind;
  std::string_view label;
  std::string_view cause;
};

bool parse_telemetry_key(std::string_view key, ParsedTelemetryKey* out) {
  const auto colon = key.find(':');
  if (colon == std::string_view::npos) return false;
  const auto slash = key.rfind('/');
  if (slash == std::string_view::npos || slash <= colon) return false;
  out->kind = key.substr(0, colon);
  out->label = key.substr(colon + 1, slash - colon - 1);
  out->cause = key.substr(slash + 1);
  return true;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first_family = true;
  for (const auto& [name, family] : snapshot.families) {
    if (!first_family) out += ",";
    first_family = false;
    out += "\"" + json_escape(name) + "\":{\"kind\":\"" +
           std::string(to_string(family.kind)) + "\",\"samples\":[";
    bool first_sample = true;
    for (const auto& [labels, value] : family.samples) {
      if (!first_sample) out += ",";
      first_sample = false;
      out += "{\"labels\":" + labels_to_json(labels) + ",\"value\":";
      sample_to_json(out, family, value);
      out += "}";
    }
    out += "]}";
  }
  return out + "}";
}

std::string to_json(const LedgerSnapshot& ledger) {
  const auto section =
      [](const std::map<std::pair<std::string, std::string>, std::uint64_t>& entries) {
        std::string out = "{";
        bool first = true;
        for (const auto& [key, n] : entries) {
          if (!first) out += ",";
          first = false;
          out += "\"" + json_escape(key.first) + "/" + json_escape(key.second) +
                 "\":" + util::strf("%" PRIu64, n);
        }
        return out + "}";
      };
  return util::strf("{\"drops\":%s,\"total_drops\":%" PRIu64
                    ",\"rewrites\":%s,\"total_rewrites\":%" PRIu64 "}",
                    section(ledger.drops).c_str(), ledger.total_drops(),
                    section(ledger.rewrites).c_str(), ledger.total_rewrites());
}

std::string to_json(const ObsSnapshot& snapshot) {
  std::string out = "{\"metrics\":" + to_json(snapshot.metrics) +
                    ",\"drop_ledger\":" + to_json(snapshot.ledger);
  // Omitted when empty so documents without --timeseries stay
  // byte-identical to the pre-series format (CI diffs these bytes).
  if (!snapshot.timeseries.empty()) {
    out += ",\"timeseries\":" + to_json(snapshot.timeseries);
  }
  return out + "}";
}

std::string to_json(const TimeSeriesDelta& series) {
  if (series.empty()) return "null";
  std::string out = util::strf("{\"window_nanos\":%" PRId64
                               ",\"rtt_subbits\":%d,\"windows\":{",
                               series.window_nanos, series.rtt_subbits);
  bool first_window = true;
  for (const auto& [index, window] : series.windows) {
    if (!first_window) out += ",";
    first_window = false;
    out += util::strf("\"%d\":{\"counts\":{", index);
    bool first = true;
    for (const auto& [key, n] : window.counts) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(key) + util::strf("\":%" PRIu64, n);
    }
    out += util::strf("},\"rtt\":{\"count\":%" PRIu64 ",\"sum_nanos\":%" PRId64
                      ",\"buckets\":{",
                      window.rtt_count, window.rtt_sum_nanos);
    first = true;
    for (const auto& [bucket, n] : window.rtt_buckets) {
      if (!first) out += ",";
      first = false;
      out += util::strf("\"%d\":%" PRIu64, bucket, n);
    }
    out += "}}}";
  }
  return out + "}}";
}

std::string to_prometheus(const TimeSeriesDelta& series) {
  if (series.empty()) return "";
  std::string out;
  out += util::strf(
      "# ecnprobe_timeseries sim-time windows, window_nanos=%" PRId64
      " rtt_subbits=%d\n",
      series.window_nanos, series.rtt_subbits);
  out += "# HELP ecnprobe_timeseries_events_total probe/drop/rewrite events "
         "per sim-time window\n";
  out += "# TYPE ecnprobe_timeseries_events_total counter\n";
  for (const auto& [index, window] : series.windows) {
    const std::string window_label = util::strf("%d", index);
    for (const auto& [key, n] : window.counts) {
      LabelSet labels{{"event", key}, {"window", window_label}};
      out += "ecnprobe_timeseries_events_total" + labels_to_prometheus(labels) +
             util::strf(" %" PRIu64 "\n", n);
    }
  }
  bool any_rtt = false;
  for (const auto& [index, window] : series.windows) {
    if (window.rtt_count == 0) continue;
    if (!any_rtt) {
      out += "# HELP ecnprobe_timeseries_rtt_nanos probe RTT distribution per "
             "sim-time window (log-bucketed)\n";
      out += "# TYPE ecnprobe_timeseries_rtt_nanos histogram\n";
      any_rtt = true;
    }
    const std::string window_label = util::strf("%d", index);
    std::uint64_t cumulative = 0;
    for (const auto& [bucket, n] : window.rtt_buckets) {
      cumulative += n;
      LabelSet labels{{"le", util::strf("%" PRId64,
                                        LogHistogram::bucket_upper(
                                            bucket, series.rtt_subbits))},
                      {"window", window_label}};
      out += "ecnprobe_timeseries_rtt_nanos_bucket" +
             labels_to_prometheus(labels) +
             util::strf(" %" PRIu64 "\n", cumulative);
    }
    LabelSet labels{{"window", window_label}};
    out += "ecnprobe_timeseries_rtt_nanos_sum" + labels_to_prometheus(labels) +
           util::strf(" %" PRId64 "\n", window.rtt_sum_nanos);
    out += "ecnprobe_timeseries_rtt_nanos_count" + labels_to_prometheus(labels) +
           util::strf(" %" PRIu64 "\n", window.rtt_count);
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, family] : snapshot.families) {
    if (!family.help.empty()) out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " + std::string(to_string(family.kind)) + "\n";
    for (const auto& [labels, value] : family.samples) {
      switch (family.kind) {
        case MetricKind::Counter:
          out += name + labels_to_prometheus(labels) +
                 util::strf(" %" PRIu64 "\n", value.counter);
          break;
        case MetricKind::Gauge:
          out += name + labels_to_prometheus(labels) +
                 util::strf(" %" PRId64 "\n", value.gauge);
          break;
        case MetricKind::Histogram: {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < value.buckets.size(); ++i) {
            cumulative += value.buckets[i];
            const std::string le =
                i < family.bounds.size() ? bound_to_string(family.bounds[i]) : "+Inf";
            out += name + "_bucket" + labels_to_prometheus(labels, "le", le) +
                   util::strf(" %" PRIu64 "\n", cumulative);
          }
          out += name + "_sum" + labels_to_prometheus(labels) + " " +
                 milli_to_string(value.sum_milli) + "\n";
          out += name + "_count" + labels_to_prometheus(labels) +
                 util::strf(" %" PRIu64 "\n", value.count);
          break;
        }
      }
    }
  }
  return out;
}

LedgerSnapshot estimated_ledger(const TelemetryAggregate& telemetry) {
  LedgerSnapshot out;
  if (!telemetry.active()) return out;
  for (const auto& key : telemetry.tracked_keys()) {
    ParsedTelemetryKey parsed;
    if (!parse_telemetry_key(key, &parsed)) continue;
    if (parsed.kind == "cause") {
      out.drops[{std::string(parsed.label), std::string(parsed.cause)}] =
          telemetry.estimate(key);
    } else if (parsed.kind == "rewrite") {
      out.rewrites[{std::string(parsed.label), std::string(parsed.cause)}] =
          telemetry.estimate(key);
    }
  }
  return out;
}

std::string to_json(const TelemetryAggregate& telemetry) {
  if (!telemetry.active()) return "null";
  const auto& config = telemetry.config();
  const auto& rtt = telemetry.rtt();
  const auto& budget = telemetry.budget();
  std::string out = "{";
  out += util::strf(
      "\"mode\":\"sketched\",\"epsilon\":%g,\"delta\":%g,\"alpha\":%g,"
      "\"sample_every\":%d,\"seed\":%" PRIu64 ",\"stream_total\":%" PRIu64
      ",\"error_bound\":%" PRIu64,
      config.epsilon, config.delta, config.alpha, config.sample_every,
      config.seed, telemetry.counts().total(), telemetry.error_bound());
  out += util::strf(
      ",\"traces\":{\"folded\":%" PRIu64 ",\"sampled_exact\":%" PRIu64
      ",\"folded_records\":%" PRIu64 "}",
      telemetry.traces_folded(), telemetry.sampled_exact_traces(),
      telemetry.folded_records());
  out += util::strf(
      ",\"budget\":{\"cap_bytes\":%zu,\"used_bytes\":%zu,\"peak_bytes\":%zu"
      ",\"admitted\":%" PRIu64 ",\"rejected\":%" PRIu64
      ",\"untracked_keys\":%" PRIu64 "}",
      budget.cap(), budget.used(), budget.peak(), budget.admitted(),
      budget.rejected(), telemetry.untracked_keys());
  out += ",\"counts\":{";
  bool first = true;
  for (const auto& key : telemetry.tracked_keys()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) +
           util::strf("\":%" PRIu64, telemetry.estimate(key));
  }
  out += "}";
  out += util::strf(
      ",\"rtt\":{\"count\":%" PRIu64 ",\"sum_nanos\":%" PRId64
      ",\"relative_error\":%g,\"p50_nanos\":%" PRId64 ",\"p90_nanos\":%" PRId64
      ",\"p99_nanos\":%" PRId64 ",\"buckets\":{",
      rtt.count(), rtt.sum(), rtt.relative_error(), rtt.quantile(0.50),
      rtt.quantile(0.90), rtt.quantile(0.99));
  first = true;
  for (const auto& [bucket, n] : rtt.buckets()) {
    if (!first) out += ",";
    first = false;
    out += util::strf("\"%d\":%" PRIu64, bucket, n);
  }
  out += "}}";
  out += ",\"exemplars\":[";
  first = true;
  for (const auto& exemplar : telemetry.exemplars()) {
    if (!first) out += ",";
    first = false;
    out += util::strf("{\"trace\":%d,\"layer\":\"%s\",\"cause\":\"%s\","
                      "\"node\":\"%s\"}",
                      exemplar.trace, json_escape(exemplar.layer).c_str(),
                      json_escape(exemplar.cause).c_str(),
                      json_escape(exemplar.node).c_str());
  }
  out += "]}";
  return out;
}

std::string to_prometheus(const TelemetryAggregate& telemetry) {
  if (!telemetry.active()) return "";
  const auto& config = telemetry.config();
  std::string out;
  // The error contract, machine-greppable: every family below is an
  // estimate, never an exact counter.
  out += util::strf(
      "# ecnprobe_telemetry mode=sketched epsilon=%g delta=%g alpha=%g "
      "sample_every=%d\n",
      config.epsilon, config.delta, config.alpha, config.sample_every);
  out += util::strf(
      "# ecnprobe_telemetry estimates never undercount and overcount by at "
      "most %" PRIu64 " (= ceil(epsilon * %" PRIu64
      ") stream total) with per-key confidence %g\n",
      telemetry.error_bound(), telemetry.counts().total(),
      1.0 - config.delta);

  struct Family {
    std::string_view kind;        // composite-key prefix
    std::string_view name;        // exported family name
    std::string_view label_key;   // prometheus label for the parsed label
    std::string_view help;
  };
  static constexpr Family kFamilies[] = {
      {"cause", "ecnprobe_telemetry_drops_estimate_total", "layer",
       "estimated packets discarded, by layer and cause (count-min sketch)"},
      {"rewrite", "ecnprobe_telemetry_rewrites_estimate_total", "layer",
       "estimated in-flight ECN rewrites, by layer and cause"},
      {"hop", "ecnprobe_telemetry_hop_drops_estimate_total", "node",
       "estimated drops per hop/server node and cause"},
      {"as", "ecnprobe_telemetry_as_drops_estimate_total", "as",
       "estimated drops per origin AS and cause"},
  };
  for (const auto& family : kFamilies) {
    bool any = false;
    for (const auto& key : telemetry.tracked_keys()) {
      ParsedTelemetryKey parsed;
      if (!parse_telemetry_key(key, &parsed) || parsed.kind != family.kind) {
        continue;
      }
      if (!any) {
        out += "# HELP " + std::string(family.name) + " " +
               std::string(family.help) + "\n";
        out += "# TYPE " + std::string(family.name) + " counter\n";
        any = true;
      }
      LabelSet labels{{std::string(family.label_key), std::string(parsed.label)},
                      {"cause", std::string(parsed.cause)},
                      {"estimate", "true"}};
      out += std::string(family.name) + labels_to_prometheus(labels) +
             util::strf(" %" PRIu64 "\n", telemetry.estimate(key));
    }
  }

  const auto& rtt = telemetry.rtt();
  if (rtt.count() > 0) {
    out += "# HELP ecnprobe_telemetry_rtt_nanos probe RTT distribution "
           "(log-bucketed, relative error " +
           util::strf("%g", rtt.relative_error()) + ")\n";
    out += "# TYPE ecnprobe_telemetry_rtt_nanos histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [bucket, n] : rtt.buckets()) {
      cumulative += n;
      LabelSet labels{{"estimate", "true"},
                      {"le", util::strf("%" PRId64, LogHistogram::bucket_upper(
                                                        bucket, rtt.subbits()))}};
      out += "ecnprobe_telemetry_rtt_nanos_bucket" +
             labels_to_prometheus(labels) +
             util::strf(" %" PRIu64 "\n", cumulative);
    }
    LabelSet est{{"estimate", "true"}};
    out += "ecnprobe_telemetry_rtt_nanos_sum" + labels_to_prometheus(est) +
           util::strf(" %" PRId64 "\n", rtt.sum());
    out += "ecnprobe_telemetry_rtt_nanos_count" + labels_to_prometheus(est) +
           util::strf(" %" PRIu64 "\n", rtt.count());
  }

  const auto& budget = telemetry.budget();
  out += "# HELP ecnprobe_telemetry_budget_bytes telemetry budget accountant "
         "state\n";
  out += "# TYPE ecnprobe_telemetry_budget_bytes gauge\n";
  const std::pair<const char*, std::size_t> gauges[] = {
      {"cap", budget.cap()}, {"used", budget.used()}, {"peak", budget.peak()}};
  for (const auto& [kind, value] : gauges) {
    out += "ecnprobe_telemetry_budget_bytes" +
           labels_to_prometheus(LabelSet{{"kind", kind}}) +
           util::strf(" %zu\n", value);
  }
  out += "# HELP ecnprobe_telemetry_traces_total traces folded into the "
         "sketches, by sampling outcome\n";
  out += "# TYPE ecnprobe_telemetry_traces_total counter\n";
  out += "ecnprobe_telemetry_traces_total" +
         labels_to_prometheus(LabelSet{{"sampling", "folded"}}) +
         util::strf(" %" PRIu64 "\n",
                    telemetry.traces_folded() - telemetry.sampled_exact_traces());
  out += "ecnprobe_telemetry_traces_total" +
         labels_to_prometheus(LabelSet{{"sampling", "exact"}}) +
         util::strf(" %" PRIu64 "\n", telemetry.sampled_exact_traces());
  return out;
}

std::string render_metrics_report_json(const ObsSnapshot& campaign,
                                       const MetricsSnapshot* runtime,
                                       const TelemetryAggregate* telemetry) {
  std::string out = "{\"campaign\":" + to_json(campaign) + ",\"runtime\":";
  out += runtime != nullptr ? to_json(*runtime) : "null";
  // Exact-mode documents omit the key entirely so they stay byte-identical
  // to the pre-telemetry format (golden-pinned).
  if (telemetry != nullptr && telemetry->active()) {
    out += ",\"telemetry\":" + to_json(*telemetry);
  }
  return out + "}\n";
}

bool write_metrics_files(const std::string& path, const ObsSnapshot& campaign,
                         const MetricsSnapshot* runtime,
                         const TelemetryAggregate* telemetry) {
  if (path == "-") {
    // Stream the JSON report to stdout; there is no sensible sibling
    // path for the Prometheus exposition, so it is skipped.
    std::fputs(render_metrics_report_json(campaign, runtime, telemetry).c_str(),
               stdout);
    std::fflush(stdout);
    return true;
  }
  std::ofstream json_os(path);
  if (!json_os) return false;
  json_os << render_metrics_report_json(campaign, runtime, telemetry);

  std::string prom_path = path;
  const auto dot = prom_path.rfind('.');
  const auto slash = prom_path.rfind('/');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    prom_path.resize(dot);
  }
  prom_path += ".prom";
  MetricsSnapshot combined = campaign.metrics;
  if (runtime != nullptr) combined.merge(*runtime);
  std::ofstream prom_os(prom_path);
  if (!prom_os) return false;
  prom_os << to_prometheus(combined);
  if (telemetry != nullptr && telemetry->active()) {
    prom_os << to_prometheus(*telemetry);
  }
  prom_os << to_prometheus(campaign.timeseries);
  return json_os.good() && prom_os.good();
}

std::string render_loss_autopsy(const LedgerSnapshot& ledger) {
  if (ledger.drops.empty() && ledger.rewrites.empty()) return "";

  // Column per layer that actually saw a drop, row per cause.
  std::set<std::string> layers;
  std::set<std::string> causes;
  for (const auto& [key, n] : ledger.drops) {
    layers.insert(key.first);
    causes.insert(key.second);
  }

  std::vector<std::string> headers{"cause"};
  std::vector<util::TextTable::Align> aligns{util::TextTable::Align::Left};
  for (const auto& layer : layers) {
    headers.push_back(layer);
    aligns.push_back(util::TextTable::Align::Right);
  }
  headers.push_back("total");
  aligns.push_back(util::TextTable::Align::Right);

  util::TextTable table(headers, aligns);
  std::map<std::string, std::uint64_t> layer_totals;
  for (const auto& cause : causes) {
    std::vector<std::string> row{cause};
    std::uint64_t row_total = 0;
    for (const auto& layer : layers) {
      const auto it = ledger.drops.find({layer, cause});
      const std::uint64_t n = it != ledger.drops.end() ? it->second : 0;
      row.push_back(n == 0 ? "." : util::with_commas(static_cast<std::int64_t>(n)));
      row_total += n;
      layer_totals[layer] += n;
    }
    row.push_back(util::with_commas(static_cast<std::int64_t>(row_total)));
    table.add_row(std::move(row));
  }
  std::vector<std::string> totals{"total"};
  for (const auto& layer : layers) {
    totals.push_back(util::with_commas(static_cast<std::int64_t>(layer_totals[layer])));
  }
  totals.push_back(util::with_commas(static_cast<std::int64_t>(ledger.total_drops())));
  table.add_row(std::move(totals));

  std::ostringstream os;
  os << "Loss autopsy (drops by cause x layer):\n" << table.to_string();
  if (!ledger.rewrites.empty()) {
    os << "ECN rewrites in flight:";
    for (const auto& [key, n] : ledger.rewrites) {
      os << " " << key.second << "@" << key.first << "="
         << util::with_commas(static_cast<std::int64_t>(n));
    }
    os << "\n";
  }
  return os.str();
}

std::string render_sketched_summary(const TelemetryAggregate& telemetry) {
  if (!telemetry.active()) return "";
  const auto& config = telemetry.config();
  std::ostringstream os;
  os << util::strf(
      "Telemetry (sketched): %" PRIu64 " traces folded (%" PRIu64
      " kept exact, sample-every=%d), %" PRIu64
      " drop records live only in the sketches.\n",
      telemetry.traces_folded(), telemetry.sampled_exact_traces(),
      config.sample_every, telemetry.folded_records());
  os << util::strf(
      "Estimates never undercount; overcount <= %" PRIu64
      " per key (eps=%g of %" PRIu64 " events, confidence %g).\n",
      telemetry.error_bound(), config.epsilon, telemetry.counts().total(),
      1.0 - config.delta);
  const auto ledger = estimated_ledger(telemetry);
  const auto table = render_loss_autopsy(ledger);
  if (!table.empty()) {
    os << "Estimated " << table;  // "Estimated Loss autopsy (drops by ...)"
  }
  const auto& rtt = telemetry.rtt();
  if (rtt.count() > 0) {
    os << util::strf(
        "rtt: n=%" PRIu64 " p50=%.3fms p90=%.3fms p99=%.3fms "
        "(relative error <= %g)\n",
        rtt.count(), static_cast<double>(rtt.quantile(0.50)) / 1e6,
        static_cast<double>(rtt.quantile(0.90)) / 1e6,
        static_cast<double>(rtt.quantile(0.99)) / 1e6, rtt.relative_error());
  }
  const auto& budget = telemetry.budget();
  os << util::strf("budget: %zu/%zu bytes (peak %zu), %" PRIu64
                   " charges admitted, %" PRIu64 " rejected, %" PRIu64
                   " keys untracked\n",
                   budget.used(), budget.cap(), budget.peak(),
                   budget.admitted(), budget.rejected(),
                   telemetry.untracked_keys());
  return os.str();
}

}  // namespace ecnprobe::obs
