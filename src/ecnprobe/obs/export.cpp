#include "ecnprobe/obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/util/table.hpp"

namespace ecnprobe::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Exact decimal rendering of a fixed-point milli value ("12.345").
std::string milli_to_string(std::int64_t milli) {
  const char* sign = milli < 0 ? "-" : "";
  const std::int64_t abs = milli < 0 ? -milli : milli;
  return util::strf("%s%" PRId64 ".%03" PRId64, sign, abs / 1000, abs % 1000);
}

std::string labels_to_json(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  return out + "}";
}

/// Prometheus text-format label values escape backslash, double quote and
/// newline (and nothing else); node names flow into label values verbatim,
/// so a hostile name must not be able to break out of the quoted string or
/// smuggle an extra sample line into the exposition.
std::string prometheus_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// {cause="greylist",layer="policy"} -- keys already sorted by LabelSet.
std::string labels_to_prometheus(const LabelSet& labels, const std::string& extra_key = "",
                                 const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + prometheus_escape(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + prometheus_escape(extra_value) + "\"";
  }
  return out + "}";
}

std::string bound_to_string(double bound) { return util::strf("%g", bound); }

void sample_to_json(std::string& out, const FamilySnapshot& family,
                    const SampleValue& value) {
  switch (family.kind) {
    case MetricKind::Counter:
      out += util::strf("%" PRIu64, value.counter);
      break;
    case MetricKind::Gauge:
      out += util::strf("%" PRId64, value.gauge);
      break;
    case MetricKind::Histogram: {
      out += util::strf("{\"count\":%" PRIu64 ",\"sum\":%s,\"buckets\":[", value.count,
                        milli_to_string(value.sum_milli).c_str());
      for (std::size_t i = 0; i < value.buckets.size(); ++i) {
        if (i > 0) out += ",";
        const std::string le =
            i < family.bounds.size() ? bound_to_string(family.bounds[i]) : "+Inf";
        out += util::strf("{\"le\":\"%s\",\"count\":%" PRIu64 "}", le.c_str(),
                          value.buckets[i]);
      }
      out += "]}";
      break;
    }
  }
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first_family = true;
  for (const auto& [name, family] : snapshot.families) {
    if (!first_family) out += ",";
    first_family = false;
    out += "\"" + json_escape(name) + "\":{\"kind\":\"" +
           std::string(to_string(family.kind)) + "\",\"samples\":[";
    bool first_sample = true;
    for (const auto& [labels, value] : family.samples) {
      if (!first_sample) out += ",";
      first_sample = false;
      out += "{\"labels\":" + labels_to_json(labels) + ",\"value\":";
      sample_to_json(out, family, value);
      out += "}";
    }
    out += "]}";
  }
  return out + "}";
}

std::string to_json(const LedgerSnapshot& ledger) {
  const auto section =
      [](const std::map<std::pair<std::string, std::string>, std::uint64_t>& entries) {
        std::string out = "{";
        bool first = true;
        for (const auto& [key, n] : entries) {
          if (!first) out += ",";
          first = false;
          out += "\"" + json_escape(key.first) + "/" + json_escape(key.second) +
                 "\":" + util::strf("%" PRIu64, n);
        }
        return out + "}";
      };
  return util::strf("{\"drops\":%s,\"total_drops\":%" PRIu64
                    ",\"rewrites\":%s,\"total_rewrites\":%" PRIu64 "}",
                    section(ledger.drops).c_str(), ledger.total_drops(),
                    section(ledger.rewrites).c_str(), ledger.total_rewrites());
}

std::string to_json(const ObsSnapshot& snapshot) {
  return "{\"metrics\":" + to_json(snapshot.metrics) +
         ",\"drop_ledger\":" + to_json(snapshot.ledger) + "}";
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, family] : snapshot.families) {
    if (!family.help.empty()) out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " + std::string(to_string(family.kind)) + "\n";
    for (const auto& [labels, value] : family.samples) {
      switch (family.kind) {
        case MetricKind::Counter:
          out += name + labels_to_prometheus(labels) +
                 util::strf(" %" PRIu64 "\n", value.counter);
          break;
        case MetricKind::Gauge:
          out += name + labels_to_prometheus(labels) +
                 util::strf(" %" PRId64 "\n", value.gauge);
          break;
        case MetricKind::Histogram: {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < value.buckets.size(); ++i) {
            cumulative += value.buckets[i];
            const std::string le =
                i < family.bounds.size() ? bound_to_string(family.bounds[i]) : "+Inf";
            out += name + "_bucket" + labels_to_prometheus(labels, "le", le) +
                   util::strf(" %" PRIu64 "\n", cumulative);
          }
          out += name + "_sum" + labels_to_prometheus(labels) + " " +
                 milli_to_string(value.sum_milli) + "\n";
          out += name + "_count" + labels_to_prometheus(labels) +
                 util::strf(" %" PRIu64 "\n", value.count);
          break;
        }
      }
    }
  }
  return out;
}

std::string render_metrics_report_json(const ObsSnapshot& campaign,
                                       const MetricsSnapshot* runtime) {
  std::string out = "{\"campaign\":" + to_json(campaign) + ",\"runtime\":";
  out += runtime != nullptr ? to_json(*runtime) : "null";
  return out + "}\n";
}

bool write_metrics_files(const std::string& path, const ObsSnapshot& campaign,
                         const MetricsSnapshot* runtime) {
  std::ofstream json_os(path);
  if (!json_os) return false;
  json_os << render_metrics_report_json(campaign, runtime);

  std::string prom_path = path;
  const auto dot = prom_path.rfind('.');
  const auto slash = prom_path.rfind('/');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    prom_path.resize(dot);
  }
  prom_path += ".prom";
  MetricsSnapshot combined = campaign.metrics;
  if (runtime != nullptr) combined.merge(*runtime);
  std::ofstream prom_os(prom_path);
  if (!prom_os) return false;
  prom_os << to_prometheus(combined);
  return json_os.good() && prom_os.good();
}

std::string render_loss_autopsy(const LedgerSnapshot& ledger) {
  if (ledger.drops.empty() && ledger.rewrites.empty()) return "";

  // Column per layer that actually saw a drop, row per cause.
  std::set<std::string> layers;
  std::set<std::string> causes;
  for (const auto& [key, n] : ledger.drops) {
    layers.insert(key.first);
    causes.insert(key.second);
  }

  std::vector<std::string> headers{"cause"};
  std::vector<util::TextTable::Align> aligns{util::TextTable::Align::Left};
  for (const auto& layer : layers) {
    headers.push_back(layer);
    aligns.push_back(util::TextTable::Align::Right);
  }
  headers.push_back("total");
  aligns.push_back(util::TextTable::Align::Right);

  util::TextTable table(headers, aligns);
  std::map<std::string, std::uint64_t> layer_totals;
  for (const auto& cause : causes) {
    std::vector<std::string> row{cause};
    std::uint64_t row_total = 0;
    for (const auto& layer : layers) {
      const auto it = ledger.drops.find({layer, cause});
      const std::uint64_t n = it != ledger.drops.end() ? it->second : 0;
      row.push_back(n == 0 ? "." : util::with_commas(static_cast<std::int64_t>(n)));
      row_total += n;
      layer_totals[layer] += n;
    }
    row.push_back(util::with_commas(static_cast<std::int64_t>(row_total)));
    table.add_row(std::move(row));
  }
  std::vector<std::string> totals{"total"};
  for (const auto& layer : layers) {
    totals.push_back(util::with_commas(static_cast<std::int64_t>(layer_totals[layer])));
  }
  totals.push_back(util::with_commas(static_cast<std::int64_t>(ledger.total_drops())));
  table.add_row(std::move(totals));

  std::ostringstream os;
  os << "Loss autopsy (drops by cause x layer):\n" << table.to_string();
  if (!ledger.rewrites.empty()) {
    os << "ECN rewrites in flight:";
    for (const auto& [key, n] : ledger.rewrites) {
      os << " " << key.second << "@" << key.first << "="
         << util::with_commas(static_cast<std::int64_t>(n));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ecnprobe::obs
