#include "ecnprobe/obs/timeseries.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "ecnprobe/obs/event_stream.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::obs {

namespace {

util::Error bad(const std::string& what) {
  return util::make_error("timeseries", what);
}

bool parse_double_strict(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool parse_int_strict(const std::string& tok, int* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || v < -(1l << 30) ||
      v > (1l << 30)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

std::string TimeSeriesConfig::summary() const {
  if (!enabled) return "off";
  return util::strf("window-ms=%lld alpha=%g max-windows=%d",
                    static_cast<long long>(window_nanos / 1'000'000), alpha,
                    max_windows);
}

util::Expected<TimeSeriesConfig> TimeSeriesConfig::parse(
    const std::string& spec) {
  TimeSeriesConfig config;
  const std::string trimmed{util::trim(spec)};
  if (trimmed.empty()) return bad("empty timeseries spec");
  if (trimmed == "off") return config;
  config.enabled = true;
  // A bare number is shorthand for the window width in sim-milliseconds.
  int n = 0;
  if (parse_int_strict(trimmed, &n)) {
    if (n < 1) return bad("window width must be >= 1 ms");
    config.window_nanos = static_cast<std::int64_t>(n) * 1'000'000;
    return config;
  }
  for (const auto& raw : util::split(trimmed, ',')) {
    const std::string part{util::trim(raw)};
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      return bad("expected key=value, got '" + part + "'");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    double d = 0;
    if (key == "window-ms") {
      if (!parse_int_strict(value, &n) || n < 1) {
        return bad("window-ms must be >= 1, got '" + value + "'");
      }
      config.window_nanos = static_cast<std::int64_t>(n) * 1'000'000;
    } else if (key == "alpha") {
      if (!parse_double_strict(value, &d) || d <= 0.0 || d > 1.0) {
        return bad("alpha must be in (0, 1], got '" + value + "'");
      }
      config.alpha = d;
    } else if (key == "max-windows") {
      if (!parse_int_strict(value, &n) || n < 1) {
        return bad("max-windows must be >= 1, got '" + value + "'");
      }
      config.max_windows = n;
    } else {
      return bad("unknown timeseries key '" + key + "'");
    }
  }
  return config;
}

bool TimeSeriesWindow::empty() const {
  return counts.empty() && rtt_buckets.empty() && rtt_count == 0 &&
         rtt_sum_nanos == 0;
}

void TimeSeriesWindow::merge(const TimeSeriesWindow& other) {
  for (const auto& [key, n] : other.counts) counts[key] += n;
  for (const auto& [bucket, n] : other.rtt_buckets) rtt_buckets[bucket] += n;
  rtt_count += other.rtt_count;
  rtt_sum_nanos += other.rtt_sum_nanos;
}

void TimeSeriesDelta::merge(const TimeSeriesDelta& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  if (window_nanos != other.window_nanos ||
      rtt_subbits != other.rtt_subbits) {
    throw std::invalid_argument(
        "TimeSeriesDelta::merge: mismatched window/subbits config");
  }
  for (const auto& [index, window] : other.windows) {
    windows[index].merge(window);
  }
}

void TimeSeriesRecorder::arm(const TimeSeriesConfig& config) {
  armed_ = config.enabled;
  config_ = config;
  // Same subbits derivation as the telemetry RTT histogram, so a window's
  // buckets line up with the campaign-wide quantile sketch.
  rtt_subbits_ = config.enabled ? LogHistogram(config.alpha).subbits() : 0;
  current_.clear();
  current_.window_nanos = config.enabled ? config.window_nanos : 0;
  current_.rtt_subbits = rtt_subbits_;
}

void TimeSeriesRecorder::disarm() {
  armed_ = false;
  current_ = TimeSeriesDelta{};
}

void TimeSeriesRecorder::begin_trace(int trace) {
  if (!armed_) return;
  trace_ = trace;
  origin_nanos_ = clock_ ? clock_() : 0;
  last_window_ = 0;
  current_.clear();
}

TimeSeriesWindow& TimeSeriesRecorder::window_now() {
  std::int64_t index = 0;
  if (clock_) {
    const std::int64_t elapsed = clock_() - origin_nanos_;
    if (elapsed > 0) index = elapsed / config_.window_nanos;
  }
  if (index >= config_.max_windows) index = config_.max_windows - 1;
  const auto window = static_cast<std::int32_t>(index);
  if (window > last_window_) {
    last_window_ = window;
    // Observation-only: the SSE stream hears about rollovers, nothing in
    // the determinism contract does.
    auto& stream = EventStream::process();
    if (stream.enabled()) {
      stream.emit("window", util::strf("trace=%d window=%d", trace_,
                                       static_cast<int>(window)));
    }
  }
  return current_.windows[window];
}

void TimeSeriesRecorder::on_probe(std::string_view test,
                                  std::string_view outcome) {
  if (!armed_) return;
  auto& window = window_now();
  ++window.counts["probe:" + std::string(test) + "/" + std::string(outcome)];
}

void TimeSeriesRecorder::on_drop(std::string_view layer,
                                 std::string_view cause) {
  if (!armed_) return;
  auto& window = window_now();
  ++window.counts["drop:" + std::string(layer) + "/" + std::string(cause)];
}

void TimeSeriesRecorder::on_rewrite(std::string_view layer,
                                    std::string_view cause) {
  if (!armed_) return;
  auto& window = window_now();
  ++window.counts["rewrite:" + std::string(layer) + "/" + std::string(cause)];
}

void TimeSeriesRecorder::observe_rtt(util::SimDuration rtt) {
  if (!armed_) return;
  auto& window = window_now();
  const std::int64_t nanos = rtt.count_nanos();
  ++window.rtt_buckets[LogHistogram::bucket_index(nanos, rtt_subbits_)];
  ++window.rtt_count;
  window.rtt_sum_nanos += nanos;
}

}  // namespace ecnprobe::obs
