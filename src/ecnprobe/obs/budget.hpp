// Telemetry budget accountant: a byte-denominated allowance for the
// variable-size parts of sketched telemetry (the tracked-key directory,
// exemplar records). The fixed-size sketches are charged once at arm
// time; everything that grows with observed cardinality must ask
// try_charge() first and is refused -- counted, not silently dropped --
// once the budget is spent. The accountant's own numbers (used, peak,
// admitted, rejected) are exported as self-metrics so a refused campaign
// is visible in the report rather than just missing rows.
//
// Deterministic by construction: charges happen in plan order during
// aggregate folding, so the admit/reject sequence is identical at any
// worker count.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ecnprobe::obs {

class TelemetryBudget {
 public:
  TelemetryBudget() = default;
  explicit TelemetryBudget(std::size_t cap_bytes) : cap_(cap_bytes) {}

  std::size_t cap() const { return cap_; }
  std::size_t used() const { return used_; }
  std::size_t peak() const { return peak_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

  // Admit a variable-size allocation. False (and counted as a rejection)
  // when it would push usage past the cap.
  bool try_charge(std::size_t bytes) {
    if (cap_ != 0 && used_ + bytes > cap_) {
      ++rejected_;
      return false;
    }
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
    ++admitted_;
    return true;
  }

  // Record a mandatory fixed allocation (the sketches themselves); never
  // refused, but counted toward used/peak so the report shows the whole
  // footprint.
  void charge_fixed(std::size_t bytes) {
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
  }

  void release(std::size_t bytes) { used_ = bytes > used_ ? 0 : used_ - bytes; }

  void clear() { *this = TelemetryBudget{cap_}; }

 private:
  std::size_t cap_ = 0;  // 0 = unlimited
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace ecnprobe::obs
