// Exact text codec for ObsSnapshot, used by the campaign journal.
//
// Snapshots round-trip byte-exactly: decode(encode(s)) re-encodes to the
// same bytes, so a resumed campaign that replays per-trace metric deltas
// from the journal merges to output byte-identical to an uninterrupted
// run. Everything a snapshot stores is integral except histogram bucket
// bounds, which are printed with %.17g (enough digits to round-trip any
// IEEE double exactly).
//
// The format is line-based, one record per line:
//
//   M <family> <kind> <help> <nbounds> <bounds...>   -- family header
//   S <nlabels> <k> <v>... <counter> <gauge> <count> <sum_milli> <nbuckets> <buckets...>
//   D <layer> <cause> <n>                            -- ledger drop total
//   R <layer> <cause> <n>                            -- ledger rewrite total
//   T <key> <n>                                      -- telemetry keyed count
//   L <bucket> <n>                                   -- telemetry rtt bucket
//   Q <rtt_count> <rtt_sum_nanos>                    -- telemetry rtt totals
//   F <folded_records> <sampled_exact>               -- telemetry fold flags
//   E <trace> <layer> <cause> <node>                 -- telemetry exemplar
//   Z <window_nanos> <rtt_subbits>                   -- timeseries config echo
//   W <window> <key> <n>                             -- timeseries keyed count
//   X <window> <bucket> <n>                          -- timeseries rtt bucket
//   Y <window> <rtt_count> <rtt_sum_nanos>           -- timeseries rtt totals
//
// Telemetry and timeseries records only appear when their layer is armed;
// a snapshot without them encodes to the same bytes as before those
// layers existed, so old journals stay readable and exact journals
// byte-stable.
//
// An S line belongs to the most recent M line. Free-form fields (family,
// help, label keys/values) are percent-escaped so they can never contain
// a separator; an empty string encodes as "%".
#pragma once

#include <string>

#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/util/expected.hpp"

namespace ecnprobe::obs {

/// Percent-escape: space, newline, CR, and '%' become %XX; the empty
/// string becomes "%". Output never contains whitespace and is never
/// empty, so tokens survive whitespace-splitting.
std::string escape_token(std::string_view raw);
util::Expected<std::string> unescape_token(std::string_view token);

std::string encode_obs(const ObsSnapshot& snapshot);
util::Expected<ObsSnapshot> decode_obs(std::string_view text);

}  // namespace ecnprobe::obs
