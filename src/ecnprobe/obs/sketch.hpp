// Count-min sketch: a fixed-size frequency estimator for high-cardinality
// keyed counters (per-hop, per-AS, per-flow drop causes) where an exact
// map would grow O(keys) on the campaign hot path.
//
// The classic Cormode-Muthukrishnan bounds hold: for a sketch built with
// (epsilon, delta), every point estimate E(k) satisfies
//
//     true(k) <= E(k) <= true(k) + epsilon * N      w.p. >= 1 - delta
//
// where N is the total weight added across all keys. Estimates NEVER
// undercount -- each of the depth rows only ever adds, and the estimate
// takes the row minimum -- so exact-vs-sketched reconciliation is a
// one-sided interval check.
//
// Determinism contract: the row hash functions are pure functions of
// (seed, row), derived via util::derive_seed, and merge() is cell-wise
// integer addition -- commutative and associative. Folding per-trace
// deltas in plan order therefore yields byte-identical sketches at any
// worker count, and two sketches built from the same (config, seed,
// stream) are bit-identical on every platform. No floating point touches
// the cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ecnprobe::obs {

class CountMinSketch {
 public:
  // An inert sketch: add/estimate are no-ops returning zero. Lets
  // aggregates hold a sketch member unconditionally.
  CountMinSketch() = default;

  // width = ceil(e / epsilon), depth = ceil(ln(1 / delta)). Throws
  // std::invalid_argument when epsilon/delta leave (0, 1) or the
  // resulting table would exceed ~64M cells.
  CountMinSketch(double epsilon, double delta, std::uint64_t seed);

  bool active() const { return width_ != 0; }

  void add(std::string_view key, std::uint64_t weight = 1);

  // Row-minimum point estimate. Zero when inert or never-added.
  std::uint64_t estimate(std::string_view key) const;

  // Total weight added (N in the error bound).
  std::uint64_t total() const { return total_; }

  // ceil(epsilon * total): the one-sided overcount bound each estimate
  // respects with probability >= 1 - delta.
  std::uint64_t error_bound() const;

  // Cell-wise addition. Throws std::invalid_argument when dimensions or
  // seeds differ -- merging incompatible sketches would silently corrupt
  // every estimate.
  void merge(const CountMinSketch& other);

  void clear();

  double epsilon() const { return epsilon_; }
  double delta() const { return delta_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t width() const { return width_; }
  std::size_t depth() const { return depth_; }
  std::size_t memory_bytes() const;

 private:
  std::size_t cell_index(std::size_t row, std::string_view key) const;

  double epsilon_ = 0.0;
  double delta_ = 0.0;
  std::uint64_t seed_ = 0;
  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> row_basis_;  // per-row FNV basis from the seed
  std::vector<std::uint64_t> cells_;      // depth_ rows of width_ cells
};

}  // namespace ecnprobe::obs
