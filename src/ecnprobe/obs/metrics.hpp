// Lock-cheap metrics: counters, gauges, and fixed-bucket histograms grouped
// into labeled families in a MetricsRegistry.
//
// Design constraints, in order:
//
//   1. *Determinism.* Campaign metrics must be byte-identical between the
//      sequential executor and the sharded parallel one. Everything a
//      snapshot stores is integral (counters, gauge sums, bucket counts,
//      and histogram sums in fixed-point milli-units), so merging per-trace
//      deltas is exact and commutative -- no floating-point accumulation
//      order to worry about. Snapshots order families by name and samples
//      by label set (std::map), so two equal snapshots encode to equal
//      bytes.
//   2. *Cheap on the hot path.* Looking an instrument up takes a mutex;
//      incrementing one is a single relaxed atomic add. Call sites that
//      fire per-packet cache the Counter*/Histogram* pointer once --
//      instrument pointers are stable for the registry's lifetime.
//   3. *Thread-safe.* Workers in a parallel campaign own private
//      registries, but the process-wide default and the runtime registry
//      (progress gauges, worker utilization) are shared across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ecnprobe::obs {

/// Labels attached to one instrument within a family. std::map so label
/// order is canonical regardless of call-site order.
using LabelSet = std::map<std::string, std::string>;

enum class MetricKind { Counter, Gauge, Histogram };

std::string_view to_string(MetricKind kind);

/// Monotonic counter. Relaxed atomics: totals are read only at snapshot
/// points (trace boundaries, progress polls), never used for ordering.
class Counter {
public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Gauge: a value that can go up and down (in-flight traces, queue depth).
class Gauge {
public:
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::int64_t n) { value_.store(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Observations are bucketed by upper bound
/// (value <= bound); values above the last bound land in the overflow
/// bucket. The running sum is kept in fixed-point milli-units so that
/// snapshot subtraction and merging are exact.
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum_milli() const { return sum_milli_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (overflow)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_milli_{0};
};

/// Value of one instrument at snapshot time. Which fields are meaningful
/// depends on the owning family's kind.
struct SampleValue {
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  // Histogram: per-bucket counts (bounds.size() + 1, last = overflow).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::int64_t sum_milli = 0;

  bool is_zero() const;
  void add(const SampleValue& other);
  /// this - base, elementwise. Missing buckets in `base` count as zero.
  SampleValue minus(const SampleValue& base) const;
};

/// One family's worth of samples at snapshot time.
struct FamilySnapshot {
  MetricKind kind = MetricKind::Counter;
  std::string help;
  std::vector<double> bounds;  // histograms only
  std::map<LabelSet, SampleValue> samples;
};

/// A point-in-time copy of a registry (or a delta between two such
/// copies). Plain data: safe to move across threads, merge, and encode.
struct MetricsSnapshot {
  std::map<std::string, FamilySnapshot> families;

  bool empty() const { return families.empty(); }
  /// Element-wise sum; families/samples missing on one side are adopted.
  void merge(const MetricsSnapshot& other);
  /// Element-wise difference vs an earlier snapshot of the same registry.
  /// All-zero samples (registered but untouched in the window) are
  /// dropped, so the delta of an idle window is empty.
  MetricsSnapshot delta_since(const MetricsSnapshot& base) const;
};

/// A process- or worker-scoped collection of metric families. Instrument
/// lookups (counter/gauge/histogram) are mutex-guarded and return stable
/// pointers; increments on the returned instruments are lock-free.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& family, const LabelSet& labels = {},
                   const std::string& help = "");
  Gauge* gauge(const std::string& family, const LabelSet& labels = {},
               const std::string& help = "");
  /// `bounds` must be strictly increasing; it is fixed by the first call
  /// for a family and ignored afterwards.
  Histogram* histogram(const std::string& family, std::vector<double> bounds,
                       const LabelSet& labels = {}, const std::string& help = "");

  MetricsSnapshot snapshot() const;

private:
  struct Family {
    MetricKind kind;
    std::string help;
    std::vector<double> bounds;
    // unique_ptr cells so instrument addresses survive map rehashing.
    std::map<LabelSet, std::unique_ptr<Counter>> counters;
    std::map<LabelSet, std::unique_ptr<Gauge>> gauges;
    std::map<LabelSet, std::unique_ptr<Histogram>> histograms;
  };

  Family& family_locked(const std::string& name, MetricKind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace ecnprobe::obs
