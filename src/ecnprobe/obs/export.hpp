// Deterministic encoders for metrics and the drop ledger: JSON (for the
// --metrics-out files and CI equality checks) and Prometheus text
// exposition (for scrape-style consumption), plus the human-readable
// "loss autopsy" table printed next to the paper figures.
//
// Encoders iterate std::maps only, so two equal snapshots always encode
// to the same bytes -- that property is load-bearing: CI diffs the JSON of
// a sequential campaign against a sharded one.
#pragma once

#include <string>

#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/obs/metrics.hpp"

namespace ecnprobe::obs {

/// JSON object mapping family name -> {kind, help, samples}.
std::string to_json(const MetricsSnapshot& snapshot);

/// JSON object with drops/rewrites keyed "layer/cause" -> count.
std::string to_json(const LedgerSnapshot& ledger);

/// JSON object {"metrics": ..., "drop_ledger": ...}.
std::string to_json(const ObsSnapshot& snapshot);

/// Prometheus text exposition (HELP/TYPE + samples). Histogram samples
/// expand to _bucket{le=...}/_sum/_count as usual.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// The full --metrics-out JSON document:
///   {"campaign": <ObsSnapshot>, "runtime": <MetricsSnapshot>}
/// The campaign section is deterministic under --workers N; the runtime
/// section (worker utilization, progress gauges) is wall-clock dependent
/// and excluded from equality checks. `runtime` may be null.
std::string render_metrics_report_json(const ObsSnapshot& campaign,
                                       const MetricsSnapshot* runtime);

/// Writes the JSON report to `path` and the Prometheus exposition of the
/// same data to a sibling file (path with its extension replaced by
/// ".prom"). Returns false if either file cannot be written.
bool write_metrics_files(const std::string& path, const ObsSnapshot& campaign,
                         const MetricsSnapshot* runtime);

/// Drops-by-cause x layer table with row/column totals, plus a rewrite
/// summary line. Empty string when the ledger recorded nothing.
std::string render_loss_autopsy(const LedgerSnapshot& ledger);

}  // namespace ecnprobe::obs
