// Deterministic encoders for metrics and the drop ledger: JSON (for the
// --metrics-out files and CI equality checks) and Prometheus text
// exposition (for scrape-style consumption), plus the human-readable
// "loss autopsy" table printed next to the paper figures.
//
// Encoders iterate std::maps only, so two equal snapshots always encode
// to the same bytes -- that property is load-bearing: CI diffs the JSON of
// a sequential campaign against a sharded one.
#pragma once

#include <string>

#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/obs/metrics.hpp"
#include "ecnprobe/obs/telemetry.hpp"

namespace ecnprobe::obs {

/// JSON object mapping family name -> {kind, help, samples}.
std::string to_json(const MetricsSnapshot& snapshot);

/// JSON object with drops/rewrites keyed "layer/cause" -> count.
std::string to_json(const LedgerSnapshot& ledger);

/// JSON object {"metrics": ..., "drop_ledger": ...}, plus a
/// "timeseries" member when the sim-time-series layer recorded anything
/// (omitted otherwise so pre-series documents stay byte-identical).
std::string to_json(const ObsSnapshot& snapshot);

/// JSON object {"window_nanos": ..., "rtt_subbits": ..., "windows": {...}}
/// for the deterministic sim-time series. "null" when empty.
std::string to_json(const TimeSeriesDelta& series);

/// Prometheus exposition of the sim-time series: per-window event
/// counters (`window` label carries the sim-time window index) and a
/// per-window RTT histogram. Empty string when the series is empty.
std::string to_prometheus(const TimeSeriesDelta& series);

/// Prometheus text exposition (HELP/TYPE + samples). Histogram samples
/// expand to _bucket{le=...}/_sum/_count as usual.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON object for the sketched-telemetry aggregate: config + error
/// bounds, budget self-metrics, keyed estimates, rtt quantiles,
/// exemplars. "null" when the aggregate is inactive (exact mode).
std::string to_json(const TelemetryAggregate& telemetry);

/// Prometheus exposition of the sketch-backed families. Every sample
/// carries an `estimate="true"` label, and the block opens with comment
/// lines stating the epsilon/delta/alpha error contract, so a scraper
/// can never mistake an estimate for a truth counter. Empty string when
/// inactive.
std::string to_prometheus(const TelemetryAggregate& telemetry);

/// The drop/rewrite cause totals reconstructed from the sketch, shaped
/// like a LedgerSnapshot so the autopsy/report tables can render them.
/// Each value is an estimate: true <= value <= true + error_bound().
LedgerSnapshot estimated_ledger(const TelemetryAggregate& telemetry);

/// The full --metrics-out JSON document:
///   {"campaign": <ObsSnapshot>, "runtime": <MetricsSnapshot>}
/// plus a "telemetry" member when a sketched aggregate is active. The
/// campaign and telemetry sections are deterministic under --workers N;
/// the runtime section (worker utilization, progress gauges) is
/// wall-clock dependent and excluded from equality checks. `runtime` and
/// `telemetry` may be null; exact-mode documents are byte-identical to
/// the pre-telemetry format.
std::string render_metrics_report_json(const ObsSnapshot& campaign,
                                       const MetricsSnapshot* runtime,
                                       const TelemetryAggregate* telemetry = nullptr);

/// Writes the JSON report to `path` and the Prometheus exposition of the
/// same data to a sibling file (path with its extension replaced by
/// ".prom"). `path == "-"` streams the JSON report to stdout and skips
/// the Prometheus sibling. Returns false if either file cannot be
/// written.
bool write_metrics_files(const std::string& path, const ObsSnapshot& campaign,
                         const MetricsSnapshot* runtime,
                         const TelemetryAggregate* telemetry = nullptr);

/// Drops-by-cause x layer table with row/column totals, plus a rewrite
/// summary line. Empty string when the ledger recorded nothing.
std::string render_loss_autopsy(const LedgerSnapshot& ledger);

/// Human-readable summary of a sketched campaign: the estimated loss
/// table (flagged as estimates with the overcount bound), rtt quantiles,
/// sampling and budget accounting. Empty string when inactive.
std::string render_sketched_summary(const TelemetryAggregate& telemetry);

}  // namespace ecnprobe::obs
