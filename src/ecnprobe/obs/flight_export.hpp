// Flight-recorder exporters:
//
//   * pcapng -- one Enhanced Packet Block per event that carries wire
//     bytes, with an opt_comment naming the span key, event type, emitting
//     node, layer, and detail. The same probe appears once per hop it
//     traversed, which is the point: Wireshark shows the packet's whole
//     life, comments explain each sighting.
//   * Chrome trace-event JSON -- instant events on a (pid=trace,
//     tid=probe) grid, loadable in Perfetto / chrome://tracing. Events
//     without wire bytes (timeouts) appear here even though pcapng has
//     nothing to show for them.
//
// Both encoders are deterministic: byte ordering is explicit
// little-endian, timestamps are exact integer nanoseconds, and events are
// emitted in the order given -- so two equal event vectors always produce
// identical files. CI diffs a --workers 1 recording against --workers 8.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "ecnprobe/obs/flight.hpp"

namespace ecnprobe::obs {

/// Writes a pcapng section (SHB + one raw-IP IDB + EPBs) to `os`; returns
/// the number of packet blocks written. Events without wire bytes are
/// skipped (a timeout has no packet).
std::size_t write_pcapng(std::ostream& os, const std::vector<FlightEvent>& events);

bool write_pcapng_file(const std::string& path, const std::vector<FlightEvent>& events);

/// Chrome trace-event JSON ({"traceEvents": [...]}) covering every event,
/// wire bytes or not. Timestamps are microseconds with exact nanosecond
/// fractions.
std::string to_chrome_trace_json(const std::vector<FlightEvent>& events);

/// Writes `prefix`.pcapng and `prefix`.trace.json. Returns false if either
/// file cannot be written.
bool write_flight_files(const std::string& prefix, const std::vector<FlightEvent>& events);

}  // namespace ecnprobe::obs
