#include "ecnprobe/obs/event_stream.hpp"

namespace ecnprobe::obs {

EventStream& EventStream::process() {
  static EventStream stream;
  return stream;
}

void EventStream::emit(std::string kind, std::string text) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ObsEvent event;
    event.id = next_id_++;
    event.kind = std::move(kind);
    event.text = std::move(text);
    events_.push_back(std::move(event));
    while (events_.size() > kCapacity) {
      events_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  cv_.notify_all();
}

std::vector<ObsEvent> EventStream::poll_after(std::uint64_t after_id,
                                              std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, wait, [&] {
    return !events_.empty() && events_.back().id > after_id;
  });
  std::vector<ObsEvent> out;
  for (const auto& event : events_) {
    if (event.id > after_id) out.push_back(event);
  }
  return out;
}

std::uint64_t EventStream::last_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_ - 1;
}

void EventStream::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace ecnprobe::obs
