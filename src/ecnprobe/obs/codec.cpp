#include "ecnprobe/obs/codec.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::obs {
namespace {

const char* kHex = "0123456789ABCDEF";

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool parse_u64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_i64(const std::string& tok, std::int64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_f64(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

util::Error bad(const std::string& what) { return util::make_error("obs-codec", what); }

/// Tokenizer over one line. Tokens are space-separated; decoding validates
/// exact token counts so trailing garbage is rejected.
struct LineTokens {
  std::vector<std::string> toks;
  std::size_t next = 0;

  bool take(std::string* out) {
    if (next >= toks.size()) return false;
    *out = toks[next++];
    return true;
  }
  bool done() const { return next == toks.size(); }
};

}  // namespace

std::string escape_token(std::string_view raw) {
  if (raw.empty()) return "%";
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '%') {
      const auto b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

util::Expected<std::string> unescape_token(std::string_view token) {
  if (token == "%") return std::string();
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out.push_back(token[i]);
      continue;
    }
    if (i + 2 >= token.size()) return bad("truncated %-escape");
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nibble(token[i + 1]);
    const int lo = nibble(token[i + 2]);
    if (hi < 0 || lo < 0) return bad("bad %-escape");
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::string encode_obs(const ObsSnapshot& snapshot) {
  std::string out;
  auto append = [&out](const std::string& line) {
    out += line;
    out.push_back('\n');
  };
  for (const auto& [name, family] : snapshot.metrics.families) {
    std::string line = "M " + escape_token(name) + " " +
                       std::string(to_string(family.kind)) + " " + escape_token(family.help) +
                       " " + std::to_string(family.bounds.size());
    for (const double b : family.bounds) line += " " + format_double(b);
    append(line);
    for (const auto& [labels, value] : family.samples) {
      std::string s = "S " + std::to_string(labels.size());
      for (const auto& [k, v] : labels) s += " " + escape_token(k) + " " + escape_token(v);
      s += " " + std::to_string(value.counter) + " " + std::to_string(value.gauge) + " " +
           std::to_string(value.count) + " " + std::to_string(value.sum_milli) + " " +
           std::to_string(value.buckets.size());
      for (const std::uint64_t b : value.buckets) s += " " + std::to_string(b);
      append(s);
    }
  }
  for (const auto& [key, n] : snapshot.ledger.drops) {
    append("D " + escape_token(key.first) + " " + escape_token(key.second) + " " +
           std::to_string(n));
  }
  for (const auto& [key, n] : snapshot.ledger.rewrites) {
    append("R " + escape_token(key.first) + " " + escape_token(key.second) + " " +
           std::to_string(n));
  }
  // Telemetry records are emitted only when present, so exact-mode
  // encodings (empty delta) are byte-identical to the pre-telemetry
  // format -- old journals decode unchanged.
  for (const auto& [key, n] : snapshot.telemetry.counts) {
    append("T " + escape_token(key) + " " + std::to_string(n));
  }
  for (const auto& [bucket, n] : snapshot.telemetry.rtt_buckets) {
    append("L " + std::to_string(bucket) + " " + std::to_string(n));
  }
  if (snapshot.telemetry.rtt_count != 0 || snapshot.telemetry.rtt_sum_nanos != 0) {
    append("Q " + std::to_string(snapshot.telemetry.rtt_count) + " " +
           std::to_string(snapshot.telemetry.rtt_sum_nanos));
  }
  if (snapshot.telemetry.folded_records != 0 || snapshot.telemetry.sampled_exact != 0) {
    append("F " + std::to_string(snapshot.telemetry.folded_records) + " " +
           std::to_string(snapshot.telemetry.sampled_exact));
  }
  for (const auto& exemplar : snapshot.telemetry.exemplars) {
    append("E " + std::to_string(exemplar.trace) + " " + escape_token(exemplar.layer) +
           " " + escape_token(exemplar.cause) + " " + escape_token(exemplar.node));
  }
  // Time-series records follow the same only-when-present rule, so a
  // campaign without --timeseries journals the exact pre-series bytes.
  if (!snapshot.timeseries.empty()) {
    append("Z " + std::to_string(snapshot.timeseries.window_nanos) + " " +
           std::to_string(snapshot.timeseries.rtt_subbits));
    for (const auto& [index, window] : snapshot.timeseries.windows) {
      for (const auto& [key, n] : window.counts) {
        append("W " + std::to_string(index) + " " + escape_token(key) + " " +
               std::to_string(n));
      }
      for (const auto& [bucket, n] : window.rtt_buckets) {
        append("X " + std::to_string(index) + " " + std::to_string(bucket) +
               " " + std::to_string(n));
      }
      if (window.rtt_count != 0 || window.rtt_sum_nanos != 0) {
        append("Y " + std::to_string(index) + " " +
               std::to_string(window.rtt_count) + " " +
               std::to_string(window.rtt_sum_nanos));
      }
    }
  }
  return out;
}

util::Expected<ObsSnapshot> decode_obs(std::string_view text) {
  ObsSnapshot out;
  FamilySnapshot* current = nullptr;
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    if (raw_line.empty()) continue;
    LineTokens line;
    line.toks = util::split(raw_line, ' ');
    const std::string where = "line " + std::to_string(line_no);
    std::string tag;
    if (!line.take(&tag)) return bad(where + ": empty record");
    if (tag == "M") {
      std::string name_tok, kind_tok, help_tok, nbounds_tok;
      if (!line.take(&name_tok) || !line.take(&kind_tok) || !line.take(&help_tok) ||
          !line.take(&nbounds_tok)) {
        return bad(where + ": short M record");
      }
      auto name = unescape_token(name_tok);
      auto help = unescape_token(help_tok);
      if (!name || !help) return bad(where + ": bad escape in M record");
      FamilySnapshot family;
      if (kind_tok == "counter") family.kind = MetricKind::Counter;
      else if (kind_tok == "gauge") family.kind = MetricKind::Gauge;
      else if (kind_tok == "histogram") family.kind = MetricKind::Histogram;
      else return bad(where + ": unknown metric kind '" + kind_tok + "'");
      family.help = *help;
      std::uint64_t nbounds = 0;
      if (!parse_u64(nbounds_tok, &nbounds) || nbounds > 4096) {
        return bad(where + ": bad bounds count");
      }
      for (std::uint64_t i = 0; i < nbounds; ++i) {
        std::string b;
        double v = 0;
        if (!line.take(&b) || !parse_f64(b, &v)) return bad(where + ": bad bound");
        family.bounds.push_back(v);
      }
      if (!line.done()) return bad(where + ": trailing tokens in M record");
      current = &out.metrics.families[*name];
      *current = std::move(family);
    } else if (tag == "S") {
      if (current == nullptr) return bad(where + ": S record before any M record");
      std::string nlabels_tok;
      std::uint64_t nlabels = 0;
      if (!line.take(&nlabels_tok) || !parse_u64(nlabels_tok, &nlabels) || nlabels > 4096) {
        return bad(where + ": bad label count");
      }
      LabelSet labels;
      for (std::uint64_t i = 0; i < nlabels; ++i) {
        std::string k_tok, v_tok;
        if (!line.take(&k_tok) || !line.take(&v_tok)) return bad(where + ": short label");
        auto k = unescape_token(k_tok);
        auto v = unescape_token(v_tok);
        if (!k || !v) return bad(where + ": bad escape in label");
        labels[*k] = *v;
      }
      SampleValue value;
      std::string tok;
      std::uint64_t nbuckets = 0;
      if (!line.take(&tok) || !parse_u64(tok, &value.counter)) return bad(where + ": bad counter");
      if (!line.take(&tok) || !parse_i64(tok, &value.gauge)) return bad(where + ": bad gauge");
      if (!line.take(&tok) || !parse_u64(tok, &value.count)) return bad(where + ": bad count");
      if (!line.take(&tok) || !parse_i64(tok, &value.sum_milli)) return bad(where + ": bad sum");
      if (!line.take(&tok) || !parse_u64(tok, &nbuckets) || nbuckets > 4096) {
        return bad(where + ": bad bucket count");
      }
      for (std::uint64_t i = 0; i < nbuckets; ++i) {
        std::uint64_t b = 0;
        if (!line.take(&tok) || !parse_u64(tok, &b)) return bad(where + ": bad bucket");
        value.buckets.push_back(b);
      }
      if (!line.done()) return bad(where + ": trailing tokens in S record");
      current->samples[std::move(labels)] = std::move(value);
    } else if (tag == "D" || tag == "R") {
      std::string layer_tok, cause_tok, n_tok;
      std::uint64_t n = 0;
      if (!line.take(&layer_tok) || !line.take(&cause_tok) || !line.take(&n_tok) ||
          !parse_u64(n_tok, &n) || !line.done()) {
        return bad(where + ": bad ledger record");
      }
      auto layer = unescape_token(layer_tok);
      auto cause = unescape_token(cause_tok);
      if (!layer || !cause) return bad(where + ": bad escape in ledger record");
      auto& table = tag == "D" ? out.ledger.drops : out.ledger.rewrites;
      table[{*layer, *cause}] += n;
    } else if (tag == "T") {
      std::string key_tok, n_tok;
      std::uint64_t n = 0;
      if (!line.take(&key_tok) || !line.take(&n_tok) || !parse_u64(n_tok, &n) ||
          !line.done()) {
        return bad(where + ": bad telemetry count record");
      }
      auto key = unescape_token(key_tok);
      if (!key) return bad(where + ": bad escape in telemetry count");
      out.telemetry.counts[*key] += n;
    } else if (tag == "L") {
      std::string bucket_tok, n_tok;
      std::int64_t bucket = 0;
      std::uint64_t n = 0;
      if (!line.take(&bucket_tok) || !parse_i64(bucket_tok, &bucket) ||
          bucket < 0 || bucket > (std::int64_t{1} << 30) || !line.take(&n_tok) ||
          !parse_u64(n_tok, &n) || !line.done()) {
        return bad(where + ": bad telemetry rtt bucket record");
      }
      out.telemetry.rtt_buckets[static_cast<std::int32_t>(bucket)] += n;
    } else if (tag == "Q") {
      std::string count_tok, sum_tok;
      if (!line.take(&count_tok) || !parse_u64(count_tok, &out.telemetry.rtt_count) ||
          !line.take(&sum_tok) || !parse_i64(sum_tok, &out.telemetry.rtt_sum_nanos) ||
          !line.done()) {
        return bad(where + ": bad telemetry rtt totals record");
      }
    } else if (tag == "F") {
      std::string folded_tok, sampled_tok;
      if (!line.take(&folded_tok) ||
          !parse_u64(folded_tok, &out.telemetry.folded_records) ||
          !line.take(&sampled_tok) ||
          !parse_u64(sampled_tok, &out.telemetry.sampled_exact) || !line.done()) {
        return bad(where + ": bad telemetry fold record");
      }
    } else if (tag == "E") {
      std::string trace_tok, layer_tok, cause_tok, node_tok;
      std::int64_t trace = 0;
      if (!line.take(&trace_tok) || !parse_i64(trace_tok, &trace) ||
          !line.take(&layer_tok) || !line.take(&cause_tok) || !line.take(&node_tok) ||
          !line.done()) {
        return bad(where + ": bad telemetry exemplar record");
      }
      auto layer = unescape_token(layer_tok);
      auto cause = unescape_token(cause_tok);
      auto node = unescape_token(node_tok);
      if (!layer || !cause || !node) {
        return bad(where + ": bad escape in telemetry exemplar");
      }
      out.telemetry.exemplars.push_back(TelemetryExemplar{
          static_cast<int>(trace), std::move(*layer), std::move(*cause),
          std::move(*node)});
    } else if (tag == "Z") {
      std::string width_tok, subbits_tok;
      std::int64_t subbits = 0;
      if (!line.take(&width_tok) ||
          !parse_i64(width_tok, &out.timeseries.window_nanos) ||
          out.timeseries.window_nanos < 1 || !line.take(&subbits_tok) ||
          !parse_i64(subbits_tok, &subbits) || subbits < 0 || subbits > 64 ||
          !line.done()) {
        return bad(where + ": bad timeseries config record");
      }
      out.timeseries.rtt_subbits = static_cast<int>(subbits);
    } else if (tag == "W") {
      std::string index_tok, key_tok, n_tok;
      std::int64_t index = 0;
      std::uint64_t n = 0;
      if (!line.take(&index_tok) || !parse_i64(index_tok, &index) || index < 0 ||
          index > (std::int64_t{1} << 30) || !line.take(&key_tok) ||
          !line.take(&n_tok) || !parse_u64(n_tok, &n) || !line.done()) {
        return bad(where + ": bad timeseries count record");
      }
      auto key = unescape_token(key_tok);
      if (!key) return bad(where + ": bad escape in timeseries count");
      out.timeseries.windows[static_cast<std::int32_t>(index)].counts[*key] += n;
    } else if (tag == "X") {
      std::string index_tok, bucket_tok, n_tok;
      std::int64_t index = 0, bucket = 0;
      std::uint64_t n = 0;
      if (!line.take(&index_tok) || !parse_i64(index_tok, &index) || index < 0 ||
          index > (std::int64_t{1} << 30) || !line.take(&bucket_tok) ||
          !parse_i64(bucket_tok, &bucket) || bucket < 0 ||
          bucket > (std::int64_t{1} << 30) || !line.take(&n_tok) ||
          !parse_u64(n_tok, &n) || !line.done()) {
        return bad(where + ": bad timeseries rtt bucket record");
      }
      out.timeseries.windows[static_cast<std::int32_t>(index)]
          .rtt_buckets[static_cast<std::int32_t>(bucket)] += n;
    } else if (tag == "Y") {
      std::string index_tok, count_tok, sum_tok;
      std::int64_t index = 0;
      if (!line.take(&index_tok) || !parse_i64(index_tok, &index) || index < 0 ||
          index > (std::int64_t{1} << 30)) {
        return bad(where + ": bad timeseries rtt totals record");
      }
      auto& window = out.timeseries.windows[static_cast<std::int32_t>(index)];
      std::uint64_t count = 0;
      std::int64_t sum = 0;
      if (!line.take(&count_tok) || !parse_u64(count_tok, &count) ||
          !line.take(&sum_tok) || !parse_i64(sum_tok, &sum) || !line.done()) {
        return bad(where + ": bad timeseries rtt totals record");
      }
      window.rtt_count += count;
      window.rtt_sum_nanos += sum;
    } else {
      return bad(where + ": unknown record tag '" + tag + "'");
    }
  }
  return out;
}

}  // namespace ecnprobe::obs
