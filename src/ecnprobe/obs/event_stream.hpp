// Process-wide observability event stream feeding the live plane's SSE
// endpoint: window rollovers, trace quarantines, circuit-breaker trips,
// checkpoint appends. Strictly observational -- nothing in the
// determinism contract reads it back -- and disabled by default, so the
// hot paths pay one relaxed atomic load until a live server turns it on.
//
// Bounded: the newest kCapacity events are retained; a slow SSE consumer
// skips ahead rather than exerting backpressure on campaign workers.
// Event ids are process-monotonic, which is what gives the SSE stream
// its ordering and resume (Last-Event-ID style) semantics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace ecnprobe::obs {

struct ObsEvent {
  std::uint64_t id = 0;
  std::string kind;  ///< "window" | "quarantine" | "breaker" | "checkpoint"
  std::string text;

  bool operator==(const ObsEvent&) const = default;
};

class EventStream {
 public:
  static constexpr std::size_t kCapacity = 1024;

  static EventStream& process();

  /// Emitters gate on this before building event strings, so a campaign
  /// without a live server never pays for formatting.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Appends an event (dropping the oldest past capacity) and wakes
  /// pollers. No-op while disabled.
  void emit(std::string kind, std::string text);

  /// Events with id > after_id, blocking up to `wait` for the first one.
  /// Returns an empty vector on timeout.
  std::vector<ObsEvent> poll_after(std::uint64_t after_id,
                                   std::chrono::milliseconds wait);

  std::uint64_t last_id() const;

  /// Events evicted from the ring because a consumer fell more than
  /// kCapacity behind. Exported as ecnprobe_obs_events_dropped_total on
  /// the live plane's /metrics so an SSE consumer can detect a gap in
  /// the id sequence instead of silently missing events. Monotonic until
  /// clear().
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void clear();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ObsEvent> events_;
  std::uint64_t next_id_ = 1;
};

}  // namespace ecnprobe::obs
