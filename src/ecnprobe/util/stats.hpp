// Streaming and batch statistics used by the analysis module: Welford
// running moments, order statistics, and simple linear/logistic trend fits
// for the Figure 6 time series.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ecnprobe::util {

/// Numerically stable streaming mean/variance/min/max (Welford).
class RunningStats {
public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-th quantile (q in [0,1]) with linear interpolation between order
/// statistics. Copies and sorts; fine for analysis-sized inputs.
double quantile(std::span<const double> xs, double q);

double mean(std::span<const double> xs);
double median(std::span<const double> xs);

/// Least-squares fit y = a + b*x. Returns {a, b}; b = 0 for fewer than two
/// distinct x values.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
  double predict(double x) const { return intercept + slope * x; }
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Logistic growth fit y = L / (1 + exp(-k (x - x0))) with fixed ceiling L
/// (fraction scale: L = 100 for percentages). Fitted by transforming to the
/// logit domain and running a linear fit; points at 0 or L are nudged
/// inward. Used for the Figure 6 ECN-adoption growth curve.
struct LogisticFit {
  double ceiling = 100.0;
  double midpoint = 0.0;  // x0
  double rate = 0.0;      // k
  double predict(double x) const;
};
LogisticFit logistic_fit(std::span<const double> xs, std::span<const double> ys,
                         double ceiling = 100.0);

/// Pearson correlation coefficient; 0 if either side has no variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi); values outside clamp to the end bins.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ecnprobe::util
