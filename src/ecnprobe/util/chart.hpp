// ASCII chart rendering used by the bench harness to draw terminal versions
// of the paper's figures: grouped vertical bars (Figs 2 and 5), dense
// per-server spike plots binned to terminal width (Fig 3), scatter/time
// series (Fig 6), and a crude world map (Fig 1).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ecnprobe::util {

/// A labelled vertical bar chart with a configurable y-range (the paper's
/// Figure 2 uses 90-100%). Bars are drawn as columns of '#'.
struct BarChartOptions {
  double y_min = 0.0;
  double y_max = 100.0;
  int height = 12;        ///< rows of the plot area
  int bar_width = 1;      ///< columns per bar
  int gap = 1;            ///< columns between bars
  std::string y_unit = "%";
};

std::string render_bar_chart(std::span<const double> values,
                             std::span<const std::string> labels,
                             const BarChartOptions& opts = {});

/// Dense spike plot for thousands of per-item values (Figure 3): items are
/// binned to `width` columns and each column shows the *maximum* value in
/// its bin, which preserves the tall isolated spikes the paper highlights.
struct SpikePlotOptions {
  int width = 100;
  int height = 10;
  double y_max = 100.0;
};

std::string render_spike_plot(std::span<const double> values,
                              const SpikePlotOptions& opts = {});

/// Scatter plot for the Figure 6 time series. Points are plotted as 'o';
/// an optional fitted curve is drawn with '.'.
struct ScatterOptions {
  int width = 64;
  int height = 16;
  double x_min = 0.0, x_max = 1.0;
  double y_min = 0.0, y_max = 100.0;
};

struct ScatterPoint {
  double x = 0.0;
  double y = 0.0;
  char glyph = 'o';
};

std::string render_scatter(std::span<const ScatterPoint> points,
                           const ScatterOptions& opts,
                           std::span<const ScatterPoint> curve = {});

/// Equirectangular world map: bins (lat, lon) points into a character grid
/// (Figure 1). Counts render as ' .:*#@' by density.
std::string render_world_map(std::span<const std::pair<double, double>> lat_lon,
                             int width = 96, int height = 28);

}  // namespace ecnprobe::util
