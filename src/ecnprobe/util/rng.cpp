#include "ecnprobe/util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecnprobe::util {

namespace {

// splitmix64: seeds the xoshiro state and implements seed derivation.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over the label bytes, mixed with the parent seed.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) {
  std::uint64_t x = seed ^ fnv1a(label);
  return splitmix64(x);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation with rejection to keep
  // the distribution exactly uniform.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = span == 0 ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draws exactly two uniforms per call.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

int Rng::geometric(double p, int cap) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return cap;
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  const double k = std::floor(std::log(u) / std::log1p(-p));
  if (k >= static_cast<double>(cap)) return cap;
  return static_cast<int>(k);
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) throw std::invalid_argument("weighted_index: non-positive sum");
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // floating-point slack lands on the last item
}

Rng Rng::fork(std::string_view label) const {
  return Rng{derive_seed(seed_, label)};
}

Rng Rng::fork(std::uint64_t salt) const {
  return Rng{derive_seed(seed_, salt)};
}

Rng Rng::split_stream(std::uint64_t i) const {
  // Two-level derivation: first hop into a "split" domain (so child streams
  // cannot collide with fork() streams of small integer salts), then index.
  return Rng{derive_seed(derive_seed(seed_, "split"), i)};
}

std::vector<Rng> Rng::split(std::size_t n) const {
  std::vector<Rng> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(split_stream(i));
  return out;
}

}  // namespace ecnprobe::util
