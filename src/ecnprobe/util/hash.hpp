// FNV-1a 64-bit: the checksum used by the campaign journal and the
// fault-plan fingerprint. Not cryptographic -- it guards against torn
// writes and accidental edits, not adversaries.
#pragma once

#include <cstdint>
#include <string_view>

namespace ecnprobe::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline constexpr std::uint64_t fnv1a64(std::string_view data,
                                       std::uint64_t h = kFnvOffsetBasis) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace ecnprobe::util
