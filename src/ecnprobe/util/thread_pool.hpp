// A small fixed-size worker pool for sharded campaign execution. Tasks are
// plain closures pulled from a shared FIFO queue; each worker thread has a
// stable index (ThreadPool::current_worker_index) so callers can maintain
// worker-affine state -- e.g. one isolated simulation world per worker --
// without locking. A task that throws does not terminate the process: the
// first exception is captured and rethrown from wait_idle() on the caller's
// thread, and the remaining queued tasks still run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecnprobe::util {

class ThreadPool {
public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);
  /// Waits for queued tasks to finish, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; any worker may run it.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. If any task
  /// threw since the last wait_idle(), rethrows the first such exception
  /// here (subsequent ones are dropped); the pool stays usable.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling pool worker in [0, size()), or -1 when called
  /// from a thread that does not belong to any pool.
  static int current_worker_index();

private:
  void worker_main(int index);

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< signals workers: task ready / stop
  std::condition_variable idle_cv_;   ///< signals waiters: pool went idle
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  ///< tasks currently executing
  std::exception_ptr first_error_;  ///< first task exception since last wait_idle
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ecnprobe::util
