// Arena and slab allocation for the simulation hot path. A campaign probes
// millions of servers through the same handful of per-packet structures;
// allocating those from the general heap costs a malloc/free pair per
// packet and scatters them across memory. The types here trade that for
// bump-pointer arenas and recycled buffers that reach a steady state after
// the first trace: `reset()` retains every block an arena ever grew to, so
// once warm the per-probe path performs no heap allocations at all.
//
// Thread model: none of these types are thread-safe, matching the rest of
// the simulation (one world, one arena family, one thread). Parallel
// campaign workers each own their world's arenas; the thread-local
// BufferPool is per-thread by construction. A TSan-covered test pins the
// per-worker isolation.
//
// Safety: `Arena::reset()` poisons the retained blocks -- with real ASan
// poisoning when compiled under AddressSanitizer (a use-after-reset then
// aborts with a use-after-poison report), and with a 0xA5 scribble pattern
// otherwise so stale reads are at least deterministic garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define ECNPROBE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ECNPROBE_ASAN 1
#endif
#endif
#ifndef ECNPROBE_ASAN
#define ECNPROBE_ASAN 0
#endif

#if ECNPROBE_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace ecnprobe::util {

/// Bump-pointer arena with block retention. Allocation is a pointer
/// increment; there is no per-object free. `reset()` rewinds every block
/// for reuse without returning memory to the heap, so arenas warmed by one
/// trace serve every later trace allocation-free.
class Arena {
public:
  /// `block_size` is the granularity the arena grows by; oversized requests
  /// get a dedicated block of exactly the requested size.
  explicit Arena(std::size_t block_size = kDefaultBlockSize);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  static constexpr std::size_t kDefaultBlockSize = 64 * 1024;

  /// Returns `size` bytes aligned to `align` (a power of two). Never fails
  /// short of the heap itself failing; size 0 returns a valid unique pointer.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t));

  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds all blocks for reuse. No destructors run -- arena clients hold
  /// trivially destructible data or clear their containers first. Retained
  /// blocks are poisoned (ASan) or scribbled (0xA5) so stale pointers into
  /// the previous generation fault loudly instead of silently aliasing.
  void reset();

  /// Releases every block back to the heap (and resets statistics).
  void release();

  // -- statistics (steady-state verification hooks) -------------------------
  std::size_t bytes_allocated() const { return bytes_allocated_; }  ///< since reset
  std::size_t bytes_reserved() const { return bytes_reserved_; }    ///< heap footprint
  /// Largest bytes_allocated() ever observed (survives reset()); the
  /// self-profiler's arena pressure gauge.
  std::size_t bytes_allocated_high_water() const { return allocated_high_water_; }
  std::size_t block_count() const { return blocks_.size(); }
  /// Heap allocations ever made by this arena; a flat value across resets
  /// is the "zero heap allocations after warm-up" property tests pin.
  std::uint64_t heap_allocations() const { return heap_allocations_; }
  std::uint64_t resets() const { return resets_; }

private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void poison_block(const Block& block);
  void unpoison_range(std::byte* p, std::size_t n);

  std::size_t block_size_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< index of the block being bumped
  std::size_t offset_ = 0;   ///< bump offset within blocks_[current_]
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t allocated_high_water_ = 0;
  std::uint64_t heap_allocations_ = 0;
  std::uint64_t resets_ = 0;
};

/// Minimal std-allocator adapter over an Arena, for containers whose
/// lifetime is bracketed by arena resets (the flight recorder's per-trace
/// flight table, scratch vectors). `deallocate` is a no-op: memory comes
/// back at the next `Arena::reset()`.
template <typename T>
class ArenaAllocator {
public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed wholesale by Arena::reset

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const { return arena_ == other.arena_; }

private:
  template <typename U>
  friend class ArenaAllocator;
  Arena* arena_;
};

/// Slab recycler for byte buffers: `acquire()` hands out a vector with its
/// previous capacity intact, `release()` takes it back. After warm-up every
/// acquire is a pop from the free list -- no heap traffic. Deliberately a
/// plain free list of std::vector so borrowed buffers are ordinary vectors
/// usable by every existing codec.
class BufferPool {
public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  std::vector<std::uint8_t> acquire() {
    ++acquires_;
    ++outstanding_;
    if (outstanding_ > outstanding_high_water_) {
      outstanding_high_water_ = outstanding_;
    }
    if (free_.empty()) return {};
    ++hits_;
    std::vector<std::uint8_t> out = std::move(free_.back());
    free_.pop_back();
    out.clear();
    return out;
  }

  void release(std::vector<std::uint8_t>&& buf) {
    if (outstanding_ > 0) --outstanding_;
    if (buf.capacity() == 0 || free_.size() >= kMaxFreeList) return;
    free_.push_back(std::move(buf));
  }

  /// The pool serving this thread's packet-buffer traffic. Thread-local so
  /// parallel campaign workers never contend or share buffers.
  static BufferPool& this_thread();

  std::size_t free_count() const { return free_.size(); }
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t hits() const { return hits_; }  ///< acquires served without malloc
  /// Buffers currently on loan, and the most ever on loan at once (the
  /// self-profiler's buffer pressure gauge).
  std::size_t outstanding() const { return outstanding_; }
  std::size_t outstanding_high_water() const { return outstanding_high_water_; }

private:
  static constexpr std::size_t kMaxFreeList = 256;
  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t hits_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t outstanding_high_water_ = 0;
};

/// A byte buffer borrowed from the thread-local BufferPool for its whole
/// lifetime: acquired lazily on first mutable access, returned on
/// destruction. Copying deliberately yields an *empty* buffer -- users of
/// this type treat it as a cache whose contents can be recomputed -- which
/// keeps copies cheap and makes stale-cache-after-copy impossible.
class PooledBuffer {
public:
  PooledBuffer() = default;
  ~PooledBuffer() { release(); }
  PooledBuffer(const PooledBuffer&) {}  // a copy starts empty (cache semantics)
  PooledBuffer& operator=(const PooledBuffer&) {
    clear();
    return *this;
  }
  PooledBuffer(PooledBuffer&& other) noexcept
      : buf_(std::move(other.buf_)), engaged_(other.engaged_) {
    other.engaged_ = false;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      buf_ = std::move(other.buf_);
      engaged_ = other.engaged_;
      other.engaged_ = false;
    }
    return *this;
  }

  bool empty() const { return !engaged_ || buf_.empty(); }

  /// The live buffer, acquiring from the pool on first use.
  std::vector<std::uint8_t>& mut() {
    if (!engaged_) {
      buf_ = BufferPool::this_thread().acquire();
      engaged_ = true;
    }
    return buf_;
  }

  std::span<const std::uint8_t> view() const { return buf_; }

  /// Drops the contents and returns the storage to the pool.
  void clear() { release(); }

private:
  void release() {
    if (engaged_) {
      BufferPool::this_thread().release(std::move(buf_));
      buf_ = {};
      engaged_ = false;
    }
  }

  std::vector<std::uint8_t> buf_;
  bool engaged_ = false;
};

}  // namespace ecnprobe::util
