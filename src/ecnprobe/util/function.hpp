// A move-only `void()` callable with generous inline storage. The event
// scheduler stores one callback per simulated event; std::function both
// requires copyability (so popping an event used to deep-copy any captured
// packet) and spills closures over ~2 pointers to the heap. UniqueFunction
// keeps closures up to kInlineSize bytes -- sized to fit a network-delivery
// lambda with its captured Datagram -- inline in the event record, so the
// steady-state schedule/fire cycle performs no heap allocation and moves,
// never copies, captured state.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ecnprobe::util {

class UniqueFunction {
public:
  /// Inline closure budget: fits `[this, to, ingress_if, d = Datagram]`
  /// delivery lambdas (a Datagram is ~100 bytes) without heap fallback.
  static constexpr std::size_t kInlineSize = 152;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineSize &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &inline_ops<Decayed>;
    } else {
      ::new (static_cast<void*>(storage_)) Decayed*(new Decayed(std::forward<F>(fn)));
      ops_ = &heap_ops<Decayed>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(std::move(other)); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { destroy(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename F>
  static constexpr Ops inline_ops = {
      [](void* self) { (*std::launder(reinterpret_cast<F*>(self)))(); },
      [](void* dst, void* src) {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* self) { std::launder(reinterpret_cast<F*>(self))->~F(); },
  };

  template <typename F>
  static constexpr Ops heap_ops = {
      [](void* self) { (**std::launder(reinterpret_cast<F**>(self)))(); },
      [](void* dst, void* src) {
        F** from = std::launder(reinterpret_cast<F**>(src));
        ::new (dst) F*(*from);
        *from = nullptr;
      },
      [](void* self) { delete *std::launder(reinterpret_cast<F**>(self)); },
  };

  void move_from(UniqueFunction&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ecnprobe::util
