// Small string helpers: printf-style formatting into std::string (GCC 12
// lacks std::format), splitting, trimming, and case folding.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ecnprobe::util {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]]
std::string strf(const char* fmt, ...);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-casing (sufficient for protocol tokens and domain names).
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`, case-insensitively (ASCII).
bool istarts_with(std::string_view s, std::string_view prefix);

/// True if the two strings are equal, case-insensitively (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// Formats a count with thousands separators ("155439" -> "155,439").
std::string with_commas(std::int64_t n);

}  // namespace ecnprobe::util
