#include "ecnprobe/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecnprobe::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2) {
    fit.intercept = n == 1 ? ys[0] : 0.0;
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double LogisticFit::predict(double x) const {
  return ceiling / (1.0 + std::exp(-rate * (x - midpoint)));
}

LogisticFit logistic_fit(std::span<const double> xs, std::span<const double> ys,
                         double ceiling) {
  assert(xs.size() == ys.size());
  // logit(y/L) = k*(x - x0) is linear in x; nudge boundary values inward so
  // the transform is defined.
  std::vector<double> logits(ys.size());
  const double eps = ceiling * 1e-4;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double y = std::clamp(ys[i], eps, ceiling - eps);
    logits[i] = std::log(y / (ceiling - y));
  }
  const LinearFit lf = linear_fit(xs, logits);
  LogisticFit fit;
  fit.ceiling = ceiling;
  fit.rate = lf.slope;
  fit.midpoint = lf.slope != 0.0 ? -lf.intercept / lf.slope : 0.0;
  return fit;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace ecnprobe::util
