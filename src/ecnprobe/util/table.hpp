// Plain-text table and CSV rendering for the benchmark harness. Every
// table/figure reproduction prints a TextTable with the same rows the paper
// reports, plus a CSV dump for plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ecnprobe::util {

/// Column-aligned plain-text table.
class TextTable {
public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell with to_string-like rules.
  void add_row_values(std::initializer_list<double> cells, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::string to_string() const;
  void print(std::ostream& os) const;

private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer with RFC 4180 quoting.
class CsvWriter {
public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace ecnprobe::util
