#include "ecnprobe/util/chart.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::util {

namespace {

// Left gutter showing y-axis tick values on the top, middle, and bottom rows.
std::string y_tick(double y_min, double y_max, int row, int height,
                   const std::string& unit) {
  const double frac = 1.0 - static_cast<double>(row) / static_cast<double>(height - 1);
  const double v = y_min + (y_max - y_min) * frac;
  if (row == 0 || row == height - 1 || row == (height - 1) / 2) {
    return strf("%6.1f%s |", v, unit.c_str());
  }
  return strf("%*s |", static_cast<int>(6 + unit.size()), "");
}

}  // namespace

std::string render_bar_chart(std::span<const double> values,
                             std::span<const std::string> labels,
                             const BarChartOptions& opts) {
  assert(labels.empty() || labels.size() == values.size());
  const int h = std::max(opts.height, 2);
  const int bw = std::max(opts.bar_width, 1);
  const int gap = std::max(opts.gap, 0);
  const double lo = opts.y_min;
  const double hi = opts.y_max > lo ? opts.y_max : lo + 1.0;

  // Height (in rows) of each bar, clamped into the plot range.
  std::vector<int> bar_rows(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double frac = std::clamp((values[i] - lo) / (hi - lo), 0.0, 1.0);
    bar_rows[i] = static_cast<int>(std::lround(frac * h));
    if (values[i] > lo && bar_rows[i] == 0) bar_rows[i] = 1;  // visible sliver
  }

  std::ostringstream out;
  for (int row = 0; row < h; ++row) {
    out << y_tick(lo, hi, row, h, opts.y_unit);
    const int rows_from_bottom = h - row;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out << std::string(static_cast<std::size_t>(gap), ' ');
      const char c = bar_rows[i] >= rows_from_bottom ? '#' : ' ';
      out << std::string(static_cast<std::size_t>(bw), c);
    }
    out << '\n';
  }
  // x-axis rule.
  const std::size_t plot_w =
      values.empty() ? 0
                     : values.size() * static_cast<std::size_t>(bw) +
                           (values.size() - 1) * static_cast<std::size_t>(gap);
  out << strf("%*s +", static_cast<int>(6 + opts.y_unit.size()), "")
      << std::string(plot_w, '-') << '\n';

  // Label rows: labels are printed vertically if longer than the bar width.
  if (!labels.empty()) {
    std::size_t max_label = 0;
    for (const auto& l : labels) max_label = std::max(max_label, l.size());
    for (std::size_t lr = 0; lr < max_label; ++lr) {
      out << strf("%*s  ", static_cast<int>(6 + opts.y_unit.size()), "");
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i) out << std::string(static_cast<std::size_t>(gap), ' ');
        const char c = lr < labels[i].size() ? labels[i][lr] : ' ';
        std::string cell(static_cast<std::size_t>(bw), ' ');
        cell[cell.size() / 2] = c;
        out << cell;
      }
      out << '\n';
    }
  }
  return out.str();
}

std::string render_spike_plot(std::span<const double> values,
                              const SpikePlotOptions& opts) {
  const int w = std::max(opts.width, 1);
  const int h = std::max(opts.height, 2);
  std::vector<double> col_max(static_cast<std::size_t>(w), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto col = values.empty()
                         ? std::size_t{0}
                         : std::min<std::size_t>(
                               static_cast<std::size_t>(w) - 1,
                               i * static_cast<std::size_t>(w) / values.size());
    col_max[col] = std::max(col_max[col], values[i]);
  }
  std::ostringstream out;
  for (int row = 0; row < h; ++row) {
    out << y_tick(0.0, opts.y_max, row, h, "%");
    const int rows_from_bottom = h - row;
    for (int c = 0; c < w; ++c) {
      const double frac = std::clamp(col_max[static_cast<std::size_t>(c)] / opts.y_max, 0.0, 1.0);
      int rows = static_cast<int>(std::lround(frac * h));
      if (col_max[static_cast<std::size_t>(c)] > 0.0 && rows == 0) rows = 1;
      out << (rows >= rows_from_bottom ? '|' : ' ');
    }
    out << '\n';
  }
  out << strf("%7s +", "") << std::string(static_cast<std::size_t>(w), '-') << '\n';
  return out.str();
}

std::string render_scatter(std::span<const ScatterPoint> points,
                           const ScatterOptions& opts,
                           std::span<const ScatterPoint> curve) {
  const int w = std::max(opts.width, 2);
  const int h = std::max(opts.height, 2);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  auto plot = [&](const ScatterPoint& p) {
    if (opts.x_max <= opts.x_min || opts.y_max <= opts.y_min) return;
    const double fx = (p.x - opts.x_min) / (opts.x_max - opts.x_min);
    const double fy = (p.y - opts.y_min) / (opts.y_max - opts.y_min);
    if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) return;
    const auto col = std::min<std::size_t>(static_cast<std::size_t>(fx * (w - 1)),
                                           static_cast<std::size_t>(w - 1));
    const auto row = static_cast<std::size_t>(h - 1) -
                     std::min<std::size_t>(static_cast<std::size_t>(fy * (h - 1)),
                                           static_cast<std::size_t>(h - 1));
    grid[row][col] = p.glyph;
  };
  for (const auto& p : curve) plot(p);
  for (const auto& p : points) plot(p);  // points draw over the curve

  std::ostringstream out;
  for (int row = 0; row < h; ++row) {
    out << y_tick(opts.y_min, opts.y_max, row, h, "") << grid[static_cast<std::size_t>(row)]
        << '\n';
  }
  out << strf("%7s+", "") << std::string(static_cast<std::size_t>(w), '-') << '\n';
  out << strf("%7s%-8.0f%*.0f\n", "", opts.x_min, w - 8, opts.x_max);
  return out.str();
}

std::string render_world_map(std::span<const std::pair<double, double>> lat_lon,
                             int width, int height) {
  const int w = std::max(width, 10);
  const int h = std::max(height, 5);
  std::vector<std::vector<int>> counts(static_cast<std::size_t>(h),
                                       std::vector<int>(static_cast<std::size_t>(w), 0));
  for (const auto& [lat, lon] : lat_lon) {
    if (lat < -90.0 || lat > 90.0 || lon < -180.0 || lon > 180.0) continue;
    const auto col = std::min<std::size_t>(
        static_cast<std::size_t>((lon + 180.0) / 360.0 * w), static_cast<std::size_t>(w - 1));
    const auto row = std::min<std::size_t>(
        static_cast<std::size_t>((90.0 - lat) / 180.0 * h), static_cast<std::size_t>(h - 1));
    ++counts[row][col];
  }
  static constexpr char kShades[] = {' ', '.', ':', '*', '#', '@'};
  std::ostringstream out;
  out << '+' << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  for (int r = 0; r < h; ++r) {
    out << '|';
    for (int c = 0; c < w; ++c) {
      const int n = counts[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
      std::size_t shade = 0;
      if (n > 0) shade = std::min<std::size_t>(5, 1 + static_cast<std::size_t>(std::log2(n + 1)));
      out << kShades[shade];
    }
    out << "|\n";
  }
  out << '+' << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  return out.str();
}

}  // namespace ecnprobe::util
