#include "ecnprobe/util/thread_pool.hpp"

#include <utility>

namespace ecnprobe::util {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::current_worker_index() { return tls_worker_index; }

void ThreadPool::worker_main(int index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ set and no work left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // Captured, not fatal: surfaced to the caller from wait_idle().
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ecnprobe::util
