// Leveled logging to stderr. Default level is Warn so tests and benches stay
// quiet; examples raise it for narrative output.
//
// Thread-safe: the level is atomic and each message is emitted with a
// single fwrite, so lines from parallel-campaign workers never interleave
// mid-line. Tests can install a sink to capture output instead of stderr.
#pragma once

#include <functional>
#include <string>

namespace ecnprobe::util {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted line (already level-filtered, without the
/// trailing newline). Installing a sink replaces stderr output; pass
/// nullptr to restore it. Sink calls are serialized by the logger.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

[[gnu::format(printf, 1, 2)]] void log_trace(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_debug(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_info(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_warn(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_error(const char* fmt, ...);

}  // namespace ecnprobe::util
