// Leveled logging to stderr. Default level is Warn so tests and benches stay
// quiet; examples raise it for narrative output.
#pragma once

#include <string>

namespace ecnprobe::util {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

[[gnu::format(printf, 1, 2)]] void log_trace(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_debug(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_info(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_warn(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_error(const char* fmt, ...);

}  // namespace ecnprobe::util
