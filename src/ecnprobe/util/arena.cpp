#include "ecnprobe/util/arena.hpp"

namespace ecnprobe::util {

Arena::Arena(std::size_t block_size)
    : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}

Arena::~Arena() { release(); }

void* Arena::allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  if (align == 0) align = 1;
  while (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + size <= block.size) {
      std::byte* p = block.data.get() + aligned;
      unpoison_range(p, size);
      offset_ = aligned + size;
      bytes_allocated_ += size;
      if (bytes_allocated_ > allocated_high_water_) {
        allocated_high_water_ = bytes_allocated_;
      }
      return p;
    }
    // The rest of this block is too small; move on (it stays poisoned).
    ++current_;
    offset_ = 0;
  }
  // Grow: a standard block, or a dedicated one for oversized requests.
  const std::size_t want = size + align > block_size_ ? size + align : block_size_;
  Block block;
  block.data = std::make_unique<std::byte[]>(want);
  block.size = want;
  ++heap_allocations_;
  bytes_reserved_ += want;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;
  poison_block(blocks_.back());  // freshly reserved memory starts poisoned
  Block& fresh = blocks_.back();
  const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
  std::byte* p = fresh.data.get() + aligned;
  unpoison_range(p, size);
  offset_ = aligned + size;
  bytes_allocated_ += size;
  if (bytes_allocated_ > allocated_high_water_) {
    allocated_high_water_ = bytes_allocated_;
  }
  return p;
}

void Arena::reset() {
  for (const Block& block : blocks_) poison_block(block);
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
  ++resets_;
}

void Arena::release() {
  // Hand the memory back to the allocator unpoisoned.
  for (const Block& block : blocks_) unpoison_range(block.data.get(), block.size);
  blocks_.clear();
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
  allocated_high_water_ = 0;
}

void Arena::poison_block(const Block& block) {
#if ECNPROBE_ASAN
  ASAN_POISON_MEMORY_REGION(block.data.get(), block.size);
#else
  // Deterministic scribble: stale reads observe 0xA5 garbage, never data
  // from the previous generation.
  std::memset(block.data.get(), 0xA5, block.size);
#endif
}

void Arena::unpoison_range(std::byte* p, std::size_t n) {
#if ECNPROBE_ASAN
  ASAN_UNPOISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

BufferPool& BufferPool::this_thread() {
  thread_local BufferPool pool;
  return pool;
}

}  // namespace ecnprobe::util
