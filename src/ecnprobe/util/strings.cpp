#include "ecnprobe/util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "ecnprobe/util/time.hpp"

namespace ecnprobe::util {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return iequals(s.substr(0, prefix.size()), prefix);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string with_commas(std::int64_t n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i != 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return n < 0 ? "-" + out : out;
}

std::string SimDuration::to_string() const {
  if (ns_ % 1'000'000'000 == 0) return strf("%llds", static_cast<long long>(ns_ / 1'000'000'000));
  if (ns_ % 1'000'000 == 0) return strf("%lldms", static_cast<long long>(ns_ / 1'000'000));
  if (ns_ % 1'000 == 0) return strf("%lldus", static_cast<long long>(ns_ / 1'000));
  return strf("%lldns", static_cast<long long>(ns_));
}

std::string SimTime::to_string() const {
  return strf("t=%.6fs", to_seconds());
}

}  // namespace ecnprobe::util
