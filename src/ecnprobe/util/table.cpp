#include "ecnprobe/util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::util {

TextTable::TextTable(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  if (aligns_.empty()) aligns_.assign(headers_.size(), Align::Left);
  if (aligns_.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: aligns/headers arity mismatch");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(std::initializer_list<double> cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(strf("%.*f", precision, v));
  add_row(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = widths[c] - row[c].size();
      if (c) out << "  ";
      if (aligns_[c] == Align::Right) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace ecnprobe::util
