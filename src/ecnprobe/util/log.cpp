#include "ecnprobe/util/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace ecnprobe::util {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void detail::log_line(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

#define ECNPROBE_DEFINE_LOG_FN(name, level)       \
  void name(const char* fmt, ...) {               \
    va_list args;                                 \
    va_start(args, fmt);                          \
    vlog(level, fmt, args);                       \
    va_end(args);                                 \
  }

ECNPROBE_DEFINE_LOG_FN(log_trace, LogLevel::Trace)
ECNPROBE_DEFINE_LOG_FN(log_debug, LogLevel::Debug)
ECNPROBE_DEFINE_LOG_FN(log_info, LogLevel::Info)
ECNPROBE_DEFINE_LOG_FN(log_warn, LogLevel::Warn)
ECNPROBE_DEFINE_LOG_FN(log_error, LogLevel::Error)

#undef ECNPROBE_DEFINE_LOG_FN

}  // namespace ecnprobe::util
