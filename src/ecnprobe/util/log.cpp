#include "ecnprobe/util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <utility>

namespace ecnprobe::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// The sink is cold-path state (tests only); guarded by a mutex that also
// serializes sink invocations so captured lines arrive whole.
std::mutex g_sink_mutex;
LogSink g_sink;
std::atomic<bool> g_sink_installed{false};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void emit(LogLevel level, const std::string& line) {
  if (g_sink_installed.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    // Re-check under the lock: the sink may have been removed since.
    if (g_sink) {
      g_sink(level, line);
      return;
    }
  }
  // One write per message: POSIX stdio locks the stream per call, so
  // concurrent loggers produce interleaved *lines*, never spliced ones.
  const std::string out = line + "\n";
  std::fwrite(out.data(), 1, out.size(), stderr);
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  va_list measure_args;
  va_copy(measure_args, args);
  const int body = std::vsnprintf(nullptr, 0, fmt, measure_args);
  va_end(measure_args);
  if (body < 0) return;
  std::string line = "[";
  line += level_name(level);
  line += "] ";
  const std::size_t prefix = line.size();
  line.resize(prefix + static_cast<std::size_t>(body) + 1);
  std::vsnprintf(line.data() + prefix, static_cast<std::size_t>(body) + 1, fmt, args);
  line.resize(prefix + static_cast<std::size_t>(body));
  emit(level, line);
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
  g_sink_installed.store(static_cast<bool>(g_sink), std::memory_order_release);
}

void detail::log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  emit(level, "[" + std::string(level_name(level)) + "] " + msg);
}

#define ECNPROBE_DEFINE_LOG_FN(name, level)       \
  void name(const char* fmt, ...) {               \
    va_list args;                                 \
    va_start(args, fmt);                          \
    vlog(level, fmt, args);                       \
    va_end(args);                                 \
  }

ECNPROBE_DEFINE_LOG_FN(log_trace, LogLevel::Trace)
ECNPROBE_DEFINE_LOG_FN(log_debug, LogLevel::Debug)
ECNPROBE_DEFINE_LOG_FN(log_info, LogLevel::Info)
ECNPROBE_DEFINE_LOG_FN(log_warn, LogLevel::Warn)
ECNPROBE_DEFINE_LOG_FN(log_error, LogLevel::Error)

#undef ECNPROBE_DEFINE_LOG_FN

}  // namespace ecnprobe::util
