// Minimal expected<T, Error> for parse paths. Wire-format decoding rejects
// malformed input as a value, not an exception: malformed packets arrive from
// the network in normal operation and are not programming errors.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ecnprobe::util {

/// Error payload carried by Expected. A short machine-matchable code plus a
/// human-readable message.
struct Error {
  std::string code;
  std::string message;
};

inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

/// Holds either a T or an Error. Deliberately tiny: just what the decoders
/// need (C++23 std::expected is not available on this toolchain).
template <typename T>
class Expected {
public:
  Expected(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : v_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool has_value() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return has_value(); }

  T& value() & { assert(has_value()); return std::get<T>(v_); }
  const T& value() const& { assert(has_value()); return std::get<T>(v_); }
  T&& value() && { assert(has_value()); return std::get<T>(std::move(v_)); }

  const Error& error() const { assert(!has_value()); return std::get<Error>(v_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(v_) : std::move(fallback);
  }

private:
  std::variant<T, Error> v_;
};

}  // namespace ecnprobe::util
