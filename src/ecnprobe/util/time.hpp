// Simulated time. The event engine, timers, and all protocol timeouts use
// SimTime / SimDuration: 64-bit nanosecond counts wrapped in strong types so
// that a raw integer can never be confused for a time, and so wall-clock
// std::chrono types cannot leak into the deterministic simulation.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ecnprobe::util {

/// A span of simulated time, in nanoseconds. Signed so arithmetic on
/// differences behaves naturally.
class SimDuration {
public:
  constexpr SimDuration() = default;
  constexpr static SimDuration nanos(std::int64_t n) { return SimDuration{n}; }
  constexpr static SimDuration micros(std::int64_t us) { return SimDuration{us * 1'000}; }
  constexpr static SimDuration millis(std::int64_t ms) { return SimDuration{ms * 1'000'000}; }
  constexpr static SimDuration seconds(std::int64_t s) { return SimDuration{s * 1'000'000'000}; }
  constexpr static SimDuration minutes(std::int64_t m) { return seconds(m * 60); }
  constexpr static SimDuration hours(std::int64_t h) { return seconds(h * 3600); }
  constexpr static SimDuration days(std::int64_t d) { return seconds(d * 86'400); }
  /// From a floating-point second count (e.g. RTT computations).
  constexpr static SimDuration from_seconds(double s) {
    return SimDuration{static_cast<std::int64_t>(s * 1e9)};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const SimDuration&) const = default;
  constexpr SimDuration operator+(SimDuration o) const { return SimDuration{ns_ + o.ns_}; }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration{ns_ - o.ns_}; }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration{ns_ * k}; }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration{ns_ / k}; }
  constexpr SimDuration& operator+=(SimDuration o) { ns_ += o.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { ns_ -= o.ns_; return *this; }

  std::string to_string() const;

private:
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant of simulated time: nanoseconds since the start of the
/// simulation epoch.
class SimTime {
public:
  constexpr SimTime() = default;
  constexpr static SimTime from_nanos(std::int64_t n) { return SimTime{n}; }
  constexpr static SimTime zero() { return SimTime{0}; }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimDuration d) const { return SimTime{ns_ + d.count_nanos()}; }
  constexpr SimTime operator-(SimDuration d) const { return SimTime{ns_ - d.count_nanos()}; }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::nanos(ns_ - o.ns_);
  }
  constexpr SimTime& operator+=(SimDuration d) { ns_ += d.count_nanos(); return *this; }

  std::string to_string() const;

private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr SimDuration operator""_ns(unsigned long long n) {
  return SimDuration::nanos(static_cast<std::int64_t>(n));
}
constexpr SimDuration operator""_us(unsigned long long n) {
  return SimDuration::micros(static_cast<std::int64_t>(n));
}
constexpr SimDuration operator""_ms(unsigned long long n) {
  return SimDuration::millis(static_cast<std::int64_t>(n));
}
constexpr SimDuration operator""_s(unsigned long long n) {
  return SimDuration::seconds(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace ecnprobe::util
