// Deterministic random number generation for reproducible measurement
// campaigns. Every stochastic decision in the simulator draws from an Rng
// seeded from the campaign seed, so a campaign is a pure function of its
// parameters.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace ecnprobe::util {

/// Hashes a seed and a label into a new seed. Used to derive independent
/// sub-streams ("fork" an Rng per server, per trace, per link) so that adding
/// a consumer of randomness does not perturb unrelated streams.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view label);
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt);

/// xoshiro256** PRNG (Blackman & Vigna). Fast, 2^256-1 period, and -- unlike
/// std::mt19937 -- guaranteed to produce identical output on every platform,
/// which matters for reproducing the campaign numbers in EXPERIMENTS.md.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform on [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real on [0, 1).
  double next_double();

  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Normal deviate via Box-Muller (no cached spare: keeps the stream
  /// position a pure function of the number of calls).
  double normal(double mean, double stddev);

  /// Exponential deviate with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Geometric-like: number of failures before first success with prob p.
  /// Capped at `cap` to bound pathological small-p draws.
  int geometric(double p, int cap = 1 << 20);

  /// Pareto deviate with minimum xm and shape alpha (heavy-tailed hop
  /// counts, server popularity, ...).
  double pareto(double xm, double alpha);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires a non-empty span with a positive sum.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Uniformly chosen element. Requires a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    return v[next_below(v.size())];
  }

  /// Derives an independent child stream identified by a label.
  Rng fork(std::string_view label) const;
  Rng fork(std::uint64_t salt) const;

  /// Splits this stream into `n` child streams for parallel shards. Child
  /// `i` is a pure function of (seed, i) -- stable across platforms and
  /// unchanged by how many draws the parent has made -- so work sharded
  /// across a worker pool reproduces regardless of worker count or
  /// scheduling order. Children are derived in a dedicated "split" domain
  /// and therefore never collide with fork(label)/fork(salt) streams.
  std::vector<Rng> split(std::size_t n) const;
  /// Single child from the same family as split(n)'s element `i`.
  Rng split_stream(std::uint64_t i) const;

  std::uint64_t seed() const { return seed_; }

private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace ecnprobe::util
