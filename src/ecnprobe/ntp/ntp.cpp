#include "ecnprobe/ntp/ntp.hpp"

#include <algorithm>

#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::ntp {

struct NtpClient::Pending : std::enable_shared_from_this<NtpClient::Pending> {
  netsim::Host& host;
  SimClock clock;
  wire::Ipv4Address server;
  NtpQueryOptions options;
  Handler handler;

  std::shared_ptr<netsim::UdpSocket> socket;
  wire::NtpPacket request;
  netsim::EventHandle timer;
  netsim::EventHandle hedge_timer;
  util::SimTime last_send;
  int attempts = 0;
  bool done = false;
  bool hedged = false;  ///< this attempt's request was duplicated on the wire
  std::uint32_t last_flight = 0;  ///< flight id of the latest attempt

  util::SimDuration attempt_timeout() const {
    if (options.timeout_schedule.empty()) return options.timeout;
    const auto i = std::min(static_cast<std::size_t>(attempts - 1),
                            options.timeout_schedule.size() - 1);
    return options.timeout_schedule[i];
  }

  Pending(netsim::Host& h, SimClock c, wire::Ipv4Address s, NtpQueryOptions o, Handler cb)
      : host(h), clock(c), server(s), options(o), handler(std::move(cb)) {}

  void start() {
    socket = host.open_udp();
    auto self = shared_from_this();
    socket->set_receive_handler(
        [self](const netsim::UdpDelivery& delivery) { self->on_response(delivery); });
    send_attempt();
  }

  void send_attempt() {
    ++attempts;
    hedged = false;
    last_send = host.network().sim().now();
    // A fresh transmit timestamp per attempt: responses are matched to the
    // attempt that elicited them.
    request = wire::NtpPacket::make_client_request(clock.at(last_send));
    const auto bytes = request.encode();
    auto& recorder = host.network().obs().recorder;
    if (recorder.armed()) {
      recorder.set_seq(attempts - 1);
      last_flight = recorder.begin_flight(/*retransmit=*/attempts > 1);
    }
    socket->send(server, wire::kNtpPort, bytes, options.ecn, options.ttl);
    auto self = shared_from_this();
    const auto timeout = attempt_timeout();
    timer = host.network().sim().schedule(timeout, [self]() { self->on_timeout(); });
    // Guarded: the paper-default path (hedge_delay == 0) never schedules,
    // never touches metrics, and emits identical wire traffic.
    if (options.hedge_delay.count_nanos() > 0 && options.hedge_delay < timeout) {
      hedge_timer = host.network().sim().schedule(
          options.hedge_delay, [self, bytes]() { self->send_hedge(bytes); });
    }
  }

  void send_hedge(const std::vector<std::uint8_t>& bytes) {
    if (done) return;
    // Same encoded request, second transmission: either copy's response
    // matches answers(request). The attempt's timer keeps running.
    hedged = true;
    auto& recorder = host.network().obs().recorder;
    if (recorder.armed()) {
      recorder.set_seq(attempts - 1);
      last_flight = recorder.begin_flight(/*retransmit=*/true);
    }
    socket->send(server, wire::kNtpPort, bytes, options.ecn, options.ttl);
    host.network().obs().registry.counter(
        "sched_hedges_total", {}, "hedged duplicate NTP requests sent")->inc();
  }

  void on_response(const netsim::UdpDelivery& delivery) {
    if (done) return;
    if (delivery.src != server || delivery.src_port != wire::kNtpPort) return;
    const auto packet = wire::NtpPacket::decode(delivery.payload);
    if (!packet || !packet->answers(request)) return;
    done = true;
    timer.cancel();
    hedge_timer.cancel();
    if (hedged) {
      host.network().obs().registry.counter(
          "sched_hedge_wins_total", {},
          "responses that arrived after the attempt was hedged")->inc();
    }
    NtpQueryResult result;
    result.success = true;
    result.attempts = attempts;
    result.rtt = host.network().sim().now() - last_send;
    result.response_ecn = delivery.ecn;
    result.server_stratum = packet->stratum;
    finish(result);
  }

  void on_timeout() {
    if (done) return;
    hedge_timer.cancel();
    if (attempts >= options.max_attempts) {
      done = true;
      auto& recorder = host.network().obs().recorder;
      if (recorder.armed()) {
        recorder.record(last_flight, obs::SpanEvent::Timeout, host.network().sim().now(),
                        obs::Layer::App, host.name(), host.address().value(),
                        util::strf("after %d attempts", attempts));
      }
      NtpQueryResult result;
      result.success = false;
      result.attempts = attempts;
      finish(result);
      return;
    }
    send_attempt();
  }

  void finish(const NtpQueryResult& result) {
    socket->close();
    if (handler) handler(result);
  }
};

void NtpClient::query(wire::Ipv4Address server, const NtpQueryOptions& options,
                      Handler handler) {
  auto pending =
      std::make_shared<Pending>(host_, clock_, server, options, std::move(handler));
  pending->start();
}

NtpServerService::NtpServerService(netsim::Host& host, SimClock clock, Params params)
    : host_(host), clock_(clock), params_(params) {
  socket_ = host_.open_udp(wire::kNtpPort);
  socket_->set_receive_handler([this](const netsim::UdpDelivery& delivery) {
    ++stats_.requests;
    if (wire::is_ect(delivery.ecn)) ++stats_.ect_marked_requests;
    if (!online_) {  // left the pool / host down: silence
      host_.network().obs().ledger.record_drop(obs::Layer::App,
                                               obs::DropCause::ServerOffline, host_.name());
      return;
    }
    if (params_.response_prob < 1.0 && !host_.rng().bernoulli(params_.response_prob)) {
      // Rate-limited: drop this request.
      host_.network().obs().ledger.record_drop(obs::Layer::App,
                                               obs::DropCause::RateLimited, host_.name());
      return;
    }
    const auto request = wire::NtpPacket::decode(delivery.payload);
    if (!request || request->mode != wire::NtpMode::Client) return;
    const auto now = clock_.at(host_.network().sim().now());
    const auto response = wire::NtpPacket::make_server_response(
        *request, params_.stratum, 0x47505300 /* "GPS" refid */, now, now);
    auto bytes = response.encode();
    // Flaky-responder faults. Guarded draws: a fault-free server makes no
    // RNG calls here, so enabling faults elsewhere cannot perturb it.
    if (params_.short_reply_prob > 0.0 && host_.rng().bernoulli(params_.short_reply_prob)) {
      bytes.resize(bytes.size() / 2);  // under 48 bytes: decode fails, client retries
    } else if (params_.malformed_reply_prob > 0.0 &&
               host_.rng().bernoulli(params_.malformed_reply_prob)) {
      bytes[0] ^= 0x07;  // scramble the mode bits: answers() rejects it
    }
    // NTP servers do not participate in ECN: responses are not-ECT --
    // unless configured as a reflecting responder for return-path studies.
    const auto response_ecn =
        params_.reflect_ecn && wire::is_ect(delivery.ecn) ? delivery.ecn
                                                          : wire::Ecn::NotEct;
    // The response inherits the request's flight: the return path is part
    // of the same probe's story.
    auto& recorder = host_.network().obs().recorder;
    if (recorder.armed() && delivery.flight != 0) recorder.stage_reply(delivery.flight);
    socket_->send(delivery.src, delivery.src_port, bytes, response_ecn);
    ++stats_.responses;
  });
}

}  // namespace ecnprobe::ntp
