// The NTP measurement client and the pool server service. The client is the
// paper's probe: an NTP mode-3 request in a UDP packet whose ECN field is
// the experiment variable, retransmitted up to five times with a one-second
// timeout (Section 3). The server mimics a pool host: answers mode-3
// requests with mode 4 while online; a host that left the pool or is down
// simply stays silent.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/wire/ntp.hpp"

namespace ecnprobe::ntp {

/// Maps simulated time onto the NTP timescale. The epoch anchors the
/// campaign at its real-world date (April 2015) so timestamps are plausible.
class SimClock {
public:
  /// `unix_base_seconds`: wall-clock time at simulation t=0. When
  /// `epoch_origin_ns` is given it points at an externally updated sim-time
  /// origin (World resets it at each trace-epoch boundary): wall time is
  /// then measured from the origin, not from t=0. That keeps the NTP
  /// timestamps baked into wire bytes a pure function of the trace -- the
  /// absolute sim clock depends on which traces an executor ran earlier, and
  /// would otherwise leak execution history into recorded packets.
  explicit SimClock(std::int64_t unix_base_seconds = 1'428'883'200,  // 2015-04-13
                    const std::int64_t* epoch_origin_ns = nullptr)
      : base_ns_(unix_base_seconds * 1'000'000'000), epoch_origin_ns_(epoch_origin_ns) {}

  wire::NtpTimestamp at(util::SimTime t) const {
    const std::int64_t origin = epoch_origin_ns_ != nullptr ? *epoch_origin_ns_ : 0;
    return wire::NtpTimestamp::from_unix_nanos(base_ns_ + t.count_nanos() - origin);
  }

private:
  std::int64_t base_ns_;
  const std::int64_t* epoch_origin_ns_ = nullptr;
};

struct NtpQueryOptions {
  wire::Ecn ecn = wire::Ecn::NotEct;  ///< the experiment variable
  int max_attempts = 5;               ///< paper: five requests, then give up
  util::SimDuration timeout = util::SimDuration::seconds(1);
  std::uint8_t ttl = wire::Ipv4Header::kDefaultTtl;
  /// Per-attempt timeout overrides (sched::build_retry_schedule output):
  /// attempt i waits timeout_schedule[min(i, size-1)]. Empty (the default,
  /// and the paper's behaviour) falls back to the fixed `timeout` -- the
  /// client then takes exactly the legacy code path.
  std::vector<util::SimDuration> timeout_schedule;
  /// Hedged duplicate: if an attempt has no response after this long, its
  /// request is retransmitted once without resetting the attempt's timer
  /// (tail-loss insurance). Zero (default) disables hedging; enabling it
  /// records sched_hedges_total / sched_hedge_wins_total.
  util::SimDuration hedge_delay{};
};

struct NtpQueryResult {
  bool success = false;
  int attempts = 0;                    ///< requests actually sent
  util::SimDuration rtt;               ///< for the successful attempt
  wire::Ecn response_ecn = wire::Ecn::NotEct;  ///< ECN field on the response
  std::uint8_t server_stratum = 0;
};

/// One-shot NTP prober. Each query owns an ephemeral UDP socket, so
/// concurrent queries to many servers are independent.
class NtpClient {
public:
  using Handler = std::function<void(const NtpQueryResult&)>;

  NtpClient(netsim::Host& host, SimClock clock) : host_(host), clock_(clock) {}

  /// Probes `server`; the handler fires exactly once (success or after
  /// max_attempts timeouts).
  void query(wire::Ipv4Address server, const NtpQueryOptions& options, Handler handler);

private:
  struct Pending;
  netsim::Host& host_;
  SimClock clock_;
};

/// Pool-server behaviour on a Host: answers NTP while online.
class NtpServerService {
public:
  struct Params {
    std::uint8_t stratum = 2;
    /// Probability of answering any one request. Below 1.0 this models the
    /// rate limiting (e.g. ntpd's kiss-of-death throttling) that makes a
    /// minority of pool servers transiently unreachable -- the paper's
    /// "packet loss unrelated to ECN".
    double response_prob = 1.0;
    /// Echo the request's ECN codepoint on the response. Real NTP servers
    /// do not (responses are not-ECT, which is why the paper "cannot probe
    /// the return path"); enabling this turns the server into the modified
    /// responder that experiment needs.
    bool reflect_ecn = false;
    /// Flaky-responder faults (chaos::FaultPlan): probability a response
    /// goes out truncated below the 48-byte NTP minimum, or with its
    /// leap/version/mode octet scrambled. Either way the client rejects
    /// the reply and retries -- the server looks lossy, not broken.
    double short_reply_prob = 0.0;
    double malformed_reply_prob = 0.0;
  };

  NtpServerService(netsim::Host& host, SimClock clock, Params params);
  NtpServerService(netsim::Host& host, SimClock clock, std::uint8_t stratum)
      : NtpServerService(host, clock, Params{stratum, 1.0}) {}

  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

  /// Installs flaky-responder behaviour after construction (the scenario
  /// layer applies a FaultPlan to an already-built pool).
  void set_flaky(double short_reply_prob, double malformed_reply_prob) {
    params_.short_reply_prob = short_reply_prob;
    params_.malformed_reply_prob = malformed_reply_prob;
  }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t ect_marked_requests = 0;  ///< requests that arrived ECT/CE
  };
  const Stats& stats() const { return stats_; }

private:
  netsim::Host& host_;
  SimClock clock_;
  Params params_;
  bool online_ = true;
  std::shared_ptr<netsim::UdpSocket> socket_;
  Stats stats_;
};

}  // namespace ecnprobe::ntp
