// RTP (RFC 3550) and the ECN feedback defined for it by RFC 6679 -- the
// protocol machinery the paper's introduction motivates: interactive media
// over UDP that wants to use ECN, provided the path actually carries ECT
// marks. The RTCP side is reduced to the two messages the ECN mechanism
// needs: the per-interval ECN summary report and a receiver report carrying
// loss and jitter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecnprobe/util/expected.hpp"

namespace ecnprobe::wire {
class ByteWriter;
}

namespace ecnprobe::rtp {

/// RFC 3550 fixed header (no CSRC list, no extension payload).
struct RtpHeader {
  static constexpr std::size_t kSize = 12;
  static constexpr std::uint8_t kVersion = 2;

  bool marker = false;
  std::uint8_t payload_type = 96;  ///< dynamic PT, as WebRTC uses
  std::uint16_t sequence = 0;
  std::uint32_t timestamp = 0;  ///< media clock units
  std::uint32_t ssrc = 0;

  void encode(wire::ByteWriter& out) const;
};

struct RtpPacket {
  RtpHeader header;
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> encode() const;
  static util::Expected<RtpPacket> decode(std::span<const std::uint8_t> data);
};

/// RFC 6679 section 5.1-style ECN summary: how the receiver saw the ECN
/// field across an interval. The sender uses it to (a) verify that ECT
/// marks survive the path before trusting ECN, and (b) react to CE.
struct EcnSummary {
  std::uint32_t ssrc = 0;            ///< media source being reported on
  std::uint32_t ext_highest_seq = 0; ///< extended highest sequence received
  std::uint32_t ect0_count = 0;
  std::uint32_t ect1_count = 0;
  std::uint32_t ce_count = 0;
  std::uint32_t not_ect_count = 0;
  std::uint32_t lost_packets = 0;
  std::uint32_t jitter_us = 0;       ///< RFC 3550 interarrival jitter

  std::uint32_t received_total() const {
    return ect0_count + ect1_count + ce_count + not_ect_count;
  }

  std::vector<std::uint8_t> encode() const;
  static util::Expected<EcnSummary> decode(std::span<const std::uint8_t> data);
};

}  // namespace ecnprobe::rtp
