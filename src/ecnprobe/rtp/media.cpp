#include "ecnprobe/rtp/media.hpp"

#include <algorithm>
#include <cmath>

#include "ecnprobe/util/log.hpp"

namespace ecnprobe::rtp {

// ---------------------------------------------------------------------------
// MediaReceiver
// ---------------------------------------------------------------------------

MediaReceiver::MediaReceiver(netsim::Host& host, Config config)
    : host_(host), config_(config) {
  socket_ = host_.open_udp(config_.rtp_port);
  socket_->set_receive_handler(
      [this](const netsim::UdpDelivery& delivery) { on_rtp(delivery); });
}

MediaReceiver::~MediaReceiver() { stop(); }

void MediaReceiver::stop() {
  stopped_ = true;
  report_timer_.cancel();
}

void MediaReceiver::on_rtp(const netsim::UdpDelivery& delivery) {
  const auto packet = RtpPacket::decode(delivery.payload);
  if (!packet) return;

  if (!saw_sender_) {
    saw_sender_ = true;
    sender_addr_ = delivery.src;
    sender_port_ = delivery.src_port;
    media_ssrc_ = packet->header.ssrc;
    // Feedback cadence starts with the first media packet.
    if (!stopped_) {
      report_timer_ = host_.network().sim().schedule(config_.report_interval,
                                                     [this]() { send_report(); });
    }
  }

  ++stats_.packets_received;
  stats_.bytes_received += delivery.payload.size();
  switch (delivery.ecn) {
    case wire::Ecn::Ect0: ++stats_.ect0; break;
    case wire::Ecn::Ect1: ++stats_.ect1; break;
    case wire::Ecn::Ce: ++stats_.ce; break;
    case wire::Ecn::NotEct: ++stats_.not_ect; break;
  }

  // Extended sequence bookkeeping (RFC 3550 A.1, simplified: assumes no
  // restarts).
  const std::uint16_t seq = packet->header.sequence;
  if (first_packet_) {
    first_packet_ = false;
    highest_seq_ = seq;
    base_ext_seq_ = seq;
  } else {
    const auto delta = static_cast<std::uint16_t>(seq - highest_seq_);
    if (delta != 0 && delta < 0x8000) {
      if (seq < highest_seq_) ++seq_cycles_;  // wrapped forward
      highest_seq_ = seq;
    }
  }
  const std::uint32_t ext_seq = (seq_cycles_ << 16) | highest_seq_;
  const std::uint32_t expected = ext_seq - base_ext_seq_ + 1;
  stats_.lost = expected > stats_.packets_received
                    ? static_cast<std::uint32_t>(expected - stats_.packets_received)
                    : 0;

  // Interarrival jitter (RFC 3550 section 6.4.1) in media-clock ticks.
  const double arrival_s = host_.network().sim().now().to_seconds();
  const auto arrival_ticks =
      static_cast<std::int64_t>(arrival_s * static_cast<double>(kMediaClockHz));
  const std::int64_t transit =
      arrival_ticks - static_cast<std::int64_t>(packet->header.timestamp);
  if (have_transit_) {
    const double d = std::abs(static_cast<double>(transit - last_transit_ticks_));
    jitter_ticks_ += (d - jitter_ticks_) / 16.0;
  }
  have_transit_ = true;
  last_transit_ticks_ = transit;
  stats_.jitter_us = static_cast<std::uint32_t>(jitter_ticks_ * 1e6 /
                                                static_cast<double>(kMediaClockHz));
}

EcnSummary MediaReceiver::build_summary() const {
  EcnSummary summary;
  summary.ssrc = media_ssrc_;
  summary.ext_highest_seq = (seq_cycles_ << 16) | highest_seq_;
  summary.ect0_count = stats_.ect0;
  summary.ect1_count = stats_.ect1;
  summary.ce_count = stats_.ce;
  summary.not_ect_count = stats_.not_ect;
  summary.lost_packets = stats_.lost;
  summary.jitter_us = stats_.jitter_us;
  return summary;
}

void MediaReceiver::send_report() {
  if (stopped_) return;
  const auto bytes = build_summary().encode();
  // RTCP is not ECT-marked (RFC 6679 section 7.2).
  socket_->send(sender_addr_, sender_port_, bytes, wire::Ecn::NotEct);
  ++stats_.reports_sent;
  report_timer_ = host_.network().sim().schedule(config_.report_interval,
                                                 [this]() { send_report(); });
}

// ---------------------------------------------------------------------------
// MediaSender
// ---------------------------------------------------------------------------

MediaSender::MediaSender(netsim::Host& host, wire::Ipv4Address dst,
                         std::uint16_t dst_port, Config config)
    : host_(host),
      dst_(dst),
      dst_port_(dst_port),
      config_(config),
      bitrate_bps_(config.start_bitrate_bps),
      ssrc_(static_cast<std::uint32_t>(host.rng().next_u64())) {
  socket_ = host_.open_udp();
  socket_->set_receive_handler(
      [this](const netsim::UdpDelivery& delivery) { on_feedback(delivery); });
  sequence_ = static_cast<std::uint16_t>(host.rng().next_u64());
}

MediaSender::~MediaSender() { stop(); }

void MediaSender::start() {
  if (running_) return;
  running_ = true;
  state_ = config_.attempt_ecn ? EcnState::Initiating : EcnState::Disabled;
  if (state_ == EcnState::Initiating) {
    verify_timer_ = host_.network().sim().schedule(
        config_.verification_timeout, [this]() { on_verification_timeout(); });
  }
  send_next_packet();
}

void MediaSender::stop() {
  running_ = false;
  send_timer_.cancel();
  verify_timer_.cancel();
}

wire::Ecn MediaSender::current_marking() const {
  switch (state_) {
    case EcnState::Initiating:
    case EcnState::Capable:
      return wire::Ecn::Ect0;
    case EcnState::Disabled:
    case EcnState::Failed:
      return wire::Ecn::NotEct;
  }
  return wire::Ecn::NotEct;
}

void MediaSender::send_next_packet() {
  if (!running_) return;
  RtpPacket packet;
  packet.header.sequence = sequence_++;
  packet.header.timestamp = timestamp_;
  packet.header.ssrc = ssrc_;
  packet.payload.assign(config_.payload_bytes, 0x5a);
  const auto bytes = packet.encode();
  socket_->send(dst_, dst_port_, bytes, current_marking());
  ++stats_.packets_sent;
  stats_.bytes_sent += bytes.size();

  // Pace at the current bitrate; advance the media clock accordingly.
  const double interval_s =
      static_cast<double>(bytes.size() * 8) / std::max(bitrate_bps_, 1.0);
  timestamp_ += static_cast<std::uint32_t>(interval_s *
                                           static_cast<double>(kMediaClockHz));
  send_timer_ = host_.network().sim().schedule(
      util::SimDuration::from_seconds(interval_s), [this]() { send_next_packet(); });
}

void MediaSender::on_feedback(const netsim::UdpDelivery& delivery) {
  const auto summary = EcnSummary::decode(delivery.payload);
  if (!summary || summary->ssrc != ssrc_) return;
  ++stats_.feedback_reports;
  stats_.last_jitter_us = summary->jitter_us;

  std::uint32_t d_ce = summary->ce_count;
  std::uint32_t d_loss = summary->lost_packets;
  std::uint32_t d_received = summary->received_total();
  if (have_summary_) {
    d_ce -= last_summary_.ce_count;
    d_loss = summary->lost_packets >= last_summary_.lost_packets
                 ? summary->lost_packets - last_summary_.lost_packets
                 : 0;
    d_received -= last_summary_.received_total();
  }
  stats_.ce_reported += d_ce;
  stats_.loss_reported = summary->lost_packets;

  if (state_ == EcnState::Initiating) {
    // RFC 6679 verification: did the marks survive?
    const double received = summary->received_total();
    if (received > 0) {
      const double ect_fraction =
          (summary->ect0_count + summary->ect1_count + summary->ce_count) / received;
      verify_timer_.cancel();
      if (ect_fraction >= config_.verify_min_ect_fraction) {
        state_ = EcnState::Capable;
        stats_.verified = true;
      } else {
        // Marks are being bleached: ECN feedback would be blind. Fall back.
        state_ = EcnState::Failed;
        stats_.fell_back = true;
      }
    }
  }

  apply_rate_control(d_ce, d_loss, d_received);
  last_summary_ = *summary;
  have_summary_ = true;
  stats_.rate_history.emplace_back(host_.network().sim().now().to_seconds(),
                                   bitrate_bps_);
}

void MediaSender::on_verification_timeout() {
  if (state_ != EcnState::Initiating) return;
  // Nothing usable came back while probing with ECT(0): the path (or a
  // firewall on it) is eating marked packets. Fall back to not-ECT -- the
  // session survives exactly because the application probed first.
  state_ = EcnState::Failed;
  stats_.fell_back = true;
}

void MediaSender::apply_rate_control(std::uint32_t d_ce, std::uint32_t d_loss,
                                     std::uint32_t d_received) {
  // NADA-flavoured: a congestion signal blending loss and CE marks drives
  // multiplicative decrease; quiet intervals earn a gentle increase.
  const double total = static_cast<double>(d_received + d_loss);
  if (total <= 0.0) return;
  const double loss_rate = static_cast<double>(d_loss) / total;
  const double ce_rate = static_cast<double>(d_ce) / total;
  const double congestion = loss_rate + 0.5 * ce_rate;
  if (congestion > 0.0) {
    const double factor = std::max(0.5, 1.0 - 1.5 * congestion);
    bitrate_bps_ = std::max(config_.min_bitrate_bps, bitrate_bps_ * factor);
    ++stats_.rate_decreases;
  } else {
    bitrate_bps_ = std::min(config_.max_bitrate_bps, bitrate_bps_ * 1.05);
    ++stats_.rate_increases;
  }
}

}  // namespace ecnprobe::rtp
