#include "ecnprobe/rtp/rtp_packet.hpp"

#include "ecnprobe/wire/bytes.hpp"

namespace ecnprobe::rtp {

namespace {
// Magic first byte for our reduced RTCP ECN summary (RTCP PT 205 /
// transport-layer feedback would carry this in full RTCP; the simulator
// needs only an unambiguous self-describing encoding).
constexpr std::uint8_t kEcnSummaryTag = 0xEC;
}  // namespace

void RtpHeader::encode(wire::ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(kVersion << 6));  // no padding/extension/CSRC
  out.u8(static_cast<std::uint8_t>((marker ? 0x80 : 0x00) | (payload_type & 0x7f)));
  out.u16(sequence);
  out.u32(timestamp);
  out.u32(ssrc);
}

std::vector<std::uint8_t> RtpPacket::encode() const {
  wire::ByteWriter out(RtpHeader::kSize + payload.size());
  header.encode(out);
  out.bytes(payload);
  return out.take();
}

util::Expected<RtpPacket> RtpPacket::decode(std::span<const std::uint8_t> data) {
  if (data.size() < RtpHeader::kSize) {
    return util::make_error("rtp.decode", "below fixed header size");
  }
  wire::ByteReader in(data);
  const std::uint8_t vpxcc = in.u8();
  if ((vpxcc >> 6) != RtpHeader::kVersion) {
    return util::make_error("rtp.decode", "bad RTP version");
  }
  const std::uint8_t csrc_count = vpxcc & 0x0f;
  RtpPacket packet;
  const std::uint8_t mpt = in.u8();
  packet.header.marker = (mpt & 0x80) != 0;
  packet.header.payload_type = mpt & 0x7f;
  packet.header.sequence = in.u16();
  packet.header.timestamp = in.u32();
  packet.header.ssrc = in.u32();
  in.skip(static_cast<std::size_t>(csrc_count) * 4);
  if (!in.ok()) return util::make_error("rtp.decode", "truncated CSRC list");
  const auto rest = in.rest();
  packet.payload.assign(rest.begin(), rest.end());
  return packet;
}

std::vector<std::uint8_t> EcnSummary::encode() const {
  wire::ByteWriter out(33);
  out.u8(kEcnSummaryTag);
  out.u32(ssrc);
  out.u32(ext_highest_seq);
  out.u32(ect0_count);
  out.u32(ect1_count);
  out.u32(ce_count);
  out.u32(not_ect_count);
  out.u32(lost_packets);
  out.u32(jitter_us);
  return out.take();
}

util::Expected<EcnSummary> EcnSummary::decode(std::span<const std::uint8_t> data) {
  wire::ByteReader in(data);
  if (in.u8() != kEcnSummaryTag) {
    return util::make_error("rtcp.decode", "not an ECN summary");
  }
  EcnSummary summary;
  summary.ssrc = in.u32();
  summary.ext_highest_seq = in.u32();
  summary.ect0_count = in.u32();
  summary.ect1_count = in.u32();
  summary.ce_count = in.u32();
  summary.not_ect_count = in.u32();
  summary.lost_packets = in.u32();
  summary.jitter_us = in.u32();
  if (!in.ok()) return util::make_error("rtcp.decode", "truncated summary");
  return summary;
}

}  // namespace ecnprobe::rtp
