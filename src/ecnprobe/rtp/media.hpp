// An interactive-media session over simulated UDP with RFC 6679 ECN
// semantics -- the application the paper's measurements are meant to enable.
//
// The sender implements the RFC 6679 lifecycle:
//   1. *Initiation*: mark the first packets ECT(0) while the path is
//      unproven (the spec's "ECN initiation phase").
//   2. *Verification*: the receiver's ECN summary reports say how packets
//      actually arrived. If ECT survives, ECN becomes Capable; if marks
//      come back bleached -- or nothing arrives at all, e.g. an
//      ECT-dropping firewall ate the probes -- the sender *falls back* to
//      not-ECT so the session keeps working (the failure mode the paper
//      quantifies).
//   3. *Operation*: CE counts in feedback drive a NADA-flavoured rate
//      controller (multiplicative decrease on loss+CE, gentle increase
//      otherwise).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/rtp/rtp_packet.hpp"

namespace ecnprobe::rtp {

inline constexpr std::uint32_t kMediaClockHz = 90'000;  // video clock

/// Receiver side: counts arriving RTP per ECN codepoint, tracks loss and
/// RFC 3550 interarrival jitter, and returns an EcnSummary to the sender's
/// source address on a fixed cadence (rtcp-mux style: RTP and feedback share
/// the socket pair).
class MediaReceiver {
public:
  struct Config {
    std::uint16_t rtp_port = 5004;
    util::SimDuration report_interval = util::SimDuration::millis(100);
  };

  MediaReceiver(netsim::Host& host, Config config);
  ~MediaReceiver();

  /// Stops the feedback cadence (the timer otherwise re-arms forever, which
  /// keeps an event-driven simulation alive). Receiving continues.
  void stop();

  struct Stats {
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint32_t ect0 = 0;
    std::uint32_t ect1 = 0;
    std::uint32_t ce = 0;
    std::uint32_t not_ect = 0;
    std::uint32_t lost = 0;
    std::uint32_t jitter_us = 0;
    std::uint64_t reports_sent = 0;
  };
  const Stats& stats() const { return stats_; }

private:
  void on_rtp(const netsim::UdpDelivery& delivery);
  void send_report();
  EcnSummary build_summary() const;

  netsim::Host& host_;
  Config config_;
  std::shared_ptr<netsim::UdpSocket> socket_;
  netsim::EventHandle report_timer_;

  bool saw_sender_ = false;
  bool stopped_ = false;
  wire::Ipv4Address sender_addr_;
  std::uint16_t sender_port_ = 0;
  std::uint32_t media_ssrc_ = 0;

  // Sequence tracking (RFC 3550 appendix A style, simplified).
  bool first_packet_ = true;
  std::uint16_t highest_seq_ = 0;
  std::uint32_t seq_cycles_ = 0;
  std::uint32_t base_ext_seq_ = 0;

  // Jitter state.
  bool have_transit_ = false;
  std::int64_t last_transit_ticks_ = 0;
  double jitter_ticks_ = 0.0;

  Stats stats_;
};

/// Sender side: paced RTP at an adaptive bitrate with the RFC 6679 ECN
/// lifecycle described above.
class MediaSender {
public:
  enum class EcnState : std::uint8_t {
    Disabled,    ///< never attempted (config.attempt_ecn == false)
    Initiating,  ///< probing with ECT(0), waiting for verification
    Capable,     ///< path verified; ECT(0) + CE-driven rate control
    Failed,      ///< verification failed; fell back to not-ECT
  };

  struct Config {
    bool attempt_ecn = true;
    double start_bitrate_bps = 600'000;
    double min_bitrate_bps = 150'000;
    double max_bitrate_bps = 2'500'000;
    std::size_t payload_bytes = 1000;
    /// Initiation gives up if no usable feedback arrives in this window
    /// (covers the firewall case where every ECT probe is eaten).
    util::SimDuration verification_timeout = util::SimDuration::millis(1500);
    /// Fraction of *received* initiation packets that must still carry ECT
    /// for the path to verify (RFC 6679 tolerates a little remarking).
    double verify_min_ect_fraction = 0.9;
  };

  MediaSender(netsim::Host& host, wire::Ipv4Address dst, std::uint16_t dst_port,
              Config config);
  ~MediaSender();

  void start();
  void stop();

  EcnState ecn_state() const { return state_; }
  double current_bitrate_bps() const { return bitrate_bps_; }

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t feedback_reports = 0;
    std::uint32_t ce_reported = 0;
    std::uint32_t loss_reported = 0;
    std::uint32_t last_jitter_us = 0;
    int rate_increases = 0;
    int rate_decreases = 0;
    bool fell_back = false;          ///< entered Failed after attempting ECN
    bool verified = false;           ///< reached Capable
    /// (sim-seconds, bps) samples, one per feedback report.
    std::vector<std::pair<double, double>> rate_history;
  };
  const Stats& stats() const { return stats_; }

private:
  void send_next_packet();
  void on_feedback(const netsim::UdpDelivery& delivery);
  void on_verification_timeout();
  void apply_rate_control(std::uint32_t d_ce, std::uint32_t d_loss,
                          std::uint32_t d_received);
  wire::Ecn current_marking() const;

  netsim::Host& host_;
  wire::Ipv4Address dst_;
  std::uint16_t dst_port_;
  Config config_;
  std::shared_ptr<netsim::UdpSocket> socket_;
  netsim::EventHandle send_timer_;
  netsim::EventHandle verify_timer_;
  bool running_ = false;

  EcnState state_ = EcnState::Disabled;
  double bitrate_bps_;
  std::uint32_t ssrc_;
  std::uint16_t sequence_ = 0;
  std::uint32_t timestamp_ = 0;

  EcnSummary last_summary_;
  bool have_summary_ = false;

  Stats stats_;
};

}  // namespace ecnprobe::rtp
