// Userspace TCP over the simulated IP layer: three-way handshake with
// RFC 3168 ECN negotiation, reliable byte-stream transfer with RTO
// retransmission and a simple AIMD congestion window, ECE/CWR congestion
// feedback, and orderly FIN teardown. Both the probing client and the pool
// web servers run this stack; the paper's TCP experiment reduces to whether
// the SYN-ACK that comes back is an ECN-setup SYN-ACK.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/wire/tcp.hpp"

namespace ecnprobe::tcp {

struct TcpConfig {
  std::size_t mss = 1400;
  util::SimDuration initial_rto = util::SimDuration::seconds(1);
  util::SimDuration max_rto = util::SimDuration::seconds(8);
  int syn_retries = 3;    ///< retransmissions after the first SYN
  int data_retries = 6;   ///< retransmissions before giving up
  std::size_t initial_cwnd_segments = 10;
  /// Receive window advertised to the peer; the peer's advertisement caps
  /// our bytes in flight (simple static flow control).
  std::uint16_t advertised_window = 65535;
  /// Server-side willingness to negotiate ECN; client-side requests are per
  /// connect() call.
  bool ecn_enabled = false;
  util::SimDuration time_wait = util::SimDuration::seconds(2);
};

enum class TcpState : std::uint8_t {
  Closed,
  Listen,
  SynSent,
  SynReceived,
  Established,
  FinWait1,
  FinWait2,
  CloseWait,
  Closing,
  LastAck,
  TimeWait,
};

std::string_view to_string(TcpState s);

/// Why a connection ended (reported through the close handler).
enum class CloseReason : std::uint8_t {
  Graceful,   ///< FIN handshake completed
  Reset,      ///< peer sent RST
  Timeout,    ///< retransmissions exhausted
  Refused,    ///< SYN answered by RST
  LocalAbort,
};

std::string_view to_string(CloseReason r);

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t ce_received = 0;       ///< data segments that arrived CE-marked
  std::uint64_t ece_acks_sent = 0;
  std::uint64_t ece_acks_received = 0;
  std::uint64_t cwr_sent = 0;
  std::uint64_t congestion_events = 0; ///< cwnd reductions (ECE or RTO)
};

class TcpStack;

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
public:
  using ConnectHandler = std::function<void(bool established)>;
  using ReceiveHandler = std::function<void(std::span<const std::uint8_t>)>;
  using CloseHandler = std::function<void(CloseReason)>;

  ~TcpConnection();

  TcpState state() const { return state_; }
  /// True once both ends agreed to use ECN on this connection.
  bool ecn_negotiated() const { return ecn_ok_; }
  const TcpStats& stats() const { return stats_; }

  wire::Ipv4Address local_addr() const { return local_addr_; }
  std::uint16_t local_port() const { return local_port_; }
  wire::Ipv4Address remote_addr() const { return remote_addr_; }
  std::uint16_t remote_port() const { return remote_port_; }

  /// Queues application bytes for transmission.
  void send(std::span<const std::uint8_t> data);
  void send(std::string_view text);

  void set_receive_handler(ReceiveHandler handler) { receive_ = std::move(handler); }
  void set_close_handler(CloseHandler handler) { on_close_ = std::move(handler); }

  /// Graceful close: FIN once the send queue drains.
  void close();
  /// Immediate RST.
  void abort();

private:
  friend class TcpStack;
  TcpConnection(TcpStack& stack, const TcpConfig& config);

  // Segment arrival from the stack's demux.
  void on_segment(const wire::Datagram& dgram, const wire::TcpSegmentView& seg);

  void start_connect(wire::Ipv4Address dst, std::uint16_t dst_port, bool want_ecn,
                     ConnectHandler handler);
  void start_accept(const wire::Datagram& dgram, const wire::TcpSegmentView& syn);

  void send_segment(wire::TcpFlags flags, std::uint32_t seq,
                    std::span<const std::uint8_t> payload, bool mark_ect,
                    std::span<const std::uint8_t> options = {});
  /// min(our MSS, peer's advertised MSS) -- the segment size actually used.
  std::size_t effective_mss() const;
  void send_ack();
  void send_syn(bool is_retransmit);
  void send_syn_ack(bool is_retransmit);
  void try_send_data();
  void maybe_send_fin();

  void arm_rto();
  void disarm_rto();
  void on_rto();

  void handle_established_segment(const wire::Datagram& dgram,
                                  const wire::TcpSegmentView& seg);
  void process_ack(const wire::TcpSegmentView& seg);
  void deliver_in_order();
  void on_peer_fin(std::uint32_t fin_seq);
  void enter_time_wait();
  void finish(CloseReason reason);

  TcpStack& stack_;
  TcpConfig config_;
  TcpState state_ = TcpState::Closed;

  wire::Ipv4Address local_addr_;
  wire::Ipv4Address remote_addr_;
  std::uint16_t local_port_ = 0;
  std::uint16_t remote_port_ = 0;

  // ECN negotiation + feedback state (RFC 3168 section 6.1).
  bool want_ecn_ = false;   ///< client requested / server willing
  bool ecn_ok_ = false;     ///< negotiated
  bool ece_pending_ = false;  ///< receiver: CE seen, echo ECE until CWR
  bool cwr_pending_ = false;  ///< sender: reduced, must send CWR on next data

  // Send state.
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::deque<std::uint8_t> send_buffer_;  ///< bytes from snd_una_ onward (unsent+unacked)
  std::size_t inflight_ = 0;              ///< bytes sent but unacked
  std::size_t cwnd_ = 0;
  std::uint16_t peer_window_ = 65535;
  std::size_t peer_mss_ = 0;  ///< from the peer's SYN MSS option; 0 = none seen
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;
  std::uint32_t peer_syn_flight_ = 0;  ///< flight id carried by the peer's SYN

  // Receive state.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, std::vector<std::uint8_t>> reorder_;
  bool peer_fin_seen_ = false;
  std::uint32_t peer_fin_seq_ = 0;

  // Timers.
  netsim::EventHandle rto_timer_;
  util::SimDuration current_rto_;
  int retries_ = 0;
  netsim::EventHandle time_wait_timer_;

  ConnectHandler on_connect_;
  ReceiveHandler receive_;
  CloseHandler on_close_;
  bool finished_ = false;

  TcpStats stats_;
};

/// Per-host TCP endpoint: owns the demux table, listeners, and the
/// IP-protocol hook on the Host.
class TcpStack {
public:
  using AcceptHandler = std::function<void(std::shared_ptr<TcpConnection>)>;

  TcpStack(netsim::Host& host, TcpConfig config);
  ~TcpStack();
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Opens a client connection. The handler fires once with the outcome;
  /// set_receive_handler/set_close_handler may be set afterwards.
  std::shared_ptr<TcpConnection> connect(wire::Ipv4Address dst, std::uint16_t dst_port,
                                         bool want_ecn, TcpConnection::ConnectHandler handler);

  /// Accepts connections on `port`; the handler receives each new
  /// connection after its SYN arrives (before the handshake completes).
  void listen(std::uint16_t port, AcceptHandler handler);
  void close_listener(std::uint16_t port);

  netsim::Host& host() { return host_; }
  const TcpConfig& config() const { return config_; }

  /// Epoch boundary: tears down any surviving flows (normally just
  /// TIME_WAIT remnants -- campaign epochs begin at simulator quiescence)
  /// and rewinds the ephemeral-port allocator so connection five-tuples and
  /// ISN draws replay identically in the new epoch. Listeners survive: a
  /// server keeps serving across epochs.
  void reset_transients();

private:
  friend class TcpConnection;

  struct FlowKey {
    std::uint32_t remote_addr;
    std::uint16_t remote_port;
    std::uint16_t local_port;
    auto operator<=>(const FlowKey&) const = default;
  };

  void on_datagram(const wire::Datagram& dgram);
  void send_rst_for(const wire::Datagram& dgram, const wire::TcpSegmentView& seg);
  void register_flow(const FlowKey& key, std::shared_ptr<TcpConnection> conn);
  void release_flow(const FlowKey& key);
  std::uint16_t pick_ephemeral_port();

  netsim::Host& host_;
  TcpConfig config_;
  std::map<FlowKey, std::shared_ptr<TcpConnection>> flows_;
  std::map<std::uint16_t, AcceptHandler> listeners_;
  std::uint16_t next_ephemeral_ = 40000;
};

}  // namespace ecnprobe::tcp
