#include "ecnprobe/tcp/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "ecnprobe/obs/metrics.hpp"
#include "ecnprobe/util/log.hpp"

namespace ecnprobe::tcp {

namespace {

// 32-bit sequence-space comparisons (RFC 793 modular arithmetic).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
inline bool seq_geq(std::uint32_t a, std::uint32_t b) { return seq_leq(b, a); }

}  // namespace

std::string_view to_string(TcpState s) {
  switch (s) {
    case TcpState::Closed: return "CLOSED";
    case TcpState::Listen: return "LISTEN";
    case TcpState::SynSent: return "SYN-SENT";
    case TcpState::SynReceived: return "SYN-RECEIVED";
    case TcpState::Established: return "ESTABLISHED";
    case TcpState::FinWait1: return "FIN-WAIT-1";
    case TcpState::FinWait2: return "FIN-WAIT-2";
    case TcpState::CloseWait: return "CLOSE-WAIT";
    case TcpState::Closing: return "CLOSING";
    case TcpState::LastAck: return "LAST-ACK";
    case TcpState::TimeWait: return "TIME-WAIT";
  }
  return "?";
}

std::string_view to_string(CloseReason r) {
  switch (r) {
    case CloseReason::Graceful: return "graceful";
    case CloseReason::Reset: return "reset";
    case CloseReason::Timeout: return "timeout";
    case CloseReason::Refused: return "refused";
    case CloseReason::LocalAbort: return "local-abort";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TcpConnection
// ---------------------------------------------------------------------------


namespace {
// Handshake/ECN outcome counters live in the owning network's registry, so
// campaign metrics pick them up per-trace. Lookups are per-event (a few per
// connection), so no pointer caching is needed.
void count_handshake(TcpStack& stack, const char* role, std::string_view outcome) {
  stack.host().network().obs().registry.counter(
      "tcp_handshakes_total",
      {{"role", role}, {"outcome", std::string(outcome)}},
      "TCP handshake outcomes by role")->inc();
}

void count_ecn_negotiation(TcpStack& stack, bool negotiated) {
  stack.host().network().obs().registry.counter(
      "tcp_ecn_negotiation_total",
      {{"result", negotiated ? "negotiated" : "refused"}},
      "client-side ECN negotiation outcomes")->inc();
}

void count_retransmission(TcpStack& stack) {
  stack.host().network().obs().registry.counter(
      "tcp_retransmissions_total", {}, "TCP segment retransmissions")->inc();
}
}  // namespace

TcpConnection::TcpConnection(TcpStack& stack, const TcpConfig& config)
    : stack_(stack),
      config_(config),
      cwnd_(config.initial_cwnd_segments * config.mss),
      current_rto_(config.initial_rto) {}

TcpConnection::~TcpConnection() {
  disarm_rto();
  time_wait_timer_.cancel();
}

void TcpConnection::start_connect(wire::Ipv4Address dst, std::uint16_t dst_port,
                                  bool want_ecn, ConnectHandler handler) {
  local_addr_ = stack_.host().address();
  remote_addr_ = dst;
  remote_port_ = dst_port;
  want_ecn_ = want_ecn;
  on_connect_ = std::move(handler);
  iss_ = static_cast<std::uint32_t>(stack_.host().rng().next_u64());
  snd_una_ = iss_;
  snd_nxt_ = iss_;
  state_ = TcpState::SynSent;
  send_syn(false);
  arm_rto();
}

void TcpConnection::start_accept(const wire::Datagram& dgram,
                                 const wire::TcpSegmentView& syn) {
  local_addr_ = stack_.host().address();
  local_port_ = syn.header.dst_port;
  remote_addr_ = dgram.ip.src;
  remote_port_ = syn.header.src_port;
  irs_ = syn.header.seq;
  rcv_nxt_ = syn.header.seq + 1;
  peer_window_ = syn.header.window;
  if (const auto mss = wire::find_mss_option(syn.header.options)) peer_mss_ = *mss;
  iss_ = static_cast<std::uint32_t>(stack_.host().rng().next_u64());
  snd_una_ = iss_;
  snd_nxt_ = iss_;
  peer_syn_flight_ = dgram.flight;
  // RFC 3168 6.1.1: the passive side agrees to ECN iff the SYN was an
  // ECN-setup SYN and this host is willing.
  ecn_ok_ = config_.ecn_enabled && syn.header.is_ecn_setup_syn();
  state_ = TcpState::SynReceived;
  send_syn_ack(false);
  arm_rto();
}

void TcpConnection::send(std::span<const std::uint8_t> data) {
  if (finished_ || fin_queued_) return;
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  if (state_ == TcpState::Established || state_ == TcpState::CloseWait) try_send_data();
}

void TcpConnection::send(std::string_view text) {
  send(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                     text.size()));
}

void TcpConnection::close() {
  if (finished_ || fin_queued_) return;
  if (state_ == TcpState::SynSent) {
    finish(CloseReason::LocalAbort);
    return;
  }
  fin_queued_ = true;
  maybe_send_fin();
}

void TcpConnection::abort() {
  if (finished_) return;
  wire::TcpFlags flags;
  flags.rst = true;
  flags.ack = true;
  send_segment(flags, snd_nxt_, {}, false);
  finish(CloseReason::LocalAbort);
}

std::size_t TcpConnection::effective_mss() const {
  return peer_mss_ > 0 ? std::min(config_.mss, peer_mss_) : config_.mss;
}

void TcpConnection::send_segment(wire::TcpFlags flags, std::uint32_t seq,
                                 std::span<const std::uint8_t> payload, bool mark_ect,
                                 std::span<const std::uint8_t> options) {
  wire::TcpHeader header;
  header.src_port = local_port_;
  header.dst_port = remote_port_;
  header.seq = seq;
  header.window = config_.advertised_window;
  header.options.assign(options.begin(), options.end());
  if (flags.ack) {
    header.ack = rcv_nxt_;
    // RFC 3168: the receiver echoes ECE on every ACK from CE receipt until
    // the sender's CWR arrives. Never on handshake segments.
    if (ecn_ok_ && ece_pending_ && !flags.syn) {
      flags.ece = true;
      ++stats_.ece_acks_sent;
    }
  }
  header.flags = flags;
  // Data on a negotiated connection is ECT(0); pure ACKs, handshake
  // segments, and retransmissions stay not-ECT (RFC 3168 sections 6.1.1,
  // 6.1.4, 6.1.5).
  const wire::Ecn ecn = (ecn_ok_ && mark_ect) ? wire::Ecn::Ect0 : wire::Ecn::NotEct;
  ++stats_.segments_sent;
  stack_.host().send_datagram(
      wire::make_tcp_datagram(local_addr_, remote_addr_, header, payload, ecn));
}

void TcpConnection::send_ack() {
  wire::TcpFlags flags;
  flags.ack = true;
  send_segment(flags, snd_nxt_, {}, false);
}

void TcpConnection::send_syn(bool is_retransmit) {
  wire::TcpFlags flags;
  flags.syn = true;
  if (want_ecn_) {
    // ECN-setup SYN: ECE and CWR both set; the packet itself is not-ECT.
    flags.ece = true;
    flags.cwr = true;
  }
  if (is_retransmit) {
    ++stats_.retransmissions;
    count_retransmission(stack_);
  }
  // Each SYN (re)transmission is its own flight attempt within the probe.
  auto& recorder = stack_.host().network().obs().recorder;
  if (recorder.armed()) {
    recorder.set_seq(static_cast<int>(stats_.retransmissions));
    recorder.begin_flight(is_retransmit);
  }
  const auto mss = wire::make_mss_option(static_cast<std::uint16_t>(config_.mss));
  send_segment(flags, iss_, {}, false, mss);
}

void TcpConnection::send_syn_ack(bool is_retransmit) {
  wire::TcpFlags flags;
  flags.syn = true;
  flags.ack = true;
  if (ecn_ok_) flags.ece = true;  // ECN-setup SYN-ACK: ECE set, CWR clear
  if (is_retransmit) {
    ++stats_.retransmissions;
    count_retransmission(stack_);
  }
  // The SYN-ACK rides the client SYN's flight: the return path belongs to
  // the same probe span (a send event was already recorded for the SYN).
  auto& recorder = stack_.host().network().obs().recorder;
  if (recorder.armed() && peer_syn_flight_ != 0) recorder.stage_reply(peer_syn_flight_);
  const auto mss = wire::make_mss_option(static_cast<std::uint16_t>(config_.mss));
  send_segment(flags, iss_, {}, false, mss);
}

void TcpConnection::try_send_data() {
  const std::uint32_t data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
  std::size_t unacked = data_end - snd_una_;
  std::size_t unsent = send_buffer_.size() - unacked;
  const std::size_t window = std::min<std::size_t>(cwnd_, peer_window_);

  while (unsent > 0 && unacked < window) {
    const std::size_t len = std::min({effective_mss(), unsent, window - unacked});
    std::vector<std::uint8_t> payload(len);
    std::copy_n(send_buffer_.begin() + static_cast<std::ptrdiff_t>(unacked), len,
                payload.begin());
    wire::TcpFlags flags;
    flags.ack = true;
    flags.psh = unsent == len;
    if (cwr_pending_) {
      flags.cwr = true;  // signals "I reduced" after an ECE (RFC 3168 6.1.2)
      cwr_pending_ = false;
      ++stats_.cwr_sent;
    }
    send_segment(flags, snd_nxt_, payload, true);
    snd_nxt_ += static_cast<std::uint32_t>(len);
    unacked += len;
    unsent -= len;
  }
  if (snd_nxt_ != snd_una_ && !rto_timer_.pending()) arm_rto();
  maybe_send_fin();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_queued_ || fin_sent_ || finished_) return;
  const std::size_t unacked = snd_nxt_ - snd_una_;
  const std::size_t unsent = send_buffer_.size() - unacked;
  if (unsent > 0) return;  // FIN goes after the last data byte
  wire::TcpFlags flags;
  flags.fin = true;
  flags.ack = true;
  fin_seq_ = snd_nxt_;
  send_segment(flags, fin_seq_, {}, false);
  snd_nxt_ = fin_seq_ + 1;
  fin_sent_ = true;
  if (state_ == TcpState::Established) state_ = TcpState::FinWait1;
  else if (state_ == TcpState::CloseWait) state_ = TcpState::LastAck;
  if (!rto_timer_.pending()) arm_rto();
}

void TcpConnection::arm_rto() {
  disarm_rto();
  auto self = weak_from_this();
  rto_timer_ = stack_.host().network().sim().schedule(current_rto_, [self]() {
    if (auto conn = self.lock()) conn->on_rto();
  });
}

void TcpConnection::disarm_rto() { rto_timer_.cancel(); }

void TcpConnection::on_rto() {
  if (finished_) return;
  ++retries_;
  const int limit =
      state_ == TcpState::SynSent || state_ == TcpState::SynReceived
          ? config_.syn_retries
          : config_.data_retries;
  if (retries_ > limit) {
    const bool connecting = state_ == TcpState::SynSent || state_ == TcpState::SynReceived;
    finish(connecting ? CloseReason::Refused : CloseReason::Timeout);
    return;
  }
  current_rto_ = current_rto_ * 2;
  if (current_rto_ > config_.max_rto) current_rto_ = config_.max_rto;

  switch (state_) {
    case TcpState::SynSent:
      send_syn(true);
      break;
    case TcpState::SynReceived:
      send_syn_ack(true);
      break;
    default: {
      // Loss is a congestion signal, like ECE.
      cwnd_ = std::max(cwnd_ / 2, config_.mss);
      ++stats_.congestion_events;
      const std::uint32_t data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
      const std::size_t unacked = data_end - snd_una_;
      if (unacked > 0) {
        const std::size_t len = std::min(effective_mss(), unacked);
        std::vector<std::uint8_t> payload(len);
        std::copy_n(send_buffer_.begin(), len, payload.begin());
        wire::TcpFlags flags;
        flags.ack = true;
        ++stats_.retransmissions;
        count_retransmission(stack_);
        // Retransmissions are not ECT-marked (RFC 3168 section 6.1.5).
        send_segment(flags, snd_una_, payload, false);
      } else if (fin_sent_) {
        wire::TcpFlags flags;
        flags.fin = true;
        flags.ack = true;
        ++stats_.retransmissions;
        count_retransmission(stack_);
        send_segment(flags, fin_seq_, {}, false);
      }
      break;
    }
  }
  arm_rto();
}

void TcpConnection::on_segment(const wire::Datagram& dgram,
                               const wire::TcpSegmentView& seg) {
  if (finished_) return;
  ++stats_.segments_received;
  peer_window_ = seg.header.window;

  if (seg.header.flags.rst) {
    if (state_ == TcpState::SynSent || state_ == TcpState::SynReceived) {
      if (on_connect_) {
        auto handler = std::move(on_connect_);
        on_connect_ = nullptr;
        handler(false);
      }
      finish(CloseReason::Refused);
    } else {
      finish(CloseReason::Reset);
    }
    return;
  }

  switch (state_) {
    case TcpState::SynSent: {
      if (!seg.header.flags.syn || !seg.header.flags.ack) return;
      if (seg.header.ack != iss_ + 1) return;  // not for our SYN
      irs_ = seg.header.seq;
      rcv_nxt_ = seg.header.seq + 1;
      if (const auto mss = wire::find_mss_option(seg.header.options)) peer_mss_ = *mss;
      snd_una_ = seg.header.ack;
      snd_nxt_ = seg.header.ack;
      ecn_ok_ = want_ecn_ && seg.header.is_ecn_setup_syn_ack();
      state_ = TcpState::Established;
      count_handshake(stack_, "client", "established");
      if (want_ecn_) count_ecn_negotiation(stack_, ecn_ok_);
      retries_ = 0;
      current_rto_ = config_.initial_rto;
      disarm_rto();
      send_ack();
      if (on_connect_) {
        auto handler = std::move(on_connect_);
        on_connect_ = nullptr;
        handler(true);
      }
      try_send_data();
      return;
    }
    case TcpState::SynReceived: {
      if (seg.header.flags.syn) {
        send_syn_ack(true);  // duplicate SYN: our SYN-ACK was lost
        return;
      }
      if (seg.header.flags.ack && seg.header.ack == iss_ + 1) {
        snd_una_ = iss_ + 1;
        snd_nxt_ = iss_ + 1;
        state_ = TcpState::Established;
        count_handshake(stack_, "server", "established");
        retries_ = 0;
        current_rto_ = config_.initial_rto;
        disarm_rto();
        // The handshake ACK may already carry data; fall through.
        handle_established_segment(dgram, seg);
        try_send_data();
      }
      return;
    }
    case TcpState::Established:
    case TcpState::FinWait1:
    case TcpState::FinWait2:
    case TcpState::CloseWait:
    case TcpState::Closing:
    case TcpState::LastAck:
      handle_established_segment(dgram, seg);
      return;
    case TcpState::TimeWait:
      if (seg.header.flags.fin) send_ack();  // retransmitted FIN
      return;
    case TcpState::Closed:
    case TcpState::Listen:
      return;
  }
}

void TcpConnection::handle_established_segment(const wire::Datagram& dgram,
                                               const wire::TcpSegmentView& seg) {
  if (seg.header.flags.ack) process_ack(seg);
  if (finished_) return;

  if (!seg.payload.empty()) {
    // RFC 3168: receipt of a CE-marked data segment arms ECE echoing;
    // receipt of CWR (the sender's "I reduced") disarms it.
    if (dgram.ip.ecn == wire::Ecn::Ce) {
      ++stats_.ce_received;
      if (ecn_ok_) ece_pending_ = true;
    }
    if (seg.header.flags.cwr) ece_pending_ = false;

    std::uint32_t seq = seg.header.seq;
    std::vector<std::uint8_t> data(seg.payload.begin(), seg.payload.end());
    if (seq_lt(seq, rcv_nxt_)) {
      const std::uint32_t overlap = rcv_nxt_ - seq;
      if (overlap >= data.size()) {
        send_ack();  // full duplicate; re-ACK
        data.clear();
      } else {
        data.erase(data.begin(), data.begin() + overlap);
        seq = rcv_nxt_;
      }
    }
    if (!data.empty()) {
      reorder_.emplace(seq, std::move(data));
      deliver_in_order();
      send_ack();
    }
  }

  if (seg.header.flags.fin) {
    const std::uint32_t fin_seq = seg.header.seq + static_cast<std::uint32_t>(
                                                       seg.payload.size());
    on_peer_fin(fin_seq);
  }
}

void TcpConnection::process_ack(const wire::TcpSegmentView& seg) {
  const std::uint32_t acked = seg.header.ack;
  if (seq_gt(acked, snd_nxt_)) return;  // acks data we never sent

  // ECE handling (RFC 3168 6.1.2): one cwnd reduction per congestion window;
  // cwr_pending_ gates further reductions until CWR is emitted.
  if (seg.header.flags.ece && ecn_ok_) {
    ++stats_.ece_acks_received;
    if (!cwr_pending_) {
      cwnd_ = std::max(cwnd_ / 2, config_.mss);
      ++stats_.congestion_events;
      cwr_pending_ = true;
    }
  }

  if (seq_gt(acked, snd_una_)) {
    const std::uint32_t data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
    const std::uint32_t data_acked_end = seq_lt(acked, data_end) ? acked : data_end;
    const std::size_t bytes_acked = data_acked_end - snd_una_;
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + static_cast<std::ptrdiff_t>(bytes_acked));
    snd_una_ = acked;
    retries_ = 0;
    current_rto_ = config_.initial_rto;
    if (snd_una_ == snd_nxt_) disarm_rto();
    else arm_rto();

    const bool fin_acked = fin_sent_ && seq_geq(acked, fin_seq_ + 1);
    if (fin_acked) {
      if (state_ == TcpState::FinWait1) state_ = TcpState::FinWait2;
      else if (state_ == TcpState::Closing) { enter_time_wait(); return; }
      else if (state_ == TcpState::LastAck) { finish(CloseReason::Graceful); return; }
    }
    try_send_data();
  }
}

void TcpConnection::deliver_in_order() {
  while (true) {
    const auto it = reorder_.find(rcv_nxt_);
    if (it == reorder_.end()) break;
    std::vector<std::uint8_t> data = std::move(it->second);
    reorder_.erase(it);
    rcv_nxt_ += static_cast<std::uint32_t>(data.size());
    stats_.bytes_delivered += data.size();
    if (receive_) receive_(data);
    if (finished_) return;  // handler may have aborted
  }
  // A FIN that arrived ahead of missing data becomes deliverable once the
  // gap fills.
  if (peer_fin_seen_ && peer_fin_seq_ == rcv_nxt_) on_peer_fin(peer_fin_seq_);
}

void TcpConnection::on_peer_fin(std::uint32_t fin_seq) {
  if (finished_) return;
  if (seq_gt(fin_seq, rcv_nxt_)) {
    // FIN beyond a reassembly gap: remember it.
    peer_fin_seen_ = true;
    peer_fin_seq_ = fin_seq;
    return;
  }
  if (seq_lt(fin_seq, rcv_nxt_)) {
    send_ack();  // old duplicate FIN
    return;
  }
  peer_fin_seen_ = true;
  peer_fin_seq_ = fin_seq;
  rcv_nxt_ = fin_seq + 1;
  send_ack();
  switch (state_) {
    case TcpState::Established:
      state_ = TcpState::CloseWait;
      break;
    case TcpState::FinWait1:
      state_ = TcpState::Closing;
      break;
    case TcpState::FinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
}

void TcpConnection::enter_time_wait() {
  state_ = TcpState::TimeWait;
  disarm_rto();
  auto self = weak_from_this();
  time_wait_timer_ = stack_.host().network().sim().schedule(
      config_.time_wait, [self]() {
        if (auto conn = self.lock()) conn->finish(CloseReason::Graceful);
      });
}

void TcpConnection::finish(CloseReason reason) {
  if (finished_) return;
  finished_ = true;
  auto keep_alive = shared_from_this();  // release_flow may drop the last ref
  if (state_ == TcpState::SynSent || state_ == TcpState::SynReceived) {
    count_handshake(stack_, state_ == TcpState::SynSent ? "client" : "server",
                    to_string(reason));
  }
  disarm_rto();
  time_wait_timer_.cancel();
  state_ = TcpState::Closed;
  if (on_connect_) {
    auto handler = std::move(on_connect_);
    on_connect_ = nullptr;
    handler(false);
  }
  stack_.release_flow(TcpStack::FlowKey{remote_addr_.value(), remote_port_, local_port_});
  if (on_close_) on_close_(reason);
}

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

TcpStack::TcpStack(netsim::Host& host, TcpConfig config)
    : host_(host), config_(config) {
  host_.set_protocol_handler(wire::IpProto::Tcp,
                             [this](const wire::Datagram& d) { on_datagram(d); });
}

TcpStack::~TcpStack() { host_.clear_protocol_handler(wire::IpProto::Tcp); }

std::shared_ptr<TcpConnection> TcpStack::connect(wire::Ipv4Address dst,
                                                 std::uint16_t dst_port, bool want_ecn,
                                                 TcpConnection::ConnectHandler handler) {
  std::shared_ptr<TcpConnection> conn(new TcpConnection(*this, config_));
  conn->local_port_ = pick_ephemeral_port();
  register_flow(FlowKey{dst.value(), dst_port, conn->local_port_}, conn);
  conn->start_connect(dst, dst_port, want_ecn, std::move(handler));
  return conn;
}

void TcpStack::listen(std::uint16_t port, AcceptHandler handler) {
  listeners_[port] = std::move(handler);
}

void TcpStack::close_listener(std::uint16_t port) { listeners_.erase(port); }

void TcpStack::on_datagram(const wire::Datagram& dgram) {
  auto seg = wire::decode_tcp_segment(dgram.ip.src, dgram.ip.dst, dgram.payload);
  if (!seg || !seg->checksum_ok) return;

  const FlowKey key{dgram.ip.src.value(), seg->header.src_port, seg->header.dst_port};
  const auto flow_it = flows_.find(key);
  if (flow_it != flows_.end()) {
    // Hold a reference: handlers may release the flow reentrantly.
    const auto conn = flow_it->second;
    conn->on_segment(dgram, *seg);
    return;
  }

  if (seg->header.flags.syn && !seg->header.flags.ack) {
    const auto listener_it = listeners_.find(seg->header.dst_port);
    if (listener_it != listeners_.end()) {
      std::shared_ptr<TcpConnection> conn(new TcpConnection(*this, config_));
      register_flow(key, conn);
      conn->start_accept(dgram, *seg);
      listener_it->second(conn);
      return;
    }
  }
  if (!seg->header.flags.rst) send_rst_for(dgram, *seg);
}

void TcpStack::send_rst_for(const wire::Datagram& dgram, const wire::TcpSegmentView& seg) {
  wire::TcpHeader header;
  header.src_port = seg.header.dst_port;
  header.dst_port = seg.header.src_port;
  wire::TcpFlags flags;
  flags.rst = true;
  if (seg.header.flags.ack) {
    header.seq = seg.header.ack;
  } else {
    flags.ack = true;
    header.seq = 0;
    header.ack = seg.header.seq + static_cast<std::uint32_t>(seg.payload.size()) +
                 (seg.header.flags.syn ? 1u : 0u) + (seg.header.flags.fin ? 1u : 0u);
  }
  header.flags = flags;
  host_.send_datagram(
      wire::make_tcp_datagram(dgram.ip.dst, dgram.ip.src, header, {}, wire::Ecn::NotEct));
}

void TcpStack::register_flow(const FlowKey& key, std::shared_ptr<TcpConnection> conn) {
  flows_[key] = std::move(conn);
}

void TcpStack::release_flow(const FlowKey& key) { flows_.erase(key); }

void TcpStack::reset_transients() {
  // finish() erases from flows_ via release_flow, so tear down a copy.
  auto flows = flows_;
  for (auto& [key, conn] : flows) conn->finish(CloseReason::LocalAbort);
  flows_.clear();
  next_ephemeral_ = 40000;
}

std::uint16_t TcpStack::pick_ephemeral_port() {
  for (int attempts = 0; attempts < 25000; ++attempts) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 65000 ? 40000 : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    bool taken = false;
    for (const auto& [key, _] : flows_) {
      if (key.local_port == candidate) {
        taken = true;
        break;
      }
    }
    if (!taken) return candidate;
  }
  throw std::runtime_error("TcpStack: ephemeral ports exhausted");
}

}  // namespace ecnprobe::tcp
