#include "ecnprobe/live/live_probe.hpp"

#include <chrono>
#include <random>

#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::live {

namespace {

std::int64_t unix_nanos_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LiveNtpResult live_ntp_probe(wire::Ipv4Address server, wire::Ecn ecn, int max_attempts,
                             int timeout_ms) {
  LiveNtpResult result;
  auto socket = EcnUdpSocket::open();
  if (!socket) {
    result.error = socket.error().message;
    return result;
  }
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++result.attempts;
    const auto request = wire::NtpPacket::make_client_request(
        wire::NtpTimestamp::from_unix_nanos(unix_nanos_now()));
    const auto bytes = request.encode();
    const auto sent = socket->send(server, wire::kNtpPort, bytes, ecn);
    if (!sent) {
      result.error = sent.error().message;
      return result;
    }
    const auto start = std::chrono::steady_clock::now();
    int remaining = timeout_ms;
    while (remaining > 0) {
      auto received = socket->recv(remaining);
      if (!received) {
        result.error = received.error().message;
        return result;
      }
      if (!received->has_value()) break;  // timeout
      const auto& packet = **received;
      if (packet.src != server || packet.src_port != wire::kNtpPort) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        remaining = timeout_ms - static_cast<int>(elapsed);
        continue;
      }
      const auto response = wire::NtpPacket::decode(packet.payload);
      if (response && response->answers(request)) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        result.reachable = true;
        result.rtt_ms = static_cast<double>(elapsed) / 1e3;
        result.response_ecn = packet.ecn;
        return result;
      }
    }
  }
  return result;
}

LiveTcpEcnResult live_tcp_ecn_probe(wire::Ipv4Address server, std::uint16_t port,
                                    int timeout_ms) {
  LiveTcpEcnResult result;
  auto sender = RawSender::open();
  if (!sender) {
    result.error = "raw socket unavailable (need CAP_NET_RAW): " + sender.error().message;
    return result;
  }
  auto receiver = RawReceiver::open(wire::IpProto::Tcp);
  if (!receiver) {
    result.error = receiver.error().message;
    return result;
  }
  const auto local = local_address_for(server);
  if (!local) {
    result.error = local.error().message;
    return result;
  }

  std::random_device rd;
  const auto src_port = static_cast<std::uint16_t>(49152 + (rd() % 16000));
  const std::uint32_t iss = rd();

  wire::TcpHeader syn;
  syn.src_port = src_port;
  syn.dst_port = port;
  syn.seq = iss;
  syn.flags.syn = true;
  syn.flags.ece = true;  // ECN-setup SYN
  syn.flags.cwr = true;
  const auto dgram = wire::make_tcp_datagram(*local, server, syn, {}, wire::Ecn::NotEct);
  const auto sent = sender->send(dgram);
  if (!sent) {
    result.error = sent.error().message;
    return result;
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - std::chrono::steady_clock::now())
                               .count();
    auto received = receiver->recv(static_cast<int>(std::max<long long>(1, remaining)));
    if (!received) {
      result.error = received.error().message;
      return result;
    }
    if (!received->has_value()) break;
    const auto& reply = **received;
    if (reply.ip.src != server) continue;
    const auto seg = wire::decode_tcp_segment(reply.ip.src, reply.ip.dst, reply.payload);
    if (!seg || seg->header.dst_port != src_port || seg->header.src_port != port) continue;
    if (seg->header.flags.rst) return result;  // refused
    if (seg->header.flags.syn && seg->header.flags.ack && seg->header.ack == iss + 1) {
      result.syn_acked = true;
      result.ecn_negotiated = seg->header.is_ecn_setup_syn_ack();
      return result;
    }
  }
  return result;
}

}  // namespace ecnprobe::live
