// Live (real-network) versions of the paper's probes, built from the same
// wire codecs as the simulator path. The NTP probe runs unprivileged; the
// ECN-setup-SYN probe needs CAP_NET_RAW and degrades gracefully without it.
#pragma once

#include <optional>
#include <string>

#include "ecnprobe/live/live_socket.hpp"
#include "ecnprobe/wire/ntp.hpp"

namespace ecnprobe::live {

struct LiveNtpResult {
  bool reachable = false;
  int attempts = 0;
  double rtt_ms = 0.0;
  wire::Ecn response_ecn = wire::Ecn::NotEct;
  std::string error;  ///< non-empty on socket-level failure
};

/// Synchronous NTP reachability probe: up to `max_attempts` requests with
/// `timeout_ms` each, marked with `ecn` -- the paper's UDP experiment
/// against a real server.
LiveNtpResult live_ntp_probe(wire::Ipv4Address server, wire::Ecn ecn,
                             int max_attempts = 5, int timeout_ms = 1000);

struct LiveTcpEcnResult {
  bool syn_acked = false;
  bool ecn_negotiated = false;  ///< ECN-setup SYN-ACK observed
  std::string error;            ///< e.g. missing CAP_NET_RAW
};

/// Crafted ECN-setup SYN probe (privileged). Sends a SYN with ECE+CWR from
/// a random high port and classifies the SYN-ACK. The kernel, which has no
/// socket for the flow, answers the SYN-ACK with a RST -- conveniently
/// tearing the half-open connection down for us.
LiveTcpEcnResult live_tcp_ecn_probe(wire::Ipv4Address server,
                                    std::uint16_t port = 80, int timeout_ms = 3000);

}  // namespace ecnprobe::live
