#include "ecnprobe/live/live_socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::live {

namespace {

util::Error errno_error(const char* what) {
  return util::make_error("live.errno",
                          util::strf("%s: %s", what, std::strerror(errno)));
}

sockaddr_in make_sockaddr(wire::Ipv4Address addr, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(addr.value());
  return sa;
}

}  // namespace

Fd::~Fd() {
  if (fd_ >= 0) ::close(fd_);
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool has_raw_capability() {
  const int fd = ::socket(AF_INET, SOCK_RAW, IPPROTO_ICMP);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

util::Expected<EcnUdpSocket> EcnUdpSocket::open(std::uint16_t local_port) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return errno_error("socket(UDP)");
  const int on = 1;
  if (::setsockopt(fd.get(), IPPROTO_IP, IP_RECVTOS, &on, sizeof(on)) < 0) {
    return errno_error("setsockopt(IP_RECVTOS)");
  }
  sockaddr_in local = make_sockaddr(wire::Ipv4Address{}, local_port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&local), sizeof(local)) < 0) {
    return errno_error("bind");
  }
  socklen_t len = sizeof(local);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&local), &len) < 0) {
    return errno_error("getsockname");
  }
  return EcnUdpSocket(std::move(fd), ntohs(local.sin_port));
}

util::Expected<bool> EcnUdpSocket::send(wire::Ipv4Address dst, std::uint16_t dst_port,
                                        std::span<const std::uint8_t> payload,
                                        wire::Ecn ecn) {
  // For UDP the kernel copies IP_TOS -- including the two ECN bits -- into
  // the IP header, which is exactly how a deployable UDP application would
  // set ECT(0) (RFC 3168 and RFC 6679 both assume this interface).
  const int tos = wire::to_bits(ecn);
  if (::setsockopt(fd_.get(), IPPROTO_IP, IP_TOS, &tos, sizeof(tos)) < 0) {
    return errno_error("setsockopt(IP_TOS)");
  }
  const sockaddr_in sa = make_sockaddr(dst, dst_port);
  const ssize_t n = ::sendto(fd_.get(), payload.data(), payload.size(), 0,
                             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n < 0) return errno_error("sendto");
  return true;
}

util::Expected<std::optional<EcnUdpSocket::Received>> EcnUdpSocket::recv(int timeout_ms) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) return errno_error("poll");
  if (ready == 0) return std::optional<Received>{};

  std::uint8_t buffer[2048];
  std::uint8_t control[256];
  sockaddr_in src{};
  iovec iov{buffer, sizeof(buffer)};
  msghdr msg{};
  msg.msg_name = &src;
  msg.msg_namelen = sizeof(src);
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);
  const ssize_t n = ::recvmsg(fd_.get(), &msg, 0);
  if (n < 0) return errno_error("recvmsg");

  Received received;
  received.src = wire::Ipv4Address{ntohl(src.sin_addr.s_addr)};
  received.src_port = ntohs(src.sin_port);
  received.payload.assign(buffer, buffer + n);
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == IPPROTO_IP &&
        (cmsg->cmsg_type == IP_TOS || cmsg->cmsg_type == IP_RECVTOS)) {
      const auto tos = *reinterpret_cast<const std::uint8_t*>(CMSG_DATA(cmsg));
      received.ecn = wire::ecn_from_bits(tos);
    }
  }
  return std::optional<Received>{std::move(received)};
}

util::Expected<RawSender> RawSender::open() {
  Fd fd(::socket(AF_INET, SOCK_RAW, IPPROTO_RAW));
  if (!fd.valid()) return errno_error("socket(RAW)");
  const int on = 1;
  if (::setsockopt(fd.get(), IPPROTO_IP, IP_HDRINCL, &on, sizeof(on)) < 0) {
    return errno_error("setsockopt(IP_HDRINCL)");
  }
  return RawSender(std::move(fd));
}

util::Expected<bool> RawSender::send(const wire::Datagram& dgram) {
  const auto bytes = dgram.encode();
  const sockaddr_in sa = make_sockaddr(dgram.ip.dst, 0);
  const ssize_t n = ::sendto(fd_.get(), bytes.data(), bytes.size(), 0,
                             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n < 0) return errno_error("sendto(raw)");
  return true;
}

util::Expected<RawReceiver> RawReceiver::open(wire::IpProto proto) {
  Fd fd(::socket(AF_INET, SOCK_RAW, static_cast<int>(proto)));
  if (!fd.valid()) return errno_error("socket(RAW recv)");
  return RawReceiver(std::move(fd));
}

util::Expected<std::optional<wire::Datagram>> RawReceiver::recv(int timeout_ms) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) return errno_error("poll(raw)");
  if (ready == 0) return std::optional<wire::Datagram>{};
  std::uint8_t buffer[4096];
  const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
  if (n < 0) return errno_error("recv(raw)");
  auto decoded = wire::Datagram::decode(
      std::span<const std::uint8_t>(buffer, static_cast<std::size_t>(n)));
  if (!decoded) return std::optional<wire::Datagram>{};  // not for us / garbled
  return std::optional<wire::Datagram>{std::move(*decoded)};
}

util::Expected<wire::Ipv4Address> local_address_for(wire::Ipv4Address dst) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return errno_error("socket");
  const sockaddr_in sa = make_sockaddr(dst, 53);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    return errno_error("connect");
  }
  sockaddr_in local{};
  socklen_t len = sizeof(local);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&local), &len) < 0) {
    return errno_error("getsockname");
  }
  return wire::Ipv4Address{ntohl(local.sin_addr.s_addr)};
}

}  // namespace ecnprobe::live
