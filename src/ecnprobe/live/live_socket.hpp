// Thin RAII layer over the Linux sockets the live prober needs.
//
// Unprivileged path: a UDP socket can set the ECN codepoint on outgoing
// packets through IP_TOS (the kernel writes the ToS octet verbatim for UDP)
// and read the received ToS octet with IP_RECVTOS -- enough to reproduce the
// paper's UDP experiment against real NTP servers without CAP_NET_RAW.
//
// Privileged path: raw sockets with IP_HDRINCL send fully crafted datagrams
// (ECN-setup SYNs, TTL-limited probes) and receive ICMP for the traceroute
// quotation analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"
#include "ecnprobe/wire/datagram.hpp"

namespace ecnprobe::live {

/// RAII file descriptor.
class Fd {
public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

private:
  int fd_ = -1;
};

/// True if this process can open raw IPv4 sockets (root or CAP_NET_RAW).
bool has_raw_capability();

/// Unprivileged UDP socket with per-send ECN marking and received-ToS
/// visibility.
class EcnUdpSocket {
public:
  static util::Expected<EcnUdpSocket> open(std::uint16_t local_port = 0);

  /// Sends `payload` to dst:port with the given ECN codepoint (via IP_TOS).
  util::Expected<bool> send(wire::Ipv4Address dst, std::uint16_t dst_port,
                            std::span<const std::uint8_t> payload, wire::Ecn ecn);

  struct Received {
    wire::Ipv4Address src;
    std::uint16_t src_port = 0;
    std::vector<std::uint8_t> payload;
    wire::Ecn ecn = wire::Ecn::NotEct;  ///< from the received ToS octet
  };

  /// Waits up to timeout_ms for a datagram; nullopt on timeout.
  util::Expected<std::optional<Received>> recv(int timeout_ms);

  std::uint16_t local_port() const { return local_port_; }

private:
  EcnUdpSocket(Fd fd, std::uint16_t port) : fd_(std::move(fd)), local_port_(port) {}
  Fd fd_;
  std::uint16_t local_port_ = 0;
};

/// Privileged raw sender: IP_HDRINCL, ships wire::Datagram::encode() bytes.
class RawSender {
public:
  static util::Expected<RawSender> open();
  util::Expected<bool> send(const wire::Datagram& dgram);

private:
  explicit RawSender(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
};

/// Privileged raw receiver for one IP protocol (ICMP or TCP).
class RawReceiver {
public:
  static util::Expected<RawReceiver> open(wire::IpProto proto);

  /// Waits up to timeout_ms; returns the decoded datagram or nullopt.
  util::Expected<std::optional<wire::Datagram>> recv(int timeout_ms);

private:
  explicit RawReceiver(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
};

/// The primary local source address used to reach `dst` (via a connected
/// UDP socket; no packets are sent).
util::Expected<wire::Ipv4Address> local_address_for(wire::Ipv4Address dst);

}  // namespace ecnprobe::live
