// Terminal renderings of every figure and table in the paper, built from
// the analysis results. Each bench binary prints one of these next to the
// paper's reference numbers.
#pragma once

#include <string>
#include <vector>

#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/trend.hpp"

namespace ecnprobe::analysis {

/// Table 1: region -> server count.
std::string render_table1(const GeoSummary& summary);

/// Figure 1: ASCII world map of server locations.
std::string render_figure1(const GeoSummary& summary, int width = 96, int height = 28);

/// Figures 2a/2b: one bar per trace, y-range 90-100%.
std::string render_figure2a(const std::vector<TraceReachability>& traces);
std::string render_figure2b(const std::vector<TraceReachability>& traces);

/// Figures 3a/3b: per-server differential-reachability spike plots for one
/// vantage (or the cross-vantage aggregate when `vantage` is empty).
std::string render_figure3a(const std::vector<ServerDifferential>& differentials,
                            const std::string& vantage = {});
std::string render_figure3b(const std::vector<ServerDifferential>& differentials,
                            const std::string& vantage = {});

/// Figure 4: headline hop statistics plus a sample of rendered paths
/// ('+' = ECN intact at hop, '-' = stripped, '.' = silent hop).
std::string render_figure4(const HopAnalysis& analysis,
                           const std::vector<measure::TracerouteObservation>& sample_paths,
                           std::size_t max_paths = 12);

/// Figure 5: per-trace TCP reachability and ECN negotiation counts.
std::string render_figure5(const std::vector<TraceReachability>& traces,
                           int server_count);

/// Figure 6: adoption time series with logistic fit.
std::string render_figure6(const std::vector<TrendPoint>& points);

/// Table 2: per-location UDP-vs-TCP ECN failure correlation.
std::string render_table2(const std::vector<CorrelationRow>& rows);

/// Abstract-level summary paragraph with the headline numbers.
std::string render_summary(const ReachabilitySummary& summary);

}  // namespace ecnprobe::analysis
