#include "ecnprobe/analysis/autopsy.hpp"

#include <cinttypes>
#include <map>
#include <set>
#include <sstream>

#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/wire/datagram.hpp"

namespace ecnprobe::analysis {

namespace {

constexpr const char* kStepNames[4] = {"udp-plain", "udp-ect0", "tcp-plain", "tcp-ecn"};

std::string format_time(util::SimTime t) {
  const std::int64_t ns = t.count_nanos();
  return util::strf("%" PRId64 ".%06" PRId64 "ms", ns / 1000000, ns % 1000000 / 1000);
}

std::string as_of(const topology::IpToAsMap& ip2as, std::uint32_t addr) {
  if (addr == 0) return "";
  const auto asn = ip2as.lookup(wire::Ipv4Address(addr));
  return asn ? util::strf("AS%u", *asn) : "";
}

struct ProbeChain {
  int probe = -1;
  std::vector<const obs::FlightEvent*> events;
  wire::Ipv4Address dst;          ///< destination of the first send
  wire::Ecn sent_ecn = wire::Ecn::NotEct;
  bool have_first_send = false;
};

}  // namespace

std::string render_trace_autopsy(const std::vector<obs::FlightEvent>& events,
                                 const obs::LedgerSnapshot& ledger,
                                 const topology::IpToAsMap& ip2as,
                                 const AutopsyRequest& request) {
  // Group the trace's events into per-probe chains, preserving recording
  // order (which is sim-event order within a trace).
  std::map<int, ProbeChain> chains;
  for (const auto& event : events) {
    if (event.key.trace != request.trace) continue;
    auto& chain = chains[event.key.probe];
    chain.probe = event.key.probe;
    chain.events.push_back(&event);
    if (!chain.have_first_send &&
        (event.type == obs::SpanEvent::ProbeSent ||
         event.type == obs::SpanEvent::Retransmit) &&
        !event.wire.empty()) {
      if (const auto dgram = wire::Datagram::decode(event.wire)) {
        chain.dst = dgram->ip.dst;
        chain.sent_ecn = dgram->ip.ecn;
        chain.have_first_send = true;
      }
    }
  }

  std::ostringstream os;
  os << "Trace " << request.trace << " autopsy";
  if (!request.server.empty()) os << " (server " << request.server << ")";
  os << "\n";

  std::size_t probes_shown = 0;
  std::set<std::string> bleach_hops;   ///< "node (ASa -> ASb)" strings
  std::map<std::string, int> drop_causes;
  int timeouts = 0;
  int replies = 0;

  for (const auto& [probe, chain] : chains) {
    if (!request.server.empty() &&
        (!chain.have_first_send || chain.dst.to_string() != request.server)) {
      continue;
    }
    ++probes_shown;
    os << "\nprobe " << probe;
    if (probe >= 0) {
      os << " [server " << probe / 4 << " " << kStepNames[probe % 4] << "]";
    }
    if (chain.have_first_send) {
      os << " -> " << chain.dst.to_string() << " sent "
         << wire::to_string(chain.sent_ecn);
    }
    os << "\n";

    std::string last_node_as;  ///< AS of the previous packet sighting
    std::string verdict;
    for (const auto* event : chain.events) {
      const std::string node_as = as_of(ip2as, event->node_addr);
      os << "  " << format_time(event->time) << "  seq " << event->key.seq << "  "
         << to_string(event->type) << " @ " << event->node;
      if (!node_as.empty()) os << " (" << node_as << ")";
      os << " [" << to_string(event->layer) << "]";
      if (!event->detail.empty()) os << "  " << event->detail;

      switch (event->type) {
        case obs::SpanEvent::EcnRewritten: {
          std::string hop = event->node;
          if (!last_node_as.empty() && !node_as.empty() && last_node_as != node_as) {
            hop += " (AS boundary " + last_node_as + " -> " + node_as + ")";
            os << "  <-- AS boundary " << last_node_as << " -> " << node_as;
          } else if (!node_as.empty()) {
            hop += " (" + node_as + ")";
          }
          bleach_hops.insert(hop);
          verdict = "ECN rewritten at " + hop + " (" + event->detail + ")";
          break;
        }
        case obs::SpanEvent::PolicyDrop:
          ++drop_causes[event->detail];
          verdict = "dropped at " + event->node +
                    (node_as.empty() ? "" : " (" + node_as + ")") + ": " + event->detail;
          break;
        case obs::SpanEvent::Timeout:
          ++timeouts;
          if (verdict.empty()) verdict = "timed out (" + event->detail + ")";
          break;
        case obs::SpanEvent::ReplyReceived:
          ++replies;
          verdict = "reply received, " + event->detail;
          break;
        default:
          break;
      }
      if (!node_as.empty()) last_node_as = node_as;
      os << "\n";
    }
    if (!verdict.empty()) os << "  verdict: " << verdict << "\n";
  }

  if (probes_shown == 0) {
    os << "\nno recorded probes match";
    if (!request.server.empty()) os << " server " << request.server;
    os << " (recording disabled, or the trace was replayed from a journal)\n";
  }

  os << "\nsummary: " << probes_shown << " probes, " << replies << " replies, "
     << timeouts << " timeouts\n";
  if (!bleach_hops.empty()) {
    os << "  ECN rewritten at:";
    for (const auto& hop : bleach_hops) os << " " << hop << ";";
    os << "\n";
  }
  if (!drop_causes.empty()) {
    os << "  drops:";
    for (const auto& [cause, n] : drop_causes) os << " " << cause << "=" << n;
    os << "\n";
  }
  const auto quarantined = ledger.drops_for_cause("trace-quarantined");
  if (quarantined > 0) {
    os << "  trace quarantined by the campaign executor (" << quarantined
       << " attribution record)\n";
  }
  return os.str();
}

std::string render_sketched_autopsy(const obs::TelemetryDelta& delta,
                                    const obs::TelemetryConfig& config,
                                    const AutopsyRequest& request) {
  std::ostringstream os;
  os << "trace " << request.trace << " autopsy (sketched telemetry)\n";
  os << "  per-packet flight records were sampled out (sample-every="
     << config.sample_every << "; this trace folds into the campaign sketch).\n"
     << "  Re-run with --telemetry=exact for the full causal chain. Exact\n"
     << "  per-trace cause totals from the telemetry delta:\n";

  // The delta keys its exact counts "kind:label/cause"; bucket them back
  // into the four attribution views.
  std::map<std::string, std::map<std::string, std::uint64_t>> kinds;
  for (const auto& [key, count] : delta.counts) {
    const auto colon = key.find(':');
    if (colon == std::string::npos) continue;
    kinds[key.substr(0, colon)][key.substr(colon + 1)] += count;
  }
  const auto emit = [&os](const std::map<std::string, std::uint64_t>& rows,
                          const char* title) {
    if (rows.empty()) return;
    os << "\n  " << title << ":\n";
    for (const auto& [label, count] : rows) {
      os << "    " << label << " = " << count << "\n";
    }
  };
  emit(kinds["cause"], "drops by layer/cause");
  emit(kinds["hop"], "drops by hop/cause");
  emit(kinds["as"], "drops by AS/cause");
  emit(kinds["rewrite"], "ECN rewrites by layer/cause");
  if (delta.counts.empty()) os << "\n  no drops or rewrites recorded\n";

  if (delta.rtt_count > 0) {
    os << "\n  rtt: " << delta.rtt_count << " samples, mean "
       << util::strf("%.3f", static_cast<double>(delta.rtt_sum_nanos) /
                                 static_cast<double>(delta.rtt_count) / 1e6)
       << "ms\n";
  }
  if (!request.server.empty()) {
    os << "\n  (note: --server " << request.server
       << " filtering applies to per-packet records only; the totals above"
          " cover the whole trace)\n";
  }
  return os.str();
}

}  // namespace ecnprobe::analysis
