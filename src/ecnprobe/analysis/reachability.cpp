#include "ecnprobe/analysis/reachability.hpp"

#include <map>

#include "ecnprobe/util/stats.hpp"

namespace ecnprobe::analysis {

std::vector<TraceReachability> per_trace_reachability(
    const std::vector<measure::Trace>& traces) {
  std::vector<TraceReachability> out;
  out.reserve(traces.size());
  for (const auto& trace : traces) {
    TraceReachability r;
    r.vantage = trace.vantage;
    r.batch = trace.batch;
    r.index = trace.index;
    r.reachable_udp_plain = trace.reachable_udp_plain();
    r.reachable_udp_ect0 = trace.reachable_udp_ect0();
    r.reachable_tcp = trace.reachable_tcp();
    r.negotiated_ecn_tcp = trace.negotiated_ecn_tcp();
    r.pct_ect_given_plain = trace.pct_ect_given_plain();
    r.pct_plain_given_ect = trace.pct_plain_given_ect();
    out.push_back(std::move(r));
  }
  return out;
}

ReachabilitySummary summarize_reachability(const std::vector<measure::Trace>& traces) {
  util::RunningStats plain;
  util::RunningStats pct_ect;
  util::RunningStats pct_plain;
  util::RunningStats tcp;
  util::RunningStats tcp_ecn;
  for (const auto& trace : traces) {
    plain.add(trace.reachable_udp_plain());
    pct_ect.add(trace.pct_ect_given_plain());
    pct_plain.add(trace.pct_plain_given_ect());
    tcp.add(trace.reachable_tcp());
    tcp_ecn.add(trace.negotiated_ecn_tcp());
  }
  ReachabilitySummary s;
  s.mean_reachable_udp_plain = plain.mean();
  s.mean_pct_ect_given_plain = pct_ect.mean();
  s.min_pct_ect_given_plain = pct_ect.min();
  s.mean_pct_plain_given_ect = pct_plain.mean();
  s.mean_reachable_tcp = tcp.mean();
  s.mean_negotiated_ecn_tcp = tcp_ecn.mean();
  s.pct_tcp_negotiating_ecn =
      tcp.mean() > 0.0 ? 100.0 * tcp_ecn.mean() / tcp.mean() : 0.0;
  return s;
}

std::vector<VantageReachability> per_vantage_reachability(
    const std::vector<measure::Trace>& traces) {
  std::map<std::string, std::pair<util::RunningStats, util::RunningStats>> by_vantage;
  std::vector<std::string> order;
  for (const auto& trace : traces) {
    if (!by_vantage.contains(trace.vantage)) order.push_back(trace.vantage);
    auto& [pct, plain] = by_vantage[trace.vantage];
    pct.add(trace.pct_ect_given_plain());
    plain.add(trace.reachable_udp_plain());
  }
  std::vector<VantageReachability> out;
  for (const auto& vantage : order) {
    const auto& [pct, plain] = by_vantage.at(vantage);
    VantageReachability r;
    r.vantage = vantage;
    r.traces = static_cast<int>(pct.count());
    r.mean_pct_ect_given_plain = pct.mean();
    r.mean_reachable_udp_plain = plain.mean();
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<CorrelationRow> correlation_table(const std::vector<measure::Trace>& traces) {
  struct Acc {
    util::RunningStats unreachable;
    util::RunningStats fail_tcp;
  };
  std::map<std::string, Acc> by_vantage;
  std::vector<std::string> order;
  for (const auto& trace : traces) {
    int unreachable_with_ect = 0;
    int also_fail_tcp_ecn = 0;
    for (const auto& s : trace.servers) {
      if (!(s.udp_plain.reachable && !s.udp_ect0.reachable)) continue;
      ++unreachable_with_ect;
      // "Fail to negotiate ECN with TCP": the web server responds to TCP
      // but does not return an ECN-setup SYN-ACK.
      if (s.tcp_plain.got_response && !(s.tcp_ecn.connected && s.tcp_ecn.ecn_negotiated)) {
        ++also_fail_tcp_ecn;
      }
    }
    if (!by_vantage.contains(trace.vantage)) order.push_back(trace.vantage);
    by_vantage[trace.vantage].unreachable.add(unreachable_with_ect);
    by_vantage[trace.vantage].fail_tcp.add(also_fail_tcp_ecn);
  }
  std::vector<CorrelationRow> out;
  for (const auto& vantage : order) {
    const auto& acc = by_vantage.at(vantage);
    out.push_back(CorrelationRow{vantage, acc.unreachable.mean(), acc.fail_tcp.mean()});
  }
  return out;
}

}  // namespace ecnprobe::analysis
