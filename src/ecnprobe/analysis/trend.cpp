#include "ecnprobe/analysis/trend.hpp"

namespace ecnprobe::analysis {

std::vector<TrendPoint> historical_trend() {
  // Values from the paper's Section 4.3 and related-work discussion.
  return {
      {2000.5, 0.2, "Medina 2000", false},
      {2004.3, 0.5, "Medina 2004", false},
      {2008.7, 1.0, "Langley 2008", false},
      {2011.5, 17.2, "Bauer 2011", false},
      {2012.3, 25.16, "Kuehlewind Apr 2012", false},
      {2012.6, 29.48, "Kuehlewind Aug 2012", false},
      {2014.7, 56.17, "Trammell 2014", false},
  };
}

std::vector<TrendPoint> trend_with_measurement(double measured_pct, double year) {
  auto points = historical_trend();
  points.push_back({year, measured_pct, "measured", true});
  return points;
}

util::LogisticFit fit_trend(const std::vector<TrendPoint>& points) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& p : points) {
    xs.push_back(p.year);
    ys.push_back(p.pct_negotiating);
  }
  return util::logistic_fit(xs, ys, 100.0);
}

}  // namespace ecnprobe::analysis
