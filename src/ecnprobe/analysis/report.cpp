#include "ecnprobe/analysis/report.hpp"

#include <algorithm>
#include <sstream>

#include "ecnprobe/util/chart.hpp"
#include "ecnprobe/util/strings.hpp"
#include "ecnprobe/util/table.hpp"

namespace ecnprobe::analysis {

namespace {

// Short labels for Figure 2/5 bar groups; one label per vantage group.
std::string short_label(const std::string& vantage) {
  std::string out;
  for (char c : vantage) {
    if (c == ' ') continue;
    out.push_back(c);
  }
  return out.size() > 6 ? out.substr(0, 6) : out;
}

std::string render_reachability_bars(const std::vector<TraceReachability>& traces,
                                     bool ect_given_plain) {
  std::vector<double> values;
  std::vector<std::string> labels;
  std::string last_vantage;
  for (const auto& t : traces) {
    values.push_back(ect_given_plain ? t.pct_ect_given_plain : t.pct_plain_given_ect);
    labels.push_back(t.vantage == last_vantage ? "" : short_label(t.vantage));
    last_vantage = t.vantage;
  }
  util::BarChartOptions opts;
  opts.y_min = 90.0;
  opts.y_max = 100.0;
  opts.height = 10;
  return util::render_bar_chart(values, labels, opts);
}

}  // namespace

std::string render_table1(const GeoSummary& summary) {
  util::TextTable table({"Region", "NTP Server Count"},
                        {util::TextTable::Align::Left, util::TextTable::Align::Right});
  for (const auto region : geo::all_regions()) {
    const auto it = summary.counts.find(region);
    table.add_row({std::string(geo::to_string(region)),
                   std::to_string(it == summary.counts.end() ? 0 : it->second)});
  }
  table.add_row({"Total", std::to_string(summary.total)});
  return table.to_string();
}

std::string render_figure1(const GeoSummary& summary, int width, int height) {
  return util::render_world_map(summary.locations, width, height);
}

std::string render_figure2a(const std::vector<TraceReachability>& traces) {
  return render_reachability_bars(traces, true);
}

std::string render_figure2b(const std::vector<TraceReachability>& traces) {
  return render_reachability_bars(traces, false);
}

namespace {

std::string render_differential(const std::vector<ServerDifferential>& differentials,
                                const std::string& vantage, bool plain_not_ect) {
  std::vector<double> values;
  values.reserve(differentials.size());
  for (const auto& d : differentials) {
    double v = 0.0;
    if (vantage.empty()) {
      v = plain_not_ect ? d.overall_plain_not_ect_pct : d.overall_ect_not_plain_pct;
    } else {
      const auto& m = plain_not_ect ? d.plain_not_ect_pct : d.ect_not_plain_pct;
      const auto it = m.find(vantage);
      v = it == m.end() ? 0.0 : it->second;
    }
    values.push_back(v);
  }
  util::SpikePlotOptions opts;
  opts.width = 100;
  opts.height = 8;
  opts.y_max = 100.0;
  return util::render_spike_plot(values, opts);
}

}  // namespace

std::string render_figure3a(const std::vector<ServerDifferential>& differentials,
                            const std::string& vantage) {
  return render_differential(differentials, vantage, true);
}

std::string render_figure3b(const std::vector<ServerDifferential>& differentials,
                            const std::string& vantage) {
  return render_differential(differentials, vantage, false);
}

std::string render_figure4(const HopAnalysis& analysis,
                           const std::vector<measure::TracerouteObservation>& sample_paths,
                           std::size_t max_paths) {
  std::ostringstream out;
  out << "Traceroute hop analysis (Figure 4 / Section 4.2)\n";
  out << util::strf("  hops measured (vantage,dest,responder): %s\n",
                    util::with_commas(static_cast<std::int64_t>(analysis.total_hops)).c_str());
  out << util::strf("  hops passing ECT(0) unmodified:         %s (%.2f%%)\n",
                    util::with_commas(static_cast<std::int64_t>(
                                          analysis.pass_hops + analysis.sometimes_strip))
                        .c_str(),
                    analysis.pct_hops_passing());
  out << util::strf("  hops where mark seen stripped:          %s (%zu only sometimes)\n",
                    util::with_commas(static_cast<std::int64_t>(analysis.strip_hops)).c_str(),
                    static_cast<std::size_t>(analysis.sometimes_strip));
  out << util::strf("  distinct strip locations:               %zu\n",
                    static_cast<std::size_t>(analysis.strip_locations));
  out << util::strf("  strip locations at AS boundaries:       %zu (%.1f%% of attributed)\n",
                    static_cast<std::size_t>(analysis.strip_locations_at_boundary),
                    analysis.pct_strips_at_boundary());
  out << util::strf("  ASes observed:                          %zu\n",
                    static_cast<std::size_t>(analysis.ases_observed));
  out << util::strf("  ECN-CE marks observed:                  %zu\n",
                    static_cast<std::size_t>(analysis.ce_marks_seen));
  out << util::strf("  mean responding hops per path:          %.2f\n",
                    analysis.mean_responding_hops_per_path);

  if (!sample_paths.empty()) {
    out << "\n  sample paths ('+' ECN intact, '-' stripped, '.' silent):\n";
    for (std::size_t i = 0; i < std::min(max_paths, sample_paths.size()); ++i) {
      const auto& obs = sample_paths[i];
      out << util::strf("  %-18s -> %-15s ", obs.vantage.c_str(),
                        obs.path.destination.to_string().c_str());
      for (const auto& hop : obs.path.hops) {
        out << (!hop.responded ? '.' : hop.ecn_intact() ? '+' : '-');
      }
      out << '\n';
    }
  }
  return out.str();
}

std::string render_figure5(const std::vector<TraceReachability>& traces,
                           int server_count) {
  std::vector<double> negotiated;
  std::vector<double> reachable;
  std::vector<std::string> labels;
  std::string last_vantage;
  for (const auto& t : traces) {
    negotiated.push_back(t.negotiated_ecn_tcp);
    reachable.push_back(t.reachable_tcp);
    labels.push_back(t.vantage == last_vantage ? "" : short_label(t.vantage));
    last_vantage = t.vantage;
  }
  util::BarChartOptions opts;
  opts.y_min = 0.0;
  opts.y_max = static_cast<double>(server_count);
  opts.height = 12;
  opts.y_unit = "";
  std::ostringstream out;
  out << "Reachable using TCP (per trace):\n";
  out << util::render_bar_chart(reachable, labels, opts);
  out << "\nReachable using TCP and negotiated ECN (per trace):\n";
  out << util::render_bar_chart(negotiated, labels, opts);
  return out.str();
}

std::string render_figure6(const std::vector<TrendPoint>& points) {
  std::vector<util::ScatterPoint> scatter;
  for (const auto& p : points) {
    scatter.push_back({p.year, p.pct_negotiating, p.measured ? '@' : 'o'});
  }
  const auto fit = fit_trend(points);
  std::vector<util::ScatterPoint> curve;
  for (double year = 2000.0; year <= 2016.0; year += 0.125) {
    curve.push_back({year, fit.predict(year), '.'});
  }
  util::ScatterOptions opts;
  opts.width = 64;
  opts.height = 16;
  opts.x_min = 2000.0;
  opts.x_max = 2016.0;
  opts.y_min = 0.0;
  opts.y_max = 100.0;
  std::ostringstream out;
  out << "Negotiated ECN (%) over time ('o' prior studies, '@' measured):\n";
  out << util::render_scatter(scatter, opts, curve);
  util::TextTable table({"Study", "Year", "Negotiated ECN"},
                        {util::TextTable::Align::Left, util::TextTable::Align::Right,
                         util::TextTable::Align::Right});
  for (const auto& p : points) {
    table.add_row({p.label, util::strf("%.1f", p.year),
                   util::strf("%.2f%%", p.pct_negotiating)});
  }
  out << table.to_string();
  out << util::strf("logistic fit: midpoint=%.1f rate=%.2f/yr\n", fit.midpoint, fit.rate);
  return out.str();
}

std::string render_table2(const std::vector<CorrelationRow>& rows) {
  util::TextTable table(
      {"Location", "Avg. unreachable UDP with ECT", "Num failing ECN w/TCP"},
      {util::TextTable::Align::Left, util::TextTable::Align::Right,
       util::TextTable::Align::Right});
  for (const auto& row : rows) {
    table.add_row({row.vantage, util::strf("%.0f", row.avg_unreachable_udp_with_ect),
                   util::strf("%.0f", row.avg_also_fail_tcp_ecn)});
  }
  return table.to_string();
}

std::string render_summary(const ReachabilitySummary& summary) {
  std::ostringstream out;
  out << util::strf("mean servers reachable with not-ECT UDP:   %.0f\n",
                    summary.mean_reachable_udp_plain);
  out << util::strf("mean %% ECT(0)-reachable given not-ECT:     %.2f%% (paper: 98.97%%)\n",
                    summary.mean_pct_ect_given_plain);
  out << util::strf("min  %% ECT(0)-reachable given not-ECT:     %.2f%% (paper: >90%%)\n",
                    summary.min_pct_ect_given_plain);
  out << util::strf("mean %% not-ECT-reachable given ECT(0):     %.2f%% (paper: 99.45%%)\n",
                    summary.mean_pct_plain_given_ect);
  out << util::strf("mean web servers responding via TCP:       %.0f (paper: 1334)\n",
                    summary.mean_reachable_tcp);
  out << util::strf("mean servers negotiating ECN with TCP:     %.0f (paper: 1095)\n",
                    summary.mean_negotiated_ecn_tcp);
  out << util::strf("%% of TCP-reachable negotiating ECN:        %.1f%% (paper: 82.0%%)\n",
                    summary.pct_tcp_negotiating_ecn);
  return out.str();
}

}  // namespace ecnprobe::analysis
