// Figure 4 / Section 4.2: where do ECT(0) marks get stripped? Hops are
// identified as (vantage, destination, responder) tuples, matching the
// paper's counting (155439 hops). A hop is classified by the ECN field its
// ICMP quotation reported across repeated traceroutes: always intact,
// always stripped, or sometimes stripped (the paper's 125 flapping hops).
// Strip *locations* are the transitions from an intact hop to a stripped
// one along a path, attributed to an AS boundary when the two responders
// map to different ASNs.
#pragma once

#include <cstdint>
#include <vector>

#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/topology/ip2as.hpp"

namespace ecnprobe::analysis {

struct HopAnalysis {
  std::uint64_t total_hops = 0;        ///< unique (vantage, dest, responder)
  std::uint64_t pass_hops = 0;         ///< quoted ECN intact in every repetition
  std::uint64_t strip_hops = 0;        ///< quoted not-ECT at least once
  std::uint64_t sometimes_strip = 0;   ///< subset of strip_hops seen both ways
  std::uint64_t ce_marks_seen = 0;     ///< quotations showing CE (paper saw none)
  /// Responding hops whose quotes were always truncated before the ECN
  /// field: excluded from the pass/strip classification above ("ECN field
  /// unknown"), never counted as bleached.
  std::uint64_t ecn_unknown_hops = 0;

  std::uint64_t strip_locations = 0;           ///< unique intact->stripped edges
  std::uint64_t strip_locations_at_boundary = 0;
  std::uint64_t strip_locations_unattributed = 0;  ///< no upstream responder / no AS

  std::uint64_t ases_observed = 0;     ///< distinct ASNs among responders
  std::uint64_t paths = 0;
  double mean_responding_hops_per_path = 0.0;

  double pct_hops_passing() const {
    return total_hops == 0
               ? 0.0
               : 100.0 * static_cast<double>(pass_hops + sometimes_strip) /
                     static_cast<double>(total_hops);
  }
  double pct_strips_at_boundary() const {
    const auto attributed = strip_locations - strip_locations_unattributed;
    return attributed == 0 ? 0.0
                           : 100.0 * static_cast<double>(strip_locations_at_boundary) /
                                 static_cast<double>(attributed);
  }
};

HopAnalysis analyze_hops(const std::vector<measure::TracerouteObservation>& observations,
                         const topology::IpToAsMap& ip2as);

}  // namespace ecnprobe::analysis
