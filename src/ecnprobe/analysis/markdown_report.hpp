// A single self-contained Markdown report covering every figure and table
// the paper publishes, generated from campaign traces and (optionally)
// traceroute observations. Used by `ecnprobe report` and by downstream
// studies that want one artefact per campaign.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/measure/results.hpp"

namespace ecnprobe::analysis {

struct ReportInputs {
  std::vector<measure::Trace> traces;
  /// Optional Section 4.2 dataset; the Figure 4 section is omitted without it.
  std::vector<measure::TracerouteObservation> traceroutes;
  const topology::IpToAsMap* ip2as = nullptr;
  /// Optional Table 1 / Figure 1 inputs.
  std::optional<GeoSummary> geo;
  std::string title = "ECN-with-UDP measurement report";
};

/// Renders the full report (GitHub-flavoured Markdown with fenced ASCII
/// charts).
std::string render_markdown_report(const ReportInputs& inputs);

}  // namespace ecnprobe::analysis
