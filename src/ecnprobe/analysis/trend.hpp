// Figure 6: ECN-with-TCP capability over time. Historical data points come
// from the prior studies the paper cites (Medina 2000/2004, Langley 2008,
// Bauer 2011, Kuehlewind 2012, Trammell 2014); the measured 2015 value comes
// from the campaign. A logistic growth fit shows the measured point landing
// on the adoption curve.
#pragma once

#include <string>
#include <vector>

#include "ecnprobe/util/stats.hpp"

namespace ecnprobe::analysis {

struct TrendPoint {
  double year = 0.0;
  double pct_negotiating = 0.0;
  std::string label;
  bool measured = false;  ///< true for this study's own data point
};

/// The prior-study series as cited in Section 4.3 / Figure 6.
std::vector<TrendPoint> historical_trend();

/// Historical points plus the campaign's measured value.
std::vector<TrendPoint> trend_with_measurement(double measured_pct,
                                               double year = 2015.6);

/// Logistic adoption-curve fit over a trend series.
util::LogisticFit fit_trend(const std::vector<TrendPoint>& points);

}  // namespace ecnprobe::analysis
