// Trace autopsy: reconstructs the causal chain of one campaign trace from
// flight-recorder events joined with the drop-attribution ledger. Where the
// loss-autopsy table says "47 probes died of policy/ect-udp-filter", the
// trace autopsy names the packet: "probe 13 seq 0 ECT(0) -> not-ECT
// rewritten at core-3 (AS boundary 3356 -> 174), dropped at fw-9
// (ect-udp-filter), timed out after 5 attempts".
#pragma once

#include <string>
#include <vector>

#include "ecnprobe/obs/flight.hpp"
#include "ecnprobe/obs/ledger.hpp"
#include "ecnprobe/obs/telemetry.hpp"
#include "ecnprobe/topology/ip2as.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::analysis {

struct AutopsyRequest {
  int trace = 0;
  /// Restrict to probes of this server (empty string = every probe in the
  /// trace). Matched against the destination of each probe's first send.
  std::string server;
};

/// Renders the per-probe event chains for one trace: every span's events in
/// time order, nodes annotated with their AS, ECN rewrites annotated with
/// the AS boundary they sit on, plus a verdict line per probe and a
/// trace-level summary that names bleaching hops and drop causes. `ledger`
/// supplies the trace's aggregate attribution (quarantine markers
/// included); `ip2as` resolves node addresses to ASes (events with
/// node_addr 0 stay unannotated).
std::string render_trace_autopsy(const std::vector<obs::FlightEvent>& events,
                                 const obs::LedgerSnapshot& ledger,
                                 const topology::IpToAsMap& ip2as,
                                 const AutopsyRequest& request);

/// Fallback report for a trace whose per-packet flight records were sampled
/// out by sketched telemetry (head-based sampling keeps exact records for
/// every Nth trace only). Renders the trace's telemetry delta -- drop causes,
/// per-hop and per-AS attributions, rewrites, RTT totals -- so the autopsy
/// degrades to an exact per-trace cause summary instead of an empty report.
std::string render_sketched_autopsy(const obs::TelemetryDelta& delta,
                                    const obs::TelemetryConfig& config,
                                    const AutopsyRequest& request);

}  // namespace ecnprobe::analysis
