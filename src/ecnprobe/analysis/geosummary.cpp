#include "ecnprobe/analysis/geosummary.hpp"

namespace ecnprobe::analysis {

GeoSummary summarize_geo(const std::vector<wire::Ipv4Address>& servers,
                         const geo::GeoDatabase& db) {
  GeoSummary out;
  for (const auto region : geo::all_regions()) out.counts[region] = 0;
  for (const auto& addr : servers) {
    ++out.total;
    const auto record = db.lookup(addr);
    if (!record) {
      ++out.counts[geo::Region::Unknown];
      continue;
    }
    ++out.counts[record->region];
    out.locations.emplace_back(record->latitude, record->longitude);
  }
  return out;
}

}  // namespace ecnprobe::analysis
