// Table 1 / Figure 1: geographic distribution of the discovered servers via
// GeoDatabase lookups; unmapped addresses land in the Unknown row exactly as
// in the paper.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "ecnprobe/geo/geo.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::analysis {

struct GeoSummary {
  std::map<geo::Region, int> counts;                 ///< Table 1 rows
  std::vector<std::pair<double, double>> locations;  ///< (lat, lon) for Figure 1
  int total = 0;
};

GeoSummary summarize_geo(const std::vector<wire::Ipv4Address>& servers,
                         const geo::GeoDatabase& db);

}  // namespace ecnprobe::analysis
