#include "ecnprobe/analysis/markdown_report.hpp"

#include <sstream>

#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/analysis/trend.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::analysis {

namespace {

void fenced(std::ostringstream& out, const std::string& body) {
  out << "```\n" << body;
  if (!body.empty() && body.back() != '\n') out << '\n';
  out << "```\n\n";
}

}  // namespace

std::string render_markdown_report(const ReportInputs& inputs) {
  std::ostringstream out;
  out << "# " << inputs.title << "\n\n";

  const auto summary = summarize_reachability(inputs.traces);
  int server_count = 0;
  if (!inputs.traces.empty()) {
    server_count = static_cast<int>(inputs.traces.front().servers.size());
  }
  out << util::strf(
      "%zu traces over %d servers from %zu vantage points.\n\n",
      inputs.traces.size(), server_count,
      per_vantage_reachability(inputs.traces).size());

  out << "## Headline numbers\n\n";
  fenced(out, render_summary(summary));

  if (inputs.geo) {
    out << "## Table 1 — geographic distribution\n\n";
    fenced(out, render_table1(*inputs.geo));
    out << "## Figure 1 — server locations\n\n";
    fenced(out, render_figure1(*inputs.geo, 80, 22));
  }

  const auto per_trace = per_trace_reachability(inputs.traces);
  out << "## Figure 2a — ECT(0) reachability of not-ECT-reachable servers\n\n";
  fenced(out, render_figure2a(per_trace));
  out << "## Figure 2b — converse\n\n";
  fenced(out, render_figure2b(per_trace));

  const auto diffs = per_server_differential(inputs.traces);
  out << "## Figure 3a — per-server differential reachability\n\n";
  fenced(out, render_figure3a(diffs));
  out << "## Figure 3b — converse\n\n";
  fenced(out, render_figure3b(diffs));

  if (!inputs.traceroutes.empty() && inputs.ip2as != nullptr) {
    out << "## Figure 4 — ECN mark stripping\n\n";
    const auto hops = analyze_hops(inputs.traceroutes, *inputs.ip2as);
    fenced(out, render_figure4(hops, inputs.traceroutes, 8));
  }

  out << "## Figure 5 — TCP reachability and ECN negotiation\n\n";
  fenced(out, render_figure5(per_trace, server_count));

  out << "## Figure 6 — adoption trend\n\n";
  fenced(out,
         render_figure6(trend_with_measurement(summary.pct_tcp_negotiating_ecn)));

  out << "## Table 2 — UDP vs TCP ECN failure correlation\n\n";
  fenced(out, render_table2(correlation_table(inputs.traces)));

  return out.str();
}

}  // namespace ecnprobe::analysis
