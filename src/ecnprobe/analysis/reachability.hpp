// Section 4.1 / 4.3 / 4.4 aggregations: per-trace reachability percentages
// (Figures 2a/2b), per-trace TCP + ECN-negotiation counts (Figure 5), the
// campaign-wide summary numbers quoted in the abstract (98.97%, 99.45%,
// 82.0%), and the Table 2 UDP/TCP failure correlation.
#pragma once

#include <string>
#include <vector>

#include "ecnprobe/measure/results.hpp"

namespace ecnprobe::analysis {

struct TraceReachability {
  std::string vantage;
  int batch = 1;
  int index = 0;
  int reachable_udp_plain = 0;
  int reachable_udp_ect0 = 0;
  int reachable_tcp = 0;
  int negotiated_ecn_tcp = 0;
  double pct_ect_given_plain = 0.0;  ///< Figure 2a bar
  double pct_plain_given_ect = 0.0;  ///< Figure 2b bar
};

std::vector<TraceReachability> per_trace_reachability(
    const std::vector<measure::Trace>& traces);

struct ReachabilitySummary {
  double mean_reachable_udp_plain = 0.0;    ///< paper: 2253 of 2500
  double mean_pct_ect_given_plain = 0.0;    ///< paper: 98.97%
  double min_pct_ect_given_plain = 0.0;     ///< paper: always > 90%
  double mean_pct_plain_given_ect = 0.0;    ///< paper: 99.45%
  double mean_reachable_tcp = 0.0;          ///< paper: 1334
  double mean_negotiated_ecn_tcp = 0.0;     ///< paper: 1095
  double pct_tcp_negotiating_ecn = 0.0;     ///< paper: 82.0%
};

ReachabilitySummary summarize_reachability(const std::vector<measure::Trace>& traces);

/// Mean per-trace reachability for one vantage (Figure 2's per-location
/// variation; also exposes the McQuistin-home anomaly).
struct VantageReachability {
  std::string vantage;
  int traces = 0;
  double mean_pct_ect_given_plain = 0.0;
  double mean_reachable_udp_plain = 0.0;
};
std::vector<VantageReachability> per_vantage_reachability(
    const std::vector<measure::Trace>& traces);

/// Table 2: per location, the average number of servers reachable with
/// plain UDP but not with ECT(0) UDP, and how many of those also fail to
/// negotiate ECN over TCP.
struct CorrelationRow {
  std::string vantage;
  double avg_unreachable_udp_with_ect = 0.0;
  double avg_also_fail_tcp_ecn = 0.0;
};
std::vector<CorrelationRow> correlation_table(const std::vector<measure::Trace>& traces);

}  // namespace ecnprobe::analysis
