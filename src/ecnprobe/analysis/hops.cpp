#include "ecnprobe/analysis/hops.hpp"

#include <map>
#include <set>
#include <tuple>

namespace ecnprobe::analysis {

HopAnalysis analyze_hops(const std::vector<measure::TracerouteObservation>& observations,
                         const topology::IpToAsMap& ip2as) {
  HopAnalysis out;

  // Hop identity: (vantage, destination, responder). Value: how its
  // quotations looked across repetitions.
  struct HopSeen {
    bool intact = false;
    bool stripped = false;
  };
  std::map<std::tuple<std::string, std::uint32_t, std::uint32_t>, HopSeen> hops;
  // Strip locations are identified by the first responder reporting a
  // stripped mark; the upstream neighbour is decided by majority vote over
  // all observations (individual traces may miss the true previous hop when
  // its ICMP generation is rate limited).
  std::map<std::uint32_t, std::map<std::uint32_t, int>> strip_prev_votes;  // curr -> prev
  std::set<std::uint32_t> unattributed_strips;  // first responder already stripped
  std::set<std::tuple<std::string, std::uint32_t, std::uint32_t>> ecn_unknown;
  std::set<topology::Asn> asns;

  std::uint64_t responding_total = 0;
  for (const auto& obs : observations) {
    ++out.paths;
    std::uint32_t prev_responder = 0;
    bool prev_was_intact = false;
    bool any_prev_responder = false;

    for (const auto& hop : obs.path.hops) {
      if (!hop.responded) continue;
      ++responding_total;
      if (!hop.ecn_known) {
        // Truncated quote: the hop responded but its ECN field was never
        // observed. It neither passes nor strips, and it cannot anchor a
        // strip-location transition -- skip it for classification entirely.
        ecn_unknown.insert({obs.vantage, obs.path.destination.value(),
                            hop.responder.value()});
        continue;
      }
      auto& seen = hops[{obs.vantage, obs.path.destination.value(),
                         hop.responder.value()}];
      if (hop.quoted_ecn == wire::Ecn::Ce) ++out.ce_marks_seen;
      const bool intact = hop.quoted_ecn == hop.sent_ecn;
      if (intact) seen.intact = true;
      else seen.stripped = true;

      if (const auto asn = ip2as.lookup(hop.responder)) asns.insert(*asn);

      // Strip-location detection: transition from an intact quotation to a
      // stripped one between consecutive responding hops.
      if (!intact) {
        if (any_prev_responder && prev_was_intact) {
          ++strip_prev_votes[hop.responder.value()][prev_responder];
        } else if (!any_prev_responder) {
          // Stripped before the first responding hop: cannot locate.
          unattributed_strips.insert(hop.responder.value());
        }
      }
      prev_responder = hop.responder.value();
      prev_was_intact = intact;
      any_prev_responder = true;
    }
  }

  out.total_hops = hops.size();
  // Hops seen *only* with truncated quotes: reported, not classified.
  for (const auto& key : ecn_unknown) {
    if (!hops.contains(key)) ++out.ecn_unknown_hops;
  }
  for (const auto& [_, seen] : hops) {
    if (seen.stripped) {
      ++out.strip_hops;
      if (seen.intact) ++out.sometimes_strip;
    } else {
      ++out.pass_hops;
    }
  }
  std::uint64_t boundary = 0;
  for (const auto& [curr, votes] : strip_prev_votes) {
    unattributed_strips.erase(curr);  // located: drop from the fallback set
    std::uint32_t majority_prev = 0;
    int best = 0;
    for (const auto& [prev, count] : votes) {
      if (count > best) {
        best = count;
        majority_prev = prev;
      }
    }
    const auto as_prev = ip2as.lookup(wire::Ipv4Address{majority_prev});
    const auto as_curr = ip2as.lookup(wire::Ipv4Address{curr});
    if (as_prev && as_curr && *as_prev != *as_curr) ++boundary;
  }
  out.strip_locations = strip_prev_votes.size() + unattributed_strips.size();
  out.strip_locations_at_boundary = boundary;
  out.strip_locations_unattributed = unattributed_strips.size();
  out.ases_observed = asns.size();
  out.mean_responding_hops_per_path =
      out.paths == 0 ? 0.0
                     : static_cast<double>(responding_total) / static_cast<double>(out.paths);
  return out;
}

}  // namespace ecnprobe::analysis
