#include "ecnprobe/analysis/differential.hpp"

#include <algorithm>

namespace ecnprobe::analysis {

std::vector<ServerDifferential> per_server_differential(
    const std::vector<measure::Trace>& traces) {
  struct Counters {
    std::map<std::string, int> plain;          ///< traces reachable plain
    std::map<std::string, int> plain_not_ect;  ///< ...of which ECT failed
    std::map<std::string, int> ect;
    std::map<std::string, int> ect_not_plain;
  };
  std::map<std::uint32_t, Counters> by_server;
  std::vector<std::uint32_t> order;

  for (const auto& trace : traces) {
    for (const auto& s : trace.servers) {
      if (!by_server.contains(s.server.value())) order.push_back(s.server.value());
      Counters& c = by_server[s.server.value()];
      if (s.udp_plain.reachable) {
        ++c.plain[trace.vantage];
        if (!s.udp_ect0.reachable) ++c.plain_not_ect[trace.vantage];
      }
      if (s.udp_ect0.reachable) {
        ++c.ect[trace.vantage];
        if (!s.udp_plain.reachable) ++c.ect_not_plain[trace.vantage];
      }
    }
  }

  std::vector<ServerDifferential> out;
  out.reserve(order.size());
  for (const auto addr : order) {
    const Counters& c = by_server.at(addr);
    ServerDifferential d;
    d.server = wire::Ipv4Address{addr};
    int plain_total = 0;
    int plain_not_ect_total = 0;
    for (const auto& [vantage, n] : c.plain) {
      const auto it = c.plain_not_ect.find(vantage);
      const int failed = it == c.plain_not_ect.end() ? 0 : it->second;
      d.plain_not_ect_pct[vantage] = 100.0 * failed / n;
      plain_total += n;
      plain_not_ect_total += failed;
    }
    int ect_total = 0;
    int ect_not_plain_total = 0;
    for (const auto& [vantage, n] : c.ect) {
      const auto it = c.ect_not_plain.find(vantage);
      const int failed = it == c.ect_not_plain.end() ? 0 : it->second;
      d.ect_not_plain_pct[vantage] = 100.0 * failed / n;
      ect_total += n;
      ect_not_plain_total += failed;
    }
    d.overall_plain_not_ect_pct =
        plain_total == 0 ? 0.0 : 100.0 * plain_not_ect_total / plain_total;
    d.overall_ect_not_plain_pct =
        ect_total == 0 ? 0.0 : 100.0 * ect_not_plain_total / ect_total;
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<DifferentialCounts> count_over_threshold(
    const std::vector<ServerDifferential>& differentials,
    const std::vector<std::string>& vantages, double threshold_pct) {
  std::vector<DifferentialCounts> out;
  for (const auto& vantage : vantages) {
    DifferentialCounts counts;
    counts.vantage = vantage;
    for (const auto& d : differentials) {
      const auto a = d.plain_not_ect_pct.find(vantage);
      if (a != d.plain_not_ect_pct.end() && a->second > threshold_pct) {
        ++counts.plain_not_ect_over_threshold;
      }
      const auto b = d.ect_not_plain_pct.find(vantage);
      if (b != d.ect_not_plain_pct.end() && b->second > threshold_pct) {
        ++counts.ect_not_plain_over_threshold;
      }
    }
    out.push_back(std::move(counts));
  }
  return out;
}

std::vector<wire::Ipv4Address> persistent_failures(
    const std::vector<ServerDifferential>& differentials,
    const std::vector<std::string>& vantages, double threshold_pct) {
  std::vector<wire::Ipv4Address> out;
  for (const auto& d : differentials) {
    const bool everywhere = std::all_of(
        vantages.begin(), vantages.end(), [&](const std::string& vantage) {
          const auto it = d.plain_not_ect_pct.find(vantage);
          return it != d.plain_not_ect_pct.end() && it->second > threshold_pct;
        });
    if (everywhere) out.push_back(d.server);
  }
  return out;
}

}  // namespace ecnprobe::analysis
