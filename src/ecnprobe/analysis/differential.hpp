// Figure 3: per-server differential reachability. For each server and each
// vantage point, the fraction of traces in which the server was reachable
// with one marking but not the other. Servers behind ECT-dropping firewalls
// show ~100% differential reachability from every location; transient loss
// shows up as small nonzero values.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ecnprobe/measure/results.hpp"

namespace ecnprobe::analysis {

struct ServerDifferential {
  wire::Ipv4Address server;
  /// Per vantage: 100 * |traces reachable plain but not ECT| / |traces
  /// reachable plain| (Figure 3a).
  std::map<std::string, double> plain_not_ect_pct;
  /// The converse (Figure 3b).
  std::map<std::string, double> ect_not_plain_pct;
  /// Aggregates across all vantages.
  double overall_plain_not_ect_pct = 0.0;
  double overall_ect_not_plain_pct = 0.0;
};

std::vector<ServerDifferential> per_server_differential(
    const std::vector<measure::Trace>& traces);

/// Servers whose differential reachability exceeds `threshold_pct` from a
/// given vantage (the paper counts 9-14 per location in Figure 3a and at
/// most 3 in Figure 3b).
struct DifferentialCounts {
  std::string vantage;
  int plain_not_ect_over_threshold = 0;
  int ect_not_plain_over_threshold = 0;
};
std::vector<DifferentialCounts> count_over_threshold(
    const std::vector<ServerDifferential>& differentials,
    const std::vector<std::string>& vantages, double threshold_pct = 50.0);

/// Servers above threshold from *every* vantage -- the paper's observation
/// that the same servers fail everywhere, implying drops near the
/// destination.
std::vector<wire::Ipv4Address> persistent_failures(
    const std::vector<ServerDifferential>& differentials,
    const std::vector<std::string>& vantages, double threshold_pct = 50.0);

}  // namespace ecnprobe::analysis
