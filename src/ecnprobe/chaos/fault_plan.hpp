// Deterministic fault injection: a FaultPlan names the pathologies a
// campaign should suffer -- packet corruption, duplication, reordering,
// ICMP blackholes, truncated ICMP quotes, route flaps, flaky NTP
// responders -- plus two harness-level faults (poisoned traces and a
// simulated crash). The scenario layer compiles a plan into netsim
// PacketPolicy chains and host hooks; every injected fault is a pure
// function of (world seed, trace index, policy position), so a faulted
// campaign is exactly as reproducible as a clean one: byte-identical
// sequentially and at any --workers N.
//
// Plans parse from a CLI spec: a named profile optionally followed by
// key=value overrides, e.g.
//
//   --faults wan-chaos
//   --faults icmp-degraded,quote-truncate-prob=1.0
//   --faults none,poison=7,crash-after=13
//
// See docs/robustness.md for the full key list.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ecnprobe/util/expected.hpp"

namespace ecnprobe::chaos {

struct FaultPlan {
  std::string name = "none";

  // Mid-path packet pathologies, installed on a deterministic selection of
  // `chaos_links` inter-AS transit links (both directions).
  int chaos_links = 0;
  double corrupt_prob = 0.0;    ///< per-packet payload byte flip
  double duplicate_prob = 0.0;  ///< per-packet extra delivery
  double reorder_prob = 0.0;    ///< per-packet extra delay draw...
  double reorder_window_ms = 0.0;  ///< ...uniform in [0, window)

  // ICMP degradation (the traceroute experiment's natural enemies).
  int icmp_blackhole_routers = 0;   ///< routers that eat ICMP errors
  double icmp_blackhole_prob = 0.0;
  int quote_truncate_links = 0;     ///< links truncating ICMP error quotes
  double quote_truncate_prob = 0.0; ///< ...to less than a full IP header

  // Mid-path route flaps: the link goes dark for `down_ms` out of every
  // `period_ms`, with the window placed per (trace, link) by the seed.
  int route_flap_links = 0;
  double route_flap_down_ms = 0.0;
  double route_flap_period_ms = 0.0;

  // Flaky NTP responders: a deterministic fraction of the server pool
  // answers some requests with a short (truncated) or malformed reply.
  double flaky_server_fraction = 0.0;
  double short_reply_prob = 0.0;
  double malformed_reply_prob = 0.0;

  // Blackholed servers: a deterministic fraction of the pool is dead for
  // the whole campaign (NTP silent, web down) -- the stress case for the
  // sched layer's circuit breakers and watchdog.
  double blackhole_server_fraction = 0.0;

  // Harness-level faults.
  std::set<int> poison_traces;   ///< trace indices whose epoch setup throws
  int crash_after_traces = 0;    ///< >0: stop (simulated crash) after N live traces

  /// True if the plan injects any fault at all ("none" parses to false).
  bool enabled() const;
  bool poisons(int trace_index) const { return poison_traces.count(trace_index) != 0; }

  /// Canonical key=value serialisation (every field, fixed order). Equal
  /// plans serialise to equal strings.
  std::string serialize() const;

  /// `name#xxxxxxxxxxxxxxxx`: the profile name plus a 16-hex-digit FNV of
  /// the canonical serialisation. The journal stores this to refuse
  /// resuming a campaign under a different fault plan.
  std::string fingerprint() const;

  /// Parses "profile[,key=value...]". Unknown profiles, unknown keys, and
  /// malformed values are errors.
  static util::Expected<FaultPlan> parse(const std::string& spec);

  /// The named profiles parse() accepts as a base.
  static std::vector<std::string> profile_names();
};

}  // namespace ecnprobe::chaos
