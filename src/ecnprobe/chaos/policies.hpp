// The netsim PacketPolicy implementations a FaultPlan compiles into.
//
// Determinism contract: every policy here owns a *private* Rng, reseeded
// by PacketPolicy::on_epoch from (epoch seed, position in topology) --
// never the shared datapath stream. Installing a fault therefore changes
// only the packets it touches; the fault-free draws (link loss, jitter,
// middlebox verdicts) are byte-for-byte what they would have been without
// the fault plan, and every injected fault is a pure function of the
// trace index regardless of worker count.
#pragma once

#include <cstdint>
#include <string>

#include "ecnprobe/netsim/policy.hpp"
#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::chaos {

/// Flips one payload byte with probability `prob` -- in-flight bit rot.
/// The corrupted transport checksum gets the packet discarded (or the
/// garbled NTP reply rejected) at the receiving host.
class CorruptionPolicy final : public netsim::PacketPolicy {
public:
  explicit CorruptionPolicy(double prob) : prob_(prob) {}
  std::string name() const override { return "chaos-corrupt"; }
  void on_epoch(std::uint64_t seed) override { rng_ = util::Rng(seed); }

protected:
  netsim::PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                                util::SimTime now) override;

private:
  double prob_;
  util::Rng rng_;
};

/// Delivers the packet twice with probability `prob` (via
/// PacketPolicy::take_duplicate and the datapath's second delivery).
class DuplicatePolicy final : public netsim::PacketPolicy {
public:
  explicit DuplicatePolicy(double prob) : prob_(prob) {}
  std::string name() const override { return "chaos-duplicate"; }
  void on_epoch(std::uint64_t seed) override {
    rng_ = util::Rng(seed);
    dup_ = false;
  }
  bool take_duplicate() override {
    const bool d = dup_;
    dup_ = false;
    return d;
  }

protected:
  netsim::PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                                util::SimTime now) override;

private:
  double prob_;
  bool dup_ = false;
  util::Rng rng_;
};

/// Holds a packet back by a uniform draw from [0, window) ms with
/// probability `prob`, letting later packets overtake it.
class ReorderPolicy final : public netsim::PacketPolicy {
public:
  ReorderPolicy(double prob, double window_ms) : prob_(prob), window_ms_(window_ms) {}
  std::string name() const override { return "chaos-reorder"; }
  void on_epoch(std::uint64_t seed) override {
    rng_ = util::Rng(seed);
    pending_delay_ = {};
  }
  util::SimDuration take_extra_delay() override {
    const auto d = pending_delay_;
    pending_delay_ = {};
    return d;
  }

protected:
  netsim::PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                                util::SimTime now) override;

private:
  double prob_;
  double window_ms_;
  util::SimDuration pending_delay_;
  util::Rng rng_;
};

/// Eats ICMP traffic with probability `prob` -- the router that never
/// sends (or forwards) Time-Exceeded, leaving traceroute hops silent.
class IcmpBlackholePolicy final : public netsim::PacketPolicy {
public:
  explicit IcmpBlackholePolicy(double prob) : prob_(prob) {}
  std::string name() const override { return "chaos-icmp-blackhole"; }
  obs::DropCause drop_cause() const override { return obs::DropCause::IcmpBlackhole; }
  void on_epoch(std::uint64_t seed) override { rng_ = util::Rng(seed); }

protected:
  netsim::PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                                util::SimTime now) override;

private:
  double prob_;
  util::Rng rng_;
};

/// Truncates the quotation inside passing ICMP error messages to fewer
/// bytes than a full inner IP header (8..19), with probability `prob` --
/// the RFC 1812 violation that real paths exhibit and the prober must
/// tolerate (hop becomes "ECN unknown", not "bleached").
class QuoteTruncatePolicy final : public netsim::PacketPolicy {
public:
  explicit QuoteTruncatePolicy(double prob) : prob_(prob) {}
  std::string name() const override { return "chaos-quote-truncate"; }
  void on_epoch(std::uint64_t seed) override { rng_ = util::Rng(seed); }

protected:
  netsim::PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                                util::SimTime now) override;

private:
  double prob_;
  util::Rng rng_;
};

/// A link that goes dark for `down_ms` out of every `period_ms`. The down
/// window's phase is drawn per epoch; the clock reference is the first
/// packet of the epoch, so the flap schedule is relative to the trace, not
/// to absolute simulator time (which differs between executors).
class RouteFlapPolicy final : public netsim::PacketPolicy {
public:
  RouteFlapPolicy(double down_ms, double period_ms)
      : down_ms_(down_ms), period_ms_(period_ms) {}
  std::string name() const override { return "chaos-route-flap"; }
  obs::DropCause drop_cause() const override { return obs::DropCause::RouteFlap; }
  void on_epoch(std::uint64_t seed) override;

protected:
  netsim::PolicyAction do_apply(wire::Datagram& dgram, util::Rng& rng,
                                util::SimTime now) override;

private:
  double down_ms_;
  double period_ms_;
  double phase_ms_ = 0.0;  ///< down-window start within the period
  bool have_ref_ = false;
  util::SimTime ref_;
  util::Rng rng_;
};

}  // namespace ecnprobe::chaos
