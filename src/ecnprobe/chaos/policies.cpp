#include "ecnprobe/chaos/policies.hpp"

#include <cmath>

#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/icmp.hpp"

namespace ecnprobe::chaos {

using netsim::PolicyAction;

PolicyAction CorruptionPolicy::do_apply(wire::Datagram& dgram, util::Rng& /*rng*/,
                                        util::SimTime /*now*/) {
  if (!dgram.payload.empty() && rng_.bernoulli(prob_)) {
    const std::size_t idx = rng_.next_below(dgram.payload.size());
    dgram.touch_payload();  // invalidate any cached serialisation first
    dgram.payload[idx] ^= 0x5A;
  }
  return PolicyAction::Pass;
}

PolicyAction DuplicatePolicy::do_apply(wire::Datagram& /*dgram*/, util::Rng& /*rng*/,
                                       util::SimTime /*now*/) {
  dup_ = rng_.bernoulli(prob_);
  return PolicyAction::Pass;
}

PolicyAction ReorderPolicy::do_apply(wire::Datagram& /*dgram*/, util::Rng& /*rng*/,
                                     util::SimTime /*now*/) {
  if (window_ms_ > 0.0 && rng_.bernoulli(prob_)) {
    pending_delay_ = util::SimDuration::nanos(
        static_cast<std::int64_t>(rng_.uniform(0.0, window_ms_) * 1e6));
  }
  return PolicyAction::Pass;
}

PolicyAction IcmpBlackholePolicy::do_apply(wire::Datagram& dgram, util::Rng& /*rng*/,
                                           util::SimTime /*now*/) {
  if (dgram.ip.protocol == wire::IpProto::Icmp && rng_.bernoulli(prob_)) {
    return PolicyAction::Drop;
  }
  return PolicyAction::Pass;
}

PolicyAction QuoteTruncatePolicy::do_apply(wire::Datagram& dgram, util::Rng& /*rng*/,
                                           util::SimTime /*now*/) {
  if (dgram.ip.protocol != wire::IpProto::Icmp) return PolicyAction::Pass;
  auto decoded = wire::decode_icmp_message(dgram.payload);
  if (!decoded) return PolicyAction::Pass;
  wire::IcmpMessage msg = std::move(decoded->message);
  // Only error messages carry a quotation, and truncating below the 8-byte
  // ICMP minimum would make the message undecodable rather than degraded.
  if (!msg.is_error() || msg.body.size() <= wire::IcmpMessage::kHeaderSize) {
    return PolicyAction::Pass;
  }
  if (!rng_.bernoulli(prob_)) return PolicyAction::Pass;
  // 8..19 quoted bytes: always less than a full inner IPv4 header, so the
  // prober can see who answered but is left without a validated quoted
  // header to read an ECN verdict from.
  const std::size_t keep =
      wire::IcmpMessage::kHeaderSize + static_cast<std::size_t>(rng_.next_below(12));
  if (msg.body.size() > keep) msg.body.resize(keep);
  dgram.touch_payload();  // invalidate any cached serialisation first
  dgram.payload = msg.encode();  // re-checksummed: degraded, not corrupt
  dgram.ip.total_length =
      static_cast<std::uint16_t>(wire::Ipv4Header::kSize + dgram.payload.size());
  return PolicyAction::Pass;
}

void RouteFlapPolicy::on_epoch(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  have_ref_ = false;
  ref_ = {};
  phase_ms_ = period_ms_ > 0.0 ? rng_.uniform(0.0, period_ms_) : 0.0;
}

PolicyAction RouteFlapPolicy::do_apply(wire::Datagram& /*dgram*/, util::Rng& /*rng*/,
                                       util::SimTime now) {
  if (down_ms_ <= 0.0 || period_ms_ <= 0.0) return PolicyAction::Pass;
  if (!have_ref_) {
    ref_ = now;
    have_ref_ = true;
  }
  const double elapsed_ms = (now - ref_).to_millis();
  const double pos = std::fmod(elapsed_ms, period_ms_);
  const double end = phase_ms_ + down_ms_;
  const bool down = (pos >= phase_ms_ && pos < end) ||
                    (end > period_ms_ && pos < end - period_ms_);  // window wraps
  return down ? PolicyAction::Drop : PolicyAction::Pass;
}

}  // namespace ecnprobe::chaos
