#include "ecnprobe/chaos/fault_plan.hpp"

#include <cerrno>
#include <cstdlib>

#include "ecnprobe/util/hash.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::chaos {
namespace {

util::Error bad(const std::string& what) { return util::make_error("fault-plan", what); }

bool parse_double_strict(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool parse_int_strict(const std::string& tok, int* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || v < -(1l << 30) || v > (1l << 30)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool profile(const std::string& name, FaultPlan* plan) {
  plan->name = name;
  if (name == "none") return true;
  if (name == "wan-chaos") {
    // Misbehaving transit: corruption, duplication, and reordering on a
    // handful of inter-AS links.
    plan->chaos_links = 4;
    plan->corrupt_prob = 0.02;
    plan->duplicate_prob = 0.02;
    plan->reorder_prob = 0.30;
    plan->reorder_window_ms = 8.0;
    return true;
  }
  if (name == "icmp-degraded") {
    // The traceroute experiment's worst day: routers that never send (or
    // forward) ICMP errors, and links that truncate the quotes that do
    // come back to less than a full inner IP header.
    plan->icmp_blackhole_routers = 3;
    plan->icmp_blackhole_prob = 0.5;
    plan->quote_truncate_links = 4;
    plan->quote_truncate_prob = 0.6;
    return true;
  }
  if (name == "flaky-servers") {
    // A fifth of the pool answers some requests with truncated or
    // malformed NTP replies ("A Fresh Look at ECN Traversal in the Wild"
    // saw exactly this class of responder).
    plan->flaky_server_fraction = 0.2;
    plan->short_reply_prob = 0.3;
    plan->malformed_reply_prob = 0.2;
    return true;
  }
  if (name == "route-flap") {
    plan->route_flap_links = 3;
    plan->route_flap_down_ms = 40.0;
    plan->route_flap_period_ms = 250.0;
    return true;
  }
  if (name == "blackhole-heavy") {
    // Over a third of the pool never answers anything: without circuit
    // breakers every dead server costs the full probe sequence in
    // timeouts, with them the supervisor routes around the corpses.
    plan->blackhole_server_fraction = 0.35;
    return true;
  }
  return false;
}

}  // namespace

bool FaultPlan::enabled() const {
  return chaos_links > 0 || icmp_blackhole_routers > 0 || quote_truncate_links > 0 ||
         route_flap_links > 0 || flaky_server_fraction > 0.0 ||
         blackhole_server_fraction > 0.0 || !poison_traces.empty() ||
         crash_after_traces > 0;
}

std::string FaultPlan::serialize() const {
  std::string out = "name=" + name;
  const auto num = [&out](const char* key, double v) {
    out += util::strf(",%s=%.17g", key, v);
  };
  out += util::strf(",chaos-links=%d", chaos_links);
  num("corrupt-prob", corrupt_prob);
  num("duplicate-prob", duplicate_prob);
  num("reorder-prob", reorder_prob);
  num("reorder-window-ms", reorder_window_ms);
  out += util::strf(",icmp-blackhole-routers=%d", icmp_blackhole_routers);
  num("icmp-blackhole-prob", icmp_blackhole_prob);
  out += util::strf(",quote-truncate-links=%d", quote_truncate_links);
  num("quote-truncate-prob", quote_truncate_prob);
  out += util::strf(",route-flap-links=%d", route_flap_links);
  num("route-flap-down-ms", route_flap_down_ms);
  num("route-flap-period-ms", route_flap_period_ms);
  num("flaky-server-fraction", flaky_server_fraction);
  num("short-reply-prob", short_reply_prob);
  num("malformed-reply-prob", malformed_reply_prob);
  num("blackhole-server-fraction", blackhole_server_fraction);
  out += ",poison=";
  bool first = true;
  for (const int idx : poison_traces) {
    if (!first) out += "+";
    out += std::to_string(idx);
    first = false;
  }
  out += util::strf(",crash-after=%d", crash_after_traces);
  return out;
}

std::string FaultPlan::fingerprint() const {
  // crash-after is excluded from the identity: it only decides when the
  // executor stops, never what any trace's bytes are, and the whole point
  // of the journal is to resume a `crash-after=N` run without the crash.
  FaultPlan effective = *this;
  effective.crash_after_traces = 0;
  return util::strf("%s#%016llx", name.c_str(),
                    static_cast<unsigned long long>(util::fnv1a64(effective.serialize())));
}

util::Expected<FaultPlan> FaultPlan::parse(const std::string& spec) {
  const auto parts = util::split(spec, ',');
  if (parts.empty() || parts[0].empty()) return bad("empty fault spec");
  FaultPlan plan;
  if (!profile(std::string(util::trim(parts[0])), &plan)) {
    std::string known;
    for (const auto& n : profile_names()) known += (known.empty() ? "" : ", ") + n;
    return bad("unknown fault profile '" + parts[0] + "' (known: " + known + ")");
  }
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string part{util::trim(parts[i])};
    const auto eq = part.find('=');
    if (eq == std::string::npos) return bad("expected key=value, got '" + part + "'");
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    double d = 0;
    int n = 0;
    if (key == "poison") {
      if (!parse_int_strict(value, &n) || n < 0) return bad("bad poison index '" + value + "'");
      plan.poison_traces.insert(n);
    } else if (key == "crash-after") {
      if (!parse_int_strict(value, &n) || n < 0) return bad("bad crash-after '" + value + "'");
      plan.crash_after_traces = n;
    } else if (key == "chaos-links") {
      if (!parse_int_strict(value, &n) || n < 0) return bad("bad chaos-links '" + value + "'");
      plan.chaos_links = n;
    } else if (key == "icmp-blackhole-routers") {
      if (!parse_int_strict(value, &n) || n < 0) return bad("bad value '" + value + "'");
      plan.icmp_blackhole_routers = n;
    } else if (key == "quote-truncate-links") {
      if (!parse_int_strict(value, &n) || n < 0) return bad("bad value '" + value + "'");
      plan.quote_truncate_links = n;
    } else if (key == "route-flap-links") {
      if (!parse_int_strict(value, &n) || n < 0) return bad("bad value '" + value + "'");
      plan.route_flap_links = n;
    } else {
      if (!parse_double_strict(value, &d) || d < 0.0) {
        return bad("bad value for '" + key + "': '" + value + "'");
      }
      if (key == "corrupt-prob") plan.corrupt_prob = d;
      else if (key == "duplicate-prob") plan.duplicate_prob = d;
      else if (key == "reorder-prob") plan.reorder_prob = d;
      else if (key == "reorder-window-ms") plan.reorder_window_ms = d;
      else if (key == "icmp-blackhole-prob") plan.icmp_blackhole_prob = d;
      else if (key == "quote-truncate-prob") plan.quote_truncate_prob = d;
      else if (key == "route-flap-down-ms") plan.route_flap_down_ms = d;
      else if (key == "route-flap-period-ms") plan.route_flap_period_ms = d;
      else if (key == "flaky-server-fraction") plan.flaky_server_fraction = d;
      else if (key == "short-reply-prob") plan.short_reply_prob = d;
      else if (key == "malformed-reply-prob") plan.malformed_reply_prob = d;
      else if (key == "blackhole-server-fraction") plan.blackhole_server_fraction = d;
      else return bad("unknown fault key '" + key + "'");
    }
  }
  return plan;
}

std::vector<std::string> FaultPlan::profile_names() {
  return {"none",       "wan-chaos", "icmp-degraded",
          "flaky-servers", "route-flap", "blackhole-heavy"};
}

}  // namespace ecnprobe::chaos
