// Synthetic Internet topology: a three-tier AS graph (global transit,
// regional transit, stub/access networks) with a handful of routers per AS,
// inter-AS links between border routers, address allocation per AS, and a
// routing oracle backed by per-destination shortest-path trees. This is the
// substrate the measurement campaign runs over; the scenario module places
// middleboxes on its interfaces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ecnprobe/geo/geo.hpp"
#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/netsim/router.hpp"
#include "ecnprobe/netsim/sim.hpp"
#include "ecnprobe/topology/ip2as.hpp"
#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::topology {

struct AsInfo {
  Asn asn = 0;
  int tier = 3;  ///< 1 = global transit, 2 = regional transit, 3 = stub
  geo::Region region = geo::Region::Unknown;
  wire::Ipv4Address prefix;
  int prefix_len = 18;
  std::vector<netsim::NodeId> routers;
};

/// An interface endpoint, used to enumerate policy attachment points.
struct InterfaceRef {
  netsim::NodeId node = netsim::kInvalidNode;
  int if_index = netsim::kNoInterface;
};

/// A link between two ASes (border router pair), the natural home of the
/// ECN bleaching the paper localises to AS boundaries.
struct InterAsLink {
  InterfaceRef a;
  InterfaceRef b;
  Asn asn_a = 0;
  Asn asn_b = 0;
};

struct TopologyParams {
  int tier1_count = 8;
  int tier2_per_region = 5;
  int stub_count = 400;             ///< stub (server-hosting) ASes
  int routers_per_tier1 = 5;
  int routers_per_tier2 = 4;
  int routers_per_stub = 2;
  int tier1_uplinks_per_tier2 = 2;  ///< tier2 -> tier1 attachments
  int tier2_uplinks_per_stub = 2;   ///< stub -> tier2 attachments
  double tier2_peering_prob = 0.25; ///< extra tier2 <-> tier2 links in-region
  /// Routers answer TTL expiry with this probability, drawn per router from
  /// [min, max]; models disabled/rate-limited ICMP generation (calibrates
  /// the responding-hop count of Figure 4).
  double icmp_response_prob_min = 0.22;
  double icmp_response_prob_max = 0.40;
};

class Internet {
public:
  /// Builds the AS graph, routers, links, and address plan. The Network and
  /// all nodes live inside the returned object.
  static std::unique_ptr<Internet> build(netsim::Simulator& sim,
                                         const TopologyParams& params, util::Rng rng);

  netsim::Network& net() { return net_; }
  netsim::Simulator& sim() { return sim_; }

  const std::vector<AsInfo>& ases() const { return ases_; }
  const AsInfo& as_info(Asn asn) const;
  const std::vector<InterAsLink>& inter_as_links() const { return inter_as_links_; }
  /// All intra-AS router-to-router interface endpoints (both directions).
  const std::vector<InterfaceRef>& intra_as_interfaces() const {
    return intra_as_interfaces_;
  }

  /// Stub ASes of a region (hosts attach only to stubs).
  std::vector<Asn> stub_ases(geo::Region region) const;
  std::vector<Asn> stub_ases() const;

  /// Attaches a host to a router of `asn` with the given access link,
  /// assigns it an address from the AS block, and records the attachment.
  struct Attachment {
    netsim::NodeId host = netsim::kInvalidNode;
    netsim::NodeId router = netsim::kInvalidNode;
    int router_if = netsim::kNoInterface;  ///< interface on router toward host
    int host_if = netsim::kNoInterface;    ///< interface on host toward router
    Asn asn = 0;
  };
  Attachment attach_host(Asn asn, std::unique_ptr<netsim::Host> host,
                         const netsim::LinkParams& access);

  const Attachment* attachment_of(wire::Ipv4Address host_addr) const;

  /// Ground-truth AS of an address (router or host).
  std::optional<Asn> asn_of(wire::Ipv4Address addr) const { return ip2as_.lookup(addr); }

  /// Ground-truth AS of a router node.
  std::optional<Asn> asn_of_router(netsim::NodeId node) const {
    const auto it = router_of_.find(node);
    if (it == router_of_.end()) return std::nullopt;
    return it->second;
  }
  const IpToAsMap& ip2as() const { return ip2as_; }

  /// Ground truth: is the link out of (node, if) an inter-AS link?
  bool is_inter_as_interface(netsim::NodeId node, int if_index) const;

  /// Drops all cached shortest-path trees. Call after changing link state
  /// (set_link_up) so traffic reroutes around failures -- the mechanism
  /// behind route-change experiments. Tree construction skips down links.
  void invalidate_routes() { trees_.clear(); }

  std::size_t router_count() const { return router_of_.size(); }

private:
  Internet(netsim::Simulator& sim, util::Rng rng);

  void build_graph(const TopologyParams& params);
  wire::Ipv4Address allocate_address(Asn asn);
  netsim::NodeId add_router(AsInfo& as, const TopologyParams& params);
  void connect_routers(netsim::NodeId a, netsim::NodeId b, const netsim::LinkParams& link,
                       bool inter_as, Asn asn_a, Asn asn_b);
  int route_oracle(netsim::NodeId at, wire::Ipv4Address dst);
  const std::vector<std::int32_t>& tree_toward(netsim::NodeId dest_router);

  netsim::Simulator& sim_;
  util::Rng rng_;
  netsim::Network net_;

  std::vector<AsInfo> ases_;
  std::map<Asn, std::size_t> as_index_;
  std::map<Asn, std::uint32_t> next_host_addr_;  ///< allocation cursor per AS

  // Router-graph adjacency for BFS: per node, (neighbor, egress_if) pairs.
  std::map<netsim::NodeId, std::vector<std::pair<netsim::NodeId, int>>> adjacency_;
  std::map<netsim::NodeId, Asn> router_of_;

  std::vector<InterAsLink> inter_as_links_;
  std::vector<InterfaceRef> intra_as_interfaces_;
  std::map<std::uint64_t, bool> inter_as_if_;  ///< (node<<32|if) -> inter-AS?

  std::map<std::uint32_t, Attachment> attachments_;  ///< host addr -> attachment

  // Per-destination-router shortest-path trees: egress interface index on
  // every router toward the key router; kNoInterface if unreachable.
  std::map<netsim::NodeId, std::vector<std::int32_t>> trees_;

  IpToAsMap ip2as_;
};

}  // namespace ecnprobe::topology
