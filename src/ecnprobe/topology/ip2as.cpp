#include "ecnprobe/topology/ip2as.hpp"

#include <algorithm>
#include <vector>

namespace ecnprobe::topology {

namespace {
std::uint32_t mask_for(int len) {
  if (len <= 0) return 0;
  if (len >= 32) return 0xffffffffu;
  return ~((1u << (32 - len)) - 1u);
}
}  // namespace

void IpToAsMap::add(wire::Ipv4Address prefix, int prefix_len, Asn asn) {
  prefix_len = std::clamp(prefix_len, 0, 32);
  auto& bucket = by_len_[prefix_len];
  const auto key = prefix.value() & mask_for(prefix_len);
  if (!bucket.contains(key)) ++entries_;
  bucket[key] = asn;
}

std::optional<Asn> IpToAsMap::lookup(wire::Ipv4Address addr) const {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_len_[len];
    if (bucket.empty()) continue;
    const auto it = bucket.find(addr.value() & mask_for(len));
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

IpToAsMap IpToAsMap::with_errors(double error_rate, util::Rng& rng) const {
  // Collect the distinct ASNs so errors remap to a real (but wrong) AS.
  std::vector<Asn> asns;
  for (const auto& bucket : by_len_) {
    for (const auto& [_, asn] : bucket) asns.push_back(asn);
  }
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());

  IpToAsMap out;
  for (int len = 0; len <= 32; ++len) {
    for (const auto& [base, asn] : by_len_[len]) {
      Asn mapped = asn;
      if (asns.size() > 1 && rng.bernoulli(error_rate)) {
        do {
          mapped = asns[rng.next_below(asns.size())];
        } while (mapped == asn);
      }
      out.add(wire::Ipv4Address{base}, len, mapped);
    }
  }
  return out;
}

}  // namespace ecnprobe::topology
