#include "ecnprobe/topology/internet.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "ecnprobe/util/log.hpp"
#include "ecnprobe/util/strings.hpp"

namespace ecnprobe::topology {

using netsim::kInvalidNode;
using netsim::kNoInterface;
using netsim::LinkParams;
using netsim::NodeId;

namespace {

constexpr std::uint32_t kAddressBase = (11u << 24);  // 11.0.0.0
constexpr int kAsPrefixLen = 18;                     // /18 per AS (16384 addrs)
constexpr Asn kFirstAsn = 100;

// Regional stub-AS shares follow the paper's Table 1 server distribution.
struct RegionShare {
  geo::Region region;
  double share;
};
constexpr RegionShare kRegionShares[] = {
    {geo::Region::Europe, 0.666},       {geo::Region::NorthAmerica, 0.209},
    {geo::Region::Asia, 0.076},         {geo::Region::Australia, 0.027},
    {geo::Region::SouthAmerica, 0.013}, {geo::Region::Africa, 0.009},
};

LinkParams make_link(util::Rng& rng, double delay_lo_ms, double delay_hi_ms,
                     double loss = 0.0) {
  LinkParams link;
  link.delay = util::SimDuration::from_seconds(rng.uniform(delay_lo_ms, delay_hi_ms) / 1e3);
  link.jitter = util::SimDuration::from_seconds(rng.uniform(0.05, 0.4) / 1e3);
  link.loss_rate = loss;
  return link;
}

}  // namespace

Internet::Internet(netsim::Simulator& sim, util::Rng rng)
    : sim_(sim), rng_(rng), net_(sim, rng.fork("network")) {}

std::unique_ptr<Internet> Internet::build(netsim::Simulator& sim,
                                          const TopologyParams& params, util::Rng rng) {
  std::unique_ptr<Internet> internet(new Internet(sim, rng));
  internet->build_graph(params);
  internet->net_.set_routing_oracle(
      [raw = internet.get()](NodeId at, wire::Ipv4Address dst) {
        return raw->route_oracle(at, dst);
      });
  return internet;
}

wire::Ipv4Address Internet::allocate_address(Asn asn) {
  const AsInfo& as = as_info(asn);
  std::uint32_t& cursor = next_host_addr_[asn];
  const std::uint32_t block_size = 1u << (32 - as.prefix_len);
  if (cursor >= block_size - 1) {
    throw std::runtime_error("Internet::allocate_address: AS block exhausted");
  }
  // Skip .0 (network address by convention).
  const wire::Ipv4Address addr{as.prefix.value() + ++cursor};
  ip2as_.add(addr, 32, asn);  // host routes share the AS prefix; /32 is exact
  return addr;
}

NodeId Internet::add_router(AsInfo& as, const TopologyParams& params) {
  netsim::Router::Params router_params;
  router_params.icmp_response_prob =
      rng_.uniform(params.icmp_response_prob_min, params.icmp_response_prob_max);
  const auto name =
      util::strf("r%zu.as%u", as.routers.size(), as.asn);
  auto router = std::make_unique<netsim::Router>(
      name, router_params, rng_.fork(name));
  const NodeId id = net_.add_node(std::move(router));
  // Router addresses come from the AS block, so traceroute responders map to
  // the right AS.
  const std::uint32_t block_size = 1u << (32 - as.prefix_len);
  std::uint32_t& cursor = next_host_addr_[as.asn];
  if (cursor >= block_size - 1) throw std::runtime_error("router address exhausted");
  net_.node(id).set_address(wire::Ipv4Address{as.prefix.value() + ++cursor});
  router_of_[id] = as.asn;
  as.routers.push_back(id);
  return id;
}

void Internet::connect_routers(NodeId a, NodeId b, const LinkParams& link, bool inter_as,
                               Asn asn_a, Asn asn_b) {
  const auto [if_a, if_b] = net_.connect(a, b, link);
  adjacency_[a].push_back({b, if_a});
  adjacency_[b].push_back({a, if_b});
  const auto key = [](NodeId n, int i) {
    return (static_cast<std::uint64_t>(n) << 32) | static_cast<std::uint32_t>(i);
  };
  inter_as_if_[key(a, if_a)] = inter_as;
  inter_as_if_[key(b, if_b)] = inter_as;
  if (inter_as) {
    inter_as_links_.push_back(InterAsLink{{a, if_a}, {b, if_b}, asn_a, asn_b});
  } else {
    intra_as_interfaces_.push_back({a, if_a});
    intra_as_interfaces_.push_back({b, if_b});
  }
}

void Internet::build_graph(const TopologyParams& params) {
  std::uint32_t next_block = kAddressBase;
  Asn next_asn = kFirstAsn;

  auto new_as = [&](int tier, geo::Region region) -> AsInfo& {
    AsInfo as;
    as.asn = next_asn++;
    as.tier = tier;
    as.region = region;
    as.prefix = wire::Ipv4Address{next_block};
    as.prefix_len = kAsPrefixLen;
    next_block += 1u << (32 - kAsPrefixLen);
    as_index_[as.asn] = ases_.size();
    next_host_addr_[as.asn] = 0;
    ip2as_.add(as.prefix, as.prefix_len, as.asn);
    ases_.push_back(std::move(as));
    return ases_.back();
  };

  // --- tier 1: global transit, full mesh -------------------------------
  std::vector<std::size_t> tier1;
  for (int i = 0; i < params.tier1_count; ++i) {
    AsInfo& as = new_as(1, geo::Region::Unknown);
    for (int r = 0; r < params.routers_per_tier1; ++r) add_router(as, params);
    // Intra-AS ring so every router pair is connected within two hops.
    for (std::size_t r = 0; r + 1 < as.routers.size(); ++r) {
      connect_routers(as.routers[r], as.routers[r + 1], make_link(rng_, 0.5, 3.0),
                      false, as.asn, as.asn);
    }
    if (as.routers.size() > 2) {
      connect_routers(as.routers.back(), as.routers.front(), make_link(rng_, 0.5, 3.0),
                      false, as.asn, as.asn);
    }
    tier1.push_back(as_index_[as.asn]);
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      AsInfo& a = ases_[tier1[i]];
      AsInfo& b = ases_[tier1[j]];
      connect_routers(a.routers[rng_.next_below(a.routers.size())],
                      b.routers[rng_.next_below(b.routers.size())],
                      make_link(rng_, 15.0, 50.0), true, a.asn, b.asn);
    }
  }

  // --- tier 2: regional transit -----------------------------------------
  std::map<geo::Region, std::vector<std::size_t>> tier2_by_region;
  for (const auto& [region, _] : kRegionShares) {
    for (int i = 0; i < params.tier2_per_region; ++i) {
      AsInfo& as = new_as(2, region);
      for (int r = 0; r < params.routers_per_tier2; ++r) add_router(as, params);
      for (std::size_t r = 0; r + 1 < as.routers.size(); ++r) {
        connect_routers(as.routers[r], as.routers[r + 1], make_link(rng_, 0.5, 2.5),
                        false, as.asn, as.asn);
      }
      // Uplinks into distinct tier-1 ASes.
      std::vector<std::size_t> uplinks = tier1;
      rng_.shuffle(uplinks);
      const auto n_up = std::min<std::size_t>(
          uplinks.size(), static_cast<std::size_t>(params.tier1_uplinks_per_tier2));
      for (std::size_t u = 0; u < n_up; ++u) {
        AsInfo& up = ases_[uplinks[u]];
        connect_routers(as.routers[rng_.next_below(as.routers.size())],
                        up.routers[rng_.next_below(up.routers.size())],
                        make_link(rng_, 8.0, 25.0), true, as.asn, up.asn);
      }
      tier2_by_region[region].push_back(as_index_[as.asn]);
    }
    // Occasional in-region peering between tier-2 networks.
    auto& regional = tier2_by_region[region];
    for (std::size_t i = 0; i < regional.size(); ++i) {
      for (std::size_t j = i + 1; j < regional.size(); ++j) {
        if (!rng_.bernoulli(params.tier2_peering_prob)) continue;
        AsInfo& a = ases_[regional[i]];
        AsInfo& b = ases_[regional[j]];
        connect_routers(a.routers[rng_.next_below(a.routers.size())],
                        b.routers[rng_.next_below(b.routers.size())],
                        make_link(rng_, 5.0, 15.0), true, a.asn, b.asn);
      }
    }
  }

  // --- tier 3: stub ASes, distributed per regional share ----------------
  std::vector<double> weights;
  for (const auto& [_, share] : kRegionShares) weights.push_back(share);
  std::vector<int> counts(std::size(kRegionShares), 1);  // at least 1 per region
  int assigned = static_cast<int>(std::size(kRegionShares));
  while (assigned < params.stub_count) {
    ++counts[rng_.weighted_index(weights)];
    ++assigned;
  }
  for (std::size_t ri = 0; ri < std::size(kRegionShares); ++ri) {
    const geo::Region region = kRegionShares[ri].region;
    for (int s = 0; s < counts[ri]; ++s) {
      AsInfo& as = new_as(3, region);
      for (int r = 0; r < params.routers_per_stub; ++r) add_router(as, params);
      for (std::size_t r = 0; r + 1 < as.routers.size(); ++r) {
        connect_routers(as.routers[r], as.routers[r + 1], make_link(rng_, 0.3, 2.0),
                        false, as.asn, as.asn);
      }
      auto& regional = tier2_by_region[region];
      std::vector<std::size_t> uplinks = regional;
      rng_.shuffle(uplinks);
      const auto n_up = std::min<std::size_t>(
          uplinks.size(), static_cast<std::size_t>(params.tier2_uplinks_per_stub));
      for (std::size_t u = 0; u < n_up; ++u) {
        AsInfo& up = ases_[uplinks[u]];
        connect_routers(as.routers[rng_.next_below(as.routers.size())],
                        up.routers[rng_.next_below(up.routers.size())],
                        make_link(rng_, 3.0, 12.0), true, as.asn, up.asn);
      }
    }
  }
}

const AsInfo& Internet::as_info(Asn asn) const {
  const auto it = as_index_.find(asn);
  if (it == as_index_.end()) throw std::out_of_range("unknown ASN");
  return ases_[it->second];
}

std::vector<Asn> Internet::stub_ases(geo::Region region) const {
  std::vector<Asn> out;
  for (const auto& as : ases_) {
    if (as.tier == 3 && as.region == region) out.push_back(as.asn);
  }
  return out;
}

std::vector<Asn> Internet::stub_ases() const {
  std::vector<Asn> out;
  for (const auto& as : ases_) {
    if (as.tier == 3) out.push_back(as.asn);
  }
  return out;
}

Internet::Attachment Internet::attach_host(Asn asn, std::unique_ptr<netsim::Host> host,
                                           const LinkParams& access) {
  const AsInfo& as = as_info(asn);
  if (as.routers.empty()) throw std::runtime_error("attach_host: AS has no routers");
  netsim::Host* raw = host.get();
  const NodeId host_id = net_.add_node(std::move(host));
  raw->set_address(allocate_address(asn));

  const NodeId router = as.routers[rng_.next_below(as.routers.size())];
  const auto [host_if, router_if] = net_.connect(host_id, router, access);

  Attachment attachment;
  attachment.host = host_id;
  attachment.router = router;
  attachment.router_if = router_if;
  attachment.host_if = host_if;
  attachment.asn = asn;
  attachments_[raw->address().value()] = attachment;
  return attachment;
}

const Internet::Attachment* Internet::attachment_of(wire::Ipv4Address host_addr) const {
  const auto it = attachments_.find(host_addr.value());
  return it == attachments_.end() ? nullptr : &it->second;
}

bool Internet::is_inter_as_interface(NodeId node, int if_index) const {
  const auto key =
      (static_cast<std::uint64_t>(node) << 32) | static_cast<std::uint32_t>(if_index);
  const auto it = inter_as_if_.find(key);
  return it != inter_as_if_.end() && it->second;
}

const std::vector<std::int32_t>& Internet::tree_toward(NodeId dest_router) {
  const auto it = trees_.find(dest_router);
  if (it != trees_.end()) return it->second;

  // BFS outward from the destination router. For each router reached from
  // `u` over an edge, the next hop toward the destination is the reverse
  // interface of that edge. adjacency_ stores, per node, (peer, if_on_node);
  // when expanding u via (v, if_u) we need v's interface back to u -- so the
  // relaxation iterates v's own adjacency entries instead.
  std::vector<std::int32_t> egress(net_.node_count(), kNoInterface);
  std::vector<char> visited(net_.node_count(), 0);
  std::deque<NodeId> frontier;
  visited[dest_router] = 1;
  frontier.push_back(dest_router);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto adj_it = adjacency_.find(u);
    if (adj_it == adjacency_.end()) continue;
    for (const auto& [v, if_u] : adj_it->second) {
      if (visited[v]) continue;
      // Down links are invisible to routing (links are symmetric, so
      // checking this side suffices).
      if (!net_.interface(u, if_u).up) continue;
      visited[v] = 1;
      // Find v's interface toward u.
      for (const auto& [w, if_v] : adjacency_.at(v)) {
        if (w == u) {
          egress[v] = if_v;
          break;
        }
      }
      frontier.push_back(v);
    }
  }
  return trees_.emplace(dest_router, std::move(egress)).first->second;
}

int Internet::route_oracle(NodeId at, wire::Ipv4Address dst) {
  NodeId dest_router = kInvalidNode;
  if (const Attachment* attachment = attachment_of(dst)) {
    if (at == attachment->router) return attachment->router_if;
    dest_router = attachment->router;
  } else {
    const NodeId node = net_.find_by_address(dst);
    if (node == kInvalidNode || !router_of_.contains(node)) return kNoInterface;
    dest_router = node;
  }
  const auto& tree = tree_toward(dest_router);
  if (at >= tree.size()) return kNoInterface;
  return tree[at];
}

}  // namespace ecnprobe::topology
