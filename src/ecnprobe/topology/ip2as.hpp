// IP-to-AS mapping. The paper attributes 59.1% of ECN-stripping locations
// to AS boundaries by mapping traceroute responder addresses to AS numbers
// -- "subject to the usual limitations of IP to AS mapping accuracy" (their
// ref [16], Zhang et al.). We reproduce both the mechanism and its
// fallibility: the table is built from ground-truth allocations, and an
// error rate can be injected to study how inference noise moves the
// boundary-attribution figure (ablation bench).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::topology {

using Asn = std::uint32_t;

class IpToAsMap {
public:
  /// Registers prefix/len -> asn.
  void add(wire::Ipv4Address prefix, int prefix_len, Asn asn);

  /// Longest-prefix-match lookup.
  std::optional<Asn> lookup(wire::Ipv4Address addr) const;

  std::size_t size() const { return entries_; }

  /// A derived map where a fraction of prefixes is remapped to a wrong,
  /// neighbouring AS -- the inference error model for the ablation study.
  IpToAsMap with_errors(double error_rate, util::Rng& rng) const;

private:
  // by_len_[len] maps masked prefix -> asn.
  std::map<std::uint32_t, Asn> by_len_[33];
  std::size_t entries_ = 0;
};

}  // namespace ecnprobe::topology
