#include "ecnprobe/geo/geo.hpp"

#include <algorithm>
#include <array>

namespace ecnprobe::geo {

std::string_view to_string(Region r) {
  switch (r) {
    case Region::Africa: return "Africa";
    case Region::Asia: return "Asia";
    case Region::Australia: return "Australia";
    case Region::Europe: return "Europe";
    case Region::NorthAmerica: return "North America";
    case Region::SouthAmerica: return "South America";
    case Region::Unknown: return "Unknown";
  }
  return "?";
}

std::span<const Region> all_regions() {
  static constexpr std::array<Region, kRegionCount> kAll = {
      Region::Africa,       Region::Asia,         Region::Australia, Region::Europe,
      Region::NorthAmerica, Region::SouthAmerica, Region::Unknown,
  };
  return kAll;
}

namespace {
std::uint32_t prefix_mask(int len) {
  if (len <= 0) return 0;
  if (len >= 32) return 0xffffffffu;
  return ~((1u << (32 - len)) - 1u);
}
}  // namespace

void GeoDatabase::add(wire::Ipv4Address prefix, int prefix_len, GeoRecord record) {
  prefix_len = std::clamp(prefix_len, 0, 32);
  by_len_[static_cast<std::size_t>(prefix_len)].push_back(
      Entry{prefix.value() & prefix_mask(prefix_len), std::move(record)});
  ++entries_;
}

std::optional<GeoRecord> GeoDatabase::lookup(wire::Ipv4Address addr) const {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_len_[static_cast<std::size_t>(len)];
    if (bucket.empty()) continue;
    const std::uint32_t masked = addr.value() & prefix_mask(len);
    for (const auto& entry : bucket) {
      if (entry.base == masked) return entry.record;
    }
  }
  return std::nullopt;
}

std::span<const CountryInfo> country_table() {
  // Weights are within-region shares; lat/lon are rough national centroids
  // with a scatter box sized to the country.
  static const std::array<CountryInfo, 36> kCountries = {{
      // Europe (paper: 1664 servers; pool heavily concentrated in DE/UK/FR/NL)
      {"de", Region::Europe, 51.0, 10.0, 3.0, 4.0, 0.22},
      {"uk", Region::Europe, 53.0, -1.5, 3.0, 2.5, 0.14},
      {"fr", Region::Europe, 46.5, 2.5, 3.5, 3.5, 0.11},
      {"nl", Region::Europe, 52.2, 5.5, 1.2, 1.5, 0.10},
      {"se", Region::Europe, 60.0, 15.0, 4.0, 3.0, 0.06},
      {"ch", Region::Europe, 46.8, 8.2, 1.0, 1.5, 0.05},
      {"pl", Region::Europe, 52.0, 19.0, 2.5, 3.5, 0.05},
      {"it", Region::Europe, 42.8, 12.5, 3.5, 2.5, 0.05},
      {"ru", Region::Europe, 55.7, 37.6, 4.0, 12.0, 0.05},
      {"es", Region::Europe, 40.3, -3.7, 3.0, 3.5, 0.04},
      {"fi", Region::Europe, 61.9, 25.7, 3.0, 3.0, 0.03},
      {"cz", Region::Europe, 49.8, 15.5, 1.0, 2.0, 0.03},
      {"at", Region::Europe, 47.5, 14.5, 1.0, 2.0, 0.03},
      {"dk", Region::Europe, 56.2, 9.5, 1.0, 2.0, 0.02},
      {"no", Region::Europe, 60.5, 8.5, 3.0, 3.0, 0.02},

      // North America (paper: 522)
      {"us", Region::NorthAmerica, 39.8, -98.6, 8.0, 22.0, 0.80},
      {"ca", Region::NorthAmerica, 49.5, -96.0, 4.0, 20.0, 0.16},
      {"mx", Region::NorthAmerica, 23.6, -102.5, 4.0, 6.0, 0.04},

      // Asia (paper: 190)
      {"jp", Region::Asia, 36.2, 138.3, 4.0, 4.0, 0.25},
      {"cn", Region::Asia, 35.9, 104.2, 8.0, 14.0, 0.17},
      {"in", Region::Asia, 20.6, 79.0, 7.0, 7.0, 0.12},
      {"sg", Region::Asia, 1.35, 103.8, 0.2, 0.2, 0.11},
      {"kr", Region::Asia, 36.5, 127.9, 1.5, 1.5, 0.10},
      {"hk", Region::Asia, 22.3, 114.2, 0.3, 0.3, 0.08},
      {"tw", Region::Asia, 23.7, 121.0, 1.2, 0.8, 0.07},
      {"id", Region::Asia, -2.5, 118.0, 5.0, 10.0, 0.05},
      {"th", Region::Asia, 15.9, 100.9, 4.0, 3.0, 0.05},

      // Australia / Oceania (paper: 68)
      {"au", Region::Australia, -25.3, 133.8, 10.0, 14.0, 0.82},
      {"nz", Region::Australia, -41.0, 174.0, 4.0, 3.0, 0.18},

      // South America (paper: 32)
      {"br", Region::SouthAmerica, -14.2, -51.9, 10.0, 10.0, 0.60},
      {"ar", Region::SouthAmerica, -38.4, -63.6, 8.0, 5.0, 0.20},
      {"cl", Region::SouthAmerica, -35.7, -71.5, 8.0, 1.5, 0.10},
      {"co", Region::SouthAmerica, 4.6, -74.1, 3.0, 3.0, 0.10},

      // Africa (paper: 22)
      {"za", Region::Africa, -30.6, 22.9, 5.0, 6.0, 0.55},
      {"ke", Region::Africa, -0.02, 37.9, 2.0, 2.0, 0.20},
      {"eg", Region::Africa, 26.8, 30.8, 3.0, 3.0, 0.25},
  }};
  return kCountries;
}

std::vector<const CountryInfo*> countries_in(Region region) {
  std::vector<const CountryInfo*> out;
  for (const auto& country : country_table()) {
    if (country.region == region) out.push_back(&country);
  }
  return out;
}

std::pair<double, double> sample_location(const CountryInfo& country, util::Rng& rng) {
  const double lat =
      country.latitude + rng.uniform(-country.lat_spread, country.lat_spread);
  const double lon =
      country.longitude + rng.uniform(-country.lon_spread, country.lon_spread);
  return {std::clamp(lat, -85.0, 85.0), std::clamp(lon, -180.0, 180.0)};
}

}  // namespace ecnprobe::geo
