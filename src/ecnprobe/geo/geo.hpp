// Geolocation of measurement targets. The paper locates its 2500 NTP pool
// servers with the MaxMind GeoLite2 City database (as of 25 April 2015) to
// produce Figure 1 (world map) and Table 1 (per-region counts). We build the
// same lookup structure -- a longest-prefix-match table from address blocks
// to (region, country, lat/lon) -- populated synthetically by the scenario
// module with the paper's regional distribution.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::geo {

/// The continental regions of the paper's Table 1.
enum class Region : std::uint8_t {
  Africa,
  Asia,
  Australia,  // the paper's label for Oceania
  Europe,
  NorthAmerica,
  SouthAmerica,
  Unknown,
};
inline constexpr std::size_t kRegionCount = 7;

std::string_view to_string(Region r);
std::span<const Region> all_regions();

struct GeoRecord {
  Region region = Region::Unknown;
  std::string country;  ///< ISO 3166-1 alpha-2, lower case ("uk" per pool zones)
  double latitude = 0.0;
  double longitude = 0.0;
};

/// Longest-prefix-match IP -> GeoRecord database (GeoLite2-City-like).
class GeoDatabase {
public:
  void add(wire::Ipv4Address prefix, int prefix_len, GeoRecord record);

  /// Longest matching prefix, or nullopt when the address is unmapped
  /// (Table 1's "Unknown" row).
  std::optional<GeoRecord> lookup(wire::Ipv4Address addr) const;

  std::size_t size() const { return entries_; }

private:
  struct Entry {
    std::uint32_t base;
    GeoRecord record;
  };
  // One sorted-by-insertion bucket per prefix length; lookup scans from the
  // most specific length down.
  std::vector<std::vector<Entry>> by_len_ = std::vector<std::vector<Entry>>(33);
  std::size_t entries_ = 0;
};

/// One synthetic country: where its servers cluster on the map and how much
/// of its region's pool it hosts. The weights are loosely modelled on the
/// 2015 NTP pool (Europe dominated by DE/UK/FR/NL; North America by US).
struct CountryInfo {
  std::string code;
  Region region;
  double latitude;    ///< country centroid
  double longitude;
  double lat_spread;  ///< servers scatter uniformly within +/- spread
  double lon_spread;
  double weight;      ///< share of the region's servers
};

/// The built-in country table used to synthesise the pool.
std::span<const CountryInfo> country_table();

/// Countries of one region, in table order.
std::vector<const CountryInfo*> countries_in(Region region);

/// Draws a plausible (lat, lon) for a server in `country`.
std::pair<double, double> sample_location(const CountryInfo& country, util::Rng& rng);

}  // namespace ecnprobe::geo
