#!/usr/bin/env python3
"""Render the paper's figures as PNGs from the bench harness's CSV output.

Usage:
    build/bench/bench_fig2_udp_reachability --csv=traces.csv
    scripts/plot_figures.py traces.csv out/

Produces matplotlib versions of Figures 2a, 2b, 3a, 3b, and 5 from the raw
per-trace CSV (the same file format `ecnprobe campaign` writes and
`ecnprobe analyze` reads). Requires matplotlib + pandas.
"""
import collections
import csv
import os
import sys


def load(path):
    traces = collections.OrderedDict()  # (vantage, index) -> list of rows
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            key = (row["vantage"], int(row["trace"]))
            traces.setdefault(key, []).append(row)
    return traces


def per_trace_stats(traces):
    out = []
    for (vantage, index), rows in traces.items():
        plain = sum(r["udp_plain"] == "1" for r in rows)
        ect = sum(r["udp_ect0"] == "1" for r in rows)
        both = sum(r["udp_plain"] == "1" and r["udp_ect0"] == "1" for r in rows)
        tcp = sum(r["tcp_resp"] == "1" for r in rows)
        ecn = sum(r["tcpecn_conn"] == "1" and r["tcpecn_negotiated"] == "1"
                  for r in rows)
        out.append(dict(
            vantage=vantage, index=index,
            fig2a=100.0 * both / plain if plain else 0.0,
            fig2b=100.0 * both / ect if ect else 0.0,
            tcp=tcp, ecn=ecn))
    return out


def per_server_differential(traces):
    plain = collections.Counter()
    plain_not_ect = collections.Counter()
    ect = collections.Counter()
    ect_not_plain = collections.Counter()
    for rows in traces.values():
        for r in rows:
            s = r["server"]
            if r["udp_plain"] == "1":
                plain[s] += 1
                if r["udp_ect0"] != "1":
                    plain_not_ect[s] += 1
            if r["udp_ect0"] == "1":
                ect[s] += 1
                if r["udp_plain"] != "1":
                    ect_not_plain[s] += 1
    servers = sorted(plain.keys() | ect.keys())
    fig3a = [100.0 * plain_not_ect[s] / plain[s] if plain[s] else 0.0
             for s in servers]
    fig3b = [100.0 * ect_not_plain[s] / ect[s] if ect[s] else 0.0
             for s in servers]
    return fig3a, fig3b


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    traces_path, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)
    traces = load(traces_path)
    stats = per_trace_stats(traces)

    def bar_figure(name, values, ylabel, ylim=None):
        fig, ax = plt.subplots(figsize=(10, 3))
        ax.bar(range(len(values)), values, width=0.8)
        ax.set_xlabel("trace")
        ax.set_ylabel(ylabel)
        if ylim:
            ax.set_ylim(*ylim)
        fig.tight_layout()
        fig.savefig(os.path.join(out_dir, name), dpi=150)
        plt.close(fig)
        print("wrote", os.path.join(out_dir, name))

    bar_figure("fig2a.png", [s["fig2a"] for s in stats],
               "% ECT(0)-reachable of not-ECT-reachable", (90, 100))
    bar_figure("fig2b.png", [s["fig2b"] for s in stats],
               "% not-ECT-reachable of ECT(0)-reachable", (90, 100))

    fig3a, fig3b = per_server_differential(traces)
    bar_figure("fig3a.png", fig3a, "differential reachability %  (plain, not ECT)")
    bar_figure("fig3b.png", fig3b, "differential reachability %  (ECT, not plain)")

    fig, ax = plt.subplots(figsize=(10, 3))
    xs = range(len(stats))
    ax.bar(xs, [s["tcp"] for s in stats], width=0.8, label="reachable via TCP")
    ax.bar(xs, [s["ecn"] for s in stats], width=0.8,
           label="negotiated ECN", color="tab:green")
    ax.set_xlabel("trace")
    ax.set_ylabel("web servers")
    ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig5.png"), dpi=150)
    print("wrote", os.path.join(out_dir, "fig5.png"))


if __name__ == "__main__":
    main()
