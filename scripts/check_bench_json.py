#!/usr/bin/env python3
"""Gate a freshly generated BENCH_*.json against the committed baseline.

Usage: check_bench_json.py GENERATED BASELINE [--max-regress=0.20]

Fails (exit 1) when either file is missing or malformed, or when any
*guarded* metric present in both files moved by more than --max-regress
relative to the baseline. Guarded metrics are machine-independent by
construction (speedup ratios, deterministic event/byte counts), so a CI
runner's absolute speed never trips the gate; unguarded raw-throughput
metrics are reported but never fail the build.

The generated file may carry a subset of the baseline's metrics (CI smoke
runs small presets); only the intersection is compared. See
docs/performance.md for the schema and the baseline-update workflow.
"""

import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        sys.exit(f"FAIL: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        sys.exit(f"FAIL: {path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or doc.get("schema") != 1:
        sys.exit(f"FAIL: {path}: expected schema 1 BENCH document")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        sys.exit(f"FAIL: {path}: no metrics")
    out = {}
    for m in metrics:
        if not isinstance(m, dict) or "name" not in m or "value" not in m:
            sys.exit(f"FAIL: {path}: malformed metric entry {m!r}")
        if not isinstance(m["value"], (int, float)) or isinstance(m["value"], bool):
            sys.exit(f"FAIL: {path}: non-numeric value in {m['name']}")
        out[m["name"]] = (float(m["value"]), bool(m.get("guarded", False)),
                          str(m.get("unit", "")))
    return doc.get("bench", "?"), out


def main(argv):
    max_regress = 0.20
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--max-regress="):
            max_regress = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(f"usage: {argv[0]} GENERATED BASELINE [--max-regress=F]")

    gen_name, gen = load(paths[0])
    base_name, base = load(paths[1])
    if gen_name != base_name:
        sys.exit(f"FAIL: bench name mismatch: generated={gen_name} baseline={base_name}")

    failures = []
    compared = 0
    for name, (base_value, base_guarded, base_unit) in sorted(base.items()):
        if name not in gen:
            continue  # smoke runs may generate a subset
        gen_value, _, _ = gen[name]
        if not base_guarded:
            print(f"  info    {name}: {gen_value:g} (baseline {base_value:g}, unguarded)")
            continue
        compared += 1
        # Deterministic counts (events, bytes, bools) must hold in both
        # directions -- any move is a behaviour change. Ratios ("x") only
        # fail when they drop: a faster machine is not a regression.
        two_sided = base_unit in ("events", "bytes", "bool")
        if base_value == 0.0:
            ok = gen_value == 0.0
            drift = float("inf") if not ok else 0.0
        else:
            signed = (gen_value - base_value) / abs(base_value)
            drift = abs(signed)
            ok = drift <= max_regress if two_sided else signed >= -max_regress
        status = "ok" if ok else "REGRESS"
        print(f"  {status:7s} {name}: {gen_value:g} vs baseline {base_value:g} "
              f"({drift * 100.0:.1f}% drift, limit {max_regress * 100.0:.0f}%)")
        if not ok:
            failures.append(name)

    if compared == 0:
        sys.exit(f"FAIL: no guarded metrics in common between {paths[0]} and {paths[1]}")
    if failures:
        sys.exit(f"FAIL: {gen_name}: guarded metric(s) regressed: {', '.join(failures)}")
    print(f"OK: {gen_name}: {compared} guarded metric(s) within {max_regress * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
