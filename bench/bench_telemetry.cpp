// Budgeted-telemetry bench: sketch/histogram fold throughput, and the
// memory contract the sketched mode exists for -- campaign telemetry
// state stays O(servers) (fixed sketches + budget-capped directory) while
// the trace count grows 10x. The guarded metrics are deterministic
// (byte/event counts and bound checks), so CI can gate them against
// BENCH_telemetry.json without caring how fast the runner is.
//
//   ./bench_telemetry [--scale=F] [--seed=N] [--bench-json=PATH]
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "ecnprobe/obs/telemetry.hpp"

namespace {

using namespace ecnprobe;

obs::TelemetryConfig bench_config(std::uint64_t seed) {
  obs::TelemetryConfig config;
  config.mode = obs::TelemetryMode::Sketched;
  config.epsilon = 0.001;
  config.delta = 0.01;
  config.sample_every = 64;
  return config.resolved(seed);
}

// Replays a synthetic campaign's drop stream through the recorder ->
// aggregate fold path: `traces` traces, each dropping at `servers`
// distinct nodes -- the exact shape that made the un-sketched label maps
// O(servers x traces). Returns the aggregate for inspection.
obs::TelemetryAggregate fold_campaign(const obs::TelemetryConfig& config, int traces,
                                      int servers) {
  obs::TelemetryAggregate aggregate(config);
  obs::TelemetryRecorder recorder;
  recorder.arm(config);
  for (int trace = 0; trace < traces; ++trace) {
    recorder.begin_trace(trace);
    for (int s = 0; s < servers; ++s) {
      recorder.on_drop("policy", s % 3 == 0 ? "ect-udp-filter" : "probe-timeout",
                       "10." + std::to_string(s / 250) + "." +
                           std::to_string(s / 50 % 5) + "." + std::to_string(s % 50));
      recorder.observe_rtt(util::SimDuration::from_seconds(
          0.001 * static_cast<double>(1 + (trace * 31 + s) % 400)));
    }
    aggregate.fold(recorder.collect_delta());
  }
  return aggregate;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("budgeted telemetry (sketched mode)", config, params);

  const auto telemetry = bench_config(config.seed);
  const int servers = params.server_count;

  // -- fold throughput (wall-clock, unguarded) -----------------------------
  constexpr int kThroughputTraces = 200;
  bench::Stopwatch fold_clock;
  const auto base = fold_campaign(telemetry, kThroughputTraces, servers);
  const double fold_seconds = fold_clock.seconds();
  const double events = static_cast<double>(base.counts().total());
  std::printf("  fold: %d traces x %d servers -> %.0f sketch updates in %.3fs "
              "(%.2fM updates/s)\n",
              kThroughputTraces, servers, events, fold_seconds,
              events / fold_seconds / 1e6);

  // -- memory flatness: 10x the traces, same telemetry footprint -----------
  const auto big = fold_campaign(telemetry, 10 * kThroughputTraces, servers);
  const double base_bytes = static_cast<double>(base.memory_bytes());
  const double big_bytes = static_cast<double>(big.memory_bytes());
  // Fixed sketches dominate; the tracked-key directory is bounded by the
  // budget, so 10x traces must not grow telemetry by more than 5%.
  const bool flat = big_bytes <= base_bytes * 1.05;
  std::printf("  memory: %.0f bytes @ %d traces, %.0f bytes @ %d traces (flat: %s)\n",
              base_bytes, kThroughputTraces, big_bytes, 10 * kThroughputTraces,
              flat ? "yes" : "NO");

  // -- error contract on the replayed stream -------------------------------
  // Exact truth for the per-cause keys is knowable in closed form here.
  std::map<std::string, std::uint64_t> truth;
  for (int trace = 0; trace < kThroughputTraces; ++trace) {
    for (int s = 0; s < servers; ++s) {
      truth[s % 3 == 0 ? "cause:policy/ect-udp-filter" : "cause:policy/probe-timeout"]++;
    }
  }
  bool bounds_hold = true;
  for (const auto& [key, count] : truth) {
    const auto estimate = base.estimate(key);
    if (estimate < count || estimate > count + base.error_bound()) bounds_hold = false;
  }
  std::printf("  bounds: exact <= estimate <= exact + %llu on the cause keys (%s)\n",
              static_cast<unsigned long long>(base.error_bound()),
              bounds_hold ? "hold" : "VIOLATED");
  std::printf("  budget: %zu used / %zu peak, %llu keys tracked, %llu untracked\n",
              big.budget().used(), big.budget().peak(),
              static_cast<unsigned long long>(big.tracked_keys().size()),
              static_cast<unsigned long long>(big.untracked_keys()));

  if (!config.bench_json.empty()) {
    bench::BenchJson json("telemetry");
    json.add("fold_updates_per_sec", events / fold_seconds, "updates/s", false);
    json.add("sketch_memory_bytes", base_bytes, "bytes", true);
    json.add("memory_flat_at_10x_traces", flat ? 1.0 : 0.0, "bool", true);
    json.add("error_bounds_hold", bounds_hold ? 1.0 : 0.0, "bool", true);
    json.add("rtt_samples", static_cast<double>(base.rtt().count()), "events", true);
    if (!json.write(config.bench_json)) return 1;
  }
  return bounds_hold && flat ? 0 : 1;
}
