// Shared plumbing for the figure/table reproduction benches: command-line
// scaling, world construction, campaign execution with wall-clock reporting,
// and paper-vs-measured comparison lines.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::bench {

struct BenchConfig {
  double scale = 1.0;     ///< world + campaign scale (1.0 = paper scale)
  std::uint64_t seed = 42;
  std::string csv_path;   ///< optional raw-results dump
  std::string bench_json; ///< optional machine-readable metrics output
};

/// Parses --scale=F --seed=N --csv=PATH --bench-json=PATH; ECNPROBE_SCALE
/// env overrides the default scale (used to shrink CI runs).
inline BenchConfig parse_args(int argc, char** argv) {
  BenchConfig config;
  if (const char* env = std::getenv("ECNPROBE_SCALE")) config.scale = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) config.scale = std::atof(arg.c_str() + 8);
    else if (arg.rfind("--seed=", 0) == 0)
      config.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    else if (arg.rfind("--csv=", 0) == 0) config.csv_path = arg.substr(6);
    else if (arg.rfind("--bench-json=", 0) == 0) config.bench_json = arg.substr(13);
    else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--scale=F] [--seed=N] [--csv=PATH] [--bench-json=PATH]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  if (config.scale <= 0.0 || config.scale > 1.0) config.scale = 1.0;
  return config;
}

/// Extracts `--bench-json=PATH` from argv and removes it, so the remaining
/// arguments can be handed to a strict parser (google-benchmark's
/// Initialize rejects flags it does not know). Returns "" when absent.
inline std::string take_bench_json_arg(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-json=", 0) == 0) {
      path = arg.substr(13);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Accumulates named metrics and writes the BENCH_*.json format consumed by
/// scripts/check_bench_json.py. Schema (stable field order, one metric per
/// line, so diffs against the committed baselines stay readable):
///
///   {
///     "bench": "<name>",
///     "schema": 1,
///     "metrics": [
///       {"name": "...", "value": 1.5, "unit": "...", "guarded": true},
///       ...
///     ]
///   }
///
/// `guarded` marks metrics that are machine-independent (ratios, byte
/// counts, event counts): CI fails when a guarded metric regresses by more
/// than 20% against the committed baseline. Raw wall-clock throughput is
/// recorded but unguarded -- it varies with the host.
class BenchJson {
public:
  explicit BenchJson(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(const std::string& name, double value, const std::string& unit,
           bool guarded = false) {
    metrics_.push_back({name, value, unit, guarded});
  }

  /// Attaches a self-profiler report (obs::Profiler::to_json()). Emitted as
  /// a top-level "unguarded_profile" member -- check_bench_json.py reads
  /// only "metrics", so the profile is visible in the artifact but can
  /// never participate in guarded-drift gating (wall-clock timings measure
  /// the host, not the code).
  void set_profile_json(std::string profile_json) {
    profile_json_ = std::move(profile_json);
  }

  /// Writes the report to `path`; "-" streams it to stdout.
  bool write(const std::string& path) const {
    const bool to_stdout = path == "-";
    std::FILE* f = to_stdout ? stdout : std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema\": 1,\n", bench_.c_str());
    if (!profile_json_.empty()) {
      std::fprintf(f, "  \"unguarded_profile\": %s,\n", profile_json_.c_str());
    }
    std::fprintf(f, "  \"metrics\": [\n");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const auto& m = metrics_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                      "\"guarded\": %s}%s\n",
                   m.name.c_str(), m.value, m.unit.c_str(),
                   m.guarded ? "true" : "false",
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (to_stdout) {
      std::fflush(f);
    } else {
      std::fclose(f);
      std::printf("bench metrics written to %s\n", path.c_str());
    }
    return true;
  }

private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
    bool guarded;
  };
  std::string bench_;
  std::string profile_json_;
  std::vector<Metric> metrics_;
};

inline scenario::WorldParams world_params(const BenchConfig& config) {
  auto params = scenario::WorldParams::paper().scaled(config.scale);
  params.seed = config.seed;
  return params;
}

/// The paper's 210-trace layout, scaled along with the world.
inline measure::CampaignPlan campaign_plan(const BenchConfig& config) {
  auto scaled = [&](int n) {
    const int v = static_cast<int>(n * config.scale + 0.5);
    return v < 1 ? 1 : v;
  };
  return measure::CampaignPlan::paper_layout(scaled(9), scaled(12), scaled(14));
}

class Stopwatch {
public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const char* title, const BenchConfig& config,
                         const scenario::WorldParams& params) {
  std::printf("=== %s ===\n", title);
  std::printf("scale=%.3g seed=%llu servers=%d stub-ASes=%d\n\n", config.scale,
              static_cast<unsigned long long>(config.seed), params.server_count,
              params.topology.stub_count);
}

inline void compare(const char* label, double measured, double paper,
                    const char* unit = "") {
  std::printf("  %-44s measured %10.2f%s   paper %10.2f%s\n", label, measured, unit,
              paper, unit);
}

}  // namespace ecnprobe::bench
