// Shared plumbing for the figure/table reproduction benches: command-line
// scaling, world construction, campaign execution with wall-clock reporting,
// and paper-vs-measured comparison lines.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::bench {

struct BenchConfig {
  double scale = 1.0;     ///< world + campaign scale (1.0 = paper scale)
  std::uint64_t seed = 42;
  std::string csv_path;   ///< optional raw-results dump
};

/// Parses --scale=F --seed=N --csv=PATH; ECNPROBE_SCALE env overrides the
/// default scale (used to shrink CI runs).
inline BenchConfig parse_args(int argc, char** argv) {
  BenchConfig config;
  if (const char* env = std::getenv("ECNPROBE_SCALE")) config.scale = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) config.scale = std::atof(arg.c_str() + 8);
    else if (arg.rfind("--seed=", 0) == 0)
      config.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    else if (arg.rfind("--csv=", 0) == 0) config.csv_path = arg.substr(6);
    else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--scale=F] [--seed=N] [--csv=PATH]\n", argv[0]);
      std::exit(0);
    }
  }
  if (config.scale <= 0.0 || config.scale > 1.0) config.scale = 1.0;
  return config;
}

inline scenario::WorldParams world_params(const BenchConfig& config) {
  auto params = scenario::WorldParams::paper().scaled(config.scale);
  params.seed = config.seed;
  return params;
}

/// The paper's 210-trace layout, scaled along with the world.
inline measure::CampaignPlan campaign_plan(const BenchConfig& config) {
  auto scaled = [&](int n) {
    const int v = static_cast<int>(n * config.scale + 0.5);
    return v < 1 ? 1 : v;
  };
  return measure::CampaignPlan::paper_layout(scaled(9), scaled(12), scaled(14));
}

class Stopwatch {
public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const char* title, const BenchConfig& config,
                         const scenario::WorldParams& params) {
  std::printf("=== %s ===\n", title);
  std::printf("scale=%.3g seed=%llu servers=%d stub-ASes=%d\n\n", config.scale,
              static_cast<unsigned long long>(config.seed), params.server_count,
              params.topology.stub_count);
}

inline void compare(const char* label, double measured, double paper,
                    const char* unit = "") {
  std::printf("  %-44s measured %10.2f%s   paper %10.2f%s\n", label, measured, unit,
              paper, unit);
}

}  // namespace ecnprobe::bench
