// Figure 6: ECN-with-TCP adoption over time. Plots the prior studies the
// paper cites together with this campaign's measured negotiation rate and a
// logistic growth fit.
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/analysis/trend.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Figure 6: trends in ECN TCP capability", config, params);

  // A light campaign (one trace per vantage) suffices for the single
  // "measured" data point.
  scenario::World world(params);
  const auto plan = measure::CampaignPlan::paper_layout(1, 0, 1);
  std::printf("measuring the 2015 point with %d traces...\n", plan.total_traces());
  bench::Stopwatch timer;
  const auto traces = world.run_campaign(plan);
  const auto summary = analysis::summarize_reachability(traces);
  std::printf("measured ECN negotiation rate: %.2f%% (%.1fs)\n\n",
              summary.pct_tcp_negotiating_ecn, timer.seconds());

  const auto points = analysis::trend_with_measurement(summary.pct_tcp_negotiating_ecn);
  std::printf("%s\n", analysis::render_figure6(points).c_str());

  std::printf("comparison:\n");
  bench::compare("measured 2015 negotiation rate", summary.pct_tcp_negotiating_ecn,
                 82.0, "%");
  const auto fit = analysis::fit_trend(points);
  bench::compare("fit residual at 2015.6 (measured - curve)",
                 summary.pct_tcp_negotiating_ecn - fit.predict(2015.6), 0.0, "pp");
  return 0;
}
