// Supervisor cost and payoff. Two questions, answered on the scaled paper
// campaign:
//
//   1. Overhead: what does routing every probe step through the
//      TraceSupervisor cost versus the inline retry loop? Measured by
//      running a clean campaign under the paper-fixed default (inline
//      path) and under a "neutral" backoff config whose schedule is
//      arithmetically identical (factor 1, no jitter) -- same probes, same
//      bytes, supervisor machinery engaged.
//   2. Payoff: on a blackhole-heavy plan, how much does a circuit-breakered
//      campaign save by routing around dead servers? Reported in wall
//      seconds, simulator events, and simulated time, with the skip count
//      cross-checked against the drop ledger's circuit-open attributions.
//
//   bench_retry_policy [--scale=F] [--seed=N]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ecnprobe/chaos/fault_plan.hpp"
#include "ecnprobe/measure/results.hpp"

namespace {

std::string traces_csv(const std::vector<ecnprobe::measure::Trace>& traces) {
  std::ostringstream os;
  ecnprobe::measure::write_traces_csv(os, traces);
  return os.str();
}

struct RunResult {
  double seconds = 0.0;
  std::size_t sim_events = 0;
  double sim_seconds = 0.0;
  std::uint64_t circuit_open = 0;
  std::string csv;
};

RunResult run(const ecnprobe::scenario::WorldParams& params,
              const ecnprobe::measure::CampaignPlan& plan,
              const ecnprobe::measure::ProbeOptions& probe) {
  using namespace ecnprobe;
  bench::Stopwatch timer;
  scenario::World world(params);
  const auto traces = world.run_campaign(plan, probe);
  RunResult result;
  result.seconds = timer.seconds();
  result.sim_events = world.sim().events_processed();
  result.sim_seconds = world.sim().now().to_seconds();
  result.circuit_open = world.campaign_obs().ledger.drops_for_cause("circuit-open");
  result.csv = traces_csv(traces);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Retry policy: supervisor overhead and breaker payoff", config,
                      params);
  const auto plan = bench::campaign_plan(config);
  std::printf("plan: %d traces, %d servers\n\n", plan.total_traces(),
              params.server_count);

  // -- overhead: inline loop vs supervisor with an identical schedule ------
  const auto inline_run = run(params, plan, {});

  measure::ProbeOptions neutral;
  neutral.sched.retry.kind = sched::RetryPolicy::Kind::Backoff;
  neutral.sched.retry.backoff_factor = 1.0;  // 5 x 1s: the paper schedule
  neutral.sched.retry.jitter = 0.0;
  const auto supervised = run(params, plan, neutral);

  std::printf("clean campaign:\n");
  std::printf("  %-34s %8.2fs  %12zu events\n", "inline retry loop (paper default)",
              inline_run.seconds, inline_run.sim_events);
  std::printf("  %-34s %8.2fs  %12zu events  (overhead %+.1f%%)\n",
              "supervisor, neutral backoff", supervised.seconds, supervised.sim_events,
              inline_run.seconds > 0.0
                  ? 100.0 * (supervised.seconds - inline_run.seconds) / inline_run.seconds
                  : 0.0);
  const bool same_bytes = supervised.csv == inline_run.csv;
  std::printf("  results byte-identical: %s\n\n", same_bytes ? "yes" : "NO");

  // -- payoff: blackhole-heavy with and without breakers -------------------
  auto dark = params;
  const auto faults = chaos::FaultPlan::parse("blackhole-heavy");
  if (!faults) {
    std::fprintf(stderr, "cannot parse blackhole-heavy: %s\n",
                 faults.error().message.c_str());
    return 1;
  }
  dark.faults = *faults;
  const auto undefended = run(dark, plan, {});

  measure::ProbeOptions defended;
  defended.sched.breaker.enabled = true;
  defended.sched.breaker.failure_threshold = 2;
  defended.sched.breaker.half_open_after = 4;
  defended.sched.watchdog.deadline = util::SimDuration::seconds(30);
  const auto breakered = run(dark, plan, defended);

  std::printf("blackhole-heavy campaign (%.0f%% of the pool dead):\n",
              dark.faults.blackhole_server_fraction * 100.0);
  std::printf("  %-34s %8.2fs  %12zu events  %10.1f sim-s\n", "no supervision",
              undefended.seconds, undefended.sim_events, undefended.sim_seconds);
  std::printf("  %-34s %8.2fs  %12zu events  %10.1f sim-s\n", "breakers + watchdog",
              breakered.seconds, breakered.sim_events, breakered.sim_seconds);
  std::printf("  sim-event reduction: %.1f%%   sim-time reduction: %.1f%%\n",
              undefended.sim_events > 0
                  ? 100.0 * (1.0 - static_cast<double>(breakered.sim_events) /
                                       static_cast<double>(undefended.sim_events))
                  : 0.0,
              undefended.sim_seconds > 0.0
                  ? 100.0 * (1.0 - breakered.sim_seconds / undefended.sim_seconds)
                  : 0.0);
  std::printf("  skipped probes attributed circuit-open: %llu\n",
              static_cast<unsigned long long>(breakered.circuit_open));

  bool ok = true;
  if (!same_bytes) {
    std::printf("\nFAIL: neutral supervisor changed the campaign bytes\n");
    ok = false;
  }
  if (breakered.sim_events >= undefended.sim_events) {
    std::printf("\nFAIL: breakers did not reduce simulator work\n");
    ok = false;
  }
  if (breakered.circuit_open == 0) {
    std::printf("\nFAIL: breakers fired no circuit-open attributions\n");
    ok = false;
  }
  if (ok) std::printf("\nsupervisor overhead bounded, breaker payoff confirmed\n");
  return ok ? 0 : 1;
}
