// Ablation: the paper's alternate explanation for hops that only sometimes
// strip ECN marks -- "route changes, causing the middlebox that drops
// ECT(0) marked packets to be bypassed in some cases" (Section 4.1; the
// same ambiguity applies to bleaching in Section 4.2). We build it: a stub
// network with two uplinks, a deterministic (always-on) bleacher on the
// primary, and a routing flap between traceroute repetitions. The observed
// per-hop behaviour is then compared against a genuinely probabilistic
// bleacher on a stable path -- the two mechanisms the paper cannot tell
// apart from outside.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "ecnprobe/analysis/hops.hpp"

namespace {

using namespace ecnprobe;

struct Observed {
  std::uint64_t hops = 0;
  std::uint64_t always_strip = 0;
  std::uint64_t sometimes_strip = 0;
};

Observed observe(scenario::World& world, const std::string& vantage_name,
                 wire::Ipv4Address target, int reps,
                 const std::function<void(int)>& between_reps) {
  std::vector<measure::TracerouteObservation> observations;
  auto& vantage = world.vantage(vantage_name);
  for (int rep = 0; rep < reps; ++rep) {
    between_reps(rep);
    traceroute::TracerouteOptions options;
    options.timeout = util::SimDuration::millis(300);
    bool done = false;
    vantage.tracer().trace(target, options, [&](const traceroute::PathRecord& record) {
      measure::TracerouteObservation obs;
      obs.vantage = vantage_name;
      obs.repetition = rep;
      obs.path = record;
      observations.push_back(std::move(obs));
      done = true;
    });
    world.sim().run();
    if (!done) break;
  }
  const auto analysis = analysis::analyze_hops(observations, world.ip2as());
  return {analysis.total_hops, analysis.strip_hops - analysis.sometimes_strip,
          analysis.sometimes_strip};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  std::printf("=== Ablation: route flaps vs probabilistic bleaching ===\n");
  std::printf("(both produce 'sometimes strips'; the paper cannot distinguish them)\n\n");

  auto params = scenario::WorldParams::small(config.seed);
  params.server_count = 8;
  params.offline_prob = 0.0;
  params.greylist_flaky_prob = 0.0;
  params.greylist_dead_prob = 0.0;
  params.bleach_inter_as_links = 0;
  params.bleach_intra_as_links = 0;
  params.ect_udp_firewalled_servers = 0;
  params.ect_required_servers = 0;
  params.ec2_sensitive_servers = 0;
  // Deterministic traceroutes: every router answers.
  params.topology.icmp_response_prob_min = 1.0;
  params.topology.icmp_response_prob_max = 1.0;

  constexpr int kReps = 12;

  // --- Mechanism A: deterministic bleacher + routing flap ----------------
  {
    scenario::World world(params);
    const auto& server = world.servers()[0];
    const auto stub_asn = server.attachment.asn;
    // The stub's two uplinks (tier2_uplinks_per_stub = 2).
    std::vector<const topology::InterAsLink*> uplinks;
    for (const auto& link : world.internet().inter_as_links()) {
      if (link.asn_a == stub_asn || link.asn_b == stub_asn) uplinks.push_back(&link);
    }
    if (uplinks.size() < 2) {
      std::printf("world has no dual-homed stub; rerun with another seed\n");
      return 0;
    }
    // Always-on bleacher on uplink 0, both directions.
    world.net().add_egress_policy(uplinks[0]->a.node, uplinks[0]->a.if_index,
                                  std::make_shared<netsim::EcnBleachPolicy>(1.0));
    world.net().add_egress_policy(uplinks[0]->b.node, uplinks[0]->b.if_index,
                                  std::make_shared<netsim::EcnBleachPolicy>(1.0));

    const auto flap = [&](int rep) {
      // Odd repetitions: take the bleached uplink down, forcing the clean
      // alternate route; even repetitions restore it.
      const bool down = rep % 2 == 1;
      world.net().set_link_up(uplinks[0]->a.node, uplinks[0]->a.if_index, !down);
      world.internet().invalidate_routes();
    };
    const auto observed =
        observe(world, "UGla wired", server.address, kReps, flap);
    std::printf("route-flap world:      %4zu hops, %3zu always-strip, %3zu "
                "sometimes-strip  <- deterministic bleacher, flapping route\n",
                static_cast<std::size_t>(observed.hops),
                static_cast<std::size_t>(observed.always_strip),
                static_cast<std::size_t>(observed.sometimes_strip));
  }

  // --- Mechanism B: probabilistic bleacher on a stable route -------------
  {
    scenario::World world(params);
    const auto& server = world.servers()[0];
    const auto stub_asn = server.attachment.asn;
    std::vector<const topology::InterAsLink*> uplinks;
    for (const auto& link : world.internet().inter_as_links()) {
      if (link.asn_a == stub_asn || link.asn_b == stub_asn) uplinks.push_back(&link);
    }
    // Kill the second uplink so the route is stable, and bleach the first
    // with p = 0.5.
    if (uplinks.size() >= 2) {
      world.net().set_link_up(uplinks[1]->a.node, uplinks[1]->a.if_index, false);
      world.internet().invalidate_routes();
    }
    world.net().add_egress_policy(uplinks[0]->a.node, uplinks[0]->a.if_index,
                                  std::make_shared<netsim::EcnBleachPolicy>(0.5));
    world.net().add_egress_policy(uplinks[0]->b.node, uplinks[0]->b.if_index,
                                  std::make_shared<netsim::EcnBleachPolicy>(0.5));
    const auto observed =
        observe(world, "UGla wired", server.address, kReps, [](int) {});
    std::printf("probabilistic world:   %4zu hops, %3zu always-strip, %3zu "
                "sometimes-strip  <- p=0.5 bleacher, stable route\n",
                static_cast<std::size_t>(observed.hops),
                static_cast<std::size_t>(observed.always_strip),
                static_cast<std::size_t>(observed.sometimes_strip));
  }

  std::printf("\nBoth worlds produce hops classified 'sometimes strip' by the\n"
              "paper's methodology. Distinguishing them requires either observing\n"
              "the responder *sequence* change (route flap alters the hop list) or\n"
              "per-window correlation -- neither of which the 125-hop statistic\n"
              "captures. The paper's 'further study is needed' is exactly right.\n");
  return 0;
}
