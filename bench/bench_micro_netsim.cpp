// Micro-benchmarks of the simulation engine: event throughput, end-to-end
// datagram forwarding, policy overhead, and full four-way probe cost --
// the numbers that size a paper-scale campaign run.
//
// Two modes:
//   bench_micro_netsim [google-benchmark flags]   interactive tables
//   bench_micro_netsim --bench-json=PATH          BENCH_netsim.json metrics,
//     including the calendar-vs-heap scheduler comparison the performance
//     trajectory is pinned on (docs/performance.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <utility>

#include "bench_common.hpp"
#include "ecnprobe/measure/probe.hpp"
#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/netsim/router.hpp"
#include "ecnprobe/ntp/ntp.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace {

using namespace ecnprobe;
using namespace ecnprobe::util::literals;

void BM_EventScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    netsim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(util::SimDuration::micros(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventScheduleRun);

// One UDP datagram across an N-router chain, including ICMP-free forwarding
// and delivery.
void BM_ChainForwarding(benchmark::State& state) {
  const int n_routers = static_cast<int>(state.range(0));
  netsim::Simulator sim;
  netsim::Network net(sim, util::Rng(1));

  auto host_a = std::make_unique<netsim::Host>("a", netsim::Host::Params{}, util::Rng(2));
  auto host_b = std::make_unique<netsim::Host>("b", netsim::Host::Params{}, util::Rng(3));
  netsim::Host* a = host_a.get();
  netsim::Host* b = host_b.get();
  const auto ida = net.add_node(std::move(host_a));
  std::vector<netsim::NodeId> routers;
  netsim::NodeId prev = ida;
  for (int i = 0; i < n_routers; ++i) {
    auto router = std::make_unique<netsim::Router>(
        "r", netsim::Router::Params{}, util::Rng(10 + static_cast<unsigned>(i)));
    const auto id = net.add_node(std::move(router));
    net.node(id).set_address(wire::Ipv4Address(12, 0, 1, static_cast<std::uint8_t>(i)));
    net.connect(prev, id, netsim::LinkParams{});
    routers.push_back(id);
    prev = id;
  }
  const auto idb = net.add_node(std::move(host_b));
  a->set_address(wire::Ipv4Address(10, 0, 0, 1));
  b->set_address(wire::Ipv4Address(11, 0, 0, 1));
  net.connect(prev, idb, netsim::LinkParams{});
  net.set_routing_oracle([&](netsim::NodeId at, wire::Ipv4Address dst) -> int {
    (void)at;
    return dst == b->address() ? 1 : 0;
  });
  auto sink = b->open_udp(9);

  const std::vector<std::uint8_t> payload(48, 0);
  for (auto _ : state) {
    auto socket = a->open_udp();
    socket->send(b->address(), 9, payload, wire::Ecn::Ect0);
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (n_routers + 1));
}
BENCHMARK(BM_ChainForwarding)->Arg(4)->Arg(16);

void BM_PolicyChainApplication(benchmark::State& state) {
  netsim::EcnBleachPolicy bleach(0.5);
  netsim::EctUdpDropPolicy drop(0.0);  // match but never drop
  netsim::TosSensitiveDropPolicy tos(0.0);
  util::Rng rng(7);
  auto dgram = wire::make_udp_datagram(wire::Ipv4Address(1, 1, 1, 1),
                                       wire::Ipv4Address(2, 2, 2, 2), 1, 2,
                                       std::vector<std::uint8_t>(48, 0),
                                       wire::Ecn::Ect0);
  for (auto _ : state) {
    auto copy = dgram;
    benchmark::DoNotOptimize(bleach.apply(copy, rng));
    benchmark::DoNotOptimize(drop.apply(copy, rng));
    benchmark::DoNotOptimize(tos.apply(copy, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_PolicyChainApplication);

// Full four-way probe of one server through the small calibrated world --
// the unit of campaign work.
void BM_FourWayServerProbe(benchmark::State& state) {
  auto params = scenario::WorldParams::small(77);
  params.server_count = 16;
  params.offline_prob = 0.0;
  scenario::World world(params);
  auto& vantage = world.vantage("UGla wired");
  std::size_t cursor = 0;
  for (auto _ : state) {
    const auto server = world.server_addresses()[cursor++ % 16];
    bool done = false;
    measure::probe_server(vantage, server, measure::ProbeOptions{},
                          [&](const measure::ServerResult&) { done = true; });
    world.sim().run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FourWayServerProbe);

// World construction cost at increasing scale.
void BM_WorldBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto params = scenario::WorldParams::paper().scaled(
        static_cast<double>(state.range(0)) / 100.0);
    scenario::World world(params);
    benchmark::DoNotOptimize(world.net().node_count());
  }
}
BENCHMARK(BM_WorldBuild)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

// -- --bench-json mode --------------------------------------------------------

/// Steady-state timer throughput through one scheduling path, at the event
/// population a sharded paper-scale campaign sustains (hundreds of
/// thousands of concurrent timers at the 100us..50ms pacing/link/retry
/// timescales). `legacy` selects the seed's hot path -- the binary heap
/// with a heap-allocated cancellation control block per event (schedule());
/// otherwise the overhauled path runs: calendar queue + the allocation-free
/// post() fast path packet delivery uses. Returns events/second.
double timer_events_per_sec(bool legacy, std::uint64_t budget) {
  netsim::Simulator sim(legacy ? netsim::SchedulerKind::LegacyHeap
                               : netsim::SchedulerKind::Calendar);

  util::Rng rng(7);
  std::vector<util::SimDuration> delays;
  for (int i = 0; i < 1024; ++i) {
    delays.push_back(util::SimDuration::nanos(
        100'000 + static_cast<std::int64_t>(rng.next_below(49'900'000))));
  }

  // Self-rescheduling timer state shared by reference: the per-event
  // closure is one pointer, so it rides the schedulers' inline storage on
  // both paths and the comparison isolates the scheduling machinery itself.
  struct TickState {
    netsim::Simulator& sim;
    const std::vector<util::SimDuration>& delays;
    std::uint64_t remaining;
    std::uint64_t cursor = 0;
    bool legacy;
    void fire() {
      if (remaining == 0) return;
      --remaining;
      const auto delay = delays[cursor++ & 1023];
      if (legacy) {
        (void)sim.schedule(delay, [this] { fire(); });
      } else {
        sim.post(delay, [this] { fire(); });
      }
    }
  };
  TickState tick{sim, delays, budget, 0, legacy};
  // ~50k concurrent timers is what one campaign shard sustains mid-trace;
  // the calendar's edge peaks here (2x+) and narrows past ~500k pending,
  // where the 200-byte events outgrow the cache (docs/performance.md).
  constexpr int kTimers = 50'000;
  for (int i = 0; i < kTimers; ++i) {
    const auto delay = delays[static_cast<std::size_t>(i) & 1023];
    if (legacy) {
      (void)sim.schedule(delay, [&tick] { tick.fire(); });
    } else {
      sim.post(delay, [&tick] { tick.fire(); });
    }
  }

  const bench::Stopwatch timer;
  sim.run();
  const double seconds = timer.seconds();
  return seconds > 0.0 ? static_cast<double>(sim.events_processed()) / seconds : 0.0;
}

/// Full four-way probes through the small calibrated world; returns
/// {probes/sec, sim events per probe}. The event count is a pure function
/// of the seed -- machine-independent, so it is a guarded metric.
std::pair<double, double> probe_throughput(int probes) {
  auto params = scenario::WorldParams::small(77);
  params.server_count = 16;
  params.offline_prob = 0.0;
  scenario::World world(params);
  auto& vantage = world.vantage("UGla wired");
  const auto servers = world.server_addresses();
  const std::uint64_t events_before = world.sim().events_processed();
  const bench::Stopwatch timer;
  for (int i = 0; i < probes; ++i) {
    measure::probe_server(vantage, servers[static_cast<std::size_t>(i) % servers.size()],
                          measure::ProbeOptions{}, [](const measure::ServerResult&) {});
    world.sim().run();
  }
  const double seconds = timer.seconds();
  const auto events = world.sim().events_processed() - events_before;
  return {seconds > 0.0 ? probes / seconds : 0.0,
          static_cast<double>(events) / probes};
}

int run_bench_json(const std::string& path) {
  constexpr std::uint64_t kBudget = 1'000'000;
  // Best-of-three: these ratios gate CI, so squeeze scheduler noise out.
  double overhauled = 0.0, legacy = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    overhauled = std::max(overhauled, timer_events_per_sec(/*legacy=*/false, kBudget));
    legacy = std::max(legacy, timer_events_per_sec(/*legacy=*/true, kBudget));
  }
  const auto [probes_per_sec, events_per_probe] = probe_throughput(400);

  bench::BenchJson json("netsim");
  json.add("sim_events_per_sec_calendar", overhauled, "events/s");
  json.add("sim_events_per_sec_legacy", legacy, "events/s");
  json.add("calendar_vs_legacy_speedup", legacy > 0.0 ? overhauled / legacy : 0.0,
           "x", /*guarded=*/true);
  json.add("probes_per_sec", probes_per_sec, "probes/s");
  json.add("sim_events_per_probe", events_per_probe, "events",
           /*guarded=*/true);
  std::printf("calendar+post %.3g ev/s, legacy heap+schedule %.3g ev/s, "
              "speedup %.2fx\n",
              overhauled, legacy, legacy > 0.0 ? overhauled / legacy : 0.0);
  return json.write(path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ecnprobe::bench::take_bench_json_arg(&argc, argv);
  if (!json_path.empty()) return run_bench_json(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
