// Micro-benchmarks of the simulation engine: event throughput, end-to-end
// datagram forwarding, policy overhead, and full four-way probe cost --
// the numbers that size a paper-scale campaign run.
#include <benchmark/benchmark.h>

#include "ecnprobe/measure/probe.hpp"
#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/netsim/router.hpp"
#include "ecnprobe/ntp/ntp.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace {

using namespace ecnprobe;
using namespace ecnprobe::util::literals;

void BM_EventScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    netsim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(util::SimDuration::micros(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventScheduleRun);

// One UDP datagram across an N-router chain, including ICMP-free forwarding
// and delivery.
void BM_ChainForwarding(benchmark::State& state) {
  const int n_routers = static_cast<int>(state.range(0));
  netsim::Simulator sim;
  netsim::Network net(sim, util::Rng(1));

  auto host_a = std::make_unique<netsim::Host>("a", netsim::Host::Params{}, util::Rng(2));
  auto host_b = std::make_unique<netsim::Host>("b", netsim::Host::Params{}, util::Rng(3));
  netsim::Host* a = host_a.get();
  netsim::Host* b = host_b.get();
  const auto ida = net.add_node(std::move(host_a));
  std::vector<netsim::NodeId> routers;
  netsim::NodeId prev = ida;
  for (int i = 0; i < n_routers; ++i) {
    auto router = std::make_unique<netsim::Router>(
        "r", netsim::Router::Params{}, util::Rng(10 + static_cast<unsigned>(i)));
    const auto id = net.add_node(std::move(router));
    net.node(id).set_address(wire::Ipv4Address(12, 0, 1, static_cast<std::uint8_t>(i)));
    net.connect(prev, id, netsim::LinkParams{});
    routers.push_back(id);
    prev = id;
  }
  const auto idb = net.add_node(std::move(host_b));
  a->set_address(wire::Ipv4Address(10, 0, 0, 1));
  b->set_address(wire::Ipv4Address(11, 0, 0, 1));
  net.connect(prev, idb, netsim::LinkParams{});
  net.set_routing_oracle([&](netsim::NodeId at, wire::Ipv4Address dst) -> int {
    (void)at;
    return dst == b->address() ? 1 : 0;
  });
  auto sink = b->open_udp(9);

  const std::vector<std::uint8_t> payload(48, 0);
  for (auto _ : state) {
    auto socket = a->open_udp();
    socket->send(b->address(), 9, payload, wire::Ecn::Ect0);
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (n_routers + 1));
}
BENCHMARK(BM_ChainForwarding)->Arg(4)->Arg(16);

void BM_PolicyChainApplication(benchmark::State& state) {
  netsim::EcnBleachPolicy bleach(0.5);
  netsim::EctUdpDropPolicy drop(0.0);  // match but never drop
  netsim::TosSensitiveDropPolicy tos(0.0);
  util::Rng rng(7);
  auto dgram = wire::make_udp_datagram(wire::Ipv4Address(1, 1, 1, 1),
                                       wire::Ipv4Address(2, 2, 2, 2), 1, 2,
                                       std::vector<std::uint8_t>(48, 0),
                                       wire::Ecn::Ect0);
  for (auto _ : state) {
    auto copy = dgram;
    benchmark::DoNotOptimize(bleach.apply(copy, rng));
    benchmark::DoNotOptimize(drop.apply(copy, rng));
    benchmark::DoNotOptimize(tos.apply(copy, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_PolicyChainApplication);

// Full four-way probe of one server through the small calibrated world --
// the unit of campaign work.
void BM_FourWayServerProbe(benchmark::State& state) {
  auto params = scenario::WorldParams::small(77);
  params.server_count = 16;
  params.offline_prob = 0.0;
  scenario::World world(params);
  auto& vantage = world.vantage("UGla wired");
  std::size_t cursor = 0;
  for (auto _ : state) {
    const auto server = world.server_addresses()[cursor++ % 16];
    bool done = false;
    measure::probe_server(vantage, server, measure::ProbeOptions{},
                          [&](const measure::ServerResult&) { done = true; });
    world.sim().run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FourWayServerProbe);

// World construction cost at increasing scale.
void BM_WorldBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto params = scenario::WorldParams::paper().scaled(
        static_cast<double>(state.range(0)) / 100.0);
    scenario::World world(params);
    benchmark::DoNotOptimize(world.net().node_count());
  }
}
BENCHMARK(BM_WorldBuild)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
