// Robustness: the reproduction's headline statistics across independent
// random worlds. The paper measured one Internet once; this bench shows
// which of its numbers are stable properties of the mechanism mix (the
// reachability percentages) and which are high-variance draws (the
// AS-boundary attribution).
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/util/stats.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.3) config.scale = 0.3;  // 750 servers per world
  bench::print_header("Robustness: headline statistics across seeds", config,
                      bench::world_params(config));

  util::RunningStats fig2a;
  util::RunningStats fig2b;
  util::RunningStats tcp_ecn_pct;
  util::RunningStats pass_pct;
  util::RunningStats boundary_pct;

  const std::uint64_t seeds[] = {config.seed, config.seed + 1, config.seed + 2,
                                 config.seed + 3, config.seed + 4};
  bench::Stopwatch timer;
  std::printf("  %-8s %-10s %-10s %-10s %-12s %-12s\n", "seed", "fig2a %", "fig2b %",
              "TCP ECN %", "hops pass %", "boundary %");
  for (const auto seed : seeds) {
    auto params = bench::world_params(config);
    params.seed = seed;
    scenario::World world(params);
    // A light campaign: 2 traces per vantage.
    const auto traces =
        world.run_campaign(measure::CampaignPlan::paper_layout(1, 1, 2));
    const auto summary = analysis::summarize_reachability(traces);
    const auto observations = world.run_traceroutes(2);
    const auto hops = analysis::analyze_hops(observations, world.ip2as());

    fig2a.add(summary.mean_pct_ect_given_plain);
    fig2b.add(summary.mean_pct_plain_given_ect);
    tcp_ecn_pct.add(summary.pct_tcp_negotiating_ecn);
    pass_pct.add(hops.pct_hops_passing());
    boundary_pct.add(hops.pct_strips_at_boundary());
    std::printf("  %-8llu %-10.2f %-10.2f %-10.1f %-12.2f %-12.1f\n",
                static_cast<unsigned long long>(seed),
                summary.mean_pct_ect_given_plain, summary.mean_pct_plain_given_ect,
                summary.pct_tcp_negotiating_ecn, hops.pct_hops_passing(),
                hops.pct_strips_at_boundary());
  }
  std::printf("\n  %-8s %-10.2f %-10.2f %-10.1f %-12.2f %-12.1f\n", "mean",
              fig2a.mean(), fig2b.mean(), tcp_ecn_pct.mean(), pass_pct.mean(),
              boundary_pct.mean());
  std::printf("  %-8s %-10.2f %-10.2f %-10.1f %-12.2f %-12.1f\n", "stddev",
              fig2a.stddev(), fig2b.stddev(), tcp_ecn_pct.stddev(), pass_pct.stddev(),
              boundary_pct.stddev());
  std::printf("\n5 worlds in %.1fs. The reachability and negotiation percentages are\n"
              "tight across worlds (the mechanisms dominate); the boundary share is\n"
              "not (few strip locations -> high draw variance), which calibrates how\n"
              "much to read into the paper's single 59.1%% observation.\n",
              timer.seconds());
  return 0;
}
