// Figures 2a/2b and the Section 4.1 headline numbers: per-trace UDP
// reachability with not-ECT vs ECT(0) marks across the full campaign (210
// traces from 13 vantage points at scale 1).
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/measure/results.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Figure 2: UDP reachability with and without ECT(0)", config,
                      params);

  scenario::World world(params);
  const auto plan = bench::campaign_plan(config);
  std::printf("running %d traces x %d servers x 4 probes...\n", plan.total_traces(),
              params.server_count);
  bench::Stopwatch timer;
  const auto traces = world.run_campaign(plan);
  std::printf("campaign done in %.1fs (%zu simulated events)\n\n", timer.seconds(),
              world.sim().events_processed());

  const auto per_trace = analysis::per_trace_reachability(traces);
  std::printf("Figure 2a: %% of not-ECT-reachable servers also reachable with ECT(0)\n");
  std::printf("%s\n", analysis::render_figure2a(per_trace).c_str());
  std::printf("Figure 2b: %% of ECT(0)-reachable servers also reachable with not-ECT\n");
  std::printf("%s\n", analysis::render_figure2b(per_trace).c_str());

  std::printf("per-vantage mean of Figure 2a (location variation):\n");
  for (const auto& row : analysis::per_vantage_reachability(traces)) {
    std::printf("  %-16s %6.2f%%  (%d traces, mean %4.0f reachable)\n",
                row.vantage.c_str(), row.mean_pct_ect_given_plain, row.traces,
                row.mean_reachable_udp_plain);
  }

  const auto summary = analysis::summarize_reachability(traces);
  std::printf("\nheadline comparison:\n");
  bench::compare("mean servers reachable (not-ECT UDP)",
                 summary.mean_reachable_udp_plain, 2253 * config.scale);
  bench::compare("mean % ECT(0)-reachable given not-ECT",
                 summary.mean_pct_ect_given_plain, 98.97, "%");
  bench::compare("min  % ECT(0)-reachable given not-ECT",
                 summary.min_pct_ect_given_plain, 90.0, "%");
  bench::compare("mean % not-ECT-reachable given ECT(0)",
                 summary.mean_pct_plain_given_ect, 99.45, "%");

  if (!config.csv_path.empty()) {
    std::ofstream out(config.csv_path);
    measure::write_traces_csv(out, traces);
    std::printf("raw traces written to %s\n", config.csv_path.c_str());
  }
  return 0;
}
