// Fault-injection overhead and robustness sweep: runs the scaled paper
// campaign once clean and once under each chaos profile, reporting the
// wall-clock cost of the fault machinery, how the headline reachability
// numbers shift under degraded networks, and how many traces each profile
// quarantines. Each faulted run is executed twice with the same (profile,
// seed) to check the reproducibility contract at bench scale, and once
// through the sharded executor to check fault determinism survives
// parallelism.
//
//   bench_fault_injection [--scale=F] [--seed=N] [--workers=N]
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/chaos/fault_plan.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"
#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/obs/codec.hpp"

namespace {

std::string traces_csv(const std::vector<ecnprobe::measure::Trace>& traces) {
  std::ostringstream os;
  ecnprobe::measure::write_traces_csv(os, traces);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  int workers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) workers = std::atoi(arg.c_str() + 10);
  }
  if (workers < 1) workers = 1;
  const auto base_params = bench::world_params(config);
  bench::print_header("Fault injection: overhead, degradation, determinism", config,
                      base_params);
  const auto plan = bench::campaign_plan(config);
  std::printf("plan: %d traces, %d servers, parallel check at %d workers\n\n",
              plan.total_traces(), base_params.server_count, workers);

  struct Row {
    const char* profile;
    double seconds;
    double reach;
    std::size_t quarantined;
    bool reproducible;
    bool parallel_identical;
  };
  std::vector<Row> rows;
  double clean_seconds = 0.0;

  const std::vector<std::string> profiles = {"none", "wan-chaos", "icmp-degraded",
                                             "flaky-servers", "route-flap"};
  for (const auto& profile : profiles) {
    auto params = base_params;
    const auto faults = chaos::FaultPlan::parse(profile);
    if (!faults) {
      std::fprintf(stderr, "bad profile %s: %s\n", profile.c_str(),
                   faults.error().message.c_str());
      return 1;
    }
    params.faults = *faults;

    bench::Stopwatch timer;
    scenario::World world(params);
    std::vector<measure::TraceFailure> failures;
    const auto traces = world.run_campaign(plan, {}, nullptr, nullptr, 0, &failures);
    const double seconds = timer.seconds();
    if (profile == "none") clean_seconds = seconds;
    const auto csv = traces_csv(traces);
    const auto obs_bytes = obs::encode_obs(world.campaign_obs());
    const auto summary = analysis::summarize_reachability(traces);

    // Reproducibility: the same (profile, seed) must rebuild the same bytes.
    scenario::World again(params);
    std::vector<measure::TraceFailure> again_failures;
    const auto rerun = again.run_campaign(plan, {}, nullptr, nullptr, 0, &again_failures);
    const bool reproducible = traces_csv(rerun) == csv &&
                              obs::encode_obs(again.campaign_obs()) == obs_bytes &&
                              again_failures.size() == failures.size();

    // Parallelism: sharding must not change the faulted output either.
    std::vector<measure::ParallelCampaign::TraceFailure> par_failures;
    obs::ObsSnapshot par_obs;
    const auto par = run_parallel_campaign(params, plan, {}, workers, &par_failures,
                                           &par_obs);
    const bool parallel_identical = traces_csv(par) == csv &&
                                    obs::encode_obs(par_obs) == obs_bytes &&
                                    par_failures.size() == failures.size();

    rows.push_back({profile.c_str(), seconds, summary.mean_pct_ect_given_plain,
                    failures.size(), reproducible, parallel_identical});
  }

  std::printf("%-14s %9s %9s %14s %12s %13s %10s\n", "profile", "seconds", "overhead",
              "%reach|plain", "quarantined", "reproducible", "parallel");
  bool ok = true;
  for (const auto& row : rows) {
    ok = ok && row.reproducible && row.parallel_identical;
    std::printf("%-14s %8.2fs %8.2fx %13.2f%% %12zu %13s %10s\n", row.profile,
                row.seconds, clean_seconds > 0.0 ? row.seconds / clean_seconds : 0.0,
                row.reach, row.quarantined, row.reproducible ? "yes" : "NO",
                row.parallel_identical ? "identical" : "DIVERGED");
  }
  if (!ok) {
    std::printf("\nFAIL: a faulted campaign was not deterministic\n");
    return 1;
  }
  std::printf("\nall profiles reproducible and shard-invariant\n");
  return 0;
}
