// Figure 4 / Section 4.2: where are ECT(0) marks stripped? Runs TTL-limited
// ECT(0) traceroutes from every vantage point to every server (twice, to
// catch "sometimes strips"), compares ICMP quotations against what was sent,
// and attributes strip locations to AS boundaries via the IP-to-AS map.
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/report.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Figure 4: ECN mark stripping located by traceroute", config,
                      params);

  scenario::World world(params);
  std::printf("tracerouting %d servers from 13 vantage points, 2 repetitions...\n",
              params.server_count);
  bench::Stopwatch timer;
  const auto observations = world.run_traceroutes(2);
  std::printf("done in %.1fs (%zu traceroutes)\n\n", timer.seconds(),
              observations.size());

  const auto analysis = analysis::analyze_hops(observations, world.ip2as());

  // Sample paths: prefer ones that show stripping, padded with clean ones.
  std::vector<measure::TracerouteObservation> samples;
  for (const auto& obs : observations) {
    bool strips = false;
    for (const auto& hop : obs.path.hops) {
      if (hop.responded && !hop.ecn_intact()) strips = true;
    }
    if (strips && samples.size() < 8) samples.push_back(obs);
  }
  for (const auto& obs : observations) {
    if (samples.size() >= 12) break;
    samples.push_back(obs);
  }

  std::printf("%s\n", analysis::render_figure4(analysis, samples).c_str());

  std::printf("comparison (hop counts scale with topology size):\n");
  bench::compare("IP-level hops measured", static_cast<double>(analysis.total_hops),
                 155439 * config.scale);
  bench::compare("% of hops passing ECT(0)", analysis.pct_hops_passing(), 99.34, "%");
  bench::compare("hops observed stripping",
                 static_cast<double>(analysis.strip_hops), 1143 * config.scale);
  bench::compare("...of which only sometimes",
                 static_cast<double>(analysis.sometimes_strip), 125 * config.scale);
  bench::compare("% strip locations at AS boundaries",
                 analysis.pct_strips_at_boundary(), 59.1, "%");
  bench::compare("ECN-CE marks observed", static_cast<double>(analysis.ce_marks_seen),
                 0);
  bench::compare("ASes observed", static_cast<double>(analysis.ases_observed),
                 1400 * config.scale);
  return 0;
}
