// Ablation: sensitivity of the "59.1% of strips at AS boundaries" figure to
// IP-to-AS mapping accuracy -- the caveat the paper carries from Zhang et
// al. Their pitfall is per-router: border interfaces are often numbered
// from the *neighbour's* address space, so a traceroute responder maps to
// the wrong AS. We model exactly that: a fraction of observed responders
// get a /32 override pointing at a different AS, and the boundary
// attribution is recomputed.
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "ecnprobe/analysis/hops.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.4) config.scale = 0.4;
  const auto params = bench::world_params(config);
  bench::print_header("Ablation: AS-boundary attribution vs IP-to-AS mapping error",
                      config, params);

  scenario::World world(params);
  std::printf("collecting traceroute dataset...\n");
  bench::Stopwatch timer;
  const auto observations = world.run_traceroutes(2);
  std::printf("done in %.1fs (%zu traceroutes)\n\n", timer.seconds(),
              observations.size());

  // Observed responders and the ASN universe for wrong-mapping draws.
  std::set<std::uint32_t> responders;
  for (const auto& obs : observations) {
    for (const auto& hop : obs.path.hops) {
      if (hop.responded) responders.insert(hop.responder.value());
    }
  }
  std::vector<topology::Asn> asns;
  for (const auto& as : world.internet().ases()) asns.push_back(as.asn);

  util::Rng rng(config.seed);
  std::printf("  %-18s %-18s %-14s\n", "router mis-mapped", "% at boundaries",
              "strip locations");
  for (const double error_rate : {0.0, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    auto draw = rng.fork(static_cast<std::uint64_t>(error_rate * 1000));
    topology::IpToAsMap noisy = world.ip2as();
    for (const auto addr : responders) {
      if (!draw.bernoulli(error_rate)) continue;
      const auto truth = world.ip2as().lookup(wire::Ipv4Address{addr});
      topology::Asn wrong;
      do {
        wrong = asns[draw.next_below(asns.size())];
      } while (truth && wrong == *truth);
      noisy.add(wire::Ipv4Address{addr}, 32, wrong);  // /32 override
    }
    const auto analysis = analysis::analyze_hops(observations, noisy);
    std::printf("  %-18.2f %-18.1f %-14zu\n", error_rate,
                analysis.pct_strips_at_boundary(),
                static_cast<std::size_t>(analysis.strip_locations));
  }
  std::printf("\nPer-router mapping errors (border interfaces numbered from the\n"
              "neighbour's space) convert intra-AS attributions into spurious\n"
              "boundary attributions and occasionally mask true ones: the paper's\n"
              "59.1%% inherits this uncertainty. Prefix-level errors, by contrast,\n"
              "move whole ASes at once and barely perturb the comparison.\n");
  return 0;
}
