// Figure 1: world map of NTP pool server locations (ASCII rendering of the
// same lat/lon scatter the paper plots).
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Figure 1: geographic locations of NTP pool servers", config,
                      params);

  scenario::World world(params);
  const auto summary = analysis::summarize_geo(world.server_addresses(), world.geodb());

  std::printf("%s\n", analysis::render_figure1(summary).c_str());
  std::printf("%d servers plotted; %d unmapped (\"Unknown\").\n", summary.total,
              summary.counts.at(geo::Region::Unknown));

  if (!config.csv_path.empty()) {
    std::ofstream out(config.csv_path);
    util::CsvWriter csv(out);
    csv.write_row({"lat", "lon"});
    for (const auto& [lat, lon] : summary.locations) {
      csv.write_row({std::to_string(lat), std::to_string(lon)});
    }
    std::printf("scatter data written to %s\n", config.csv_path.c_str());
  }
  return 0;
}
