// Ablation: the paper probes with ECT(0) "to match the typical marking used
// with ECN for TCP" and never tests ECT(1) or CE. The simulator can: this
// bench sweeps all four codepoints on the NTP probe and reports
// reachability. Middleboxes here key on "any ECT mark", so ECT(1) and CE
// behave like ECT(0) -- the counterfactual the paper leaves open.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "ecnprobe/ntp/ntp.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.4) config.scale = 0.4;
  auto params = bench::world_params(config);
  params.offline_prob = 0.02;
  bench::print_header("Ablation: probe ECN codepoint (ECT(0) vs ECT(1) vs CE)", config,
                      params);

  scenario::World world(params);
  world.before_trace("UGla wired", 1, 0);  // one availability draw for all sweeps
  auto& vantage = world.vantage("UGla wired");

  std::printf("  %-10s %-12s %-12s\n", "codepoint", "reachable", "% of pool");
  for (const auto ecn :
       {wire::Ecn::NotEct, wire::Ecn::Ect0, wire::Ecn::Ect1, wire::Ecn::Ce}) {
    int reachable = 0;
    const auto& servers = world.server_addresses();
    std::size_t cursor = 0;
    std::function<void()> next = [&]() {
      if (cursor >= servers.size()) return;
      ntp::NtpQueryOptions options;
      options.ecn = ecn;
      vantage.ntp().query(servers[cursor++], options,
                          [&](const ntp::NtpQueryResult& result) {
                            reachable += result.success ? 1 : 0;
                            next();
                          });
    };
    next();
    world.sim().run();
    std::printf("  %-10s %-12d %-12.2f\n", std::string(wire::to_string(ecn)).c_str(),
                reachable, 100.0 * reachable / static_cast<double>(servers.size()));
  }
  std::printf("\nECT(1) and CE probes hit the same ECT-keyed firewalls as ECT(0):\n"
              "the paper's choice of codepoint does not change its conclusions in\n"
              "this world. A CE-marked request additionally arrives looking like\n"
              "congestion feedback, which some real middleboxes may treat more\n"
              "aggressively -- a difference this model deliberately omits.\n");
  return 0;
}
