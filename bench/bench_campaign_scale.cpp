// Campaign scale harness: how fast can the engine push probe exchanges at
// 2.5k / 25k / 250k / 1M synthetic servers?
//
// The full World builds a node per server, so a 1M-server world would need
// gigabytes. This bench instead attaches a single *prefix responder* node
// that answers for every synthetic server address (O(1) memory in the
// server count), behind a real Router so the hot path is the production
// one: datagram build, wire-cache encode, link transmission, TTL decrement
// with RFC 1624 checksum patching, and calendar-queue event dispatch.
//
//   bench_campaign_scale [--preset=2.5k,25k,250k | --preset=all | --preset=1m]
//                        [--bench-json=PATH]
//
// Probes are grouped into traces of up to 1000 servers each (the unit the
// campaign executor schedules); the per-trace wall-clock p99 is reported
// alongside probes/sec, sim-events/sec, and bytes/probe.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/netsim/router.hpp"
#include "ecnprobe/netsim/sim.hpp"
#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace {

using namespace ecnprobe;

/// Answers a probe addressed to *any* synthetic server: echoes the payload
/// back from the probed address. One node stands in for a million servers.
class PrefixResponder : public netsim::Node {
public:
  PrefixResponder() : Node("pool-prefix") {}

  void on_receive(wire::Datagram dgram, int ingress_if) override {
    const auto udp = wire::decode_udp_segment(dgram.ip.src, dgram.ip.dst, dgram.payload);
    if (!udp.has_value()) return;
    ++responses;
    wire::Datagram reply = wire::make_udp_datagram(
        dgram.ip.dst, dgram.ip.src, udp->header.dst_port, udp->header.src_port,
        std::vector<std::uint8_t>(udp->payload.begin(), udp->payload.end()),
        dgram.ip.ecn);
    bytes_sent += reply.wire_view().size();
    network().transmit(id(), ingress_if, std::move(reply));
  }

  std::uint64_t responses = 0;
  std::uint64_t bytes_sent = 0;
};

/// The probing side: fires paced probes at synthetic addresses, counts
/// replies and on-the-wire bytes.
class ProbeSource : public netsim::Node {
public:
  ProbeSource() : Node("vantage") {}

  void on_receive(wire::Datagram dgram, int ingress_if) override {
    (void)dgram;
    (void)ingress_if;
    ++replies;
  }

  void send_probe(wire::Ipv4Address target) {
    wire::Datagram probe = wire::make_udp_datagram(
        address(), target, 40'000, 123, payload_, wire::Ecn::Ect0);
    bytes_sent += probe.wire_view().size();
    network().transmit(id(), 0, std::move(probe));
  }

  std::uint64_t replies = 0;
  std::uint64_t bytes_sent = 0;

private:
  std::vector<std::uint8_t> payload_ = std::vector<std::uint8_t>(48, 0xab);
};

struct Preset {
  const char* name;
  const char* metric_suffix;
  int servers;
};

constexpr Preset kPresets[] = {
    {"2.5k", "2k5", 2'500},
    {"25k", "25k", 25'000},
    {"250k", "250k", 250'000},
    {"1m", "1m", 1'000'000},
};

struct ScaleResult {
  double seconds = 0.0;
  double probes_per_sec = 0.0;
  double events_per_sec = 0.0;
  double events_per_probe = 0.0;
  double bytes_per_probe = 0.0;
  double p99_trace_ms = 0.0;
  std::uint64_t replies = 0;
};

ScaleResult run_preset(int servers) {
  netsim::Simulator sim;
  netsim::Network net(sim, util::Rng(1));

  auto source_owner = std::make_unique<ProbeSource>();
  auto responder_owner = std::make_unique<PrefixResponder>();
  ProbeSource* source = source_owner.get();
  PrefixResponder* responder = responder_owner.get();
  const auto source_id = net.add_node(std::move(source_owner));
  auto router = std::make_unique<netsim::Router>("core", netsim::Router::Params{},
                                                 util::Rng(2));
  const auto router_id = net.add_node(std::move(router));
  const auto responder_id = net.add_node(std::move(responder_owner));
  net.node(source_id).set_address(wire::Ipv4Address(10, 0, 0, 1));
  net.node(router_id).set_address(wire::Ipv4Address(12, 0, 0, 1));
  // The responder's own address is never probed; it answers for the whole
  // synthetic prefix via the routing oracle below.
  net.node(responder_id).set_address(wire::Ipv4Address(11, 255, 255, 254));
  net.connect(source_id, router_id, netsim::LinkParams{});   // if 0 <-> if 0
  net.connect(router_id, responder_id, netsim::LinkParams{});  // if 1 <-> if 0
  const auto vantage_addr = net.node(source_id).address();
  net.set_routing_oracle([vantage_addr](netsim::NodeId at, wire::Ipv4Address dst) {
    (void)at;
    return dst == vantage_addr ? 0 : 1;  // router if-indices; hosts use if 0
  });

  // Synthetic server addresses walk an 11.x.x.x prefix deterministically.
  const auto target = [](int i) {
    const auto v = static_cast<std::uint32_t>(i);
    return wire::Ipv4Address(11, static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v));
  };

  constexpr int kTraceSize = 1000;  // servers per scheduled trace
  std::vector<double> trace_seconds;
  const bench::Stopwatch total;
  int sent = 0;
  while (sent < servers) {
    const int batch = std::min(kTraceSize, servers - sent);
    const bench::Stopwatch per_trace;
    for (int i = 0; i < batch; ++i) {
      // Pace probes 200ns apart so thousands are in flight concurrently --
      // the event-queue population a sharded campaign sustains.
      const int index = sent + i;
      sim.schedule(util::SimDuration::nanos(200 * i),
                   [source, index, &target] { source->send_probe(target(index)); });
    }
    sim.run();
    trace_seconds.push_back(per_trace.seconds());
    sent += batch;
  }

  ScaleResult result;
  result.seconds = total.seconds();
  result.replies = source->replies;
  const auto probes = static_cast<double>(servers);
  result.probes_per_sec = result.seconds > 0.0 ? probes / result.seconds : 0.0;
  result.events_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(sim.events_processed()) / result.seconds
          : 0.0;
  result.events_per_probe = static_cast<double>(sim.events_processed()) / probes;
  result.bytes_per_probe =
      static_cast<double>(source->bytes_sent + responder->bytes_sent) / probes;
  std::sort(trace_seconds.begin(), trace_seconds.end());
  const auto p99_index = static_cast<std::size_t>(
      0.99 * static_cast<double>(trace_seconds.size()));
  result.p99_trace_ms =
      trace_seconds[std::min(p99_index, trace_seconds.size() - 1)] * 1e3;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string presets = "2.5k,25k,250k";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--preset=", 0) == 0) presets = arg.substr(9);
    else if (arg.rfind("--bench-json=", 0) == 0) json_path = arg.substr(13);
    else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--preset=2.5k,25k,250k,1m|all] [--bench-json=PATH]\n",
                  argv[0]);
      return 0;
    }
  }
  if (presets == "all") presets = "2.5k,25k,250k,1m";

  bench::BenchJson json("campaign");
  std::printf("%8s %10s %14s %14s %10s %10s %12s\n", "servers", "seconds",
              "probes/s", "events/s", "ev/probe", "B/probe", "p99 trace");
  bool first = true;
  for (const auto& preset : kPresets) {
    if (presets.find(preset.name) == std::string::npos) continue;
    const auto r = run_preset(preset.servers);
    if (r.replies != static_cast<std::uint64_t>(preset.servers)) {
      std::printf("FAIL: %s preset lost replies (%llu of %d)\n", preset.name,
                  static_cast<unsigned long long>(r.replies), preset.servers);
      return 1;
    }
    std::printf("%8s %9.2fs %14.0f %14.0f %10.2f %10.1f %9.2fms\n", preset.name,
                r.seconds, r.probes_per_sec, r.events_per_sec, r.events_per_probe,
                r.bytes_per_probe, r.p99_trace_ms);
    const std::string suffix = preset.metric_suffix;
    json.add("probes_per_sec_" + suffix, r.probes_per_sec, "probes/s");
    json.add("sim_events_per_sec_" + suffix, r.events_per_sec, "events/s");
    json.add("p99_trace_ms_" + suffix, r.p99_trace_ms, "ms");
    json.add("sim_events_per_probe_" + suffix, r.events_per_probe, "events",
             /*guarded=*/true);
    if (first) {
      // Identical across presets by construction; guard it once.
      json.add("bytes_per_probe", r.bytes_per_probe, "bytes", /*guarded=*/true);
      first = false;
    }
  }
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
