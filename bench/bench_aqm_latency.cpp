// Extension: the quantified version of the paper's opening motivation --
// "ECN support in the network allows for lower queue occupancy, hence lower
// latency, and ... react to congestion without packet loss". An adaptive
// RTP session pushes through a real RED/token-bucket bottleneck; we sweep
// bottleneck rates and compare ECN-on vs ECN-off on queue delay, loss, and
// delivered rate.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/netsim/router.hpp"
#include "ecnprobe/rtp/media.hpp"

namespace {

using namespace ecnprobe;

struct Outcome {
  double delivered_kbps = 0;
  double loss_pct = 0;
  double mean_queue_ms = 0;
  double peak_occupancy = 0;
  std::uint32_t ce = 0;
  bool verified = false;
};

Outcome run_session(double bottleneck_bps, bool attempt_ecn, std::uint64_t seed) {
  netsim::Simulator sim;
  netsim::Network net(sim, util::Rng(seed));
  auto a = std::make_unique<netsim::Host>("caller", netsim::Host::Params{},
                                          util::Rng(seed + 1));
  auto r = std::make_unique<netsim::Router>("bottleneck", netsim::Router::Params{},
                                            util::Rng(seed + 2));
  auto b = std::make_unique<netsim::Host>("callee", netsim::Host::Params{},
                                          util::Rng(seed + 3));
  netsim::Host* caller = a.get();
  netsim::Host* callee = b.get();
  const auto ida = net.add_node(std::move(a));
  const auto idr = net.add_node(std::move(r));
  const auto idb = net.add_node(std::move(b));
  caller->set_address(wire::Ipv4Address(10, 0, 0, 1));
  net.node(idr).set_address(wire::Ipv4Address(12, 0, 0, 1));
  callee->set_address(wire::Ipv4Address(11, 0, 0, 1));
  netsim::LinkParams link;
  link.delay = util::SimDuration::millis(10);
  net.connect(ida, idr, link);
  net.connect(idr, idb, link);
  net.set_routing_oracle([&](netsim::NodeId, wire::Ipv4Address dst) -> int {
    return dst == callee->address() ? 1 : 0;
  });

  netsim::BottleneckAqmPolicy::Params aqm_params;
  aqm_params.rate_bps = bottleneck_bps;
  aqm_params.queue_capacity_bytes = 32 * 1024;
  auto aqm = std::make_shared<netsim::BottleneckAqmPolicy>(aqm_params);
  net.add_egress_policy(idr, 1, aqm);  // router -> callee direction

  rtp::MediaReceiver receiver(*callee, rtp::MediaReceiver::Config{});
  rtp::MediaSender::Config config;
  config.attempt_ecn = attempt_ecn;
  config.start_bitrate_bps = 1.0e6;
  config.max_bitrate_bps = 3.0e6;
  rtp::MediaSender sender(*caller, callee->address(), 5004, config);
  sender.start();
  sim.run_until(sim.now() + util::SimDuration::seconds(20));
  sender.stop();
  receiver.stop();
  sim.run();

  Outcome outcome;
  const auto& rx = receiver.stats();
  outcome.delivered_kbps = static_cast<double>(rx.bytes_received) * 8 / 20.0 / 1e3;
  const double total = static_cast<double>(rx.packets_received + rx.lost);
  outcome.loss_pct = total > 0 ? 100.0 * static_cast<double>(rx.lost) / total : 0;
  outcome.mean_queue_ms = aqm->queue_stats().delay_ms.mean();
  outcome.peak_occupancy = aqm->queue_stats().peak_occupancy;
  outcome.ce = rx.ce;
  outcome.verified = sender.stats().verified;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  std::printf("=== Extension: queue latency and loss, ECN vs no ECN at a RED "
              "bottleneck ===\n");
  std::printf("20-second adaptive RTP session per cell, seed %llu\n\n",
              static_cast<unsigned long long>(config.seed));

  std::printf("  %-12s %-6s %10s %8s %12s %10s %8s\n", "bottleneck", "ECN",
              "kb/s", "loss %", "queue ms", "peak occ", "CE");
  bench::Stopwatch timer;
  for (const double mbps : {0.6, 1.0, 1.6, 2.4}) {
    for (const bool ecn : {true, false}) {
      const auto outcome = run_session(mbps * 1e6, ecn, config.seed);
      std::printf("  %8.1f Mbps %-6s %10.0f %8.2f %12.2f %10.2f %8u\n", mbps,
                  ecn ? "on" : "off", outcome.delivered_kbps, outcome.loss_pct,
                  outcome.mean_queue_ms, outcome.peak_occupancy, outcome.ce);
    }
  }
  std::printf("\n8 sessions in %.1fs\n", timer.seconds());
  std::printf("\nWith ECN the congestion signal is delivered by CE marks and media loss\n"
              "is (near) zero; without it the same RED feedback is delivered by\n"
              "discarding 3-8%% of the media -- the queue looks shorter only because\n"
              "packets are thrown away. For interactive video, a few percent loss is\n"
              "visible artefacts while tens of ms of queue are not, which is exactly\n"
              "why NADA/WebRTC want ECN and why the paper's deployability question\n"
              "matters.\n");
  return 0;
}
