// Live-plane overhead bench: runs the same parallel campaign twice, once
// bare and once with the ObsHttpServer up and a loopback client scraping
// GET /metrics + /progress in a tight loop, and reports the probes/s
// ratio. The scrape path renders from ParallelCampaign's thread-safe
// snapshots, so the served run's campaign metrics must stay byte-identical
// to the unserved run's -- that equality (and the validity of the scraped
// Prometheus text) are the guarded metrics; the wall-clock overhead ratio
// is recorded unguarded because it measures the host.
//
// Also the reference producer of the "unguarded_profile" bench-json
// member: the self-profiler is enabled for both phases and its stage
// report rides along outside the guarded "metrics" array.
//
//   bench_obs_plane [--scale=F] [--seed=N] [--bench-json=PATH]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "ecnprobe/http/obs_server.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/obs/profiler.hpp"

namespace {

using namespace ecnprobe;

/// Minimal loopback HTTP GET; returns the whole response (headers + body),
/// or "" on any socket failure.
std::string http_get(std::uint16_t port, const char* target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = std::string("GET ") + target +
                              " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

measure::ParallelCampaign::Options exec_options() {
  measure::ParallelCampaign::Options exec;
  exec.workers = 2;
  return exec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  const auto plan = bench::campaign_plan(config);
  bench::print_header("Live observability plane: scrape-path overhead", config, params);
  std::printf("plan: %d traces, %d servers, 2 workers per phase\n\n",
              plan.total_traces(), params.server_count);

  obs::Profiler::process().set_enabled(true);
  const double probes = static_cast<double>(plan.total_traces()) * params.server_count;

  // -- phase 1: bare campaign, nothing listening ----------------------------
  std::printf("phase 1: unserved baseline...\n");
  measure::ParallelCampaign bare(scenario::world_shard_factory(params), exec_options());
  bench::Stopwatch bare_timer;
  const auto bare_traces = bare.run(plan);
  const double bare_seconds = bare_timer.seconds();
  const auto bare_metrics = obs::to_json(bare.metrics());
  std::printf("  %.2fs, %zu traces\n\n", bare_seconds, bare_traces.size());

  // -- phase 2: same campaign with a hot scrape loop ------------------------
  std::printf("phase 2: served, loopback client scraping...\n");
  measure::ParallelCampaign served(scenario::world_shard_factory(params),
                                   exec_options());
  http::ObsHttpServer::Providers providers;
  providers.metrics = [&served] {
    const auto snap = served.metrics_snapshot();
    return obs::to_prometheus(snap.metrics) + obs::to_prometheus(snap.timeseries);
  };
  providers.progress = [&served] {
    const auto p = served.progress();
    return std::string("{\"total\":") + std::to_string(p.total) +
           ",\"completed\":" + std::to_string(p.completed) + "}";
  };
  http::ObsHttpServer server(http::ObsHttpServer::Options{}, std::move(providers));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "cannot start obs server: %s\n", error.c_str());
    return 1;
  }
  std::atomic<bool> scraping{true};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (scraping.load(std::memory_order_relaxed)) {
      if (!http_get(server.port(), "/metrics").empty()) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      (void)http_get(server.port(), "/progress");
    }
  });
  bench::Stopwatch served_timer;
  const auto served_traces = served.run(plan);
  const double served_seconds = served_timer.seconds();
  scraping.store(false, std::memory_order_relaxed);
  scraper.join();
  // Final scrape from the quiesced campaign: the full merged families.
  const std::string final_scrape = http_get(server.port(), "/metrics");
  const auto server_stats = server.stats();
  server.stop();
  const auto served_metrics = obs::to_json(served.metrics());
  std::printf("  %.2fs, %zu traces, %llu mid-run scrapes, %llu bytes served\n\n",
              served_seconds, served_traces.size(),
              static_cast<unsigned long long>(scrapes.load()),
              static_cast<unsigned long long>(server_stats.bytes_sent));

  const bool metrics_identical = bare_metrics == served_metrics;
  const bool prometheus_valid = final_scrape.find("HTTP/1.1 200") == 0 &&
                                final_scrape.find("# TYPE") != std::string::npos;
  const double bare_rate = bare_seconds > 0.0 ? probes / bare_seconds : 0.0;
  const double served_rate = served_seconds > 0.0 ? probes / served_seconds : 0.0;
  const double overhead_ratio = bare_rate > 0.0 ? served_rate / bare_rate : 0.0;
  std::printf("campaign metrics: %s\n", metrics_identical ? "identical" : "DIVERGED");
  std::printf("final /metrics scrape: %s\n",
              prometheus_valid ? "valid Prometheus text" : "INVALID");
  std::printf("probes/s: %.0f bare, %.0f served (ratio %.3f)\n", bare_rate,
              served_rate, overhead_ratio);

  if (!config.bench_json.empty()) {
    bench::BenchJson json("obs_plane");
    json.add("bare_probes_per_sec", bare_rate, "probes/s");
    json.add("served_probes_per_sec", served_rate, "probes/s");
    json.add("scrape_overhead_ratio", overhead_ratio, "x");
    json.add("mid_run_scrapes", static_cast<double>(scrapes.load()), "events");
    json.add("served_metrics_identical", metrics_identical ? 1.0 : 0.0, "bool",
             /*guarded=*/true);
    json.add("final_scrape_valid_prometheus", prometheus_valid ? 1.0 : 0.0, "bool",
             /*guarded=*/true);
    json.set_profile_json(obs::Profiler::process().to_json());
    if (!json.write(config.bench_json)) return 1;
  }
  if (!metrics_identical || !prometheus_valid) return 1;
  return 0;
}
