// Extension: the return-path experiment the paper could not run. "Since we
// test against unmodified NTP servers, we cannot probe the return path from
// server to client" (Section 3). With modified (ECN-reflecting) responders
// deployed across the pool, both directions become measurable: this bench
// reports how often an ECT(0) mark survives the forward path, the return
// path, and both -- and whether forward results alone (the paper's view)
// are a good proxy for bidirectional ECN usability, which is what an RTP
// session actually needs.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "ecnprobe/ntp/ntp.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.4) config.scale = 0.4;
  auto params = bench::world_params(config);
  params.offline_prob = 0.0;
  params.greylist_flaky_prob = 0.0;
  params.greylist_dead_prob = 0.0;
  bench::print_header("Extension: return-path ECN survival (modified responders)",
                      config, params);

  scenario::World world(params);
  // Deploy the modification: every pool server reflects the request's ECN
  // codepoint onto its response.
  for (std::size_t i = 0; i < world.servers().size(); ++i) {
    auto& server = world.server(i);
    ntp::NtpServerService::Params reflecting;
    reflecting.stratum = 2;
    reflecting.reflect_ecn = true;
    server.ntp_service.reset();  // release UDP/123 before rebinding
    server.ntp_service = std::make_unique<ntp::NtpServerService>(
        *server.host, world.clock(), reflecting);
  }

  struct Counters {
    int probed = 0;
    int reachable = 0;
    int forward_intact = 0;       ///< server saw the request still ECT-marked
    int bidirectional_intact = 0; ///< response arrived back still ECT-marked
  };

  auto& vantage = world.vantage("UGla wired");
  Counters counters;
  const auto servers = world.server_addresses();
  std::size_t cursor = 0;
  std::function<void()> next = [&]() {
    if (cursor >= servers.size()) return;
    const auto index = cursor++;
    ntp::NtpQueryOptions options;
    options.ecn = wire::Ecn::Ect0;
    vantage.ntp().query(servers[index], options,
                        [&, index](const ntp::NtpQueryResult& result) {
                          ++counters.probed;
                          if (result.success) {
                            ++counters.reachable;
                            // Ground truth from the server side: did the
                            // request arrive with its ECT mark intact?
                            if (world.servers()[index]
                                    .ntp_service->stats()
                                    .ect_marked_requests > 0) {
                              ++counters.forward_intact;
                            }
                            if (result.response_ecn == wire::Ecn::Ect0) {
                              ++counters.bidirectional_intact;
                            }
                          }
                          next();
                        });
  };
  bench::Stopwatch timer;
  next();
  world.sim().run();

  std::printf("probed %d servers with ECT(0), reflecting responders, in %.1fs\n\n",
              counters.probed, timer.seconds());
  std::printf("  reachable with ECT(0) requests:          %d (%.2f%%)\n",
              counters.reachable, 100.0 * counters.reachable / counters.probed);
  std::printf("  forward path kept the mark (server saw ECT): %d (%.2f%% of reachable)\n",
              counters.forward_intact,
              counters.reachable ? 100.0 * counters.forward_intact / counters.reachable
                                 : 0.0);
  std::printf("  both directions kept the mark:           %d (%.2f%% of reachable)\n",
              counters.bidirectional_intact,
              counters.reachable
                  ? 100.0 * counters.bidirectional_intact / counters.reachable
                  : 0.0);
  std::printf("  return-path-only bleaching:              %d servers\n",
              counters.forward_intact - counters.bidirectional_intact);
  std::printf("\nThe paper's traceroute sees only the forward number; an RTP session\n"
              "needs the bidirectional one (its feedback travels the return path).\n"
              "The gap between the two columns is exactly what RFC 6679's\n"
              "receiver-side ECN counting exists to detect at session setup.\n");
  return 0;
}
