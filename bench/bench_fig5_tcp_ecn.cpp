// Figure 5 / Section 4.3: web-server reachability over TCP and willingness
// to negotiate ECN (ECN-setup SYN -> ECN-setup SYN-ACK), per trace.
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Figure 5: TCP reachability and ECN negotiation", config, params);

  scenario::World world(params);
  const auto plan = bench::campaign_plan(config);
  std::printf("running %d traces...\n", plan.total_traces());
  bench::Stopwatch timer;
  const auto traces = world.run_campaign(plan);
  std::printf("campaign done in %.1fs\n\n", timer.seconds());

  const auto per_trace = analysis::per_trace_reachability(traces);
  std::printf("%s\n",
              analysis::render_figure5(per_trace, params.server_count).c_str());

  const auto summary = analysis::summarize_reachability(traces);
  std::printf("comparison:\n");
  bench::compare("mean web servers responding via TCP", summary.mean_reachable_tcp,
                 1334 * config.scale);
  bench::compare("mean servers negotiating ECN", summary.mean_negotiated_ecn_tcp,
                 1095 * config.scale);
  bench::compare("% of TCP-reachable negotiating ECN",
                 summary.pct_tcp_negotiating_ecn, 82.0, "%");
  bench::compare("mean reachable via UDP (for contrast)",
                 summary.mean_reachable_udp_plain, 2253 * config.scale);
  return 0;
}
