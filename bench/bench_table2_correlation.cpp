// Table 2 / Section 4.4: do the servers that are unreachable with ECT(0)
// UDP also refuse to negotiate ECN over TCP? (The paper finds only weak
// correlation -- middleboxes discriminate on the payload protocol.)
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"

namespace {

// Table 2 as printed in the paper.
const std::map<std::string, std::pair<int, int>> kPaperTable2 = {
    {"Perkins home", {8, 3}},  {"McQuistin home", {160, 20}}, {"UGla wired", {10, 2}},
    {"UGla wless", {43, 4}},   {"EC2 Cal", {10, 3}},          {"EC2 Fra", {14, 5}},
    {"EC2 Ire", {11, 4}},      {"EC2 Ore", {14, 2}},          {"EC2 Sao", {16, 3}},
    {"EC2 Sin", {10, 3}},      {"EC2 Syd", {11, 5}},          {"EC2 Tok", {13, 2}},
    {"EC2 Vir", {16, 3}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Table 2: UDP vs TCP ECN failure correlation", config, params);

  scenario::World world(params);
  const auto plan = bench::campaign_plan(config);
  std::printf("running %d traces...\n", plan.total_traces());
  bench::Stopwatch timer;
  const auto traces = world.run_campaign(plan);
  std::printf("campaign done in %.1fs\n\n", timer.seconds());

  const auto rows = analysis::correlation_table(traces);
  std::printf("%s\n", analysis::render_table2(rows).c_str());

  std::printf("paper-vs-measured:\n");
  std::printf("  %-16s %22s %22s\n", "", "unreach UDP w/ECT", "also fail TCP ECN");
  std::printf("  %-16s %10s %10s  %10s %10s\n", "location", "measured", "paper",
              "measured", "paper");
  for (const auto& row : rows) {
    const auto it = kPaperTable2.find(row.vantage);
    if (it == kPaperTable2.end()) continue;
    std::printf("  %-16s %10.0f %10.0f  %10.0f %10.0f\n", row.vantage.c_str(),
                row.avg_unreachable_udp_with_ect, it->second.first * config.scale,
                row.avg_also_fail_tcp_ecn, it->second.second * config.scale);
  }

  // The key qualitative claim: the majority of UDP+ECT-unreachable servers
  // can still use ECN with TCP.
  double total_unreachable = 0;
  double total_fail_tcp = 0;
  for (const auto& row : rows) {
    total_unreachable += row.avg_unreachable_udp_with_ect;
    total_fail_tcp += row.avg_also_fail_tcp_ecn;
  }
  std::printf("\nacross locations: %.0f%% of UDP+ECT-unreachable servers still "
              "negotiate ECN with TCP (paper: \"the majority\")\n",
              total_unreachable > 0
                  ? 100.0 * (total_unreachable - total_fail_tcp) / total_unreachable
                  : 0.0);
  return 0;
}
