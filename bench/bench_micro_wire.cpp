// Micro-benchmarks of the wire codecs: the per-packet costs that bound the
// simulator's campaign throughput and a live prober's packet rates.
//
// Two modes:
//   bench_micro_wire [google-benchmark flags]   interactive tables
//   bench_micro_wire --bench-json=PATH          BENCH_wire.json metrics:
//     RFC 1624 incremental-vs-full checksum cost, wire-cache encode cost,
//     and the deterministic bytes-per-probe constants.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"
#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/dnsmsg.hpp"
#include "ecnprobe/wire/http.hpp"
#include "ecnprobe/wire/ntp.hpp"
#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace {

using namespace ecnprobe;

const wire::Ipv4Address kSrc(10, 0, 0, 1);
const wire::Ipv4Address kDst(11, 0, 0, 2);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(48)->Arg(576)->Arg(1500);

void BM_Ipv4HeaderEncode(benchmark::State& state) {
  wire::Ipv4Header header;
  header.src = kSrc;
  header.dst = kDst;
  header.total_length = 48;
  for (auto _ : state) {
    wire::ByteWriter out(wire::Ipv4Header::kSize);
    header.encode(out);
    benchmark::DoNotOptimize(out.view().data());
  }
}
BENCHMARK(BM_Ipv4HeaderEncode);

void BM_Ipv4HeaderDecode(benchmark::State& state) {
  wire::Ipv4Header header;
  header.src = kSrc;
  header.dst = kDst;
  header.total_length = 48;
  wire::ByteWriter out(wire::Ipv4Header::kSize);
  header.encode(out);
  const auto bytes = out.take();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_ipv4_header(bytes));
  }
}
BENCHMARK(BM_Ipv4HeaderDecode);

void BM_UdpDatagramBuild(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(48, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wire::make_udp_datagram(kSrc, kDst, 40000, 123, payload, wire::Ecn::Ect0));
  }
}
BENCHMARK(BM_UdpDatagramBuild);

void BM_TcpSegmentRoundTrip(benchmark::State& state) {
  wire::TcpHeader header;
  header.src_port = 40000;
  header.dst_port = 80;
  header.flags.ack = true;
  const std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    const auto segment = wire::encode_tcp_segment(kSrc, kDst, header, payload);
    benchmark::DoNotOptimize(wire::decode_tcp_segment(kSrc, kDst, segment));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TcpSegmentRoundTrip)->Arg(0)->Arg(512)->Arg(1400);

void BM_NtpPacketRoundTrip(benchmark::State& state) {
  const auto packet = wire::NtpPacket::make_client_request(
      wire::NtpTimestamp::from_unix_nanos(1'428'883'200'000'000'000));
  for (auto _ : state) {
    const auto bytes = packet.encode();
    benchmark::DoNotOptimize(wire::NtpPacket::decode(bytes));
  }
}
BENCHMARK(BM_NtpPacketRoundTrip);

void BM_DnsResponseRoundTrip(benchmark::State& state) {
  const auto query = wire::DnsMessage::make_query(1, "europe.pool.ntp.org");
  std::vector<wire::DnsRecord> answers;
  for (int i = 0; i < 4; ++i) {
    answers.push_back(wire::DnsRecord::make_a(
        "europe.pool.ntp.org", wire::Ipv4Address(11, 0, 0, static_cast<std::uint8_t>(i)),
        150));
  }
  const auto response = wire::DnsMessage::make_response(query, wire::DnsRcode::NoError,
                                                        answers);
  for (auto _ : state) {
    const auto bytes = response.encode();
    benchmark::DoNotOptimize(wire::DnsMessage::decode(bytes));
  }
}
BENCHMARK(BM_DnsResponseRoundTrip);

void BM_IcmpQuotationRoundTrip(benchmark::State& state) {
  const auto probe = wire::make_udp_datagram(kSrc, kDst, 44001, 33435,
                                             std::vector<std::uint8_t>(8, 0),
                                             wire::Ecn::Ect0, 3);
  const auto error = wire::make_time_exceeded(wire::Ipv4Address(12, 0, 0, 1), probe);
  for (auto _ : state) {
    const auto decoded = wire::decode_icmp_message(error.payload);
    benchmark::DoNotOptimize(wire::parse_quotation(decoded->message.body));
  }
}
BENCHMARK(BM_IcmpQuotationRoundTrip);

void BM_HttpResponseParse(benchmark::State& state) {
  wire::HttpResponse response;
  response.status = 302;
  response.headers["Location"] = "http://www.pool.ntp.org/";
  response.headers["Server"] = "nginx";
  const auto text = response.serialize();
  for (auto _ : state) {
    wire::HttpParser parser(wire::HttpParser::Kind::Response);
    parser.feed(text);
    benchmark::DoNotOptimize(parser.complete());
  }
}
BENCHMARK(BM_HttpResponseParse);

// -- --bench-json mode --------------------------------------------------------

/// Nanoseconds per operation for `op` run `iters` times, best of three.
template <typename Fn>
double ns_per_op(std::uint64_t iters, Fn&& op) {
  // Min over many reps: the guarded speedup ratio in BENCH_wire.json is
  // built from these, and the minimum is the least-interference estimate --
  // three reps leave the full-recompute loop wobbling across process runs.
  double best = 1e300;
  for (int rep = 0; rep < 9; ++rep) {
    const ecnprobe::bench::Stopwatch timer;
    for (std::uint64_t i = 0; i < iters; ++i) op(i);
    best = std::min(best, timer.seconds() * 1e9 / static_cast<double>(iters));
  }
  return best;
}

int run_bench_json(const std::string& path) {
  using namespace ecnprobe;

  // A router TTL rewrite: full 20-byte header recompute vs RFC 1624 patch.
  std::vector<std::uint8_t> header(wire::Ipv4Header::kSize);
  util::Rng rng(1);
  header[0] = 0x45;
  for (std::size_t i = 1; i < header.size(); ++i) {
    header[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  volatile std::uint16_t sink = 0;
  const double full_ns = ns_per_op(2'000'000, [&](std::uint64_t i) {
    header[8] = static_cast<std::uint8_t>(i);  // the TTL byte
    sink = wire::internet_checksum(header);
  });
  std::uint16_t check = wire::internet_checksum(header);
  const double incr_ns = ns_per_op(2'000'000, [&](std::uint64_t i) {
    const auto old_word = static_cast<std::uint16_t>((header[8] << 8) | header[9]);
    header[8] = static_cast<std::uint8_t>(i);
    const auto new_word = static_cast<std::uint16_t>((header[8] << 8) | header[9]);
    check = wire::checksum_update(check, old_word, new_word);
    sink = check;
  });

  // Probe encode cost: cold (full encode) vs wire-cache hit, and the
  // deterministic on-the-wire size of a four-way probe exchange.
  const std::vector<std::uint8_t> payload(48, 0xab);
  const double encode_cold_ns = ns_per_op(200'000, [&](std::uint64_t) {
    auto dgram = wire::make_udp_datagram(kSrc, kDst, 40000, 123, payload,
                                         wire::Ecn::Ect0);
    sink = static_cast<std::uint16_t>(dgram.wire_view().size());
  });
  auto cached = wire::make_udp_datagram(kSrc, kDst, 40000, 123, payload,
                                        wire::Ecn::Ect0);
  (void)cached.wire_view();
  const double encode_cached_ns = ns_per_op(2'000'000, [&](std::uint64_t i) {
    cached.set_ttl(static_cast<std::uint8_t>(i | 1));  // patch, not re-encode
    sink = static_cast<std::uint16_t>(cached.wire_view().size());
  });
  const double probe_wire_bytes = static_cast<double>(cached.wire_view().size());

  bench::BenchJson json("wire");
  json.add("checksum_full_ns_per_rewrite", full_ns, "ns");
  json.add("checksum_incremental_ns_per_rewrite", incr_ns, "ns");
  json.add("incremental_checksum_speedup", incr_ns > 0.0 ? full_ns / incr_ns : 0.0,
           "x", /*guarded=*/true);
  json.add("probe_encode_cold_ns", encode_cold_ns, "ns");
  json.add("probe_patch_and_view_ns", encode_cached_ns, "ns");
  json.add("udp_probe_wire_bytes", probe_wire_bytes, "bytes", /*guarded=*/true);
  std::printf("checksum rewrite: full %.1fns, incremental %.1fns (%.1fx); "
              "probe encode: cold %.0fns, cached patch %.1fns\n",
              full_ns, incr_ns, incr_ns > 0.0 ? full_ns / incr_ns : 0.0,
              encode_cold_ns, encode_cached_ns);
  return json.write(path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ecnprobe::bench::take_bench_json_arg(&argc, argv);
  if (!json_path.empty()) return run_bench_json(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
