// Extension experiment (Section 5 discussion): is ECN *usable* end-to-end
// once negotiated? Kuehlewind et al. tested whether hosts that negotiate
// ECN actually echo ECE after a CE mark (~90% did). The paper could not run
// this against unmodified NTP servers; the simulator can. We enable an
// RFC 3168 AQM on server access links and measure, over HTTP-on-TCP
// transfers: (a) whether CE marks elicit ECE and CWR, and (b) the loss an
// equivalent non-ECN connection suffers -- ECN's latency/loss benefit for
// interactive media that motivates the paper.
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/http/http_service.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.2) config.scale = 0.2;  // 500 servers is plenty here
  auto params = bench::world_params(config);
  params.offline_prob = 0.0;
  params.greylist_flaky_prob = 0.0;
  params.greylist_dead_prob = 0.0;
  params.web_server_fraction = 1.0;
  bench::print_header("Extension: ECN usability under congestion (Kuehlewind-style)",
                      config, params);

  scenario::World world(params);
  // Congest every server's uplink: mark ECT with p=0.3, drop not-ECT with
  // p=0.3 (the AQM treats both queues identically; ECN converts the drop
  // into a mark).
  for (std::size_t i = 0; i < world.servers().size(); ++i) {
    world.enable_congestion_at_server(i, 0.3, 0.3);
  }

  int ecn_capable = 0;
  int ecn_usable = 0;       // CE observed -> ECE echoed -> CWR sent
  int ecn_transfers_ok = 0;
  int plain_transfers_ok = 0;
  std::uint64_t ecn_retransmissions = 0;
  std::uint64_t plain_retransmissions = 0;
  double ecn_latency_s = 0.0;    // simulated time per GET (connect -> teardown)
  double plain_latency_s = 0.0;
  int ecn_latency_n = 0;
  int plain_latency_n = 0;

  auto& vantage = world.vantage("UGla wired");
  bench::Stopwatch timer;
  for (std::size_t i = 0; i < world.servers().size(); ++i) {
    const auto& server = world.servers()[i];
    if (!server.web_ecn) continue;
    ++ecn_capable;

    // ECN-negotiated transfers: the server's responses cross the congested
    // uplink; a CE-marked segment must come back to us and be echoed as
    // ECE. Several sequential GETs give the AQM several chances to mark
    // (Kuehlewind et al. likewise injected repeated CE).
    constexpr int kAttempts = 6;
    bool usable = false;
    bool ok = false;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      auto conn = vantage.tcp().connect(server.address, wire::kHttpPort, true,
                                        [](bool) {});
      conn->set_receive_handler([](std::span<const std::uint8_t>) {});
      wire::HttpRequest request;
      request.headers["Host"] = server.address.to_string();
      conn->send(request.serialize());
      const auto t0 = world.sim().now();
      world.sim().run();
      ecn_latency_s += (world.sim().now() - t0).to_seconds();
      ++ecn_latency_n;
      ok = ok || conn->stats().bytes_delivered > 0;
      usable = usable || (conn->ecn_negotiated() && conn->stats().ece_acks_sent > 0);
      ecn_retransmissions += conn->stats().retransmissions;
    }
    if (ok) ++ecn_transfers_ok;
    if (usable) ++ecn_usable;

    // Control: identical transfers without ECN (the AQM drops instead).
    bool plain_ok = false;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      auto conn = vantage.tcp().connect(server.address, wire::kHttpPort, false,
                                        [](bool) {});
      conn->set_receive_handler([](std::span<const std::uint8_t>) {});
      wire::HttpRequest request;
      request.headers["Host"] = server.address.to_string();
      conn->send(request.serialize());
      const auto t0 = world.sim().now();
      world.sim().run();
      plain_latency_s += (world.sim().now() - t0).to_seconds();
      ++plain_latency_n;
      plain_ok = plain_ok || conn->stats().bytes_delivered > 0;
      plain_retransmissions += conn->stats().retransmissions;
    }
    if (plain_ok) ++plain_transfers_ok;
  }
  std::printf("probed %d ECN-capable web servers in %.1fs\n\n", ecn_capable,
              timer.seconds());

  std::printf("  ECN-capable servers:                        %d\n", ecn_capable);
  std::printf("  transfers completing with ECN:              %d\n", ecn_transfers_ok);
  std::printf("  CE observed and ECE echoed (ECN usable):    %d (%.1f%%)\n", ecn_usable,
              ecn_capable ? 100.0 * ecn_usable / ecn_capable : 0.0);
  std::printf("  transfers completing without ECN:           %d\n", plain_transfers_ok);
  std::printf("  retransmissions with ECN:                   %llu\n",
              static_cast<unsigned long long>(ecn_retransmissions));
  std::printf("  retransmissions without ECN:                %llu\n",
              static_cast<unsigned long long>(plain_retransmissions));
  std::printf("\ncomparison:\n");
  bench::compare("% of negotiating hosts where ECN is usable",
                 ecn_capable ? 100.0 * ecn_usable / ecn_capable : 0.0, 90.0, "%");
  const double ecn_ms = ecn_latency_n ? 1e3 * ecn_latency_s / ecn_latency_n : 0.0;
  const double plain_ms = plain_latency_n ? 1e3 * plain_latency_s / plain_latency_n : 0.0;
  std::printf("  mean GET completion with ECN:               %.0f ms\n", ecn_ms);
  std::printf("  mean GET completion without ECN:            %.0f ms\n", plain_ms);
  std::printf("\nECN converts the AQM's drops of server data into marks: the non-ECN\n"
              "control pays RTO recoveries, costing %.1fx the completion latency --\n"
              "the interactive-media benefit (NADA/WebRTC) motivating the paper.\n",
              ecn_ms > 0 ? plain_ms / ecn_ms : 0.0);
  return 0;
}
