// Flight-recorder overhead: the same fixed-seed campaign with the recorder
// disarmed (the hot path pays one predicted branch per packet) and armed
// (every instrumented packet's events, wire bytes included, land in the
// ring). Reports wall-clock for both, the overhead ratio, events recorded,
// and export throughput for the two formats.
#include <cstdio>

#include <sstream>

#include "bench_common.hpp"
#include "ecnprobe/obs/flight_export.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.4) config.scale = 0.4;
  auto params = bench::world_params(config);
  const auto plan = bench::campaign_plan(config);
  bench::print_header("Flight recorder: recording overhead and export throughput",
                      config, params);

  double disarmed_s = 0.0;
  {
    scenario::World world(params);
    bench::Stopwatch watch;
    world.run_campaign(plan);
    disarmed_s = watch.seconds();
    std::printf("  recorder disarmed: %6.2f s (%d traces)\n", disarmed_s,
                plan.total_traces());
  }

  params.flight_recorder_capacity = 1 << 20;
  scenario::World world(params);
  bench::Stopwatch watch;
  world.run_campaign(plan);
  const double armed_s = watch.seconds();
  const auto& events = world.campaign_flights();
  std::printf("  recorder armed:    %6.2f s, %zu events (%.0f events/s)\n", armed_s,
              events.size(), events.size() / (armed_s > 0 ? armed_s : 1));
  std::printf("  recording overhead: %+.1f%%\n",
              disarmed_s > 0 ? (armed_s / disarmed_s - 1.0) * 100.0 : 0.0);

  {
    std::ostringstream os;
    bench::Stopwatch export_watch;
    const auto packets = obs::write_pcapng(os, events);
    std::printf("  pcapng export:     %6.3f s, %zu packets, %.1f MB\n",
                export_watch.seconds(), packets, os.str().size() / 1e6);
  }
  {
    bench::Stopwatch export_watch;
    const auto json = obs::to_chrome_trace_json(events);
    std::printf("  trace-json export: %6.3f s, %.1f MB\n", export_watch.seconds(),
                json.size() / 1e6);
  }
  return 0;
}
